#!/usr/bin/env bash
# Repository CI gate. Run before every push:
#
#   ./ci.sh
#
# Three stages, all required:
#   1. formatting      (cargo fmt --check)
#   2. lints           (cargo clippy, warnings are errors)
#   3. tier-1 tests    (release build + full test suite)
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "CI OK"
