#!/usr/bin/env bash
# Repository CI gate. Run before every push:
#
#   ./ci.sh
#
# Thirteen stages, all required:
#   1. formatting      (cargo fmt --check)
#   2. lints           (cargo clippy, warnings are errors)
#   3. tier-1 tests    (release build + full test suite)
#   4. simtest         (seeded simulation corpus + oracle mutation smoke)
#   5. chaos-crash     (fixed-seed simtest sweep with forced permanent
#                       faults — 20% message loss plus a rep crash with
#                       restart/failover — on both runtimes)
#   6. stress          (concurrency stress sweep: every program at the
#                       process ceiling, zero compute skew — the coalesced
#                       sharded control plane under maximum pressure)
#   7. bench smoke     (tiny-size benchmark report, schema-validated and
#                       gated against baselines/BENCH_baseline_smoke.json;
#                       plus a negative test proving the gate catches an
#                       injected slowdown)
#   8. scale smoke     (threaded weak/strong scaling sweep with a
#                       per-iteration wall-clock budget; plus a negative
#                       test proving the throughput gate catches an
#                       injected stall)
#   9. scale ranks     (hierarchical collective sweep at 32/64/128 ranks
#                       per program on the threaded fabric: rep-origin
#                       control messages per import must stay within the
#                       k*ceil(log_k N) + 2k O(log N) budget and the tree
#                       conservation laws must hold exactly; plus a
#                       negative test proving the gate rejects the legacy
#                       flat O(N) fan-out)
#  10. multi-session   (16 sessions multiplexed on the pooled executor
#                       under the same wall budget: pooled must beat
#                       one-worker-per-task by 1.5x aggregate imports/sec
#                       and schedule sessions fairly; plus a negative test
#                       proving the starvation check catches a deliberately
#                       unfair scheduler)
#  11. socket           (fixed-seed corpus on the socket runtime: every
#                       program its own OS process on loopback UDS, all
#                       three runtimes must agree on matches and protocol
#                       counters; a forced-fault chaos sweep; one TCP
#                       smoke seed; plus a negative test proving the
#                       liveness oracle catches a codec that silently
#                       drops collective-answer frames)
#  12. durable          (kill-and-restart chaos over loopback UDS: even
#                       seeds SIGKILL a node mid-run and restart it from
#                       its write-ahead journal, odd seeds sever a mesh
#                       link and demand re-dial + unacked-frame replay;
#                       every run must recover with the fault metered;
#                       plus a negative test proving a bit-flipped journal
#                       is refused at restart, never silently replayed)
#  13. net smoke        (socket data-plane sweep over loopback UDS + TCP
#                       through the real couplink-node mesh: payload
#                       throughput, writev coalescing and tx/rx frame
#                       conservation, gated against
#                       baselines/BENCH_baseline_net.json and a 2x legacy
#                       speedup floor; plus a negative test proving the
#                       syscalls-per-frame gate rejects the legacy
#                       per-frame write path)
#
# Nightly-only extras (run when CI_NIGHTLY=1, skipped gracefully otherwise):
#   - deep simtest sweep and a deeper DES-vs-threaded property sweep
#   - ThreadSanitizer pass over the threaded runtime (needs a nightly
#     toolchain with rust-src; skipped with a notice if unavailable)
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== simtest: seed corpus + mutation smoke (~30s budget)"
cargo run --release -q -p couplink-simtest -- --seeds 60
cargo run --release -q -p couplink-simtest -- --mutate

echo "== chaos-crash: forced loss + rep crash/failover on both runtimes"
cargo run --release -q -p couplink-simtest -- --faults --seeds 12

echo "== stress: process-ceiling concurrency sweep, fault-free"
cargo run --release -q -p couplink-simtest -- --stress --seeds 12

echo "== bench smoke: report gate against committed baseline"
cargo run --release -q -p couplink-bench --bin report -- \
    --smoke --out results/BENCH_smoke.json \
    --check baselines/BENCH_baseline_smoke.json

echo "== bench smoke: injected slowdown must FAIL the gate"
if cargo run --release -q -p couplink-bench --bin report -- \
    --smoke --mutate --out results/BENCH_smoke_mutated.json \
    --check baselines/BENCH_baseline_smoke.json >/dev/null 2>&1; then
    echo "ERROR: regression gate passed a mutated (8x slower memcpy) run" >&2
    exit 1
fi
echo "   (gate correctly rejected the mutated run)"

echo "== scale smoke: threaded scaling sweep under the throughput budget"
cargo run --release -q -p couplink-bench --bin scale -- \
    --out results/BENCH_scale_smoke.json

echo "== scale smoke: injected stall must FAIL the throughput gate"
if cargo run --release -q -p couplink-bench --bin scale -- \
    --mutate --out results/BENCH_scale_smoke_mutated.json >/dev/null 2>&1; then
    echo "ERROR: throughput gate passed a mutated (stalled-importer) run" >&2
    exit 1
fi
echo "   (gate correctly rejected the stalled run)"

echo "== scale ranks: hierarchical collectives under the O(log N) ctrl gate"
cargo run --release -q -p couplink-bench --bin scale -- \
    --ranks 32,64,128 --out results/BENCH_scale_ranks.json

echo "== scale ranks: flat fan-out must FAIL the control-scaling gate"
if cargo run --release -q -p couplink-bench --bin scale -- \
    --ranks 32,64 --mutate \
    --out results/BENCH_scale_ranks_mutated.json >/dev/null 2>&1; then
    echo "ERROR: control-scaling gate passed a flat O(N) rep fan-out" >&2
    exit 1
fi
echo "   (gate correctly rejected the flat fan-out)"

echo "== multi-session smoke: 16 sessions on the pooled executor"
cargo run --release -q -p couplink-bench --bin scale -- \
    --sessions 16 --out results/BENCH_scale_sessions.json

echo "== multi-session smoke: unfair scheduler must FAIL the starvation check"
if cargo run --release -q -p couplink-bench --bin scale -- \
    --sessions 16 --mutate \
    --out results/BENCH_scale_sessions_mutated.json >/dev/null 2>&1; then
    echo "ERROR: starvation check passed an always-poll-session-0 scheduler" >&2
    exit 1
fi
echo "   (starvation check correctly rejected the unfair scheduler)"

echo "== socket: fixed-seed UDS corpus across all three runtimes"
COUPLINK_NODE_BIN=target/release/couplink-node \
    cargo run --release -q -p couplink-simtest -- --socket uds --seeds 8

echo "== socket: forced-fault chaos sweep over loopback UDS"
COUPLINK_NODE_BIN=target/release/couplink-node \
    cargo run --release -q -p couplink-simtest -- --socket uds --faults --seeds 4

echo "== socket: TCP loopback smoke seed"
COUPLINK_NODE_BIN=target/release/couplink-node \
    cargo run --release -q -p couplink-simtest -- --socket tcp --seeds 1

echo "== socket: dropped collective answers must trip the liveness oracle"
COUPLINK_NODE_BIN=target/release/couplink-node \
    cargo run --release -q -p couplink-simtest -- --socket uds --drop-answers

echo "== durable: kill-restart-from-journal / link-sever chaos over UDS"
COUPLINK_NODE_BIN=target/release/couplink-node \
    cargo run --release -q -p couplink-simtest -- --socket uds --net-faults --seeds 4

echo "== durable: corrupted journal must be refused at restart"
COUPLINK_NODE_BIN=target/release/couplink-node \
    cargo run --release -q -p couplink-simtest -- --socket uds --corrupt-wal

echo "== net smoke: socket data-plane sweep under the coalescing + speedup gates"
COUPLINK_NODE_BIN=target/release/couplink-node \
    cargo run --release -q -p couplink-bench --bin net -- \
    --smoke --out results/BENCH_net_smoke.json \
    --check baselines/BENCH_baseline_net.json

echo "== net smoke: legacy per-frame writes must FAIL the coalescing gate"
if COUPLINK_NODE_BIN=target/release/couplink-node \
    cargo run --release -q -p couplink-bench --bin net -- \
    --smoke --mutate --out results/BENCH_net_smoke_mutated.json \
    >/dev/null 2>&1; then
    echo "ERROR: coalescing gate passed a per-frame-write (legacy codec) run" >&2
    exit 1
fi
echo "   (gate correctly rejected the per-frame write path)"

if [[ "${CI_NIGHTLY:-0}" == "1" ]]; then
    echo "== nightly: deep simtest sweep"
    cargo run --release -q -p couplink-simtest -- --seeds 500
    echo "== nightly: deep chaos-crash sweep"
    cargo run --release -q -p couplink-simtest -- --faults --seeds 100
    echo "== nightly: deep cross-runtime property sweep"
    SIMTEST_CASES=100 cargo test -q -p couplink-runtime --test prop_des

    echo "== nightly: ThreadSanitizer over the threaded runtime"
    # TSan needs a nightly toolchain with the rust-src component (for
    # -Zbuild-std); skip with a notice rather than fail when absent.
    if rustup run nightly rustc --version >/dev/null 2>&1 \
        && rustup component list --toolchain nightly 2>/dev/null \
           | grep -q 'rust-src.*(installed)'; then
        host="$(rustc -vV | sed -n 's/^host: //p')"
        RUSTFLAGS="-Zsanitizer=thread" \
            cargo +nightly test -q -Zbuild-std --target "$host" \
            -p couplink-runtime --lib threaded
    else
        echo "   (skipped: no nightly toolchain with rust-src installed)"
    fi
fi

echo "CI OK"
