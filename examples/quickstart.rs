//! Quickstart: two loosely coupled programs exchanging a distributed array
//! with approximate temporal matching — the paper's Figure 1 workflow.
//!
//! Program `F` (4 processes, 2×2 quadrants) exports its region every time
//! unit; program `U` (2 processes, row blocks) imports every 20 time units
//! with policy `REGL` and tolerance 2.5, so one export in twenty matches.
//!
//! Run: `cargo run -p couplink-examples --bin quickstart`

use couplink::prelude::*;

fn main() {
    // The framework-level configuration (normally a file; Figure 2 format):
    // programs are wired together outside their own code.
    let config = couplink::config::parse(
        "F local ./f 4\n\
         U local ./u 2\n\
         #\n\
         F.force U.force REGL 2.5\n",
    )
    .expect("valid configuration");

    // Each program binds its declared region to its decomposition of the
    // global 64x64 array.
    let grid = Extent2::new(64, 64);
    let f_decomp = Decomposition::block_2d(grid, 2, 2).expect("2x2 quadrants");
    let u_decomp = Decomposition::row_block(grid, 2).expect("2 row blocks");

    let mut session = SessionBuilder::new(config)
        .bind("F", "force", f_decomp)
        .bind("U", "force", u_decomp)
        .build()
        .expect("session builds");

    let mut f_handles = session.take_program("F").expect("F handles");
    let mut u_handles = session.take_program("U").expect("U handles");

    // Exporter program F: one thread per process, Figure 1's left column.
    let mut threads = Vec::new();
    for rank in 0..4 {
        let mut proc = f_handles.take_process(rank);
        let owned = f_decomp.owned(rank);
        threads.push(std::thread::spawn(move || {
            let region = proc.export_region("force").expect("declared region");
            for i in 0..60 {
                let t = 1.6 + i as f64;
                // "Computation" producing this step's data.
                let data = LocalArray::from_fn(owned, |r, c| t + (r * 64 + c) as f64 * 1e-6);
                let outcomes = region.export(ts(t), &data).expect("export");
                if rank == 0 && outcomes[0].action != couplink_runtime::ActionKind::Copy {
                    println!("F rank 0: export {t:5.1} -> {:?}", outcomes[0].action);
                }
            }
        }));
    }

    // Importer program U: Figure 1's right column.
    for rank in 0..2 {
        let mut proc = u_handles.take_process(rank);
        let owned = u_decomp.owned(rank);
        threads.push(std::thread::spawn(move || {
            let region = proc.import_region("force").expect("declared region");
            for j in 1..=3 {
                let want = 20.0 * j as f64;
                let mut dest = LocalArray::zeros(owned);
                match region.import(ts(want), &mut dest).expect("import") {
                    Some(matched) => println!(
                        "U rank {rank}: asked for @{want}, matched {matched}, corner value {:.3}",
                        dest.get(owned.row0, 0)
                    ),
                    None => println!("U rank {rank}: asked for @{want}, no match"),
                }
            }
        }));
    }

    for t in threads {
        t.join().expect("worker thread");
    }

    let stats = session.shutdown().expect("clean shutdown");
    let total_skips: u64 = stats[0].iter().map(|s| s.skips).sum();
    let total_copies: u64 = stats[0].iter().map(|s| s.memcpys).sum();
    println!();
    println!("framework buffering across F: {total_copies} memcpys, {total_skips} skipped");
    println!("(skips are the buddy-help saving: objects proven unmatchable before export)");
}
