//! The paper's §5 micro-benchmark, end to end on real threads: program `U`
//! solves the forced 2-D wave equation `u_tt = u_xx + u_yy + f(t,x,y)` on a
//! 128×128 grid (row blocks, leapfrog, halo exchange), importing the forcing
//! `f` from program `F` (2×2 quadrants, one artificially slowed process
//! `p_s`) through the coupling framework with `REGL` matching.
//!
//! Run: `cargo run -p couplink-examples --release --bin diffusion_coupling`

use couplink::prelude::*;
use couplink_diffusion::{fill_forcing, ring, Leapfrog};
use std::time::Duration;

const U_PROCS: usize = 4;
const F_PROCS: usize = 4;
const STEPS: usize = 6; // importer steps (one import per step)
const EXPORTS: usize = STEPS * 20 + 20;

fn main() {
    let config = couplink::config::parse(&format!(
        "F local ./f {F_PROCS}\nU local ./u {U_PROCS}\n#\nF.force U.force REGL 2.5\n"
    ))
    .expect("valid configuration");

    let grid = Extent2::new(128, 128);
    let f_decomp = Decomposition::block_2d(grid, 2, 2).expect("quadrants");
    let u_decomp = Decomposition::row_block(grid, U_PROCS).expect("row blocks");

    let mut session = SessionBuilder::new(config)
        .bind("F", "force", f_decomp)
        .bind("U", "force", u_decomp)
        .build()
        .expect("session builds");
    let mut f_handles = session.take_program("F").expect("F");
    let mut u_handles = session.take_program("U").expect("U");

    let mut threads = Vec::new();

    // --- Program F: compute f(t,x,y) on each quadrant, export every step.
    for rank in 0..F_PROCS {
        let mut proc = f_handles.take_process(rank);
        let owned = f_decomp.owned(rank);
        threads.push(std::thread::spawn(move || {
            let region = proc.export_region("force").expect("region");
            let mut skips = 0u64;
            for i in 0..EXPORTS {
                let t = 1.6 + i as f64;
                let data = fill_forcing(grid, owned, t);
                // Rank 3 is p_s: extra load makes it the slowest process.
                if rank == 3 {
                    std::thread::sleep(Duration::from_micros(400));
                }
                let outcomes = region.export(ts(t), &data).expect("export");
                if outcomes[0].action == couplink_runtime::ActionKind::Skip {
                    skips += 1;
                }
            }
            (rank, skips)
        }));
    }

    // --- Program U: leapfrog solver per rank + halo exchange + import.
    let links = ring(U_PROCS);
    let mut u_threads = Vec::new();
    for (rank, link) in links.into_iter().enumerate() {
        let mut proc = u_handles.take_process(rank);
        let owned = u_decomp.owned(rank);
        u_threads.push(std::thread::spawn(move || {
            let region = proc.import_region("force").expect("region");
            let dx = 1.0 / 129.0;
            let dt = dx / 2.0;
            let mut solver = Leapfrog::new(grid, owned, dx, dt);
            let mut forcing = LocalArray::zeros(owned);
            for j in 1..=STEPS {
                // Import the freshest acceptable forcing for this step.
                let want = 20.0 * j as f64;
                let matched = region
                    .import(ts(want), &mut forcing)
                    .expect("import")
                    .expect("the exporter covers this window");
                // Twenty solver sub-steps per imported forcing version
                // (multi-resolution coupling: U's dt is 20x F's).
                for _ in 0..20 {
                    let (above, below) = link.exchange(solver.top_row(), solver.bottom_row());
                    if let Some(row) = above {
                        solver.set_halo_above(&row);
                    }
                    if let Some(row) = below {
                        solver.set_halo_below(&row);
                    }
                    solver.step(&forcing);
                }
                if rank == 0 {
                    println!(
                        "U step {j}: wanted f@{want}, matched {matched}, |u|max(rank0) = {:.5}",
                        solver.max_abs()
                    );
                }
            }
            solver.max_abs()
        }));
    }

    for t in threads {
        let (rank, skips) = t.join().expect("F thread");
        println!("F rank {rank}: {skips} buffering memcpys skipped via buddy-help/pruning");
    }
    let mut global_max: f64 = 0.0;
    for t in u_threads {
        global_max = global_max.max(t.join().expect("U thread"));
    }
    session.shutdown().expect("clean shutdown");

    println!();
    println!("forced wave solution grew to |u|max = {global_max:.5} (finite, energy injected)");
    assert!(global_max.is_finite() && global_max > 0.0);
}
