//! Runs one Figure-4 panel on the deterministic discrete-event runtime and
//! prints the per-window export-time profile of the slow process — a quick
//! way to *see* the buddy-help ramp without the full bench harness.
//!
//! Run: `cargo run -p couplink-examples --release --bin fig4_des -- [u_procs]`

use couplink_diffusion::fig4::{fig4_config, Fig4Params, SLOW_RANK};
use couplink_runtime::CoupledSim;

fn main() {
    let u_procs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let report = CoupledSim::new(fig4_config(Fig4Params::panel(u_procs)))
        .expect("valid configuration")
        .run()
        .expect("simulation completes");

    println!("Figure 4 panel, importer U with {u_procs} processes (virtual time)");
    println!("per-window (20 iterations) mean export time of p_s, in ms:");
    println!();
    let series = &report.export_time_series[SLOW_RANK];
    for (w, chunk) in series.chunks(20).enumerate() {
        let mean_ms = chunk.iter().sum::<f64>() / chunk.len() as f64 * 1e3;
        let bar = "#".repeat((mean_ms * 30.0).round() as usize);
        println!(
            "window {w:3} (iters {:4}..{:4}): {mean_ms:6.3} ms  {bar}",
            w * 20,
            w * 20 + chunk.len()
        );
    }
    println!();
    match report.optimal_entry(SLOW_RANK) {
        Some(e) => println!("optimal state (T_i = 0 from here on) entered at iteration {e}"),
        None => println!("optimal state never entered (importer too slow — panels a/b)"),
    }
    println!(
        "skips: {}, memcpys: {}, unnecessary in-region copies: {}",
        report.stats[SLOW_RANK].skips,
        report.stats[SLOW_RANK].memcpys,
        report.stats[SLOW_RANK].t_ub_in_region_count()
    );
}
