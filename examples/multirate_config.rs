//! A Figure-2 style deployment driven entirely by a configuration file: one
//! exported region feeding **two** importing programs with different match
//! policies and tolerances — the multi-importer fan-out the configuration
//! language supports ("P0.r1 P1.r1" and "P0.r1 P2.r3" in the paper).
//!
//! Run: `cargo run -p couplink-examples --bin multirate_config`

use couplink::prelude::*;

const CONFIG: &str = "\
SRC cluster0 /bin/src 4
FAST cluster1 /bin/fast 2
SLOW cluster1 /bin/slow 2
#
SRC.field FAST.field REGL 1.0
SRC.field SLOW.field REG  5.0
";

fn main() {
    let config = couplink::config::parse(CONFIG).expect("valid configuration");
    // The framework validates each program's declared regions against the
    // connection spec at initialization (§3.1 early error detection).
    let report = config.validate_regions("SRC", &["field", "diag"], &[]);
    println!(
        "SRC declares regions: field (connected twice), diag (unimported -> zero overhead: {:?})",
        report.unimported_exports
    );

    let grid = Extent2::new(48, 48);
    let src_d = Decomposition::block_2d(grid, 2, 2).expect("quadrants");
    let two_d = Decomposition::row_block(grid, 2).expect("rows");

    let mut session = SessionBuilder::new(config)
        .bind("SRC", "field", src_d)
        .bind("FAST", "field", two_d)
        .bind("SLOW", "field", two_d)
        .build()
        .expect("session builds");
    let mut src = session.take_program("SRC").expect("SRC");
    let mut fast = session.take_program("FAST").expect("FAST");
    let mut slow = session.take_program("SLOW").expect("SLOW");

    let mut threads = Vec::new();
    // SRC exports at t = 0.5, 1.0, 1.5, ..., 30.0 (dense time scale).
    for rank in 0..4 {
        let mut proc = src.take_process(rank);
        let owned = src_d.owned(rank);
        threads.push(std::thread::spawn(move || {
            let region = proc.export_region("field").expect("region");
            assert_eq!(region.connections(), 2, "one region, two importers");
            for i in 1..=60 {
                let t = 0.5 * i as f64;
                let data = LocalArray::from_fn(owned, |_, _| t);
                region.export(ts(t), &data).expect("export");
            }
        }));
    }
    // FAST imports every 5 time units with a tight REGL tolerance: it gets
    // the freshest version at or below its request.
    for rank in 0..2 {
        let mut proc = fast.take_process(rank);
        let owned = two_d.owned(rank);
        threads.push(std::thread::spawn(move || {
            let region = proc.import_region("field").expect("region");
            for j in 1..=4 {
                let want = 5.0 * j as f64;
                let mut dest = LocalArray::zeros(owned);
                let m = region.import(ts(want), &mut dest).expect("import");
                if rank == 0 {
                    println!("FAST wanted @{want:4} (REGL 1.0) -> {m:?}");
                }
            }
        }));
    }
    // SLOW imports every 13 time units with a wide symmetric tolerance: the
    // closest version in either direction matches.
    for rank in 0..2 {
        let mut proc = slow.take_process(rank);
        let owned = two_d.owned(rank);
        threads.push(std::thread::spawn(move || {
            let region = proc.import_region("field").expect("region");
            for j in 1..=2 {
                let want = 13.0 * j as f64 - 0.25;
                let mut dest = LocalArray::zeros(owned);
                let m = region.import(ts(want), &mut dest).expect("import");
                if rank == 0 {
                    println!("SLOW wanted @{want:5} (REG 5.0)  -> {m:?}");
                }
            }
        }));
    }
    for t in threads {
        t.join().expect("worker");
    }
    let stats = session.shutdown().expect("clean shutdown");
    println!();
    for (i, conn_stats) in stats.iter().enumerate() {
        let sends: u64 = conn_stats.iter().map(|s| s.sends).sum();
        let copies: u64 = conn_stats.iter().map(|s| s.memcpys).sum();
        println!("connection {i}: {sends} piece-sends, {copies} buffering memcpys across SRC");
    }
}
