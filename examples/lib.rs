//! The `couplink-examples` package only carries runnable example binaries:
//!
//! * `quickstart` — minimal exporter/importer pair (paper Figure 1).
//! * `diffusion_coupling` — the §5 micro-benchmark end to end on real
//!   threads: wave solver + halo exchange importing an analytic forcing.
//! * `multirate_config` — a Figure-2 style config-driven deployment with
//!   one exported region feeding two importers at different rates/policies.
//! * `fig4_des` — one Figure-4 panel on the deterministic simulator with an
//!   ASCII per-window export-time profile.
