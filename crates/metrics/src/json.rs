//! A minimal JSON value, emitter and parser.
//!
//! The build environment has no crate registry, so `serde_json` is
//! unavailable (the workspace's `serde` is a no-op shim). This module
//! implements exactly the subset the benchmark report needs: a tree value
//! with order-preserving objects, a deterministic emitter, and a strict
//! recursive-descent parser — enough to write `BENCH_couplink.json`, read
//! the committed baseline back, and validate both against the schema.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order so emitted files are
/// stable and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`; integers ≤ 2⁵³ roundtrip exactly).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Number(v as f64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl Value {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) if n.is_finite() => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer (must be integral).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53)).then_some(n as u64)
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object fields.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Emits a value as pretty-printed JSON (2-space indent, stable field
/// order, `\n` line ends) — deterministic, so byte-identical reports diff
/// clean in git.
pub fn emit(v: &Value) -> String {
    let mut out = String::new();
    emit_into(v, 0, &mut out);
    out.push('\n');
    out
}

fn emit_into(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent + 1);
    let close = "  ".repeat(indent);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Number(n) => emit_number(*n, out),
        Value::String(s) => emit_string(s, out),
        Value::Array(items) if items.is_empty() => out.push_str("[]"),
        Value::Array(items) => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                emit_into(item, indent + 1, out);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            out.push_str(&close);
            out.push(']');
        }
        Value::Object(fields) if fields.is_empty() => out.push_str("{}"),
        Value::Object(fields) => {
            out.push_str("{\n");
            for (i, (k, item)) in fields.iter().enumerate() {
                out.push_str(&pad);
                emit_string(k, out);
                out.push_str(": ");
                emit_into(item, indent + 1, out);
                out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
            }
            out.push_str(&close);
            out.push('}');
        }
    }
}

fn emit_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; clamp to null like serde_json does.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust's shortest-roundtrip Display is valid JSON for finite floats.
        let _ = write!(out, "{n}");
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Strict: trailing garbage, trailing commas and
/// unescaped control characters are errors.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed by our reports;
                            // reject rather than mis-decode.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "surrogate \\u escape".to_string())?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!("invalid escape {:?}", other.map(|c| c as char)))
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control character at byte {}", self.pos))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is
                    // always on a char boundary).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|e| format!("invalid number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_document() {
        let v = Value::Object(vec![
            ("schema".to_string(), Value::from("couplink-bench/v1")),
            (
                "scenarios".to_string(),
                Value::Array(vec![Value::Object(vec![
                    ("name".to_string(), Value::from("fig4_u4")),
                    ("virtual_s".to_string(), Value::Number(12.625)),
                    ("count".to_string(), Value::from(1001u64)),
                    ("deterministic".to_string(), Value::Bool(true)),
                    ("note".to_string(), Value::Null),
                ])]),
            ),
        ]);
        let text = emit(&v);
        assert_eq!(parse(&text).expect("parses"), v);
    }

    #[test]
    fn integers_emit_without_exponent() {
        assert_eq!(emit(&Value::from(1001u64)), "1001\n");
        assert_eq!(emit(&Value::Number(0.5)), "0.5\n");
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Value::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(parse(&emit(&v)).expect("parses"), v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("'single'").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn as_u64_requires_integral_nonnegative() {
        assert_eq!(Value::Number(5.0).as_u64(), Some(5));
        assert_eq!(Value::Number(5.5).as_u64(), None);
        assert_eq!(Value::Number(-1.0).as_u64(), None);
        assert_eq!(Value::from("5").as_u64(), None);
    }

    #[test]
    fn get_finds_object_fields() {
        let v = parse("{\"a\": 1, \"b\": [2, 3]}").expect("parses");
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(
            v.get("b").and_then(Value::as_array).map(<[Value]>::len),
            Some(2)
        );
        assert!(v.get("c").is_none());
    }
}
