//! Engine-wide instrumentation for the couplink runtimes.
//!
//! The paper's argument is quantitative: buddy-help pays off exactly when
//! the memcpy cost skipped on PENDING processes exceeds the control-message
//! overhead (Figures 4, 7–8, Equations 1–2). This crate gives the engine
//! first-class, *allocation-free* counters so every run can report that
//! trade-off directly instead of via ad-hoc stdout:
//!
//! * [`Counter`] — a relaxed atomic event counter;
//! * [`Gauge`] — a level with a high-water mark (queue depths, buffered
//!   objects);
//! * [`Histogram`] — fixed power-of-two buckets, atomically updated;
//! * [`PhaseTimes`] — per-phase accumulated **virtual** seconds (the
//!   discrete-event runtime) and **wall** seconds (the threaded fabric),
//!   with a span-style guard ([`PhaseTimes::wall_span`]) for the latter;
//! * [`EngineMetrics`] — one instance per run, shared by every node and
//!   transport of either runtime.
//!
//! All hot-path operations are single atomic RMWs — no locks, no
//! allocation. A run ends with [`EngineMetrics::snapshot`], yielding a
//! [`MetricsSnapshot`] whose [`CounterSnapshot`] half is **deterministic on
//! the discrete-event runtime**: two DES runs of the same topology must
//! produce bit-identical counter snapshots (a gated assertion in the bench
//! harness), while the [`TimingSnapshot`] half carries wall-clock readings
//! that legally vary.
//!
//! The [`json`] module provides the minimal JSON emitter/parser behind the
//! schema-versioned `BENCH_couplink.json` benchmark report (the build
//! environment has no registry access, so serde is a no-op shim here).

#![warn(missing_docs)]

pub mod json;

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonically increasing event counter (relaxed atomic).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A level gauge with a high-water mark.
#[derive(Debug, Default)]
pub struct Gauge {
    current: AtomicU64,
    hwm: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Gauge {
            current: AtomicU64::new(0),
            hwm: AtomicU64::new(0),
        }
    }

    /// Sets the level, raising the high-water mark if exceeded.
    pub fn set(&self, level: u64) {
        self.current.store(level, Ordering::Relaxed);
        self.hwm.fetch_max(level, Ordering::Relaxed);
    }

    /// Raises the level by `n`.
    pub fn add(&self, n: u64) {
        let level = self.current.fetch_add(n, Ordering::Relaxed) + n;
        self.hwm.fetch_max(level, Ordering::Relaxed);
    }

    /// Lowers the level by `n` (saturating).
    pub fn sub(&self, n: u64) {
        let mut cur = self.current.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self.current.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current level.
    pub fn level(&self) -> u64 {
        self.current.load(Ordering::Relaxed)
    }

    /// Highest level ever set.
    pub fn high_water_mark(&self) -> u64 {
        self.hwm.load(Ordering::Relaxed)
    }
}

/// Number of buckets in a [`Histogram`].
pub const HISTOGRAM_BUCKETS: usize = 16;

/// A fixed-bucket histogram over `u64` samples: bucket `i < 15` holds
/// samples in `[2^(i-1)+1 … 2^i]` (bucket 0 holds zeros and ones), the last
/// bucket everything larger. Atomic, allocation-free.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index a sample falls in.
    pub fn bucket_of(value: u64) -> usize {
        if value <= 1 {
            0
        } else {
            // Smallest i with value <= 2^i, capped at the overflow bucket.
            let bits = u64::BITS - (value - 1).leading_zeros();
            (bits as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Records one sample.
    pub fn observe(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Per-bucket counts.
    pub fn counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

/// Control-message classes, mirroring the protocol's wire messages. The
/// runtimes map their `CtrlMsg` variants onto these to count traffic per
/// class without this crate depending on the protocol layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlClass {
    /// A process's collective `import` call reaching its own rep.
    ImportCall,
    /// The importer rep's aggregated request to the exporter rep.
    ImportRequest,
    /// The exporter rep forwarding a request to every process.
    ForwardRequest,
    /// A process's reply (MATCH / NO MATCH / PENDING) to its rep.
    Response,
    /// The exporter rep's final-answer notification to PENDING processes.
    BuddyHelp,
    /// The exporter rep's collective answer to the importer rep.
    Answer,
    /// The importer rep broadcasting the answer to its processes.
    AnswerBcast,
    /// A reliability-layer acknowledgement of a sequenced message.
    Ack,
    /// A liveness heartbeat from a rep to its member processes.
    Heartbeat,
}

impl CtrlClass {
    /// All classes, in wire-protocol order (also the snapshot field order).
    pub const ALL: [CtrlClass; 9] = [
        CtrlClass::ImportCall,
        CtrlClass::ImportRequest,
        CtrlClass::ForwardRequest,
        CtrlClass::Response,
        CtrlClass::BuddyHelp,
        CtrlClass::Answer,
        CtrlClass::AnswerBcast,
        CtrlClass::Ack,
        CtrlClass::Heartbeat,
    ];

    /// Stable snake_case name (snapshot / JSON key).
    pub fn as_str(self) -> &'static str {
        match self {
            CtrlClass::ImportCall => "import_call",
            CtrlClass::ImportRequest => "import_request",
            CtrlClass::ForwardRequest => "forward_request",
            CtrlClass::Response => "response",
            CtrlClass::BuddyHelp => "buddy_help",
            CtrlClass::Answer => "answer",
            CtrlClass::AnswerBcast => "answer_bcast",
            CtrlClass::Ack => "ack",
            CtrlClass::Heartbeat => "heartbeat",
        }
    }
}

/// Engine phases whose time is accounted separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Inside an `export` call (memcpy + bookkeeping).
    Export,
    /// Inside an `import` call (waiting for the collective answer + data).
    Import,
    /// Control-message latency.
    Ctrl,
    /// Matched-data transfer.
    Transfer,
}

impl Phase {
    /// All phases, in snapshot field order.
    pub const ALL: [Phase; 4] = [Phase::Export, Phase::Import, Phase::Ctrl, Phase::Transfer];

    /// Stable snake_case name (snapshot / JSON key).
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Export => "export",
            Phase::Import => "import",
            Phase::Ctrl => "ctrl",
            Phase::Transfer => "transfer",
        }
    }
}

/// Atomically accumulated `f64` seconds (bit-cast CAS loop).
#[derive(Debug, Default)]
struct AtomicSeconds(AtomicU64);

impl AtomicSeconds {
    fn add(&self, secs: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + secs).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Per-phase time accounting: virtual seconds (charged by the
/// discrete-event runtime's cost model) and wall seconds (measured by the
/// threaded fabric).
#[derive(Debug, Default)]
pub struct PhaseTimes {
    virtual_s: [AtomicSeconds; Phase::ALL.len()],
    wall_s: [AtomicSeconds; Phase::ALL.len()],
}

/// Span-style guard: measures wall time from creation to drop and adds it
/// to one phase's wall accumulator.
#[derive(Debug)]
pub struct WallSpan<'a> {
    times: &'a PhaseTimes,
    phase: Phase,
    start: Instant,
}

impl Drop for WallSpan<'_> {
    fn drop(&mut self) {
        self.times
            .add_wall(self.phase, self.start.elapsed().as_secs_f64());
    }
}

impl PhaseTimes {
    fn idx(phase: Phase) -> usize {
        Phase::ALL
            .iter()
            .position(|&p| p == phase)
            .expect("phase listed in ALL")
    }

    /// Charges virtual seconds to a phase.
    pub fn add_virtual(&self, phase: Phase, secs: f64) {
        self.virtual_s[Self::idx(phase)].add(secs);
    }

    /// Charges wall seconds to a phase.
    pub fn add_wall(&self, phase: Phase, secs: f64) {
        self.wall_s[Self::idx(phase)].add(secs);
    }

    /// Opens a span that charges its wall duration to `phase` on drop.
    pub fn wall_span(&self, phase: Phase) -> WallSpan<'_> {
        WallSpan {
            times: self,
            phase,
            start: Instant::now(),
        }
    }

    /// Accumulated virtual seconds of a phase.
    pub fn virtual_seconds(&self, phase: Phase) -> f64 {
        self.virtual_s[Self::idx(phase)].get()
    }

    /// Accumulated wall seconds of a phase.
    pub fn wall_seconds(&self, phase: Phase) -> f64 {
        self.wall_s[Self::idx(phase)].get()
    }
}

/// One run's worth of engine instrumentation, shared (via `Arc`) by every
/// node and transport of a runtime.
#[derive(Debug, Default)]
pub struct EngineMetrics {
    /// Export calls that paid the framework-buffer memcpy.
    pub memcpy_paid: Counter,
    /// Export calls whose memcpy was skipped (the buddy-help saving).
    pub memcpy_skipped: Counter,
    /// Bytes copied into framework buffers (the paid memcpys).
    pub bytes_buffered: Counter,
    /// Data bytes moved to importers.
    pub bytes_transferred: Counter,
    /// Control messages sent, by class (indexed like [`CtrlClass::ALL`]).
    pub ctrl_sent: [Counter; CtrlClass::ALL.len()],
    /// Matched-object transfers emitted by exporting processes.
    pub transfers: Counter,
    /// Export calls entered (paid + skipped).
    pub export_calls: Counter,
    /// Collective import calls entered.
    pub import_calls: Counter,
    /// Export attempts stalled on a full bounded buffer.
    pub buffer_stalls: Counter,
    /// Sequenced control messages re-sent after an ack deadline expired.
    pub retransmits: Counter,
    /// Reliability deadlines that expired (each triggers a retransmit or,
    /// for expendable traffic, abandonment).
    pub timeouts: Counter,
    /// Rep-role recoveries: successor takeovers and crash restarts.
    pub failovers: Counter,
    /// Buddy-help announcements abandoned by the reliability layer — each
    /// one a skip opportunity degraded to conservative buffering.
    pub degraded_buffers: Counter,
    /// Physical payload buffers allocated by the threaded data plane. With
    /// zero-copy sharing this equals `memcpy_paid` (one allocation per
    /// buffered object, shared across connections, pieces and retransmits);
    /// the DES models copies without materializing them, so it stays 0 there.
    pub payload_allocs: Counter,
    /// Coalesced control-plane flushes: channel pushes that combined two or
    /// more rep fan-out messages for one destination. Threaded fabric only.
    pub ctrl_batches: Counter,
    /// Control messages re-sent by a relay rank to its distribution-tree
    /// subtree (hierarchical fan-out only; 0 in flat mode). Relay hops are
    /// *not* double-counted in `ctrl_sent` — that array meters origin sends.
    pub ctrl_relay: Counter,
    /// Coalesced collective frames sent (origin + relay): one frame folding
    /// an answer broadcast or the buddy-help announcements for one match
    /// into a single tree-routed message (0 in flat mode).
    pub ctrl_coalesced: Counter,
    /// Standalone heartbeats suppressed because data or control traffic
    /// already traversed the link inside the heartbeat window (piggybacked
    /// liveness; threaded fabric only).
    pub hb_suppressed: Counter,
    /// Wire frames sent by the socket transport (0 on DES/threaded).
    pub net_frames: Counter,
    /// Bytes written to sockets, headers included (0 on DES/threaded).
    pub net_bytes: Counter,
    /// Peer connections re-established after a drop (0 on DES/threaded).
    pub net_reconnects: Counter,
    /// Inbound frames rejected by the wire codec — truncated, version-
    /// skewed or checksum-failed (0 on DES/threaded, and 0 on any socket
    /// run with an uncorrupted wire).
    pub net_codec_rejects: Counter,
    /// Write syscalls issued by the socket tx path (0 on DES/threaded).
    /// With vectored coalescing one syscall can carry many frames, so
    /// `net_syscalls / net_frames` is the frames-per-write figure the
    /// `bench net` gate reads.
    pub net_syscalls: Counter,
    /// Frames written as part of a multi-frame vectored burst (frames that
    /// shared their write syscall with at least one other frame; 0 on
    /// DES/threaded and in legacy per-frame mode).
    pub net_writev_frames: Counter,
    /// Tx frame buffers recycled from the writer-thread pool instead of
    /// freshly allocated (0 on DES/threaded).
    pub net_pool_hits: Counter,
    /// Tx frame-buffer requests the pool could not serve — a fresh
    /// allocation (0 on DES/threaded).
    pub net_pool_misses: Counter,
    /// Wire frames received and dispatched by the socket transport
    /// (0 on DES/threaded). Clean runs conserve: Σ rx == Σ tx.
    pub net_rx_frames: Counter,
    /// Bytes received off sockets as dispatched frames, headers included
    /// (0 on DES/threaded). Clean runs conserve: Σ rx == Σ tx.
    pub net_rx_bytes: Counter,
    /// Records appended to a durable write-ahead journal (0 with the
    /// in-memory backend, i.e. on DES/threaded and on clean socket runs).
    pub wal_appends: Counter,
    /// Bytes appended to a durable write-ahead journal, framing included.
    pub wal_bytes: Counter,
    /// Records replayed from a write-ahead journal on restart.
    pub wal_replayed: Counter,
    /// Torn-tail truncations performed when opening a write-ahead journal
    /// (at most one per open; a crash mid-append leaves one partial record).
    pub wal_truncated: Counter,
    /// Nanoseconds threads spent waiting on *contended* hot-path locks
    /// (uncontended acquisitions are not timed). Wall-clock, threaded
    /// fabric only; informational, never gated.
    pub lock_wait_ns: Counter,
    /// Time-to-recovery samples in milliseconds (crash → rep role
    /// re-established), virtual on the DES, wall on the fabric.
    pub recovery_ms: Histogram,
    /// Task polls executed by the threaded session executor (0 on DES).
    pub tasks_polled: Counter,
    /// Tasks a pool worker stole from another worker's run-queue shard
    /// (threaded session executor only; 0 on DES).
    pub worker_steal: Counter,
    /// Objects currently held in framework buffers, with high-water mark.
    pub buffered_objects: Gauge,
    /// Tasks currently sitting in the session executor's run queues, with
    /// high-water mark. The executor's at-most-once-queued invariant bounds
    /// the HWM by the live task count (0 on DES).
    pub runq_depth: Gauge,
    /// Messages drained per executor task poll (threaded session executor
    /// only; empty on DES).
    pub poll_batch: Histogram,
    /// Depth of the k-ary distribution tree (relay hops from a rep to its
    /// farthest rank), as a level gauge; 0 in flat fan-out mode.
    pub tree_depth: Gauge,
    /// Bytes buffered in a socket receive ring awaiting a complete frame,
    /// with high-water mark — the rx memory bound (0 on DES/threaded).
    pub net_rx_buf: Gauge,
    /// Pending messages/events per node queue, with high-water mark (the
    /// DES event queue; the fabric's rep/agent mailboxes).
    pub queue_depth: Gauge,
    /// Buffered-object count observed at each export call.
    pub occupancy: Histogram,
    /// Per-phase virtual/wall time.
    pub phases: PhaseTimes,
}

impl EngineMetrics {
    /// Fresh, zeroed metrics for one run.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counter for one control-message class.
    pub fn ctrl(&self, class: CtrlClass) -> &Counter {
        let idx = CtrlClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("class listed in ALL");
        &self.ctrl_sent[idx]
    }

    /// Snapshots every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: CounterSnapshot {
                memcpy_paid: self.memcpy_paid.get(),
                memcpy_skipped: self.memcpy_skipped.get(),
                bytes_buffered: self.bytes_buffered.get(),
                bytes_transferred: self.bytes_transferred.get(),
                ctrl_sent: std::array::from_fn(|i| self.ctrl_sent[i].get()),
                transfers: self.transfers.get(),
                export_calls: self.export_calls.get(),
                import_calls: self.import_calls.get(),
                buffer_stalls: self.buffer_stalls.get(),
                retransmits: self.retransmits.get(),
                timeouts: self.timeouts.get(),
                failovers: self.failovers.get(),
                degraded_buffers: self.degraded_buffers.get(),
                payload_allocs: self.payload_allocs.get(),
                ctrl_batches: self.ctrl_batches.get(),
                ctrl_relay: self.ctrl_relay.get(),
                ctrl_coalesced: self.ctrl_coalesced.get(),
                hb_suppressed: self.hb_suppressed.get(),
                net_frames: self.net_frames.get(),
                net_bytes: self.net_bytes.get(),
                net_reconnects: self.net_reconnects.get(),
                net_codec_rejects: self.net_codec_rejects.get(),
                net_syscalls: self.net_syscalls.get(),
                net_writev_frames: self.net_writev_frames.get(),
                net_pool_hits: self.net_pool_hits.get(),
                net_pool_misses: self.net_pool_misses.get(),
                net_rx_frames: self.net_rx_frames.get(),
                net_rx_bytes: self.net_rx_bytes.get(),
                wal_appends: self.wal_appends.get(),
                wal_bytes: self.wal_bytes.get(),
                wal_replayed: self.wal_replayed.get(),
                wal_truncated: self.wal_truncated.get(),
                lock_wait_ns: self.lock_wait_ns.get(),
                tasks_polled: self.tasks_polled.get(),
                worker_steal: self.worker_steal.get(),
                buffered_hwm: self.buffered_objects.high_water_mark(),
                queue_depth_hwm: self.queue_depth.high_water_mark(),
                runq_depth_hwm: self.runq_depth.high_water_mark(),
                tree_depth: self.tree_depth.high_water_mark(),
                net_rx_buf_hwm: self.net_rx_buf.high_water_mark(),
                occupancy: self.occupancy.counts(),
                recovery_ms: self.recovery_ms.counts(),
                poll_batch: self.poll_batch.counts(),
            },
            timing: TimingSnapshot {
                virtual_s: std::array::from_fn(|i| self.phases.virtual_seconds(Phase::ALL[i])),
                wall_s: std::array::from_fn(|i| self.phases.wall_seconds(Phase::ALL[i])),
            },
        }
    }
}

/// The deterministic half of a run's metrics. On the discrete-event runtime
/// two runs of the same topology must produce **identical** values — this
/// type is `Eq` precisely so that assertion is a one-liner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Export calls that paid the memcpy.
    pub memcpy_paid: u64,
    /// Export calls that skipped it.
    pub memcpy_skipped: u64,
    /// Bytes copied into framework buffers.
    pub bytes_buffered: u64,
    /// Data bytes moved to importers.
    pub bytes_transferred: u64,
    /// Control messages by class (indexed like [`CtrlClass::ALL`]).
    pub ctrl_sent: [u64; CtrlClass::ALL.len()],
    /// Matched-object transfers emitted.
    pub transfers: u64,
    /// Export calls entered.
    pub export_calls: u64,
    /// Collective import calls entered.
    pub import_calls: u64,
    /// Export attempts stalled on a full buffer.
    pub buffer_stalls: u64,
    /// Sequenced messages re-sent after a deadline expired.
    pub retransmits: u64,
    /// Reliability deadlines that expired.
    pub timeouts: u64,
    /// Rep-role recoveries (takeovers + restarts).
    pub failovers: u64,
    /// Buddy-help announcements degraded to conservative buffering.
    pub degraded_buffers: u64,
    /// Physical payload buffers allocated (threaded data plane; 0 on DES).
    pub payload_allocs: u64,
    /// Coalesced rep fan-out flushes (threaded fabric; 0 on DES).
    pub ctrl_batches: u64,
    /// Tree relay hops re-sent by relay ranks (0 in flat fan-out mode).
    pub ctrl_relay: u64,
    /// Coalesced collective frames sent, origin + relay (0 in flat mode).
    pub ctrl_coalesced: u64,
    /// Standalone heartbeats suppressed by piggybacked liveness.
    pub hb_suppressed: u64,
    /// Wire frames sent by the socket transport (0 off the socket runtime).
    pub net_frames: u64,
    /// Bytes written to sockets (0 off the socket runtime).
    pub net_bytes: u64,
    /// Peer connections re-established (0 off the socket runtime).
    pub net_reconnects: u64,
    /// Inbound frames the wire codec rejected (0 off the socket runtime).
    pub net_codec_rejects: u64,
    /// Write syscalls issued by the socket tx path (0 off the socket
    /// runtime); one vectored syscall may carry many frames.
    pub net_syscalls: u64,
    /// Frames that shared a vectored write syscall with at least one
    /// other frame (0 off the socket runtime / in legacy per-frame mode).
    pub net_writev_frames: u64,
    /// Tx frame buffers recycled from the pool (0 off the socket runtime).
    pub net_pool_hits: u64,
    /// Tx buffer requests served by a fresh allocation instead of the
    /// pool (0 off the socket runtime).
    pub net_pool_misses: u64,
    /// Wire frames received and dispatched (0 off the socket runtime).
    pub net_rx_frames: u64,
    /// Bytes received as dispatched frames, headers included (0 off the
    /// socket runtime).
    pub net_rx_bytes: u64,
    /// Records appended to a durable WAL (0 with the in-memory backend).
    pub wal_appends: u64,
    /// Bytes appended to a durable WAL, framing included.
    pub wal_bytes: u64,
    /// Records replayed from a WAL on restart (0 on clean runs).
    pub wal_replayed: u64,
    /// Torn-tail truncations on WAL open (0 on clean runs).
    pub wal_truncated: u64,
    /// Nanoseconds spent waiting on contended hot-path locks (0 on DES).
    pub lock_wait_ns: u64,
    /// Session-executor task polls (threaded fabric; 0 on DES).
    pub tasks_polled: u64,
    /// Cross-shard task steals by pool workers (threaded fabric; 0 on DES).
    pub worker_steal: u64,
    /// High-water mark of buffered objects.
    pub buffered_hwm: u64,
    /// High-water mark of node queue depth.
    pub queue_depth_hwm: u64,
    /// High-water mark of the session executor's run-queue depth (threaded
    /// fabric; 0 on DES). Bounded by the live task count.
    pub runq_depth_hwm: u64,
    /// Depth of the k-ary distribution tree (0 in flat fan-out mode).
    pub tree_depth: u64,
    /// High-water mark of bytes parked in a socket receive ring awaiting
    /// a complete frame (0 off the socket runtime).
    pub net_rx_buf_hwm: u64,
    /// Occupancy histogram bucket counts.
    pub occupancy: [u64; HISTOGRAM_BUCKETS],
    /// Time-to-recovery histogram bucket counts (milliseconds).
    pub recovery_ms: [u64; HISTOGRAM_BUCKETS],
    /// Messages-per-executor-poll histogram bucket counts.
    pub poll_batch: [u64; HISTOGRAM_BUCKETS],
}

impl CounterSnapshot {
    /// Total control messages across all classes.
    pub fn ctrl_total(&self) -> u64 {
        self.ctrl_sent.iter().sum()
    }

    /// Control messages of one class.
    pub fn ctrl(&self, class: CtrlClass) -> u64 {
        let idx = CtrlClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("class listed in ALL");
        self.ctrl_sent[idx]
    }

    /// Folds another **process's** snapshot into this one — the socket
    /// runtime's orchestrator sums the per-process reports into the
    /// session-wide view. Flow counters add (each message/byte/frame is
    /// metered by exactly one process), histograms add bucket-wise, and
    /// high-water marks take the per-process maximum (a peak is a local
    /// property of one pool, not a flow).
    ///
    /// The exhaustive destructure means adding a counter without deciding
    /// its merge rule is a compile error, not a silently-wrong report.
    pub fn merge_process(&mut self, other: &CounterSnapshot) {
        let CounterSnapshot {
            memcpy_paid,
            memcpy_skipped,
            bytes_buffered,
            bytes_transferred,
            ctrl_sent,
            transfers,
            export_calls,
            import_calls,
            buffer_stalls,
            retransmits,
            timeouts,
            failovers,
            degraded_buffers,
            payload_allocs,
            ctrl_batches,
            ctrl_relay,
            ctrl_coalesced,
            hb_suppressed,
            net_frames,
            net_bytes,
            net_reconnects,
            net_codec_rejects,
            net_syscalls,
            net_writev_frames,
            net_pool_hits,
            net_pool_misses,
            net_rx_frames,
            net_rx_bytes,
            wal_appends,
            wal_bytes,
            wal_replayed,
            wal_truncated,
            lock_wait_ns,
            tasks_polled,
            worker_steal,
            buffered_hwm,
            queue_depth_hwm,
            runq_depth_hwm,
            tree_depth,
            net_rx_buf_hwm,
            occupancy,
            recovery_ms,
            poll_batch,
        } = other;
        self.memcpy_paid += memcpy_paid;
        self.memcpy_skipped += memcpy_skipped;
        self.bytes_buffered += bytes_buffered;
        self.bytes_transferred += bytes_transferred;
        for (mine, theirs) in self.ctrl_sent.iter_mut().zip(ctrl_sent) {
            *mine += theirs;
        }
        self.transfers += transfers;
        self.export_calls += export_calls;
        self.import_calls += import_calls;
        self.buffer_stalls += buffer_stalls;
        self.retransmits += retransmits;
        self.timeouts += timeouts;
        self.failovers += failovers;
        self.degraded_buffers += degraded_buffers;
        self.payload_allocs += payload_allocs;
        self.ctrl_batches += ctrl_batches;
        self.ctrl_relay += ctrl_relay;
        self.ctrl_coalesced += ctrl_coalesced;
        self.hb_suppressed += hb_suppressed;
        self.net_frames += net_frames;
        self.net_bytes += net_bytes;
        self.net_reconnects += net_reconnects;
        self.net_codec_rejects += net_codec_rejects;
        self.net_syscalls += net_syscalls;
        self.net_writev_frames += net_writev_frames;
        self.net_pool_hits += net_pool_hits;
        self.net_pool_misses += net_pool_misses;
        self.net_rx_frames += net_rx_frames;
        self.net_rx_bytes += net_rx_bytes;
        self.wal_appends += wal_appends;
        self.wal_bytes += wal_bytes;
        self.wal_replayed += wal_replayed;
        self.wal_truncated += wal_truncated;
        self.lock_wait_ns += lock_wait_ns;
        self.tasks_polled += tasks_polled;
        self.worker_steal += worker_steal;
        self.buffered_hwm = self.buffered_hwm.max(*buffered_hwm);
        self.queue_depth_hwm = self.queue_depth_hwm.max(*queue_depth_hwm);
        self.runq_depth_hwm = self.runq_depth_hwm.max(*runq_depth_hwm);
        // Every process builds the same tree, so the depth is a shared
        // property — max keeps it stable under per-process merging.
        self.tree_depth = self.tree_depth.max(*tree_depth);
        self.net_rx_buf_hwm = self.net_rx_buf_hwm.max(*net_rx_buf_hwm);
        for (mine, theirs) in self.occupancy.iter_mut().zip(occupancy) {
            *mine += theirs;
        }
        for (mine, theirs) in self.recovery_ms.iter_mut().zip(recovery_ms) {
            *mine += theirs;
        }
        for (mine, theirs) in self.poll_batch.iter_mut().zip(poll_batch) {
            *mine += theirs;
        }
    }

    /// Every scalar metric as `(name, value)`, in stable order — the
    /// regression gate and the JSON encoding both iterate this, so the two
    /// can never drift apart.
    pub fn fields(&self) -> Vec<(String, u64)> {
        let mut out = vec![
            ("memcpy_paid".to_string(), self.memcpy_paid),
            ("memcpy_skipped".to_string(), self.memcpy_skipped),
            ("bytes_buffered".to_string(), self.bytes_buffered),
            ("bytes_transferred".to_string(), self.bytes_transferred),
        ];
        for (i, class) in CtrlClass::ALL.iter().enumerate() {
            out.push((format!("ctrl_{}", class.as_str()), self.ctrl_sent[i]));
        }
        out.extend([
            ("transfers".to_string(), self.transfers),
            ("export_calls".to_string(), self.export_calls),
            ("import_calls".to_string(), self.import_calls),
            ("buffer_stalls".to_string(), self.buffer_stalls),
            ("retransmits".to_string(), self.retransmits),
            ("timeouts".to_string(), self.timeouts),
            ("failovers".to_string(), self.failovers),
            ("degraded_buffers".to_string(), self.degraded_buffers),
            ("payload_allocs".to_string(), self.payload_allocs),
            ("ctrl_batches".to_string(), self.ctrl_batches),
            ("ctrl_relay".to_string(), self.ctrl_relay),
            ("ctrl_coalesced".to_string(), self.ctrl_coalesced),
            ("hb_suppressed".to_string(), self.hb_suppressed),
            ("net_frames".to_string(), self.net_frames),
            ("net_bytes".to_string(), self.net_bytes),
            ("net_reconnects".to_string(), self.net_reconnects),
            ("net_codec_rejects".to_string(), self.net_codec_rejects),
            ("net_syscalls".to_string(), self.net_syscalls),
            ("net_writev_frames".to_string(), self.net_writev_frames),
            ("net_pool_hits".to_string(), self.net_pool_hits),
            ("net_pool_misses".to_string(), self.net_pool_misses),
            ("net_rx_frames".to_string(), self.net_rx_frames),
            ("net_rx_bytes".to_string(), self.net_rx_bytes),
            ("wal_appends".to_string(), self.wal_appends),
            ("wal_bytes".to_string(), self.wal_bytes),
            ("wal_replayed".to_string(), self.wal_replayed),
            ("wal_truncated".to_string(), self.wal_truncated),
            ("lock_wait_ns".to_string(), self.lock_wait_ns),
            ("tasks_polled".to_string(), self.tasks_polled),
            ("worker_steal".to_string(), self.worker_steal),
            ("buffered_hwm".to_string(), self.buffered_hwm),
            ("queue_depth_hwm".to_string(), self.queue_depth_hwm),
            ("runq_depth_hwm".to_string(), self.runq_depth_hwm),
            ("tree_depth".to_string(), self.tree_depth),
            ("net_rx_buf_hwm".to_string(), self.net_rx_buf_hwm),
        ]);
        out
    }

    /// Encodes the snapshot as a JSON object (scalars via [`Self::fields`],
    /// plus the occupancy bucket array).
    pub fn to_json(&self) -> json::Value {
        let mut obj: Vec<(String, json::Value)> = self
            .fields()
            .into_iter()
            .map(|(k, v)| (k, json::Value::from(v)))
            .collect();
        for (name, buckets) in [
            ("occupancy", &self.occupancy),
            ("recovery_ms", &self.recovery_ms),
            ("poll_batch", &self.poll_batch),
        ] {
            obj.push((
                name.to_string(),
                json::Value::Array(buckets.iter().map(|&c| json::Value::from(c)).collect()),
            ));
        }
        json::Value::Object(obj)
    }

    /// Decodes a snapshot from the JSON produced by [`Self::to_json`].
    pub fn from_json(v: &json::Value) -> Result<Self, String> {
        let field = |name: &str| -> Result<u64, String> {
            v.get(name)
                .and_then(json::Value::as_u64)
                .ok_or_else(|| format!("counter snapshot: missing/invalid field {name}"))
        };
        let mut ctrl_sent = [0u64; CtrlClass::ALL.len()];
        for (i, class) in CtrlClass::ALL.iter().enumerate() {
            ctrl_sent[i] = field(&format!("ctrl_{}", class.as_str()))?;
        }
        let histogram = |name: &str| -> Result<[u64; HISTOGRAM_BUCKETS], String> {
            let arr = v
                .get(name)
                .and_then(json::Value::as_array)
                .ok_or_else(|| format!("counter snapshot: missing {name} array"))?;
            if arr.len() != HISTOGRAM_BUCKETS {
                return Err(format!(
                    "counter snapshot: {name} has {} buckets, expected {HISTOGRAM_BUCKETS}",
                    arr.len()
                ));
            }
            let mut out = [0u64; HISTOGRAM_BUCKETS];
            for (i, b) in arr.iter().enumerate() {
                out[i] = b
                    .as_u64()
                    .ok_or_else(|| format!("counter snapshot: {name}[{i}] not a count"))?;
            }
            Ok(out)
        };
        let occupancy = histogram("occupancy")?;
        let recovery_ms = histogram("recovery_ms")?;
        let poll_batch = histogram("poll_batch")?;
        Ok(CounterSnapshot {
            memcpy_paid: field("memcpy_paid")?,
            memcpy_skipped: field("memcpy_skipped")?,
            bytes_buffered: field("bytes_buffered")?,
            bytes_transferred: field("bytes_transferred")?,
            ctrl_sent,
            transfers: field("transfers")?,
            export_calls: field("export_calls")?,
            import_calls: field("import_calls")?,
            buffer_stalls: field("buffer_stalls")?,
            retransmits: field("retransmits")?,
            timeouts: field("timeouts")?,
            failovers: field("failovers")?,
            degraded_buffers: field("degraded_buffers")?,
            payload_allocs: field("payload_allocs")?,
            ctrl_batches: field("ctrl_batches")?,
            ctrl_relay: field("ctrl_relay")?,
            ctrl_coalesced: field("ctrl_coalesced")?,
            hb_suppressed: field("hb_suppressed")?,
            net_frames: field("net_frames")?,
            net_bytes: field("net_bytes")?,
            net_reconnects: field("net_reconnects")?,
            net_codec_rejects: field("net_codec_rejects")?,
            net_syscalls: field("net_syscalls")?,
            net_writev_frames: field("net_writev_frames")?,
            net_pool_hits: field("net_pool_hits")?,
            net_pool_misses: field("net_pool_misses")?,
            net_rx_frames: field("net_rx_frames")?,
            net_rx_bytes: field("net_rx_bytes")?,
            wal_appends: field("wal_appends")?,
            wal_bytes: field("wal_bytes")?,
            wal_replayed: field("wal_replayed")?,
            wal_truncated: field("wal_truncated")?,
            lock_wait_ns: field("lock_wait_ns")?,
            tasks_polled: field("tasks_polled")?,
            worker_steal: field("worker_steal")?,
            buffered_hwm: field("buffered_hwm")?,
            queue_depth_hwm: field("queue_depth_hwm")?,
            runq_depth_hwm: field("runq_depth_hwm")?,
            tree_depth: field("tree_depth")?,
            net_rx_buf_hwm: field("net_rx_buf_hwm")?,
            occupancy,
            recovery_ms,
            poll_batch,
        })
    }
}

/// The timing half of a run's metrics: per-phase virtual seconds
/// (deterministic on the DES) and wall seconds (never deterministic).
#[derive(Debug, Clone, PartialEq)]
pub struct TimingSnapshot {
    /// Virtual seconds per phase (indexed like [`Phase::ALL`]).
    pub virtual_s: [f64; Phase::ALL.len()],
    /// Wall seconds per phase (indexed like [`Phase::ALL`]).
    pub wall_s: [f64; Phase::ALL.len()],
}

impl TimingSnapshot {
    /// Virtual seconds of one phase.
    pub fn virtual_seconds(&self, phase: Phase) -> f64 {
        self.virtual_s[Phase::ALL.iter().position(|&p| p == phase).expect("phase")]
    }

    /// Wall seconds of one phase.
    pub fn wall_seconds(&self, phase: Phase) -> f64 {
        self.wall_s[Phase::ALL.iter().position(|&p| p == phase).expect("phase")]
    }

    /// Encodes as `{"virtual": {phase: s}, "wall": {phase: s}}`.
    pub fn to_json(&self) -> json::Value {
        let encode = |vals: &[f64]| {
            json::Value::Object(
                Phase::ALL
                    .iter()
                    .zip(vals)
                    .map(|(p, &s)| (p.as_str().to_string(), json::Value::Number(s)))
                    .collect(),
            )
        };
        json::Value::Object(vec![
            ("virtual".to_string(), encode(&self.virtual_s)),
            ("wall".to_string(), encode(&self.wall_s)),
        ])
    }
}

/// A complete end-of-run metrics snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Deterministic event counts.
    pub counters: CounterSnapshot,
    /// Phase timings (virtual deterministic, wall not).
    pub timing: TimingSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.add(3);
        g.add(4);
        g.sub(5);
        assert_eq!(g.level(), 2);
        assert_eq!(g.high_water_mark(), 7);
        g.set(1);
        assert_eq!(g.level(), 1);
        assert_eq!(g.high_water_mark(), 7);
        g.sub(10);
        assert_eq!(g.level(), 0, "sub saturates");
    }

    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(5), 3);
        assert_eq!(Histogram::bucket_of(1 << 40), HISTOGRAM_BUCKETS - 1);
        let h = Histogram::new();
        h.observe(0);
        h.observe(1);
        h.observe(16);
        let counts = h.counts();
        assert_eq!(counts[0], 2);
        assert_eq!(counts[4], 1);
        assert_eq!(counts.iter().sum::<u64>(), 3);
    }

    #[test]
    fn phase_times_accumulate() {
        let m = EngineMetrics::new();
        m.phases.add_virtual(Phase::Export, 1.5);
        m.phases.add_virtual(Phase::Export, 0.25);
        m.phases.add_wall(Phase::Ctrl, 0.5);
        {
            let _span = m.phases.wall_span(Phase::Import);
        }
        let snap = m.snapshot();
        assert_eq!(snap.timing.virtual_seconds(Phase::Export), 1.75);
        assert_eq!(snap.timing.wall_seconds(Phase::Ctrl), 0.5);
        assert!(snap.timing.wall_seconds(Phase::Import) >= 0.0);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let m = EngineMetrics::new();
        m.memcpy_paid.add(7);
        m.memcpy_skipped.add(3);
        m.export_calls.add(10);
        m.bytes_buffered.add(1024);
        m.ctrl(CtrlClass::BuddyHelp).add(2);
        m.ctrl(CtrlClass::Ack).add(9);
        m.retransmits.add(3);
        m.timeouts.add(4);
        m.failovers.inc();
        m.degraded_buffers.add(2);
        m.recovery_ms.observe(120);
        m.tasks_polled.add(41);
        m.worker_steal.inc();
        m.buffered_objects.add(5);
        m.runq_depth.add(6);
        m.occupancy.observe(4);
        m.poll_batch.observe(3);
        let snap = m.snapshot().counters;
        let parsed = json::parse(&json::emit(&snap.to_json())).expect("valid JSON");
        assert_eq!(CounterSnapshot::from_json(&parsed).expect("decodes"), snap);
    }

    #[test]
    fn identical_runs_snapshot_identically() {
        let run = || {
            let m = EngineMetrics::new();
            for i in 0..100u64 {
                m.export_calls.inc();
                if i % 3 == 0 {
                    m.memcpy_skipped.inc();
                } else {
                    m.memcpy_paid.inc();
                    m.bytes_buffered.add(4096);
                }
                m.buffered_objects.add(1);
                m.occupancy.observe(m.buffered_objects.level());
                if i % 10 == 9 {
                    m.buffered_objects.sub(8);
                }
            }
            m.snapshot().counters
        };
        assert_eq!(run(), run());
    }
}
