//! A leapfrog finite-difference solver for the forced 2-D wave equation
//! `u_tt = u_xx + u_yy + f(t, x, y)` with homogeneous Dirichlet boundaries.
//!
//! Each process owns a full-width row block of the global grid (program `U`
//! distributes its 1024×1024 array that way) and keeps one halo row above
//! and below; [`Leapfrog::step`] advances the owned rows given the forcing
//! on them, and [`crate::halo`] moves boundary rows between neighbouring
//! ranks between steps.

use couplink_layout::{Extent2, LocalArray, Rect};

/// Explicit leapfrog integrator for one rank's row block.
///
/// Storage is `(rows + 2) × cols`: row 0 and row `rows + 1` are halo rows
/// (zero at the global boundary). The update is the standard second-order
/// scheme `u⁺ = 2u − u⁻ + λ²·∇²u + dt²·f` with `λ = dt/dx`, stable for
/// `λ ≤ 1/√2` on a 2-D grid.
#[derive(Debug, Clone)]
pub struct Leapfrog {
    grid: Extent2,
    owned: Rect,
    dx: f64,
    dt: f64,
    prev: Vec<f64>,
    curr: Vec<f64>,
    next: Vec<f64>,
    steps: u64,
}

impl Leapfrog {
    /// Creates a zero-initialized solver for a full-width row block.
    ///
    /// # Panics
    ///
    /// Panics if the block does not span the full grid width, if it is
    /// empty, or if the CFL condition `dt/dx ≤ 1/√2` is violated.
    pub fn new(grid: Extent2, owned: Rect, dx: f64, dt: f64) -> Self {
        assert!(
            owned.col0 == 0 && owned.cols == grid.cols,
            "row-block decomposition required (full-width rows)"
        );
        assert!(!owned.is_empty(), "empty row block");
        assert!(dx > 0.0 && dt > 0.0, "positive steps required");
        let lambda = dt / dx;
        assert!(
            lambda <= 1.0 / std::f64::consts::SQRT_2 + 1e-12,
            "CFL violated: dt/dx = {lambda} > 1/sqrt(2)"
        );
        let padded = (owned.rows + 2) * owned.cols;
        Leapfrog {
            grid,
            owned,
            dx,
            dt,
            prev: vec![0.0; padded],
            curr: vec![0.0; padded],
            next: vec![0.0; padded],
            steps: 0,
        }
    }

    /// The rank's owned rows.
    pub fn owned(&self) -> Rect {
        self.owned
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    #[inline]
    fn idx(&self, local_row: usize, col: usize) -> usize {
        local_row * self.owned.cols + col
    }

    /// Sets the current solution from a function of global `(row, col)`.
    pub fn set_initial(&mut self, mut u0: impl FnMut(usize, usize) -> f64) {
        for r in 0..self.owned.rows {
            for c in 0..self.owned.cols {
                let v = u0(self.owned.row0 + r, c);
                let i = self.idx(r + 1, c);
                self.curr[i] = v;
                self.prev[i] = v; // starts at rest (u_t = 0)
            }
        }
    }

    /// The current value at global `(row, col)` (must be owned).
    pub fn value(&self, row: usize, col: usize) -> f64 {
        assert!(self.owned.contains(row, col), "({row},{col}) not owned");
        self.curr[self.idx(row - self.owned.row0 + 1, col)]
    }

    /// Copies the topmost owned row (for sending to the rank above).
    pub fn top_row(&self) -> Vec<f64> {
        let i = self.idx(1, 0);
        self.curr[i..i + self.owned.cols].to_vec()
    }

    /// Copies the bottommost owned row (for sending to the rank below).
    pub fn bottom_row(&self) -> Vec<f64> {
        let i = self.idx(self.owned.rows, 0);
        self.curr[i..i + self.owned.cols].to_vec()
    }

    /// Installs the halo row above the block (from the neighbouring rank);
    /// without it the global boundary value 0 is used.
    pub fn set_halo_above(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.owned.cols, "halo width mismatch");
        let i = self.idx(0, 0);
        self.curr[i..i + self.owned.cols].copy_from_slice(row);
    }

    /// Installs the halo row below the block.
    pub fn set_halo_below(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.owned.cols, "halo width mismatch");
        let i = self.idx(self.owned.rows + 1, 0);
        self.curr[i..i + self.owned.cols].copy_from_slice(row);
    }

    /// Advances one time step given the forcing sampled on the owned rows.
    ///
    /// # Panics
    ///
    /// Panics if `f` does not cover exactly the owned rectangle.
    pub fn step(&mut self, f: &LocalArray) {
        assert_eq!(f.owned(), self.owned, "forcing must cover the owned block");
        let lambda2 = (self.dt / self.dx) * (self.dt / self.dx);
        let dt2 = self.dt * self.dt;
        let cols = self.owned.cols;
        for r in 0..self.owned.rows {
            let lr = r + 1;
            for c in 0..cols {
                let i = self.idx(lr, c);
                // Dirichlet zero on the global column boundary.
                let left = if c == 0 { 0.0 } else { self.curr[i - 1] };
                let right = if c + 1 == cols { 0.0 } else { self.curr[i + 1] };
                let up = self.curr[self.idx(lr - 1, c)];
                let down = self.curr[self.idx(lr + 1, c)];
                let lap = left + right + up + down - 4.0 * self.curr[i];
                self.next[i] = 2.0 * self.curr[i] - self.prev[i]
                    + lambda2 * lap
                    + dt2 * f.get(self.owned.row0 + r, c);
            }
        }
        std::mem::swap(&mut self.prev, &mut self.curr);
        std::mem::swap(&mut self.curr, &mut self.next);
        // Halo rows are stale after the swap; callers re-exchange each step.
        self.steps += 1;
    }

    /// Snapshot of the owned rows as a [`LocalArray`].
    pub fn snapshot(&self) -> LocalArray {
        LocalArray::from_fn(self.owned, |r, c| self.value(r, c))
    }

    /// Maximum absolute value over the owned rows.
    pub fn max_abs(&self) -> f64 {
        let mut m: f64 = 0.0;
        for r in 0..self.owned.rows {
            for c in 0..self.owned.cols {
                m = m.max(self.curr[self.idx(r + 1, c)].abs());
            }
        }
        m
    }

    /// The global grid shape.
    pub fn grid(&self) -> Extent2 {
        self.grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zero_forcing(owned: Rect) -> LocalArray {
        LocalArray::zeros(owned)
    }

    #[test]
    fn zero_everything_stays_zero() {
        let grid = Extent2::new(16, 16);
        let mut s = Leapfrog::new(grid, grid.full_rect(), 1.0, 0.5);
        let f = zero_forcing(grid.full_rect());
        for _ in 0..50 {
            s.step(&f);
        }
        assert_eq!(s.max_abs(), 0.0);
    }

    #[test]
    #[should_panic(expected = "CFL violated")]
    fn cfl_checked() {
        let grid = Extent2::new(8, 8);
        Leapfrog::new(grid, grid.full_rect(), 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "row-block decomposition required")]
    fn partial_width_rejected() {
        let grid = Extent2::new(8, 8);
        Leapfrog::new(grid, Rect::new(0, 0, 8, 4), 1.0, 0.5);
    }

    /// The standing wave `u = sin(πx/L) sin(πy/L) cos(ωt)` with
    /// `ω = √2·π/L` solves the unforced wave equation with Dirichlet
    /// boundaries; the leapfrog solution must track it to second order.
    #[test]
    fn standing_wave_accuracy() {
        let n = 33; // grid points, spacing dx = 1/(n+1) inside the unit square
        let grid = Extent2::new(n, n);
        let dx = 1.0 / (n as f64 + 1.0);
        let dt = dx / 2.0;
        let mut s = Leapfrog::new(grid, grid.full_rect(), dx, dt);
        let pi = std::f64::consts::PI;
        // Interior point (row, col) sits at x = (col+1)dx, y = (row+1)dx.
        s.set_initial(|r, c| {
            (pi * (c as f64 + 1.0) * dx).sin() * (pi * (r as f64 + 1.0) * dx).sin()
        });
        let f = zero_forcing(grid.full_rect());
        let steps = 40;
        for _ in 0..steps {
            s.step(&f);
        }
        let omega = std::f64::consts::SQRT_2 * pi;
        let t = steps as f64 * dt;
        let mut max_err: f64 = 0.0;
        for r in 0..n {
            for c in 0..n {
                let exact = (pi * (c as f64 + 1.0) * dx).sin()
                    * (pi * (r as f64 + 1.0) * dx).sin()
                    * (omega * t).cos();
                max_err = max_err.max((s.value(r, c) - exact).abs());
            }
        }
        assert!(max_err < 0.02, "max error {max_err}");
    }

    /// Forcing drives the solution away from zero.
    #[test]
    fn forcing_injects_energy() {
        let grid = Extent2::new(16, 16);
        let mut s = Leapfrog::new(grid, grid.full_rect(), 1.0, 0.5);
        let f = LocalArray::from_fn(
            grid.full_rect(),
            |r, c| {
                if r == 8 && c == 8 {
                    1.0
                } else {
                    0.0
                }
            },
        );
        for _ in 0..10 {
            s.step(&f);
        }
        assert!(s.max_abs() > 0.0);
        // The disturbance propagates at finite speed: corners still quiet.
        assert_eq!(s.value(0, 0), 0.0);
    }

    /// A two-rank split with proper halo exchange reproduces the single-rank
    /// solution exactly.
    #[test]
    fn split_solver_matches_monolithic() {
        let grid = Extent2::new(16, 12);
        let dx = 1.0;
        let dt = 0.5;
        let f_fn = |r: usize, c: usize| ((r * 13 + c * 7) % 5) as f64 * 0.1;

        let mut whole = Leapfrog::new(grid, grid.full_rect(), dx, dt);
        whole.set_initial(|r, c| ((r + c) % 3) as f64);
        let f_whole = LocalArray::from_fn(grid.full_rect(), f_fn);

        let top_rect = Rect::new(0, 0, 8, 12);
        let bot_rect = Rect::new(8, 0, 8, 12);
        let mut top = Leapfrog::new(grid, top_rect, dx, dt);
        let mut bot = Leapfrog::new(grid, bot_rect, dx, dt);
        top.set_initial(|r, c| ((r + c) % 3) as f64);
        bot.set_initial(|r, c| ((r + c) % 3) as f64);
        let f_top = LocalArray::from_fn(top_rect, f_fn);
        let f_bot = LocalArray::from_fn(bot_rect, f_fn);

        for _ in 0..20 {
            // Exchange halos, then step both halves.
            let t_edge = top.bottom_row();
            let b_edge = bot.top_row();
            top.set_halo_below(&b_edge);
            bot.set_halo_above(&t_edge);
            top.step(&f_top);
            bot.step(&f_bot);
            whole.step(&f_whole);
        }
        for r in 0..16 {
            for c in 0..12 {
                let split = if r < 8 {
                    top.value(r, c)
                } else {
                    bot.value(r, c)
                };
                assert_eq!(split, whole.value(r, c), "({r},{c})");
            }
        }
    }
}
