//! Intra-program halo exchange for row-block ranks.
//!
//! The paper's program `U` is an MPI program: neighbouring ranks swap
//! boundary rows every step. In this reproduction each rank is a thread, so
//! the exchange rides on crossbeam channels wired once at startup by
//! [`ring`].

use crossbeam::channel::{unbounded, Receiver, Sender};

/// One rank's links to its row-block neighbours.
pub struct HaloLink {
    up_send: Option<Sender<Vec<f64>>>,
    up_recv: Option<Receiver<Vec<f64>>>,
    down_send: Option<Sender<Vec<f64>>>,
    down_recv: Option<Receiver<Vec<f64>>>,
}

impl HaloLink {
    /// Whether this rank has a neighbour above.
    pub fn has_up(&self) -> bool {
        self.up_send.is_some()
    }

    /// Whether this rank has a neighbour below.
    pub fn has_down(&self) -> bool {
        self.down_send.is_some()
    }

    /// Swaps boundary rows with both neighbours: sends `top` up and
    /// `bottom` down, returns `(row_from_above, row_from_below)`.
    ///
    /// Sends happen before receives, so a full ring of ranks calling
    /// `exchange` concurrently cannot deadlock.
    pub fn exchange(
        &self,
        top: Vec<f64>,
        bottom: Vec<f64>,
    ) -> (Option<Vec<f64>>, Option<Vec<f64>>) {
        if let Some(s) = &self.up_send {
            s.send(top).expect("neighbour above hung up");
        }
        if let Some(s) = &self.down_send {
            s.send(bottom).expect("neighbour below hung up");
        }
        let above = self
            .up_recv
            .as_ref()
            .map(|r| r.recv().expect("neighbour above hung up"));
        let below = self
            .down_recv
            .as_ref()
            .map(|r| r.recv().expect("neighbour below hung up"));
        (above, below)
    }
}

/// Wires `n` ranks into a row-block chain and returns each rank's link
/// (index = rank, rank 0 on top).
pub fn ring(n: usize) -> Vec<HaloLink> {
    let mut links: Vec<HaloLink> = (0..n)
        .map(|_| HaloLink {
            up_send: None,
            up_recv: None,
            down_send: None,
            down_recv: None,
        })
        .collect();
    for upper in 0..n.saturating_sub(1) {
        let lower = upper + 1;
        let (s_down, r_down) = unbounded(); // upper -> lower
        let (s_up, r_up) = unbounded(); // lower -> upper
        links[upper].down_send = Some(s_down);
        links[upper].down_recv = Some(r_up);
        links[lower].up_send = Some(s_up);
        links[lower].up_recv = Some(r_down);
    }
    links
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_has_no_neighbours() {
        let links = ring(1);
        assert!(!links[0].has_up());
        assert!(!links[0].has_down());
        let (a, b) = links[0].exchange(vec![1.0], vec![2.0]);
        assert_eq!(a, None);
        assert_eq!(b, None);
    }

    #[test]
    fn three_rank_chain_exchanges_rows() {
        let mut links = ring(3);
        let l2 = links.pop().unwrap();
        let l1 = links.pop().unwrap();
        let l0 = links.pop().unwrap();
        let t0 = std::thread::spawn(move || l0.exchange(vec![0.1], vec![0.9]));
        let t1 = std::thread::spawn(move || l1.exchange(vec![1.1], vec![1.9]));
        let t2 = std::thread::spawn(move || l2.exchange(vec![2.1], vec![2.9]));
        let (a0, b0) = t0.join().unwrap();
        let (a1, b1) = t1.join().unwrap();
        let (a2, b2) = t2.join().unwrap();
        // Rank 0: nothing above, rank 1's top below.
        assert_eq!(a0, None);
        assert_eq!(b0, Some(vec![1.1]));
        // Rank 1: rank 0's bottom above, rank 2's top below.
        assert_eq!(a1, Some(vec![0.9]));
        assert_eq!(b1, Some(vec![2.1]));
        // Rank 2: rank 1's bottom above, nothing below.
        assert_eq!(a2, Some(vec![1.9]));
        assert_eq!(b2, None);
    }

    #[test]
    fn repeated_exchanges_stay_ordered() {
        let mut links = ring(2);
        let l1 = links.pop().unwrap();
        let l0 = links.pop().unwrap();
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                let (_, below) = l0.exchange(vec![], vec![i as f64]);
                assert_eq!(below, Some(vec![i as f64 * 2.0]));
            }
        });
        for i in 0..100 {
            let (above, _) = l1.exchange(vec![i as f64 * 2.0], vec![]);
            assert_eq!(above, Some(vec![i as f64]));
        }
        t.join().unwrap();
    }
}
