//! The four Figure-4 configurations, calibrated for the discrete-event
//! runtime.
//!
//! The paper's setup: program `F` (the exporter) has four processes, each
//! computing a 512×512 quadrant of the forcing array; `p_s` (rank 3) does
//! extra work and is the slowest process of `F`. Program `U` (the importer)
//! distributes the same 1024×1024 array over 4, 8, 16 or 32 processes;
//! because the array size is fixed, more importer processes mean less
//! computation per process and a faster importer. `F` exports every time
//! unit (timestamps 1.6, 2.6, …, 1001 exports), `U` imports every 20 time
//! units with policy `REGL` and tolerance 2.5, so one export in twenty is
//! transferred.
//!
//! # Calibration
//!
//! The DES charges each buffering memcpy 2 MiB / 1.5 GB/s ≈ 1.40 ms (the
//! per-process piece of `F`). Compute costs are chosen so that the paper's
//! regimes are reproduced:
//!
//! * `U` at 4 or 8 processes is slower than the full-buffering exporter
//!   window of 20·(c_ps + memcpy) ≈ 68 ms → requests always arrive after
//!   the fact and every export is buffered (flat Figure 4(a)/(b)).
//! * `U` at 16 processes is *marginally* faster than that window → each
//!   cycle the request arrives slightly earlier, skips accumulate, and the
//!   run converges to the optimal state after a few hundred iterations
//!   (Figure 4(c)).
//! * `U` at 32 processes is twice as fast again → the optimal state is
//!   reached within tens of iterations (Figure 4(d)).

use couplink_layout::{Decomposition, Extent2};
use couplink_runtime::{CostModel, CoupledConfig};
use couplink_time::MatchPolicy;

/// The benchmark's global array: 1024×1024 `f64`s.
pub const GRID: Extent2 = Extent2::new(1024, 1024);

/// Compute seconds per iteration for the three fast `F` processes.
pub const F_FAST_COMPUTE: f64 = 1.0e-3;
/// Compute seconds per iteration for the slow process `p_s` (extra load).
pub const F_SLOW_COMPUTE: f64 = 2.0e-3;
/// Total importer compute per iteration across the program; one process
/// computes `U_TOTAL_COMPUTE / n` (fixed-size array, strong scaling).
pub const U_TOTAL_COMPUTE: f64 = 0.976;
/// Total importer one-time startup cost across the program (framework and
/// data-structure initialization); one process pays `U_INIT_TOTAL / n`.
/// This is the exporter head start the request stream must erode before
/// buddy-help starts saving memcpys — the knob behind the paper's ~400- vs
/// ~25-iteration optimal-state entry points.
pub const U_INIT_TOTAL: f64 = 1.2;
/// Number of exports per run (the paper's 1001).
pub const EXPORTS: usize = 1001;
/// Number of imports per run: one per 20 exports.
pub const IMPORTS: usize = 50;

/// Parameters of one Figure-4 panel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig4Params {
    /// Importer process count: 4, 8, 16 or 32 in the paper.
    pub u_procs: usize,
    /// Whether buddy-help is enabled.
    pub buddy_help: bool,
    /// Export iterations (defaults to [`EXPORTS`]).
    pub exports: usize,
}

impl Fig4Params {
    /// The paper's panel for `u_procs` importer processes, buddy-help on.
    pub fn panel(u_procs: usize) -> Self {
        Fig4Params {
            u_procs,
            buddy_help: true,
            exports: EXPORTS,
        }
    }

    /// Same panel with buddy-help disabled (the ablation baseline).
    pub fn without_buddy_help(mut self) -> Self {
        self.buddy_help = false;
        self
    }
}

/// Builds the calibrated coupled-pair configuration for one panel.
pub fn fig4_config(params: Fig4Params) -> CoupledConfig {
    let exporter_decomp =
        Decomposition::block_2d(GRID, 2, 2).expect("1024x1024 over 2x2 quadrants");
    let importer_decomp =
        Decomposition::row_block(GRID, params.u_procs).expect("row blocks over importer");
    // Rank 3 is p_s, the artificially loaded slowest process of F.
    let exporter_compute = vec![
        F_FAST_COMPUTE,
        F_FAST_COMPUTE,
        F_FAST_COMPUTE,
        F_SLOW_COMPUTE,
    ];
    let imports = params.exports.div_ceil(20).clamp(1, IMPORTS);
    CoupledConfig {
        exporter_decomp,
        importer_decomp,
        policy: MatchPolicy::RegL,
        tolerance: 2.5,
        buddy_help: params.buddy_help,
        exports: params.exports,
        export_t0: 1.6,
        export_dt: 1.0,
        imports,
        import_t0: 20.0,
        import_dt: 20.0,
        exporter_compute,
        importer_compute: U_TOTAL_COMPUTE / params.u_procs as f64,
        importer_startup: U_INIT_TOTAL / params.u_procs as f64,
        cost: CostModel::default(),
        buffer_capacity: None,
    }
}

/// The rank index of `p_s` in program `F`.
pub const SLOW_RANK: usize = 3;

#[cfg(test)]
mod tests {
    use super::*;
    use couplink_runtime::{ActionKind, CoupledSim};

    fn run(params: Fig4Params) -> couplink_runtime::CoupledReport {
        CoupledSim::new(fig4_config(params)).unwrap().run().unwrap()
    }

    #[test]
    fn panel_a_4_importers_buffers_everything() {
        // Importer slower than exporter: flat profile, essentially every
        // export of p_s is copied.
        let report = run(Fig4Params {
            exports: 401,
            ..Fig4Params::panel(4)
        });
        let copies = report.action_series[SLOW_RANK]
            .iter()
            .filter(|a| **a != ActionKind::Skip)
            .count();
        assert!(
            copies as f64 > 0.97 * 401.0,
            "expected a flat all-copy profile, got {copies}/401 copies"
        );
    }

    #[test]
    fn panel_c_16_importers_reaches_optimal_state_gradually() {
        let report = run(Fig4Params::panel(16));
        let entry = report
            .optimal_entry(SLOW_RANK)
            .expect("16-importer run must settle into the optimal state");
        assert!(
            (100..900).contains(&entry),
            "gradual convergence expected (paper: ~400), got {entry}"
        );
    }

    #[test]
    fn panel_d_32_importers_reaches_optimal_state_fast() {
        let report = run(Fig4Params::panel(32));
        let entry32 = report
            .optimal_entry(SLOW_RANK)
            .expect("32-importer run must settle into the optimal state");
        assert!(entry32 < 100, "paper: ~25 iterations, got {entry32}");
        let report16 = run(Fig4Params::panel(16));
        let entry16 = report16.optimal_entry(SLOW_RANK).unwrap();
        assert!(
            entry32 < entry16 / 4,
            "32 importers must settle much faster than 16 ({entry32} vs {entry16})"
        );
    }

    #[test]
    fn buddy_help_ablation_at_16_importers() {
        let with = run(Fig4Params::panel(16));
        let without = run(Fig4Params::panel(16).without_buddy_help());
        // Buddy-help reduces unnecessary in-region buffering on p_s ...
        let ub_with = with.stats[SLOW_RANK].t_ub_in_region_count();
        let ub_without = without.stats[SLOW_RANK].t_ub_in_region_count();
        assert!(
            ub_with * 2 < ub_without.max(1),
            "buddy-help should remove unnecessary buffering: {ub_with} vs {ub_without}"
        );
        // ... and eliminates it entirely once the optimal state is reached,
        // which never happens without it (T_i > 0 for every late region).
        assert!(with.stats[SLOW_RANK].optimal_over_last(20));
        assert!(!without.stats[SLOW_RANK].optimal_over_last(20));
        assert!(without.optimal_entry(SLOW_RANK).is_none());
        // And the transferred data is the same either way.
        assert_eq!(with.stats[SLOW_RANK].sends, without.stats[SLOW_RANK].sends);
    }

    #[test]
    fn one_in_twenty_exports_is_transferred() {
        let report = run(Fig4Params::panel(16));
        for rank in 0..4 {
            assert_eq!(report.stats[rank].exports, EXPORTS as u64);
            assert_eq!(report.stats[rank].sends, IMPORTS as u64);
        }
        assert_eq!(report.importer_done, vec![IMPORTS; 16]);
    }
}
