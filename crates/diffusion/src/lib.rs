//! The paper's §5 micro-benchmark application, built on couplink.
//!
//! Two programs:
//!
//! * **Program `U`** solves the forced 2-D wave equation
//!   `u_tt = u_xx + u_yy + f(t, x, y)` on a 1024×1024 grid distributed as
//!   row blocks over 4, 8, 16 or 32 processes ([`solver::Leapfrog`], with
//!   [`halo::ring`] providing the intra-program halo exchange that MPI
//!   provides in the paper's setup).
//! * **Program `F`** computes the forcing function `f(t, x, y)` on four
//!   512×512 quadrants ([`forcing`]), exporting every time step. One of its
//!   processes, `p_s`, carries extra computational load and is the slowest
//!   process of the whole coupled system in the interesting configurations.
//!
//! The two are coupled on the full 1024×1024 array with match policy `REGL`
//! and tolerance (precision) 2.5; `F` exports at `t = 1.6, 2.6, …` and `U`
//! imports at `t = 20, 40, …`, so exactly one in twenty exported objects is
//! transferred — the paper's multi-resolution coupling.
//!
//! [`fig4`] packages the four configurations with calibrated compute costs
//! for the discrete-event runtime so that the paper's Figure 4 shapes
//! (flat at 4/8 importer processes, optimal state after ~hundreds of
//! iterations at 16, after ~tens at 32) are reproduced deterministically.

#![warn(missing_docs)]

pub mod fig4;
pub mod forcing;
pub mod halo;
pub mod solver;

pub use fig4::{fig4_config, Fig4Params, GRID};
pub use forcing::{fill_forcing, forcing_at};
pub use halo::{ring, HaloLink};
pub use solver::Leapfrog;
