//! The forcing function program `F` computes: an analytic, time-dependent
//! source `f(t, x, y)` — a Gaussian pulse orbiting the domain centre. Being
//! analytic, every process of `F` can evaluate its own quadrant without
//! intra-program communication, matching the paper's setup where `p_s`
//! exchanges no data with its peers.

use couplink_layout::{Extent2, LocalArray, Rect};

/// Evaluates the forcing at simulation time `t` and unit-square coordinates
/// `(x, y)`: a Gaussian source of width 0.1 orbiting the centre at radius
/// 0.25 with period 40 time units, plus a weak standing component.
pub fn forcing_at(t: f64, x: f64, y: f64) -> f64 {
    let omega = 2.0 * std::f64::consts::PI / 40.0;
    let cx = 0.5 + 0.25 * (omega * t).cos();
    let cy = 0.5 + 0.25 * (omega * t).sin();
    let d2 = (x - cx) * (x - cx) + (y - cy) * (y - cy);
    let pulse = (-d2 / (2.0 * 0.1 * 0.1)).exp();
    let standing = 0.05 * (std::f64::consts::PI * x).sin() * (std::f64::consts::PI * y).sin();
    pulse + standing
}

/// Fills one process's piece of the forcing array at time `t`, mapping
/// global indices onto the unit square.
pub fn fill_forcing(grid: Extent2, owned: Rect, t: f64) -> LocalArray {
    let inv_r = 1.0 / grid.rows as f64;
    let inv_c = 1.0 / grid.cols as f64;
    LocalArray::from_fn(owned, |row, col| {
        let y = (row as f64 + 0.5) * inv_r;
        let x = (col as f64 + 0.5) * inv_c;
        forcing_at(t, x, y)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pulse_peaks_near_its_centre() {
        // At t = 0 the pulse sits at (0.75, 0.5).
        let at_centre = forcing_at(0.0, 0.75, 0.5);
        let far = forcing_at(0.0, 0.1, 0.1);
        assert!(at_centre > 0.9, "{at_centre}");
        assert!(far < at_centre / 2.0);
    }

    #[test]
    fn pulse_orbits_with_period_40() {
        for (x, y) in [(0.3, 0.4), (0.75, 0.5), (0.5, 0.25)] {
            let a = forcing_at(3.0, x, y);
            let b = forcing_at(43.0, x, y);
            assert!((a - b).abs() < 1e-9, "not periodic at ({x},{y})");
        }
    }

    #[test]
    fn quadrant_pieces_tile_the_full_array() {
        let grid = Extent2::new(16, 16);
        let t = 7.5;
        let full = fill_forcing(grid, grid.full_rect(), t);
        for (r0, c0) in [(0, 0), (0, 8), (8, 0), (8, 8)] {
            let quad = fill_forcing(grid, Rect::new(r0, c0, 8, 8), t);
            for r in r0..r0 + 8 {
                for c in c0..c0 + 8 {
                    assert_eq!(quad.get(r, c), full.get(r, c));
                }
            }
        }
    }

    #[test]
    fn forcing_values_are_finite_and_bounded() {
        let grid = Extent2::new(32, 32);
        for step in 0..50 {
            let t = step as f64 * 1.7;
            let f = fill_forcing(grid, grid.full_rect(), t);
            for v in f.as_slice() {
                assert!(v.is_finite());
                assert!(v.abs() <= 1.1);
            }
        }
    }
}
