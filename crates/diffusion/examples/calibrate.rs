use couplink_diffusion::fig4::{fig4_config, Fig4Params, SLOW_RANK};
use couplink_runtime::{ActionKind, CoupledSim};

fn main() {
    for n in [4, 8, 16, 32] {
        let report = CoupledSim::new(fig4_config(Fig4Params::panel(n)))
            .unwrap()
            .run()
            .unwrap();
        let acts = &report.action_series[SLOW_RANK];
        let copies = acts.iter().filter(|a| **a == ActionKind::Copy).count();
        let skips = acts.iter().filter(|a| **a == ActionKind::Skip).count();
        let sends = acts.iter().filter(|a| **a == ActionKind::CopySend).count();
        let first_skip = acts.iter().position(|a| *a == ActionKind::Skip);
        println!(
            "U={n:2}: copies={copies} skips={skips} sends={sends} optimal={:?} first_skip={:?} dur={:.1}s imp_done={}",
            report.optimal_entry(SLOW_RANK), first_skip, report.duration, report.importer_done[0]
        );
        let per_window: Vec<usize> = acts
            .chunks(20)
            .take(25)
            .map(|w| w.iter().filter(|a| **a == ActionKind::Skip).count())
            .collect();
        println!("     skips/window: {per_window:?}");
        let arrivals = &report.request_arrival_iter[SLOW_RANK];
        let phase: Vec<i64> = arrivals
            .iter()
            .enumerate()
            .map(|(j, it)| *it as i64 - 20 * j as i64)
            .collect();
        println!(
            "     request phase (arrival_iter - 20j): {:?}",
            &phase[..phase.len().min(50)]
        );
    }
}
