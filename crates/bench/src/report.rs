//! Machine-readable benchmark reports and the regression gate behind
//! `cargo run -p couplink-bench --bin report`, plus the output-directory
//! helpers shared by every figure binary (one place for the `[out_dir]`
//! argument convention instead of a copy per `src/bin/*.rs`).
//!
//! A [`BenchReport`] is a schema-versioned collection of scenario
//! measurements. Each [`ScenarioMeasure`] separates its values by how they
//! may be compared across runs:
//!
//! * `counters` — deterministic event counts (engine [`CounterSnapshot`]
//!   fields, or figure-harness tallies). Gated **exactly**: any difference
//!   from the committed baseline fails.
//! * `virtual_s` — DES virtual seconds per phase. Deterministic for a fixed
//!   cost model, but allowed a small relative drift
//!   ([`GateConfig::virtual_tolerance`]) so the baseline survives benign
//!   cost-model recalibration; a real slowdown (more memcpys, more control
//!   traffic) still trips the counters first.
//! * `wall_s` — wall-clock seconds. Machine-dependent, **never gated**,
//!   recorded for eyeballing only.

use couplink::series::{write_csv, Column};
use couplink_metrics::json::{self, Value};
use couplink_metrics::{MetricsSnapshot, Phase, HISTOGRAM_BUCKETS};
use std::path::{Path, PathBuf};

/// Schema identifier stamped into every report; bump on layout changes so
/// the gate refuses to diff incompatible files.
pub const SCHEMA: &str = "couplink-bench/v1";

/// Default relative tolerance for gated virtual-time fields.
pub const VIRTUAL_TOLERANCE: f64 = 0.05;

// ---------------------------------------------------------------------------
// Output-directory helpers shared by the figure binaries.
// ---------------------------------------------------------------------------

/// Resolves the conventional `[out_dir]` first CLI argument (default
/// `results`) and creates the directory.
pub fn out_dir_from_args() -> PathBuf {
    out_dir(std::env::args().nth(1).unwrap_or_else(|| "results".into()))
}

/// Creates `dir` (and parents) and returns it as a path.
pub fn out_dir(dir: impl Into<PathBuf>) -> PathBuf {
    let dir = dir.into();
    std::fs::create_dir_all(&dir).expect("create output directory");
    dir
}

/// Writes one CSV series file into `dir` and returns its path.
pub fn write_series(dir: &Path, file: &str, index_name: &str, columns: &[Column]) -> PathBuf {
    let path = dir.join(file);
    write_csv(&path, index_name, columns).expect("write CSV");
    path
}

/// Writes a text artifact (a rendered trace, a table) into `dir` and
/// returns its path.
pub fn write_text(dir: &Path, file: &str, text: &str) -> PathBuf {
    let path = dir.join(file);
    std::fs::write(&path, text).expect("write text artifact");
    path
}

// ---------------------------------------------------------------------------
// Report schema.
// ---------------------------------------------------------------------------

/// One benchmark scenario's measurements, split by comparison semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioMeasure {
    /// Scenario name, unique within a report.
    pub name: String,
    /// Deterministic counts, gated exactly.
    pub counters: Vec<(String, u64)>,
    /// Virtual seconds, gated within a relative tolerance.
    pub virtual_s: Vec<(String, f64)>,
    /// Wall seconds, informational only.
    pub wall_s: Vec<(String, f64)>,
}

impl ScenarioMeasure {
    /// An empty scenario to be filled field by field (figure harnesses).
    pub fn named(name: impl Into<String>) -> Self {
        ScenarioMeasure {
            name: name.into(),
            counters: Vec::new(),
            virtual_s: Vec::new(),
            wall_s: Vec::new(),
        }
    }

    /// Builds a scenario from an engine metrics snapshot: every counter
    /// field, the occupancy and time-to-recovery histograms, and per-phase
    /// virtual/wall times.
    pub fn from_metrics(name: impl Into<String>, snap: &MetricsSnapshot) -> Self {
        let mut counters = snap.counters.fields();
        for (i, &count) in snap.counters.occupancy.iter().enumerate() {
            counters.push((format!("occupancy_b{i:02}"), count));
        }
        for (i, &count) in snap.counters.recovery_ms.iter().enumerate() {
            counters.push((format!("recovery_ms_b{i:02}"), count));
        }
        for (i, &count) in snap.counters.poll_batch.iter().enumerate() {
            counters.push((format!("poll_batch_b{i:02}"), count));
        }
        debug_assert_eq!(
            counters.len(),
            snap.counters.fields().len() + 3 * HISTOGRAM_BUCKETS
        );
        let virtual_s = Phase::ALL
            .iter()
            .map(|&p| (p.as_str().to_string(), snap.timing.virtual_seconds(p)))
            .collect();
        let wall_s = Phase::ALL
            .iter()
            .map(|&p| (p.as_str().to_string(), snap.timing.wall_seconds(p)))
            .collect();
        ScenarioMeasure {
            name: name.into(),
            counters,
            virtual_s,
            wall_s,
        }
    }

    /// Looks up one gated counter (tests and summaries).
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
    }

    fn to_json(&self) -> Value {
        let nums_u = |kv: &[(String, u64)]| {
            Value::Object(
                kv.iter()
                    .map(|(k, v)| (k.clone(), Value::from(*v)))
                    .collect(),
            )
        };
        let nums_f = |kv: &[(String, f64)]| {
            Value::Object(
                kv.iter()
                    .map(|(k, v)| (k.clone(), Value::Number(*v)))
                    .collect(),
            )
        };
        Value::Object(vec![
            ("name".to_string(), Value::from(self.name.as_str())),
            ("counters".to_string(), nums_u(&self.counters)),
            ("virtual_s".to_string(), nums_f(&self.virtual_s)),
            ("wall_s".to_string(), nums_f(&self.wall_s)),
        ])
    }

    fn from_json(v: &Value) -> Result<Self, String> {
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or("scenario: missing name")?
            .to_string();
        let section = |key: &str| -> Result<&[(String, Value)], String> {
            v.get(key)
                .and_then(Value::as_object)
                .ok_or_else(|| format!("scenario {name}: missing object {key}"))
        };
        let mut counters = Vec::new();
        for (k, val) in section("counters")? {
            let n = val
                .as_u64()
                .ok_or_else(|| format!("scenario {name}: counter {k} is not a u64"))?;
            counters.push((k.clone(), n));
        }
        let floats = |kv: &[(String, Value)], what: &str| -> Result<Vec<(String, f64)>, String> {
            kv.iter()
                .map(|(k, val)| {
                    val.as_f64()
                        .map(|f| (k.clone(), f))
                        .ok_or_else(|| format!("scenario {name}: {what} {k} is not a number"))
                })
                .collect()
        };
        let virtual_s = floats(section("virtual_s")?, "virtual_s")?;
        let wall_s = floats(section("wall_s")?, "wall_s")?;
        Ok(ScenarioMeasure {
            name,
            counters,
            virtual_s,
            wall_s,
        })
    }
}

/// A schema-versioned benchmark report (`BENCH_couplink.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Problem-size mode: `"smoke"` or `"full"`.
    pub mode: String,
    /// Scenario measurements, in a stable order.
    pub scenarios: Vec<ScenarioMeasure>,
}

impl BenchReport {
    /// Encodes the report (schema stamp included) as a JSON value.
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            ("schema".to_string(), Value::from(SCHEMA)),
            ("mode".to_string(), Value::from(self.mode.as_str())),
            (
                "scenarios".to_string(),
                Value::Array(
                    self.scenarios
                        .iter()
                        .map(ScenarioMeasure::to_json)
                        .collect(),
                ),
            ),
        ])
    }

    /// Decodes and validates a report; rejects unknown schema versions.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        match v.get("schema").and_then(Value::as_str) {
            Some(s) if s == SCHEMA => {}
            Some(s) => return Err(format!("unsupported schema {s:?} (want {SCHEMA:?})")),
            None => return Err("missing schema field".to_string()),
        }
        let mode = v
            .get("mode")
            .and_then(Value::as_str)
            .ok_or("missing mode field")?
            .to_string();
        let scenarios = v
            .get("scenarios")
            .and_then(Value::as_array)
            .ok_or("missing scenarios array")?
            .iter()
            .map(ScenarioMeasure::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let mut names: Vec<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != scenarios.len() {
            return Err("duplicate scenario names".to_string());
        }
        Ok(BenchReport { mode, scenarios })
    }

    /// Serializes to the canonical pretty-printed JSON text.
    pub fn to_text(&self) -> String {
        json::emit(&self.to_json())
    }

    /// Parses and validates report text (strict JSON, schema checked).
    pub fn from_text(text: &str) -> Result<Self, String> {
        BenchReport::from_json(&json::parse(text)?)
    }

    /// Loads a report file.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        BenchReport::from_text(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// The named scenario, if present.
    pub fn scenario(&self, name: &str) -> Option<&ScenarioMeasure> {
        self.scenarios.iter().find(|s| s.name == name)
    }
}

// ---------------------------------------------------------------------------
// Regression gate.
// ---------------------------------------------------------------------------

/// Gate thresholds.
#[derive(Debug, Clone, Copy)]
pub struct GateConfig {
    /// Maximum allowed relative drift of a gated virtual-time field.
    pub virtual_tolerance: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            virtual_tolerance: VIRTUAL_TOLERANCE,
        }
    }
}

/// Compares `current` against the committed `baseline` and returns every
/// gate violation (empty = pass). Counters must match exactly; virtual
/// times within the relative tolerance; wall times are never compared.
pub fn compare(baseline: &BenchReport, current: &BenchReport, gate: GateConfig) -> Vec<String> {
    let mut violations = Vec::new();
    if baseline.mode != current.mode {
        violations.push(format!(
            "mode mismatch: baseline {:?} vs current {:?}",
            baseline.mode, current.mode
        ));
        return violations;
    }
    for base in &baseline.scenarios {
        let Some(cur) = current.scenario(&base.name) else {
            violations.push(format!(
                "scenario {} missing from current report",
                base.name
            ));
            continue;
        };
        for (key, want) in &base.counters {
            match cur.counter(key) {
                None => violations.push(format!("{}: counter {key} missing", base.name)),
                Some(got) if got != *want => violations.push(format!(
                    "{}: counter {key} changed: baseline {want}, current {got}",
                    base.name
                )),
                Some(_) => {}
            }
        }
        for (key, want) in &base.virtual_s {
            let Some(&(_, got)) = cur.virtual_s.iter().find(|(k, _)| k == key) else {
                violations.push(format!("{}: virtual_s {key} missing", base.name));
                continue;
            };
            // Absolute floor so zero-cost phases don't divide by zero.
            let scale = want.abs().max(1e-9);
            let drift = (got - want).abs() / scale;
            if drift > gate.virtual_tolerance {
                violations.push(format!(
                    "{}: virtual_s {key} drifted {:.1}% (baseline {want:.6e}, current {got:.6e}, \
                     limit {:.1}%)",
                    base.name,
                    drift * 100.0,
                    gate.virtual_tolerance * 100.0
                ));
            }
        }
    }
    for cur in &current.scenarios {
        if baseline.scenario(&cur.name).is_none() {
            violations.push(format!(
                "scenario {} not in baseline (regenerate the baseline)",
                cur.name
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use couplink_metrics::{CtrlClass, EngineMetrics};

    fn sample() -> BenchReport {
        let mut s = ScenarioMeasure::named("fig4_u4");
        s.counters = vec![("memcpy_paid".into(), 40), ("memcpy_skipped".into(), 2)];
        s.virtual_s = vec![("export".into(), 1.25)];
        s.wall_s = vec![("export".into(), 0.003)];
        BenchReport {
            mode: "smoke".into(),
            scenarios: vec![s],
        }
    }

    #[test]
    fn report_roundtrips_through_json_text() {
        let report = sample();
        let text = report.to_text();
        let back = BenchReport::from_text(&text).expect("valid");
        assert_eq!(back, report);
        assert!(text.contains("\"schema\": \"couplink-bench/v1\""));
    }

    #[test]
    fn wrong_schema_rejected() {
        let text = sample().to_text().replace("couplink-bench/v1", "other/v9");
        let err = BenchReport::from_text(&text).unwrap_err();
        assert!(err.contains("unsupported schema"), "{err}");
    }

    #[test]
    fn gate_passes_identical_and_fails_counter_drift() {
        let base = sample();
        assert!(compare(&base, &base, GateConfig::default()).is_empty());
        let mut cur = sample();
        cur.scenarios[0].counters[0].1 += 1;
        let violations = compare(&base, &cur, GateConfig::default());
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("memcpy_paid"), "{violations:?}");
    }

    #[test]
    fn gate_tolerates_small_virtual_drift_but_not_large() {
        let base = sample();
        let mut cur = sample();
        cur.scenarios[0].virtual_s[0].1 *= 1.04;
        assert!(compare(&base, &cur, GateConfig::default()).is_empty());
        cur.scenarios[0].virtual_s[0].1 = base.scenarios[0].virtual_s[0].1 * 1.25;
        let violations = compare(&base, &cur, GateConfig::default());
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("drifted"), "{violations:?}");
    }

    #[test]
    fn from_metrics_covers_every_counter_and_phase() {
        let m = EngineMetrics::new();
        m.memcpy_paid.inc();
        m.ctrl(CtrlClass::Response).inc();
        m.failovers.inc();
        m.recovery_ms.observe(120);
        let s = ScenarioMeasure::from_metrics("x", &m.snapshot());
        assert_eq!(s.counter("memcpy_paid"), Some(1));
        assert_eq!(s.counter("ctrl_response"), Some(1));
        assert_eq!(s.counter("failovers"), Some(1));
        assert_eq!(
            s.counters
                .iter()
                .filter(|(k, v)| k.starts_with("recovery_ms_b") && *v > 0)
                .count(),
            1
        );
        assert_eq!(s.virtual_s.len(), Phase::ALL.len());
        assert_eq!(
            s.counters.len(),
            m.snapshot().counters.fields().len() + 3 * HISTOGRAM_BUCKETS
        );
    }

    /// The refactor baseline discipline: the regenerated smoke baseline
    /// must agree with the committed pre-refactor one on every
    /// deterministic field — all counters bit-identical, virtual times
    /// unchanged — with only the executor-specific additions
    /// (`tasks_polled`, `worker_steal`, `runq_depth_hwm`, the
    /// `poll_batch_b*` buckets) and the hierarchical-collective additions
    /// (`ctrl_relay`, `ctrl_coalesced`, `hb_suppressed`, `tree_depth`)
    /// and socket-transport additions (`net_*`) allowed to appear, and
    /// those must be zero on the DES-driven report scenarios (the report
    /// runs non-hierarchical in-process DES couplings; the tree counters
    /// only move on hierarchical runs, which are gated by `bench scale
    /// --ranks` instead).
    #[test]
    fn executor_refactor_keeps_baseline_counters_bit_identical() {
        let read = |name: &str| {
            let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../baselines/");
            let text = std::fs::read_to_string(format!("{path}{name}"))
                .unwrap_or_else(|e| panic!("reading {name}: {e}"));
            json::parse(&text).unwrap_or_else(|e| panic!("parsing {name}: {e}"))
        };
        let is_executor_field = |key: &str| {
            key == "tasks_polled"
                || key == "worker_steal"
                || key == "runq_depth_hwm"
                || key.starts_with("poll_batch_b")
        };
        let is_hierarchical_field = |key: &str| {
            matches!(
                key,
                "ctrl_relay" | "ctrl_coalesced" | "hb_suppressed" | "tree_depth"
            )
        };
        let is_net_field = |key: &str| key.starts_with("net_");
        let is_wal_field = |key: &str| key.starts_with("wal_");
        let pre = read("BENCH_baseline_smoke_pre_executor.json");
        let post = read("BENCH_baseline_smoke.json");
        type Sections = Vec<(String, Vec<(String, f64)>)>;
        let scenarios = |v: &Value| -> Vec<(String, Sections)> {
            v.get("scenarios")
                .and_then(Value::as_array)
                .expect("scenarios array")
                .iter()
                .map(|s| {
                    let name = s.get("name").and_then(Value::as_str).expect("name");
                    let sections = ["counters", "virtual_s"]
                        .iter()
                        .map(|&sec| {
                            let fields = s
                                .get(sec)
                                .and_then(Value::as_object)
                                .expect("section object")
                                .iter()
                                .map(|(k, v)| (k.clone(), v.as_f64().expect("numeric field")))
                                .collect();
                            (sec.to_string(), fields)
                        })
                        .collect();
                    (name.to_string(), sections)
                })
                .collect()
        };
        let pre_s = scenarios(&pre);
        let post_s = scenarios(&post);
        assert_eq!(
            pre_s.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            post_s.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            "scenario set changed across the refactor"
        );
        for ((name, pre_secs), (_, post_secs)) in pre_s.iter().zip(&post_s) {
            for ((sec, pre_fields), (_, post_fields)) in pre_secs.iter().zip(post_secs) {
                for (key, pre_val) in pre_fields {
                    let post_val = post_fields
                        .iter()
                        .find(|(k, _)| k == key)
                        .unwrap_or_else(|| panic!("{name}/{sec}/{key} dropped"))
                        .1;
                    assert_eq!(
                        *pre_val, post_val,
                        "{name}/{sec}/{key} drifted across the executor refactor"
                    );
                }
                for (key, post_val) in post_fields {
                    if pre_fields.iter().any(|(k, _)| k == key) {
                        continue;
                    }
                    assert!(
                        is_executor_field(key)
                            || is_hierarchical_field(key)
                            || is_net_field(key)
                            || is_wal_field(key),
                        "{name}/{sec}/{key} is new but not an executor, tree, \
                         socket-transport or WAL counter"
                    );
                    assert_eq!(
                        *post_val, 0.0,
                        "{name}/{sec}/{key}: executor, tree, socket and WAL counters \
                         must be zero on DES runs"
                    );
                }
            }
        }
    }
}
