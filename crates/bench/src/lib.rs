//! Shared scenario drivers for the paper's figure harnesses.
//!
//! The binaries in `src/bin` regenerate every evaluation artifact of the
//! paper (see `EXPERIMENTS.md` at the repository root); the scripted
//! scenarios for Figures 5, 7 and 8 live here so the integration tests can
//! assert their structure and the binaries can print them.

pub mod report;

use couplink_layout::{Decomposition, Extent2};
use couplink_proto::{ExportPort, RepAnswer, RequestId, Trace};
use couplink_runtime::{CostModel, CoupledConfig, CoupledSim};
use couplink_time::{ts, MatchPolicy, Timestamp, Tolerance};

/// Drives the paper's **Figure 5** scenario on the DES runtime and returns
/// the event trace the runtime recorded on the slow exporter process: REGL
/// with tolerance 2.5; the slow process exports at `1.6, 2.6, …`; the
/// requests for `D@20` and `D@40` each arrive after 14 local exports of the
/// corresponding window, and buddy-help announces the match (`19.6`, then
/// `39.6`) before the process reaches it.
///
/// Unlike the seed's hand-scripted port driving, the trace here is emitted
/// by the shared coupling engine while an actual coupled pair runs: three
/// fast exporter processes resolve each request immediately (they are the
/// buddy-help senders), and the timing of the importer's compute phase puts
/// each request exactly 14 exports into the slow rank's window.
pub fn figure5_trace() -> Trace {
    let grid = Extent2::new(8, 8);
    let slow = 3;
    let cfg = CoupledConfig {
        exporter_decomp: Decomposition::block_2d(grid, 2, 2).expect("4-proc decomposition"),
        importer_decomp: Decomposition::row_block(grid, 1).expect("1-proc decomposition"),
        policy: MatchPolicy::RegL,
        tolerance: 2.5,
        buddy_help: true,
        exports: 40,
        export_t0: 1.6,
        export_dt: 1.0,
        imports: 2,
        import_t0: 20.0,
        import_dt: 20.0,
        // Three fast ranks finish all 40 exports before the first request
        // and answer it outright; the slow rank takes one virtual second
        // per iteration, so its window position is set by the importer.
        exporter_compute: vec![1e-3, 1e-3, 1e-3, 1.0],
        // First request lands at ~14.5 virtual seconds: after the slow
        // rank's 14th export (~14.0), before its 15th (~15.0).
        importer_compute: 12.5,
        importer_startup: 2.0,
        cost: CostModel::default(),
        buffer_capacity: None,
    };
    let mut sim = CoupledSim::new(cfg).expect("valid figure 5 configuration");
    sim.trace_rank(slow);
    let report = sim.run().expect("figure 5 scenario runs to completion");
    let (rank, trace) = report
        .traces
        .into_iter()
        .next()
        .expect("trace was enabled on the slow rank");
    assert_eq!(rank, slow);
    trace
}

/// Result of a Figure 7/8 run: the trace plus the memcpy/skip tally.
#[derive(Debug)]
pub struct Fig78Run {
    /// The recorded trace.
    pub trace: Trace,
    /// Export calls that copied.
    pub copied: usize,
    /// Export calls that skipped the copy.
    pub skipped: usize,
    /// Unnecessary in-region memcpys (the paper's `T_i` count).
    pub unnecessary_in_region: u64,
}

/// Drives the **Figure 7 / Figure 8** scenario: REGL with tolerance 5.0,
/// exports at `1.6, 2.6, …, 11.6`, one request for `D@10.0` arriving after
/// three exports. With `buddy_help` the final answer (`D@9.6`) reaches the
/// process right after its PENDING reply (Figure 7); without, the process
/// resolves the match locally at the first export past the region
/// (Figure 8).
pub fn figure78_run(buddy_help: bool) -> Fig78Run {
    let mut port = ExportPort::new(
        couplink_proto::ConnectionId(0),
        MatchPolicy::RegL,
        Tolerance::new(5.0).expect("valid tolerance"),
    );
    let mut trace = Trace::new();
    let export = |port: &mut ExportPort, trace: &mut Trace, t: f64| {
        let fx = port.on_export(ts(t)).expect("scripted exports are legal");
        trace.record_export(ts(t), &fx);
    };
    for i in 1..=3 {
        export(&mut port, &mut trace, i as f64 + 0.6);
    }
    let fx = port.on_request(RequestId(0), ts(10.0)).expect("request");
    trace.record_request(ts(10.0), &fx);
    if buddy_help {
        let hfx = port
            .on_buddy_help(RequestId(0), RepAnswer::Match(ts(9.6)))
            .expect("buddy-help");
        trace.record_buddy_help(ts(10.0), RequestId(0), RepAnswer::Match(ts(9.6)), &hfx);
    }
    for i in 4..=11 {
        export(&mut port, &mut trace, i as f64 + 0.6);
    }
    let (copied, skipped) = trace.export_counts();
    Fig78Run {
        trace,
        copied,
        skipped,
        unnecessary_in_region: port.stats().t_ub_in_region_count(),
    }
}

/// The §5 ablation configuration: a 256×256 array from 2×2 exporter
/// quadrants to a fast 16-process importer, with the match policy,
/// tolerance, request period and buddy-help under study as knobs. `exports`
/// scales the run length (the paper-scale sweep uses 601; the bench smoke
/// report uses a shorter run), with one import per `import_dt` exports.
pub fn ablation_config(
    policy: MatchPolicy,
    tolerance: f64,
    import_dt: f64,
    buddy_help: bool,
    exports: usize,
) -> CoupledConfig {
    let grid = Extent2::new(256, 256);
    let horizon = exports.saturating_sub(1) as f64;
    CoupledConfig {
        exporter_decomp: Decomposition::block_2d(grid, 2, 2).expect("2x2 quadrants"),
        importer_decomp: Decomposition::row_block(grid, 16).expect("16 row blocks"),
        policy,
        tolerance,
        buddy_help,
        exports,
        export_t0: 1.6,
        export_dt: 1.0,
        imports: ((horizon / import_dt) as usize).clamp(1, 120),
        import_t0: import_dt,
        import_dt,
        exporter_compute: vec![1.0e-3, 1.0e-3, 1.0e-3, 2.0e-3],
        importer_compute: 3.0e-3,
        importer_startup: 20.0e-3,
        cost: CostModel::default(),
        buffer_capacity: None,
    }
}

/// A synthetic disjoint-region workload for validating Equations (1)–(2):
/// `n_regions` requests at `x_j = 100·(j+1)` with the given tolerance and
/// `exports_per_unit` exports per time unit. Returns
/// `(measured unnecessary per region, closed-form n(i) − 1 per region)`.
pub fn equation_workload(
    n_regions: usize,
    tolerance: f64,
    exports_per_unit: usize,
) -> (Vec<u64>, Vec<u64>) {
    let mut port = ExportPort::new(
        couplink_proto::ConnectionId(0),
        MatchPolicy::RegL,
        Tolerance::new(tolerance).expect("valid tolerance"),
    );
    let dt = 1.0 / exports_per_unit as f64;
    let mut t = dt;
    let mut exports: Vec<Timestamp> = Vec::new();
    let horizon = 100.0 * n_regions as f64 + 50.0;
    while t < horizon {
        let stamp = ts(t);
        port.on_export(stamp).expect("export");
        exports.push(stamp);
        t += dt;
        // Requests arrive late (after the region has been fully exported),
        // the worst case for buffering: every in-region candidate is copied.
        let region_count = (t / 100.0).floor() as usize;
        for j in port.stats().requests as usize..region_count.min(n_regions) {
            let x = 100.0 * (j + 1) as f64;
            port.on_request(RequestId(j as u64), ts(x))
                .expect("request");
        }
    }
    let mut measured = port.stats().unnecessary_by_request.clone();
    measured.resize(n_regions, 0);
    // Closed form: n(i) − 1 objects per region, where n(i) is the number of
    // exports inside [x − tol, x].
    let closed: Vec<u64> = (0..n_regions)
        .map(|j| {
            let x = 100.0 * (j + 1) as f64;
            let n = exports
                .iter()
                .filter(|e| e.value() >= x - tolerance && e.value() <= x)
                .count() as u64;
            n.saturating_sub(1)
        })
        .collect();
    (measured, closed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_skip_counts_grow() {
        let trace = figure5_trace();
        let (copied, skipped) = trace.export_counts();
        // 14 + 12 + 1 + 1 + 2 copies; 4 + 7 skips (the paper's growth 4→7).
        assert_eq!(skipped, 11);
        assert_eq!(copied, 40 - 11);
    }

    #[test]
    fn figure7_only_match_copied_in_region() {
        let run = figure78_run(true);
        assert_eq!(run.unnecessary_in_region, 0);
        assert_eq!(run.skipped, 5); // 4.6 .. 8.6
    }

    #[test]
    fn figure8_buffers_every_candidate() {
        let run = figure78_run(false);
        assert_eq!(run.unnecessary_in_region, 4); // 5.6 .. 8.6
        assert_eq!(run.skipped, 1); // only 4.6, below the region
    }

    #[test]
    fn equation_counts_match_closed_form() {
        let (measured, closed) = equation_workload(5, 2.5, 2);
        assert_eq!(measured, closed);
        assert!(closed.iter().all(|&c| c > 0), "{closed:?}");
    }
}
