//! Socket data-plane throughput sweep (`bench net`).
//!
//! Usage: `cargo run -p couplink-bench --release --bin net -- \
//!     [--full] [--mutate] [--out FILE] [--check BASELINE]`
//!
//! Drives the real `couplink-node` mesh over loopback — every program its
//! own OS process — across a grid of payload sizes × frame mixes on both
//! UDS and TCP, and measures the wire path end to end: bulk payload
//! encode, pooled tx buffers, `writev` frame coalescing, and the
//! zero-copy rx decode. Results land in the `couplink-bench/v1` schema
//! (mode `net-smoke` / `net-full`): the deterministic protocol counters
//! (`import_calls`, `export_calls`, `transfers`) under `counters` for the
//! `--check` baseline diff, throughput and syscall figures under `wall_s`
//! (informational, never baseline-gated).
//!
//! Two gates with teeth:
//!
//! * **syscalls-per-frame** — on the designated *load* points (many small
//!   frames from many ranks bunching on few mesh links) the vectored
//!   writer must coalesce well enough that `net_syscalls / net_frames`
//!   stays under [`SYSCALLS_PER_FRAME_MAX`]. A writer that degrades to
//!   one `write` per frame sits at ≥ 1.0 and fails loudly.
//! * **legacy speedup** — the largest UDS payload point is re-run with
//!   `COUPLINK_NET_LEGACY=1` in the node environment (same binary; the
//!   nodes fall back to the per-element codec, per-frame header copies,
//!   bytewise crc32 and per-frame `write` calls). Best-of-two payload
//!   throughput on the new path must be at least [`SPEEDUP_MIN`]× the
//!   legacy path.
//!
//! `--mutate` runs the *whole* sweep with the legacy environment: the
//! per-frame writes must then trip the syscalls-per-frame gate, proving
//! the gate would catch a regression that quietly dropped the vectored
//! path. `ci.sh` runs it as the negative control.
//!
//! Every run also asserts tx/rx conservation on its merged counters:
//! clean mesh sessions must receive exactly the frames and bytes they
//! sent (`net_rx_frames == net_frames`, `net_rx_bytes == net_bytes`).

use couplink_bench::report::{compare, BenchReport, GateConfig, ScenarioMeasure};
use couplink_metrics::CounterSnapshot;
use couplink_runtime::net::{
    codec::{ExportSpec, ImportSpec, NodePlan},
    run_plan, NetOptions, SocketBackend,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// Load-point coalescing budget: mean write syscalls per tx frame.
const SYSCALLS_PER_FRAME_MAX: f64 = 0.5;

/// The new data plane must move payload bytes at least this many times
/// faster than the legacy per-element/per-frame path on the largest UDS
/// sweep point.
const SPEEDUP_MIN: f64 = 2.0;

struct Options {
    full: bool,
    mutate: bool,
    out: PathBuf,
    check: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        full: false,
        mutate: false,
        out: PathBuf::from("results/BENCH_couplink_net.json"),
        check: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => opts.full = true,
            "--smoke" => opts.full = false,
            "--mutate" => opts.mutate = true,
            "--out" => opts.out = PathBuf::from(args.next().ok_or("--out needs a path")?),
            "--check" => {
                opts.check = Some(PathBuf::from(args.next().ok_or("--check needs a path")?))
            }
            other => return Err(format!("unknown argument {other:?} (see the doc comment)")),
        }
    }
    Ok(opts)
}

/// One sweep point: a single exporter→importer pair at `procs` ranks per
/// program over a `rows × cols` grid, `count` coupled timesteps.
#[derive(Debug, Clone)]
struct Point {
    name: &'static str,
    backend: SocketBackend,
    rows: usize,
    cols: usize,
    procs: usize,
    count: usize,
    /// Syscalls-per-frame gate applies (small-frame, many-rank mixes
    /// where coalescing is the whole story).
    load_gate: bool,
    /// Largest UDS payload point — the legacy speedup gate runs here.
    speedup_gate: bool,
}

impl Point {
    /// Payload bytes moved across the mesh per coupled timestep (the full
    /// grid, row-block split into one piece per rank pair).
    fn bytes_per_step(&self) -> u64 {
        (self.rows * self.cols * std::mem::size_of::<f64>()) as u64
    }

    fn payload_bytes(&self) -> u64 {
        self.bytes_per_step() * self.count as u64
    }
}

/// The sweep. Smoke keeps total volume small enough for a loaded CI box;
/// full widens both axes. Points mix one *load* shape (tiny pieces from
/// many ranks — frame-count dominated) with bulk shapes (piece sizes from
/// KBs to a megabyte — byte-volume dominated).
fn sweep(full: bool) -> Vec<Point> {
    let mut pts = vec![
        Point {
            name: "net_uds_load_1k",
            backend: SocketBackend::Uds,
            rows: 64,
            cols: 16,
            procs: 8,
            count: if full { 400 } else { 200 },
            load_gate: true,
            speedup_gate: false,
        },
        Point {
            name: "net_uds_mid_64k",
            backend: SocketBackend::Uds,
            rows: 128,
            cols: 128,
            procs: 2,
            count: if full { 120 } else { 60 },
            load_gate: false,
            speedup_gate: false,
        },
        Point {
            name: "net_uds_big_2m",
            backend: SocketBackend::Uds,
            rows: 1024,
            cols: 512,
            procs: 2,
            count: if full { 160 } else { 80 },
            load_gate: false,
            speedup_gate: true,
        },
        Point {
            name: "net_tcp_mid_64k",
            backend: SocketBackend::Tcp,
            rows: 128,
            cols: 128,
            procs: 2,
            count: if full { 120 } else { 60 },
            load_gate: false,
            speedup_gate: false,
        },
    ];
    if full {
        pts.push(Point {
            name: "net_tcp_load_1k",
            backend: SocketBackend::Tcp,
            rows: 64,
            cols: 16,
            procs: 8,
            count: 400,
            load_gate: true,
            speedup_gate: false,
        });
        pts.push(Point {
            name: "net_tcp_big_1m",
            backend: SocketBackend::Tcp,
            rows: 512,
            cols: 512,
            procs: 2,
            count: 120,
            load_gate: false,
            speedup_gate: false,
        });
    }
    pts
}

/// The node plan for a point: exact-timestamp REG coupling, zero compute
/// and zero startup so the wire path — not schedule sleeps — is what the
/// clock measures. Value verification stays off: correctness is simtest's
/// job, per-cell checks here would dilute the data-plane signal.
fn plan_for(pt: &Point) -> NodePlan {
    NodePlan {
        config_text: format!(
            "E0 c0 /bin/e0 {p}\nI0 c0 /bin/i0 {p}\n#\nE0.r I0.m REG 0.25\n",
            p = pt.procs
        ),
        grid: (pt.rows, pt.cols),
        exports: vec![ExportSpec {
            program: "E0".into(),
            region: 0,
            t0: 1.0,
            dt: 1.0,
            count: pt.count,
            compute: vec![0.0; pt.procs],
        }],
        imports: vec![ImportSpec {
            program: "I0".into(),
            region: 0,
            t0: 1.0,
            dt: 1.0,
            count: pt.count,
            compute: 0.0,
            startup: 0.0,
        }],
        buddy_help: false,
        import_timeout_s: 30.0,
        time_scale: 1.0,
        verify_values: false,
        traces: Vec::new(),
        chaos: None,
        fault: None,
        hierarchical: false,
        wal_dir: None,
        restart: false,
    }
}

struct PointRun {
    wall_s: f64,
    counters: CounterSnapshot,
}

fn run_point(pt: &Point, node_bin: &Path, legacy: bool) -> Result<PointRun, String> {
    let plan = plan_for(pt);
    let opts = NetOptions {
        backend: pt.backend,
        deadline: Duration::from_secs(180),
        env: if legacy {
            vec![("COUPLINK_NET_LEGACY".into(), "1".into())]
        } else {
            Vec::new()
        },
        ..NetOptions::new(node_bin.to_path_buf())
    };
    let start = Instant::now();
    let rep = run_plan(&plan, &opts).map_err(|e| format!("{}: bootstrap: {e}", pt.name))?;
    let wall_s = start.elapsed().as_secs_f64();
    if !rep.crashed.is_empty() {
        return Err(format!("{}: nodes crashed: {:?}", pt.name, rep.crashed));
    }
    if !rep.shutdown_errors.is_empty() {
        return Err(format!(
            "{}: shutdown errors: {:?}",
            pt.name, rep.shutdown_errors
        ));
    }
    if !rep.export_errors.is_empty() {
        return Err(format!(
            "{}: export errors: {:?}",
            pt.name, rep.export_errors
        ));
    }
    if let Some((p, r, _, Some(e))) = rep.imports_done.iter().find(|(_, _, _, err)| err.is_some()) {
        return Err(format!(
            "{}: import error at prog {p} rank {r}: {e}",
            pt.name
        ));
    }
    Ok(PointRun {
        wall_s,
        counters: rep.counters,
    })
}

/// Folds a run into a scenario. Only the deterministic protocol counters
/// are recorded under `counters` (baseline-gated exactly); everything
/// timing- or interleaving-dependent goes under `wall_s`.
fn measure(pt: &Point, run: &PointRun) -> ScenarioMeasure {
    let c = &run.counters;
    let mut m = ScenarioMeasure::named(pt.name);
    m.counters.push(("import_calls".into(), c.import_calls));
    m.counters.push(("export_calls".into(), c.export_calls));
    m.counters.push(("transfers".into(), c.transfers));
    let frames = c.net_frames.max(1) as f64;
    m.wall_s.push(("run".into(), run.wall_s));
    m.wall_s
        .push(("payload_bytes".into(), pt.payload_bytes() as f64));
    m.wall_s.push((
        "payload_bytes_per_sec".into(),
        pt.payload_bytes() as f64 / run.wall_s.max(1e-12),
    ));
    m.wall_s.push(("net_frames".into(), c.net_frames as f64));
    m.wall_s.push(("net_bytes".into(), c.net_bytes as f64));
    m.wall_s
        .push(("net_syscalls".into(), c.net_syscalls as f64));
    m.wall_s
        .push(("syscalls_per_frame".into(), c.net_syscalls as f64 / frames));
    m.wall_s
        .push(("net_writev_frames".into(), c.net_writev_frames as f64));
    m.wall_s
        .push(("net_pool_hits".into(), c.net_pool_hits as f64));
    m.wall_s
        .push(("net_pool_misses".into(), c.net_pool_misses as f64));
    m.wall_s
        .push(("net_rx_buf_hwm".into(), c.net_rx_buf_hwm as f64));
    m
}

/// Clean bench sessions must conserve frames and bytes across the mesh:
/// a tx/rx mismatch means metering (or the quiesce protocol) regressed.
fn check_conservation(pt: &Point, run: &PointRun, violations: &mut Vec<String>) {
    let c = &run.counters;
    let healthy =
        c.net_reconnects == 0 && c.net_codec_rejects == 0 && c.retransmits == 0 && c.timeouts == 0;
    if healthy && (c.net_rx_frames != c.net_frames || c.net_rx_bytes != c.net_bytes) {
        violations.push(format!(
            "{}: tx/rx conservation broken: sent {} frames / {} bytes, \
             received {} frames / {} bytes",
            pt.name, c.net_frames, c.net_bytes, c.net_rx_frames, c.net_rx_bytes
        ));
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(node_bin) = couplink_runtime::net::default_node_bin() else {
        eprintln!("error: couplink-node binary not found (set COUPLINK_NODE_BIN)");
        return ExitCode::FAILURE;
    };

    let mut scenarios = Vec::new();
    let mut violations = Vec::new();
    for pt in sweep(opts.full) {
        let mib = pt.payload_bytes() as f64 / (1024.0 * 1024.0);
        println!(
            "running {} ({:?}, {} ranks, {} steps, {:.1} MiB payload{}) ...",
            pt.name,
            pt.backend,
            pt.procs,
            pt.count,
            mib,
            if opts.mutate { ", LEGACY codec" } else { "" }
        );
        let run = match run_point(&pt, &node_bin, opts.mutate) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let spf = run.counters.net_syscalls as f64 / run.counters.net_frames.max(1) as f64;
        let bps = pt.payload_bytes() as f64 / run.wall_s.max(1e-12);
        println!(
            "  {:>8.1} MiB/s payload  ({:.3}s wall, {} frames, {} syscalls, {spf:.3} syscalls/frame)",
            bps / (1024.0 * 1024.0),
            run.wall_s,
            run.counters.net_frames,
            run.counters.net_syscalls,
        );
        check_conservation(&pt, &run, &mut violations);
        if pt.load_gate && spf > SYSCALLS_PER_FRAME_MAX {
            violations.push(format!(
                "{}: {spf:.3} write syscalls per frame exceeds the \
                 {SYSCALLS_PER_FRAME_MAX} coalescing budget (per-frame writes?)",
                pt.name
            ));
        }
        let mut m = measure(&pt, &run);

        if pt.speedup_gate && !opts.mutate {
            // Best-of-two on each codec: the run above plus one more on
            // the new path, two on the legacy path. Best-of damps the
            // worst of CI noise without hiding a real regression.
            println!(
                "running {} again + 2x legacy for the speedup gate ...",
                pt.name
            );
            let mut best_new = bps;
            let mut best_legacy: f64 = 0.0;
            for legacy in [true, false, true] {
                let r = match run_point(&pt, &node_bin, legacy) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let v = pt.payload_bytes() as f64 / r.wall_s.max(1e-12);
                let best = if legacy {
                    &mut best_legacy
                } else {
                    &mut best_new
                };
                *best = best.max(v);
            }
            let speedup = best_new / best_legacy.max(1e-12);
            println!(
                "  new {:.1} MiB/s vs legacy {:.1} MiB/s: {speedup:.2}x",
                best_new / (1024.0 * 1024.0),
                best_legacy / (1024.0 * 1024.0)
            );
            m.wall_s
                .push(("legacy_payload_bytes_per_sec".into(), best_legacy));
            m.wall_s.push(("speedup_vs_legacy".into(), speedup));
            if speedup < SPEEDUP_MIN {
                violations.push(format!(
                    "{}: new data plane only {speedup:.2}x the legacy path \
                     (need {SPEEDUP_MIN:.1}x)",
                    pt.name
                ));
            }
        }
        scenarios.push(m);
    }

    let report = BenchReport {
        mode: if opts.full { "net-full" } else { "net-smoke" }.to_string(),
        scenarios,
    };
    let text = report.to_text();
    match BenchReport::from_text(&text) {
        Ok(back) if back == report => {}
        Ok(_) => {
            eprintln!("error: report changed across JSON round-trip");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("error: emitted report fails schema validation: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(dir) = opts.out.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: creating {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&opts.out, &text) {
        eprintln!("error: writing {}: {e}", opts.out.display());
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {} ({} scenarios, mode {})",
        opts.out.display(),
        report.scenarios.len(),
        report.mode
    );
    if let Some(baseline_path) = &opts.check {
        match BenchReport::load(baseline_path) {
            Ok(baseline) => {
                violations.extend(compare(&baseline, &report, GateConfig::default()));
            }
            Err(e) => {
                eprintln!("error: loading baseline {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if violations.is_empty() {
        println!("network data-plane gate PASS");
        ExitCode::SUCCESS
    } else {
        eprintln!("network data-plane gate FAIL:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        ExitCode::FAILURE
    }
}
