//! Weak/strong scaling sweeps for the threaded fabric (`bench scale`).
//!
//! Usage: `cargo run -p couplink-bench --release --bin scale -- \
//!     [--full] [--mutate] [--sessions N] [--ranks LIST] [--out FILE] \
//!     [--gate-ms N]`
//!
//! Sweeps a grid of coupled pairs × processes-per-program on the real
//! threaded [`Fabric`], measuring wall-clock throughput: imports/sec,
//! bytes buffered/sec and (once available in the snapshot) lock-wait
//! time. Two series share each grid point:
//!
//! * **weak** — fixed iterations per rank, so total work grows with the
//!   grid; per-iteration latency should stay flat if the control plane
//!   scales.
//! * **strong** — fixed total imports divided across ranks; wall time
//!   should shrink (or at least not grow) with more workers.
//!
//! Results land in the `couplink-bench/v1` schema (mode `scale-smoke` /
//! `scale-full`): deterministic protocol counters under `counters`
//! (informational here — threaded counts depend on interleaving and are
//! *not* baseline-gated), throughput under `wall_s`.
//!
//! The regression gate is a ±tolerance throughput budget rather than a
//! baseline diff: every grid point's mean wall time per import iteration
//! must stay under `--gate-ms` (default [`DEFAULT_GATE_MS`] — generous
//! enough for a loaded single-core CI box, tight enough to reject a real
//! stall). `--mutate` injects an artificial [`MUTATE_STALL_FACTOR`]×-budget
//! sleep into every import iteration; `ci.sh` uses it to prove the gate
//! has teeth, mirroring the report gate's 8× memcpy mutation.
//!
//! # `--sessions N`
//!
//! The multi-session axis (mode `scale-sessions`): N independent
//! topologies multiplexed on one [`SessionSet`] worker pool, deliberately
//! oversubscribed (N × tasks-per-session ≫ cores). The same workload runs
//! twice — on the default-sized pool, and with one worker per task
//! (emulating the pre-executor thread-per-process fabric) — and the gate
//! requires the pooled run to sustain ≥ [`SESSION_SPEEDUP_MIN`]× the
//! thread-per-task aggregate imports/sec, plus a *fairness* check: the
//! slowest session's wall time must stay within
//! [`SESSION_FAIRNESS_RATIO`]× of the fastest (round-robin scheduling
//! means co-resident sessions finish together). Under `--sessions`,
//! `--mutate` switches the pool to a deliberately unfair scheduler
//! (always poll the lowest session first) instead of sleeping; the
//! fairness check must then fail.
//!
//! # `--ranks N1,N2,…`
//!
//! The hierarchical collective axis (mode `scale-ranks`): one coupled
//! pair per point, both programs at `N` ranks, run on the threaded fabric
//! with hierarchical rep fan-out enabled. Rank counts well past the tree
//! branching factor make the rep's per-collective origin traffic the
//! scaling story: the gate demands the measured rep-origin control
//! messages per import stay within the `k·⌈log_k N⌉ + 2k` budget of the
//! control-scaling oracle — O(log N), not the flat runtime's O(N) — and
//! that the exact tree conservation laws (every rank served exactly once
//! per collective, relays matching the tree's edge count) hold on the
//! live fabric counters. Under `--ranks`, `--mutate` disables the tree
//! and reruns the sweep on the legacy flat fan-out; the O(log N) budget
//! must then fail, proving the gate would catch a regression to per-rank
//! rep broadcasts.

use couplink_bench::report::{BenchReport, ScenarioMeasure};
use couplink_layout::RedistPlan;
use couplink_layout::{Decomposition, Extent2, LocalArray};
use couplink_metrics::{CtrlClass, MetricsSnapshot};
use couplink_proto::ConnectionId;
use couplink_runtime::engine::oracle::check_ctrl_scaling;
use couplink_runtime::engine::{tree, ConnTopo, ExportRegionTopo, ImportRegionTopo, ProgramTopo};
use couplink_runtime::{
    session_task_count, ExecutorOptions, Fabric, FabricOptions, SessionSet, Topology,
};
use couplink_time::{ts, MatchPolicy, Tolerance};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-import-iteration wall budget in milliseconds. One constant shared
/// by the gate default and the `--mutate` stall so they cannot drift.
const DEFAULT_GATE_MS: f64 = 50.0;

/// The `--mutate` stall sleeps this multiple of the gate budget per
/// import iteration — far enough past the budget that the gate must trip.
const MUTATE_STALL_FACTOR: f64 = 4.0;

/// Pooled executor must beat thread-per-task by at least this factor in
/// aggregate imports/sec on the oversubscribed `--sessions` workload.
const SESSION_SPEEDUP_MIN: f64 = 1.5;

/// Fairness (starvation) bound for `--sessions`: slowest session wall /
/// fastest session wall. Round-robin keeps co-resident sessions in
/// lockstep (ratio near 1); an unfair scheduler lets low-numbered
/// sessions finish many times earlier.
const SESSION_FAIRNESS_RATIO: f64 = 2.5;

struct Options {
    full: bool,
    mutate: bool,
    sessions: Option<usize>,
    ranks: Option<Vec<usize>>,
    out: PathBuf,
    gate_ms: f64,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        full: false,
        mutate: false,
        sessions: None,
        ranks: None,
        out: PathBuf::from("results/BENCH_couplink_scale.json"),
        gate_ms: DEFAULT_GATE_MS,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => opts.full = true,
            "--mutate" => opts.mutate = true,
            "--sessions" => {
                let n: usize = args
                    .next()
                    .ok_or("--sessions needs a count")?
                    .parse()
                    .map_err(|e| format!("--sessions: {e}"))?;
                if n == 0 {
                    return Err("--sessions needs at least 1".into());
                }
                opts.sessions = Some(n);
            }
            "--ranks" => {
                let list = args.next().ok_or("--ranks needs a comma-separated list")?;
                let ranks = list
                    .split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|e| format!("--ranks: {e}"))?;
                if ranks.is_empty() || ranks.contains(&0) {
                    return Err("--ranks needs positive rank counts".into());
                }
                opts.ranks = Some(ranks);
            }
            "--out" => opts.out = PathBuf::from(args.next().ok_or("--out needs a path")?),
            "--gate-ms" => {
                opts.gate_ms = args
                    .next()
                    .ok_or("--gate-ms needs a number")?
                    .parse()
                    .map_err(|e| format!("--gate-ms: {e}"))?
            }
            other => return Err(format!("unknown argument {other:?} (see the doc comment)")),
        }
    }
    Ok(opts)
}

/// One grid point: `pairs` independent exporter→importer program pairs,
/// each program running `procs` coupled processes.
#[derive(Debug, Clone, Copy)]
struct GridPoint {
    pairs: usize,
    procs: usize,
}

/// The sweep grid. Smoke stays small (the CI box may be a single core);
/// full pushes the thread count far past the core count so lock
/// contention, not compute, dominates.
fn grid(full: bool) -> Vec<GridPoint> {
    let pts: &[(usize, usize)] = if full {
        &[(1, 2), (2, 2), (4, 2), (4, 4), (6, 4)]
    } else {
        &[(1, 1), (2, 2), (4, 2)]
    };
    pts.iter()
        .map(|&(pairs, procs)| GridPoint { pairs, procs })
        .collect()
}

/// Builds `pairs` disjoint exporter→importer couplings, each over its own
/// region decomposed row-block across `procs` ranks. Exact-match REGL so
/// every import resolves against the same-timestamp export.
fn scale_topology(pt: GridPoint) -> Topology {
    let rows_per_rank = 4;
    let extent = Extent2::new(pt.procs * rows_per_rank, 64);
    let decomp = Decomposition::row_block(extent, pt.procs).expect("row-block decomposition");
    let mut programs = Vec::new();
    let mut conns = Vec::new();
    for k in 0..pt.pairs {
        let id = ConnectionId(k as u32);
        programs.push(ProgramTopo {
            name: format!("E{k}"),
            procs: pt.procs,
            exports: vec![ExportRegionTopo {
                name: "r".into(),
                decomp,
                conns: vec![id],
            }],
            imports: Vec::new(),
        });
        programs.push(ProgramTopo {
            name: format!("I{k}"),
            procs: pt.procs,
            exports: Vec::new(),
            imports: vec![ImportRegionTopo {
                name: "m".into(),
                decomp,
                conn: id,
            }],
        });
        conns.push(ConnTopo {
            id,
            exporter_prog: 2 * k,
            exporter_region: 0,
            importer_prog: 2 * k + 1,
            importer_region: 0,
            policy: MatchPolicy::RegL,
            tolerance: Tolerance::new(0.4).expect("tolerance"),
            plan: Arc::new(RedistPlan::build(decomp, decomp).expect("identity plan")),
        });
    }
    Topology { programs, conns }
}

struct PointRun {
    wall_s: f64,
    total_imports: u64,
    snapshot: MetricsSnapshot,
}

/// Drives one grid point: every exporter rank exports `iters` objects at
/// `ts = 1, 2, …`; every importer rank collectively imports the same
/// timestamps (zero compute skew — the paper's tightest coupling). The
/// optional `slowdown` models a stalled consumer for the gate's negative
/// test.
fn run_point(
    pt: GridPoint,
    iters: usize,
    slowdown: Option<Duration>,
    options: FabricOptions,
) -> Result<PointRun, String> {
    let topo = scale_topology(pt);
    let rows_per_rank = 4;
    let extent = Extent2::new(pt.procs * rows_per_rank, 64);
    let decomp = Decomposition::row_block(extent, pt.procs).expect("row-block decomposition");
    let mut fabric = Fabric::new(topo, options);
    let metrics = fabric.metrics();

    let start = Instant::now();
    let mut threads = Vec::new();
    for k in 0..pt.pairs {
        for rank in 0..pt.procs {
            let owned = decomp.owned(rank);
            let mut exp = fabric.take_export(2 * k, rank, 0);
            threads.push(std::thread::spawn(move || -> Result<(), String> {
                let data = LocalArray::from_fn(owned, |r, c| (r * 31 + c) as f64);
                for i in 0..iters {
                    exp.export(ts((i + 1) as f64), &data)
                        .map_err(|e| format!("export {i} failed: {e}"))?;
                }
                Ok(())
            }));
            let owned = decomp.owned(rank);
            let mut imp = fabric.take_import(2 * k + 1, rank, 0);
            threads.push(std::thread::spawn(move || -> Result<(), String> {
                let mut dest = LocalArray::zeros(owned);
                for i in 0..iters {
                    let got = imp
                        .import(ts((i + 1) as f64), &mut dest)
                        .map_err(|e| format!("import {i} failed: {e}"))?;
                    if got.is_none() {
                        return Err(format!("import {i} found no match"));
                    }
                    if let Some(d) = slowdown {
                        std::thread::sleep(d);
                    }
                }
                Ok(())
            }));
        }
    }
    for t in threads {
        t.join()
            .map_err(|_| "worker thread panicked".to_string())??;
    }
    let wall_s = start.elapsed().as_secs_f64();
    fabric.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    Ok(PointRun {
        wall_s,
        total_imports: (pt.pairs * pt.procs * iters) as u64,
        snapshot: metrics.snapshot(),
    })
}

/// Folds one grid-point run into a scenario: protocol counters from the
/// snapshot, throughput figures under `wall_s` (never baseline-gated).
fn measure(name: &str, run: &PointRun) -> ScenarioMeasure {
    let mut m = ScenarioMeasure::from_metrics(name, &run.snapshot);
    // Threaded counter values depend on interleaving; they are recorded
    // for eyeballing conservation laws, not for exact gating.
    let bytes_buffered = m.counter("bytes_buffered").unwrap_or(0);
    m.wall_s.push(("run".into(), run.wall_s));
    m.wall_s.push((
        "import_iter".into(),
        run.wall_s / run.total_imports.max(1) as f64,
    ));
    m.wall_s.push((
        "imports_per_sec".into(),
        run.total_imports as f64 / run.wall_s.max(1e-12),
    ));
    m.wall_s.push((
        "buffered_bytes_per_sec".into(),
        bytes_buffered as f64 / run.wall_s.max(1e-12),
    ));
    m
}

/// One `--sessions` run: `n` identical sessions of grid point `pt`
/// multiplexed on one pool. Per-session wall time is the moment that
/// session's last importer finishes (measured from the common start), so
/// the spread across sessions exposes scheduling (un)fairness.
struct SessionsRun {
    wall_s: f64,
    total_imports: u64,
    session_walls: Vec<f64>,
    snapshot: MetricsSnapshot,
}

fn run_sessions(
    n: usize,
    pt: GridPoint,
    iters: usize,
    workers: Option<usize>,
    unfair: bool,
) -> Result<SessionsRun, String> {
    let rows_per_rank = 4;
    let extent = Extent2::new(pt.procs * rows_per_rank, 64);
    let decomp = Decomposition::row_block(extent, pt.procs).expect("row-block decomposition");
    let mut set = SessionSet::new(&ExecutorOptions { workers, unfair });
    for _ in 0..n {
        set.add_session(scale_topology(pt), FabricOptions::default());
    }
    // Counters from session 0 only — informational (per-session metrics
    // are independent by construction; the throughput figures below are
    // aggregate).
    let metrics = set.session_metrics(0);

    let start = Instant::now();
    let mut exporters = Vec::new();
    let mut importers: Vec<Vec<std::thread::JoinHandle<Result<f64, String>>>> = Vec::new();
    for s in 0..n {
        let mut session_imps = Vec::new();
        for k in 0..pt.pairs {
            for rank in 0..pt.procs {
                let owned = decomp.owned(rank);
                let mut exp = set.take_export(s, 2 * k, rank, 0);
                exporters.push(std::thread::spawn(move || -> Result<(), String> {
                    let data = LocalArray::from_fn(owned, |r, c| (r * 31 + c) as f64);
                    for i in 0..iters {
                        exp.export(ts((i + 1) as f64), &data)
                            .map_err(|e| format!("export {i} failed: {e}"))?;
                    }
                    Ok(())
                }));
                let owned = decomp.owned(rank);
                let mut imp = set.take_import(s, 2 * k + 1, rank, 0);
                session_imps.push(std::thread::spawn(move || -> Result<f64, String> {
                    let mut dest = LocalArray::zeros(owned);
                    for i in 0..iters {
                        let got = imp
                            .import(ts((i + 1) as f64), &mut dest)
                            .map_err(|e| format!("import {i} failed: {e}"))?;
                        if got.is_none() {
                            return Err(format!("import {i} found no match"));
                        }
                    }
                    Ok(start.elapsed().as_secs_f64())
                }));
            }
        }
        importers.push(session_imps);
    }
    for t in exporters {
        t.join()
            .map_err(|_| "exporter thread panicked".to_string())??;
    }
    let mut session_walls = Vec::with_capacity(n);
    for session_imps in importers {
        let mut wall: f64 = 0.0;
        for t in session_imps {
            wall = wall.max(
                t.join()
                    .map_err(|_| "importer thread panicked".to_string())??,
            );
        }
        session_walls.push(wall);
    }
    let wall_s = start.elapsed().as_secs_f64();
    let snapshot = metrics.snapshot();
    set.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    Ok(SessionsRun {
        wall_s,
        total_imports: (n * pt.pairs * pt.procs * iters) as u64,
        session_walls,
        snapshot,
    })
}

fn fairness_ratio(run: &SessionsRun) -> f64 {
    let min = run
        .session_walls
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let max = run.session_walls.iter().cloned().fold(0.0f64, f64::max);
    max / min.max(1e-12)
}

/// Folds one `--sessions` run into a scenario: aggregate throughput plus
/// the per-session wall spread the fairness gate reads.
fn measure_sessions(name: &str, run: &SessionsRun) -> ScenarioMeasure {
    let mut m = ScenarioMeasure::from_metrics(name, &run.snapshot);
    let min = run
        .session_walls
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let max = run.session_walls.iter().cloned().fold(0.0f64, f64::max);
    m.wall_s.push(("run".into(), run.wall_s));
    m.wall_s.push((
        "import_iter".into(),
        run.wall_s / run.total_imports.max(1) as f64,
    ));
    m.wall_s.push((
        "imports_per_sec".into(),
        run.total_imports as f64 / run.wall_s.max(1e-12),
    ));
    m.wall_s.push(("session_wall_min".into(), min));
    m.wall_s.push(("session_wall_max".into(), max));
    m.wall_s
        .push(("session_fairness_ratio".into(), fairness_ratio(run)));
    m
}

/// The `--sessions` mode: the oversubscribed multi-session workload on
/// the pooled executor vs one-worker-per-task (the thread-per-process
/// shape), with the speedup and fairness gates described in the module
/// doc.
fn run_sessions_mode(opts: &Options, n: usize) -> Result<(BenchReport, Vec<String>), String> {
    let pt = GridPoint {
        pairs: 4,
        procs: if opts.full { 2 } else { 1 },
    };
    let iters = if opts.full { 400 } else { 240 };
    let tasks_per_session = session_task_count(&scale_topology(pt), &FabricOptions::default());
    let mut scenarios = Vec::new();
    let mut violations = Vec::new();

    let pooled_name = format!("sessions_pooled_s{n}_p{}x{}", pt.pairs, pt.procs);
    println!(
        "running {pooled_name} ({iters} iters/rank, {} tasks over default workers{}) ...",
        n * tasks_per_session,
        if opts.mutate {
            ", UNFAIR scheduler"
        } else {
            ""
        }
    );
    let pooled = run_sessions(n, pt, iters, None, opts.mutate)?;
    let pooled_ips = pooled.total_imports as f64 / pooled.wall_s.max(1e-12);
    let ratio = fairness_ratio(&pooled);
    println!("  {pooled_ips:>10.0} imports/s aggregate  (session wall spread {ratio:.2}x)",);
    let iter_ms = pooled.wall_s * 1000.0 / pooled.total_imports.max(1) as f64;
    if iter_ms > opts.gate_ms {
        violations.push(format!(
            "{pooled_name}: {iter_ms:.2} ms per import iteration exceeds the \
             {:.2} ms budget",
            opts.gate_ms
        ));
    }
    if ratio > SESSION_FAIRNESS_RATIO {
        violations.push(format!(
            "{pooled_name}: starvation — slowest session took {ratio:.2}x the \
             fastest (bound {SESSION_FAIRNESS_RATIO:.1}x)"
        ));
    }
    let mut pooled_scenario = measure_sessions(&pooled_name, &pooled);

    if !opts.mutate {
        let tpt_name = format!("sessions_threadlike_s{n}_p{}x{}", pt.pairs, pt.procs);
        println!(
            "running {tpt_name} ({iters} iters/rank, one worker per task: {}) ...",
            n * tasks_per_session
        );
        let tpt = run_sessions(n, pt, iters, Some(n * tasks_per_session), false)?;
        let tpt_ips = tpt.total_imports as f64 / tpt.wall_s.max(1e-12);
        let speedup = pooled_ips / tpt_ips.max(1e-12);
        println!("  {tpt_ips:>10.0} imports/s aggregate  (pooled speedup {speedup:.2}x)");
        pooled_scenario
            .wall_s
            .push(("speedup_vs_thread_per_task".into(), speedup));
        if speedup < SESSION_SPEEDUP_MIN {
            violations.push(format!(
                "{pooled_name}: pooled executor only {speedup:.2}x the \
                 thread-per-task fabric (need {SESSION_SPEEDUP_MIN:.1}x)"
            ));
        }
        scenarios.push(pooled_scenario);
        scenarios.push(measure_sessions(&tpt_name, &tpt));
    } else {
        scenarios.push(pooled_scenario);
    }

    Ok((
        BenchReport {
            mode: "scale-sessions".to_string(),
            scenarios,
        },
        violations,
    ))
}

/// The `--ranks` mode: hierarchical collectives at rank counts past the
/// tree branching factor. Wall time is irrelevant here — the gate reads
/// the deterministic protocol counters: the rep may originate at most
/// `k·⌈log_k N⌉ + 2k` control messages per collective import (O(log N)),
/// and the tree conservation laws must hold exactly (every rank served
/// once per collective, one relay per interior tree edge).
fn run_ranks_mode(opts: &Options, ranks: &[usize]) -> Result<(BenchReport, Vec<String>), String> {
    let hierarchical = !opts.mutate;
    let iters = 4;
    let mut scenarios = Vec::new();
    let mut violations = Vec::new();
    for &n in ranks {
        let pt = GridPoint { pairs: 1, procs: n };
        let name = format!("ranks_n{n:03}");
        let depth = tree::depth(n);
        let budget = (tree::BRANCH * depth + 2 * tree::BRANCH) as u64;
        println!(
            "running {name} ({iters} collective imports over {n}x{n} ranks, {} fan-out) ...",
            if hierarchical { "tree" } else { "FLAT" }
        );
        let options = FabricOptions {
            hierarchical,
            ..FabricOptions::default()
        };
        let run = run_point(pt, iters, None, options).map_err(|e| format!("{name}: {e}"))?;
        let counters = &run.snapshot.counters;
        let origin = counters.ctrl(CtrlClass::ForwardRequest)
            + counters.ctrl(CtrlClass::AnswerBcast)
            + counters.ctrl(CtrlClass::BuddyHelp);
        let per_import = origin / iters as u64;
        println!(
            "  {per_import} rep-origin ctrl msgs/import (budget {budget}), \
             {} relays, tree depth {}",
            counters.ctrl_relay, counters.tree_depth
        );
        if per_import > budget {
            violations.push(format!(
                "{name}: {per_import} rep-origin control messages per import over {n} ranks \
                 exceeds the k*ceil(log_k N) + 2k = {budget} budget (flat O(N) fan-out?)"
            ));
        }
        if hierarchical {
            let conns = [(ConnectionId(0), iters, n, n)];
            if let Err(v) = check_ctrl_scaling(counters, &conns, true) {
                violations.push(format!("{name}: {v}"));
            }
        }
        let mut m = measure(&name, &run);
        m.wall_s
            .push(("origin_per_import".into(), per_import as f64));
        m.wall_s
            .push(("origin_budget_per_import".into(), budget as f64));
        scenarios.push(m);
    }
    Ok((
        BenchReport {
            mode: "scale-ranks".to_string(),
            scenarios,
        },
        violations,
    ))
}

/// The classic weak/strong grid sweep (the default mode).
fn run_grid_mode(opts: &Options) -> Result<(BenchReport, Vec<String>), String> {
    let slowdown = opts
        .mutate
        .then(|| Duration::from_secs_f64(opts.gate_ms * MUTATE_STALL_FACTOR / 1000.0));
    let (weak_iters, strong_total) = if opts.full { (400, 3200) } else { (120, 480) };

    let mut scenarios = Vec::new();
    let mut violations = Vec::new();
    let mut largest: Option<(String, f64)> = None;
    for pt in grid(opts.full) {
        for (series, iters) in [
            ("weak", weak_iters),
            ("strong", (strong_total / (pt.pairs * pt.procs)).max(1)),
        ] {
            let name = format!("scale_{series}_p{}x{}", pt.pairs, pt.procs);
            println!("running {name} ({iters} iters/rank) ...");
            let run = run_point(pt, iters, slowdown, FabricOptions::default())
                .map_err(|e| format!("{name}: {e}"))?;
            let iter_ms = run.wall_s * 1000.0 / (pt.pairs * pt.procs * iters).max(1) as f64;
            let per_sec = run.total_imports as f64 / run.wall_s.max(1e-12);
            println!(
                "  {:>10.0} imports/s  ({iter_ms:.3} ms/iter, {} imports in {:.3}s)",
                per_sec, run.total_imports, run.wall_s
            );
            if iter_ms > opts.gate_ms {
                violations.push(format!(
                    "{name}: {iter_ms:.2} ms per import iteration exceeds the \
                     {:.2} ms budget",
                    opts.gate_ms
                ));
            }
            if series == "weak" {
                largest = Some((name.clone(), per_sec));
            }
            scenarios.push(measure(&name, &run));
        }
    }
    if let Some((name, per_sec)) = largest {
        println!("largest weak point {name}: {per_sec:.0} imports/sec");
    }
    Ok((
        BenchReport {
            mode: if opts.full {
                "scale-full"
            } else {
                "scale-smoke"
            }
            .to_string(),
            scenarios,
        },
        violations,
    ))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let run = match (opts.sessions, opts.ranks.clone()) {
        (Some(n), _) => run_sessions_mode(&opts, n),
        (None, Some(ranks)) => run_ranks_mode(&opts, &ranks),
        (None, None) => run_grid_mode(&opts),
    };
    let (report, violations) = match run {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let text = report.to_text();
    match BenchReport::from_text(&text) {
        Ok(back) if back == report => {}
        Ok(_) => {
            eprintln!("error: report changed across JSON round-trip");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("error: emitted report fails schema validation: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(dir) = opts.out.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: creating {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&opts.out, &text) {
        eprintln!("error: writing {}: {e}", opts.out.display());
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {} ({} scenarios, mode {})",
        opts.out.display(),
        report.scenarios.len(),
        report.mode
    );
    let gate_name = if opts.ranks.is_some() && opts.sessions.is_none() {
        "control-scaling gate".to_string()
    } else {
        format!("throughput gate (budget {:.1} ms/iter)", opts.gate_ms)
    };
    if violations.is_empty() {
        println!("{gate_name} PASS");
        ExitCode::SUCCESS
    } else {
        eprintln!("{gate_name} FAIL:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        ExitCode::FAILURE
    }
}
