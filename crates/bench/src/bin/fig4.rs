//! Regenerates **Figure 4** of the paper: data-exporting time per iteration
//! for the slowest exporter process `p_s`, for importer programs of 4, 8,
//! 16 and 32 processes (panels a–d), plus the buddy-help-off ablation.
//!
//! Usage: `cargo run -p couplink-bench --release --bin fig4 [out_dir]`
//!
//! Writes one CSV per panel (`fig4_u{n}.csv`: per-iteration export seconds,
//! raw and window-averaged, plus the no-buddy-help baseline) and prints the
//! summary rows reported in `EXPERIMENTS.md`.

use couplink::series::{window_mean, Column};
use couplink_bench::report::{out_dir_from_args, write_series};
use couplink_diffusion::fig4::{fig4_config, Fig4Params, EXPORTS, SLOW_RANK};
use couplink_runtime::{CoupledReport, CoupledSim};

fn run(params: Fig4Params) -> CoupledReport {
    CoupledSim::new(fig4_config(params))
        .expect("valid configuration")
        .run()
        .expect("simulation completes")
}

fn main() {
    let out_dir = out_dir_from_args();

    println!("Figure 4: export time per iteration of the slowest exporter process p_s");
    println!("(1024x1024 array, REGL tolerance 2.5, 1001 exports, 1 in 20 transferred)");
    println!();
    println!(
        "{:<7} {:>10} {:>8} {:>8} {:>10} {:>12} {:>14} {:>14}",
        "panel",
        "importers",
        "copies",
        "skips",
        "optimal@",
        "T_ub count",
        "mean ms (all)",
        "mean ms (tail)"
    );

    for (panel, u_procs) in [("(a)", 4usize), ("(b)", 8), ("(c)", 16), ("(d)", 32)] {
        let with = run(Fig4Params::panel(u_procs));
        let without = run(Fig4Params::panel(u_procs).without_buddy_help());
        let series = &with.export_time_series[SLOW_RANK];
        let copies = with.stats[SLOW_RANK].memcpys;
        let skips = with.stats[SLOW_RANK].skips;
        let entry = with.optimal_entry(SLOW_RANK);
        let mean_all = with.mean_export_time(SLOW_RANK, 0, EXPORTS) * 1e3;
        let tail_from = EXPORTS.saturating_sub(200);
        let mean_tail = with.mean_export_time(SLOW_RANK, tail_from, EXPORTS) * 1e3;
        println!(
            "{:<7} {:>10} {:>8} {:>8} {:>10} {:>12} {:>14.3} {:>14.3}",
            panel,
            u_procs,
            copies,
            skips,
            entry.map_or_else(|| "never".into(), |e| e.to_string()),
            with.stats[SLOW_RANK].t_ub_in_region_count(),
            mean_all,
            mean_tail,
        );

        let columns = vec![
            Column::new("export_seconds", series.clone()),
            Column::new(
                "export_seconds_window20",
                expand(&window_mean(series, 20), 20, series.len()),
            ),
            Column::new(
                "no_buddy_help_seconds",
                without.export_time_series[SLOW_RANK].clone(),
            ),
        ];
        write_series(
            &out_dir,
            &format!("fig4_u{u_procs}.csv"),
            "iteration",
            &columns,
        );
    }
    println!();
    println!(
        "CSV series written to {}/fig4_u{{4,8,16,32}}.csv",
        out_dir.display()
    );
    println!("Paper reference shapes: (a)/(b) flat; (c) optimal state ~iteration 400;");
    println!("(d) optimal state ~iteration 25; optimal state = only matched data buffered.");
}

/// Repeats each window mean `window` times so the smoothed curve aligns with
/// the per-iteration index column.
fn expand(means: &[f64], window: usize, len: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(len);
    for m in means {
        for _ in 0..window {
            if out.len() < len {
                out.push(*m);
            }
        }
    }
    out
}
