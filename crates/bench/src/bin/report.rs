//! Emits the machine-readable benchmark report `BENCH_couplink.json` and
//! optionally gates it against a committed baseline.
//!
//! Usage: `cargo run -p couplink-bench --release --bin report -- \
//!     [--smoke] [--mutate] [--out FILE] [--check BASELINE]`
//!
//! * `--smoke` — tiny problem sizes (the CI gate's configuration).
//! * `--out FILE` — output path (default `results/BENCH_couplink.json`).
//! * `--check BASELINE` — compare against a baseline report; exit nonzero
//!   on any gate violation (counter drift, >5% virtual-time drift).
//! * `--mutate` — inject an artificial slowdown (memcpy bandwidth ÷ 8)
//!   before running; used by `ci.sh` to prove the gate has teeth.
//!
//! Every DES scenario is run **twice** and the run aborts if the two
//! counter/virtual-time snapshots differ — determinism is an assertion,
//! not an aspiration.

use couplink_bench::report::{compare, BenchReport, GateConfig, ScenarioMeasure};
use couplink_bench::{ablation_config, figure78_run};
use couplink_diffusion::fig4::{fig4_config, Fig4Params};
use couplink_layout::{Decomposition, Extent2, LocalArray, RedistPlan};
use couplink_proto::{ExporterRep, ProcResponse, Rank, RequestId};
use couplink_runtime::{CoupledConfig, CoupledSim};
use couplink_time::{evaluate, ts, ExportHistory, MatchPolicy, Tolerance};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

struct Options {
    smoke: bool,
    mutate: bool,
    out: PathBuf,
    check: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        smoke: false,
        mutate: false,
        out: PathBuf::from("results/BENCH_couplink.json"),
        check: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--mutate" => opts.mutate = true,
            "--out" => opts.out = PathBuf::from(args.next().ok_or("--out needs a path")?),
            "--check" => {
                opts.check = Some(PathBuf::from(args.next().ok_or("--check needs a path")?))
            }
            other => {
                return Err(format!(
                    "unknown argument {other:?} (see --help in the doc)"
                ))
            }
        }
    }
    Ok(opts)
}

/// The DES scenarios of the report: the four Figure-4 panels, the Figure-4
/// buddy-help ablation, and one ablation point per match policy.
fn des_scenarios(smoke: bool) -> Vec<(String, CoupledConfig)> {
    let fig4_exports = if smoke { 101 } else { 1001 };
    let ablation_exports = if smoke { 121 } else { 601 };
    let mut out = Vec::new();
    for u_procs in [4usize, 8, 16, 32] {
        let params = Fig4Params {
            u_procs,
            buddy_help: true,
            exports: fig4_exports,
        };
        out.push((format!("fig4_u{u_procs}"), fig4_config(params)));
    }
    out.push((
        "fig4_u16_nohelp".to_string(),
        fig4_config(Fig4Params {
            u_procs: 16,
            buddy_help: false,
            exports: fig4_exports,
        }),
    ));
    for policy in [MatchPolicy::RegL, MatchPolicy::RegU, MatchPolicy::Reg] {
        out.push((
            format!("ablation_{}", policy.as_str().to_lowercase()),
            ablation_config(policy, 2.5, 20.0, true, ablation_exports),
        ));
    }
    out
}

/// Runs one DES scenario twice, asserts the deterministic halves of the two
/// metric snapshots are identical, and folds the result into a measurement.
fn run_des(name: &str, mut cfg: CoupledConfig, mutate: bool) -> Result<ScenarioMeasure, String> {
    if mutate {
        // The injected regression: memcpys become 8x slower, which inflates
        // the export-phase virtual time (and shifts buffering decisions)
        // well past the gate's tolerance.
        cfg.cost.memcpy_bytes_per_sec /= 8.0;
    }
    let run = |cfg: CoupledConfig| -> Result<_, String> {
        let wall = Instant::now();
        let report = CoupledSim::new(cfg)
            .map_err(|e| format!("{name}: {e}"))?
            .run()
            .map_err(|e| format!("{name}: {e}"))?;
        Ok((report, wall.elapsed().as_secs_f64()))
    };
    let (a, wall_a) = run(cfg.clone())?;
    let (b, _) = run(cfg)?;
    if a.metrics.counters != b.metrics.counters {
        return Err(format!(
            "{name}: counter snapshots differ between two identical DES runs \
             (determinism broken):\n  first : {:?}\n  second: {:?}",
            a.metrics.counters, b.metrics.counters
        ));
    }
    if a.metrics.timing.virtual_s != b.metrics.timing.virtual_s {
        return Err(format!(
            "{name}: virtual phase times differ between two identical DES runs \
             (determinism broken): {:?} vs {:?}",
            a.metrics.timing.virtual_s, b.metrics.timing.virtual_s
        ));
    }
    let mut m = ScenarioMeasure::from_metrics(name, &a.metrics);
    m.virtual_s.push(("total".to_string(), a.duration));
    m.wall_s.push(("run".to_string(), wall_a));
    Ok(m)
}

/// The Figure 7/8 port-level scenarios: pure protocol arithmetic, fully
/// deterministic, gated exactly.
fn fig78_scenarios() -> Vec<ScenarioMeasure> {
    [("fig7_buddy_help", true), ("fig8_no_help", false)]
        .into_iter()
        .map(|(name, buddy_help)| {
            let run = figure78_run(buddy_help);
            let mut m = ScenarioMeasure::named(name);
            m.counters = vec![
                ("memcpy_paid".to_string(), run.copied as u64),
                ("memcpy_skipped".to_string(), run.skipped as u64),
                (
                    "unnecessary_in_region".to_string(),
                    run.unnecessary_in_region,
                ),
            ];
            m
        })
        .collect()
}

/// Times `iters` runs of `f` and returns mean seconds per iteration.
fn time_iters(iters: usize, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() / iters as f64
}

/// Wall-only microbenchmarks mirroring the Criterion benches in
/// `benches/`: matching, redistribution, rep aggregation and the export
/// memcpy itself. Informational — the gate never compares wall times.
fn micro_scenarios(smoke: bool) -> Vec<ScenarioMeasure> {
    let scale = if smoke { 1 } else { 10 };
    let mut out = Vec::new();
    let mut push = |name: &str, secs_per_iter: f64| {
        let mut m = ScenarioMeasure::named(name);
        m.wall_s = vec![("iter".to_string(), secs_per_iter)];
        out.push(m);
    };

    // benches/matching.rs: evaluate over a 10k-export history.
    let mut history = ExportHistory::new();
    for i in 0..10_000 {
        history.record(ts(i as f64 + 0.6)).expect("ascending");
    }
    let region = MatchPolicy::RegL.region(ts(7_500.0), Tolerance::new(2.5).expect("tolerance"));
    push(
        "micro_matching_evaluate_10k",
        time_iters(200 * scale, || {
            std::hint::black_box(evaluate(&region, &history).expect("evaluates"));
        }),
    );

    // benches/redist.rs: plan build and in-memory execution, 2x2 -> 32.
    let e = Extent2::new(1024, 1024);
    let src = Decomposition::block_2d(e, 2, 2).expect("2x2");
    let dst = Decomposition::row_block(e, 32).expect("32 rows");
    push(
        "micro_redist_plan_build_32",
        time_iters(20 * scale, || {
            std::hint::black_box(RedistPlan::build(src, dst).expect("plan"));
        }),
    );
    let plan = RedistPlan::build(src, dst).expect("plan");
    let src_pieces: Vec<LocalArray> = (0..src.procs())
        .map(|r| LocalArray::from_fn(src.owned(r), |a, b| (a * 7 + b) as f64))
        .collect();
    let mut dst_pieces: Vec<LocalArray> = (0..dst.procs())
        .map(|r| LocalArray::zeros(dst.owned(r)))
        .collect();
    push(
        "micro_redist_execute_32",
        time_iters(5 * scale, || {
            plan.execute(&src_pieces, &mut dst_pieces);
            std::hint::black_box(dst_pieces[0].as_slice()[0]);
        }),
    );

    // benches/rep_aggregation.rs: 100 collective requests over 32 procs.
    push(
        "micro_rep_aggregation_32",
        time_iters(20 * scale, || {
            let procs = 32;
            let mut rep = ExporterRep::new(procs, true);
            for j in 0..100u64 {
                let x = 20.0 * (j + 1) as f64;
                rep.on_import_request(RequestId(j), ts(x)).expect("request");
                for r in 0..procs {
                    let reply = if r < procs / 2 {
                        ProcResponse::Pending { latest: None }
                    } else {
                        ProcResponse::Match(ts(x - 0.4))
                    };
                    rep.on_response(Rank(r as u32), RequestId(j), reply)
                        .expect("response");
                }
            }
            std::hint::black_box(rep.inflight_len());
        }),
    );

    // benches/fig4_export.rs: the raw 2 MiB buffering memcpy.
    let piece = vec![1.25_f64; 512 * 512];
    let mut store = vec![0.0_f64; 512 * 512];
    push(
        "micro_export_memcpy_2mib",
        time_iters(50 * scale, || {
            store.copy_from_slice(&piece);
            std::hint::black_box(store[0]);
        }),
    );
    out
}

fn build_report(opts: &Options) -> Result<BenchReport, String> {
    let mut scenarios = Vec::new();
    for (name, cfg) in des_scenarios(opts.smoke) {
        println!("running {name} ...");
        scenarios.push(run_des(&name, cfg, opts.mutate)?);
    }
    scenarios.extend(fig78_scenarios());
    scenarios.extend(micro_scenarios(opts.smoke));
    Ok(BenchReport {
        mode: if opts.smoke { "smoke" } else { "full" }.to_string(),
        scenarios,
    })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match build_report(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Round-trip through the strict parser: the emitted file is guaranteed
    // schema-valid or the run fails here.
    let text = report.to_text();
    match BenchReport::from_text(&text) {
        Ok(back) if back == report => {}
        Ok(_) => {
            eprintln!("error: report changed across JSON round-trip");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("error: emitted report fails schema validation: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(dir) = opts.out.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: creating {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&opts.out, &text) {
        eprintln!("error: writing {}: {e}", opts.out.display());
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {} ({} scenarios, mode {})",
        opts.out.display(),
        report.scenarios.len(),
        report.mode
    );

    if let Some(baseline_path) = &opts.check {
        let baseline = match BenchReport::load(baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: loading baseline: {e}");
                return ExitCode::FAILURE;
            }
        };
        let violations = compare(&baseline, &report, GateConfig::default());
        if violations.is_empty() {
            println!(
                "gate PASS against {} (counters exact, virtual times within 5%)",
                baseline_path.display()
            );
        } else {
            eprintln!("gate FAIL against {}:", baseline_path.display());
            for v in &violations {
                eprintln!("  - {v}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
