//! Ablation sweep the paper discusses in §5 but does not plot: the benefit
//! of buddy-help as a function of the ratio between the acceptable-region
//! size (tolerance) and the importer request inter-arrival time, and of the
//! match policy.
//!
//! Usage: `cargo run -p couplink-bench --release --bin ablation [out_dir]`

use couplink::series::Column;
use couplink_bench::ablation_config;
use couplink_bench::report::{out_dir_from_args, write_series};
use couplink_runtime::{CoupledConfig, CoupledSim};
use couplink_time::MatchPolicy;

fn config(policy: MatchPolicy, tolerance: f64, import_dt: f64, buddy_help: bool) -> CoupledConfig {
    ablation_config(policy, tolerance, import_dt, buddy_help, 601)
}

fn main() {
    let out_dir = out_dir_from_args();

    println!("Ablation: buddy-help benefit vs tolerance/request-period ratio and policy");
    println!("(256x256 array, fast 16-process importer, slow exporter rank 3)");
    println!();
    println!(
        "{:>7} {:>10} {:>10} {:>8} {:>14} {:>14} {:>12}",
        "policy", "tolerance", "period", "ratio", "skips w/ help", "skips w/o", "T_ub w/ : w/o"
    );

    let mut ratio_col = Vec::new();
    let mut saved_col = Vec::new();
    for policy in [MatchPolicy::RegL, MatchPolicy::RegU, MatchPolicy::Reg] {
        for tolerance in [0.5, 2.5, 5.0, 10.0] {
            for import_dt in [10.0, 20.0, 40.0] {
                let with = CoupledSim::new(config(policy, tolerance, import_dt, true))
                    .unwrap()
                    .run()
                    .unwrap();
                let without = CoupledSim::new(config(policy, tolerance, import_dt, false))
                    .unwrap()
                    .run()
                    .unwrap();
                let slow = 3;
                let sw = with.stats[slow].skips;
                let swo = without.stats[slow].skips;
                let ubw = with.stats[slow].t_ub_in_region_count();
                let ubwo = without.stats[slow].t_ub_in_region_count();
                println!(
                    "{:>7} {:>10} {:>10} {:>8.3} {:>14} {:>14} {:>8} : {:<4}",
                    policy.as_str(),
                    tolerance,
                    import_dt,
                    tolerance / import_dt,
                    sw,
                    swo,
                    ubw,
                    ubwo
                );
                if policy == MatchPolicy::RegL {
                    ratio_col.push(tolerance / import_dt);
                    saved_col.push(swo as f64 - sw as f64);
                }
            }
        }
    }
    write_series(
        &out_dir,
        "ablation_regl.csv",
        "row",
        &[
            Column::new("tolerance_over_period", ratio_col),
            Column::new("extra_skips_without_help_minus_with", saved_col),
        ],
    );
    println!();
    println!("CSV written to {}/ablation_regl.csv", out_dir.display());
    println!("Expected: the in-region T_ub saved by buddy-help grows with the number of");
    println!("exports per acceptable region (tolerance x export rate), and is zero only");
    println!("when at most one export fits in a region.");
}
