//! Regenerates **Figure 5** of the paper: the typical buddy-help scenario on
//! the slow exporter process (REGL, tolerance 2.5, requests at 20 and 40).
//!
//! Usage: `cargo run -p couplink-bench --bin fig5_trace [out_dir]`
//!
//! Prints the trace and writes the annotated render (the golden-snapshot
//! format) into the output directory, `results/` by default.

use couplink_bench::figure5_trace;
use couplink_bench::report::{out_dir_from_args, write_text};

fn main() {
    let out_dir = out_dir_from_args();
    let trace = figure5_trace();
    println!("Figure 5: a typical buddy-help scenario (REGL, tolerance 2.5)");
    println!();
    print!("{}", trace.render());
    let (copied, skipped) = trace.export_counts();
    println!();
    println!("memcpys called: {copied}, memcpys skipped: {skipped}");
    println!("paper: 4 skips in the first window (lines 10-13), 7 in the second (26-29)");
    write_text(&out_dir, "fig5_trace.txt", &trace.render_annotated());
    println!();
    println!(
        "annotated trace written to {}/fig5_trace.txt",
        out_dir.display()
    );
}
