//! Regenerates **Figure 5** of the paper: the typical buddy-help scenario on
//! the slow exporter process (REGL, tolerance 2.5, requests at 20 and 40).
//!
//! Usage: `cargo run -p couplink-bench --bin fig5_trace`

use couplink_bench::figure5_trace;

fn main() {
    let trace = figure5_trace();
    println!("Figure 5: a typical buddy-help scenario (REGL, tolerance 2.5)");
    println!();
    print!("{}", trace.render());
    let (copied, skipped) = trace.export_counts();
    println!();
    println!("memcpys called: {copied}, memcpys skipped: {skipped}");
    println!("paper: 4 skips in the first window (lines 10-13), 7 in the second (26-29)");
}
