//! Regenerates **Figures 7 and 8** of the paper: the same REGL/tolerance-5.0
//! scenario with and without buddy-help. With buddy-help only the match is
//! copied; without it every acceptable candidate is copied and then
//! superseded, costing `n(i) − 1` unnecessary memcpys (Equation 1).
//!
//! Usage: `cargo run -p couplink-bench --bin fig7_fig8 [out_dir]`
//!
//! Prints both traces and writes them (with running metric annotations)
//! into the output directory, `results/` by default.

use couplink_bench::figure78_run;
use couplink_bench::report::{out_dir_from_args, write_text};

fn main() {
    let out_dir = out_dir_from_args();
    let with = figure78_run(true);
    let without = figure78_run(false);

    println!("Figure 7: WITH buddy-help (REGL, tolerance 5.0, request @10.0)");
    println!();
    print!("{}", with.trace.render());
    println!();
    println!("Figure 8: WITHOUT buddy-help (same scenario)");
    println!();
    print!("{}", without.trace.render());
    println!();
    println!(
        "{:<22} {:>8} {:>8} {:>24}",
        "", "memcpys", "skips", "unnecessary in-region"
    );
    println!(
        "{:<22} {:>8} {:>8} {:>24}",
        "with buddy-help", with.copied, with.skipped, with.unnecessary_in_region
    );
    println!(
        "{:<22} {:>8} {:>8} {:>24}",
        "without buddy-help", without.copied, without.skipped, without.unnecessary_in_region
    );
    println!();
    println!("paper: without buddy-help, lines 8-18 copy every in-region candidate and");
    println!("free its predecessor; with buddy-help, lines 8-11 skip them all.");
    write_text(&out_dir, "fig7_trace.txt", &with.trace.render_annotated());
    write_text(
        &out_dir,
        "fig8_trace.txt",
        &without.trace.render_annotated(),
    );
    println!();
    println!(
        "annotated traces written to {}/fig{{7,8}}_trace.txt",
        out_dir.display()
    );
}
