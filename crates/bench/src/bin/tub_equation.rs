//! Validates **Equations (1) and (2)** of the paper: the framework's
//! measured unnecessary-buffering counts equal the closed form
//! `T_i = Σ_{k=1}^{n(i)−1} t_k`, `T_ub = Σ_i T_i` on disjoint-region
//! workloads, across tolerances and export rates.
//!
//! Usage: `cargo run -p couplink-bench --bin tub_equation`

use couplink_bench::equation_workload;
use couplink_runtime::CostModel;

fn main() {
    println!("Equations (1)-(2): measured unnecessary buffering vs closed form");
    println!("(disjoint REGL regions, requests every 100 time units, worst-case late requests)");
    println!();
    println!(
        "{:>9} {:>16} {:>12} {:>12} {:>14} {:>8}",
        "tolerance", "exports/unit", "T_ub meas.", "T_ub closed", "T_ub (ms)*", "match"
    );
    let cost = CostModel::default();
    let piece_bytes = 512 * 512 * 8; // one exporter process's 2 MiB piece
    for tolerance in [0.5, 2.5, 5.0, 10.0] {
        for exports_per_unit in [1usize, 2, 4] {
            let (measured, closed) = equation_workload(8, tolerance, exports_per_unit);
            let t_meas: u64 = measured.iter().sum();
            let t_closed: u64 = closed.iter().sum();
            let t_ub_ms = t_meas as f64 * cost.memcpy_time(piece_bytes) * 1e3;
            println!(
                "{:>9} {:>16} {:>12} {:>12} {:>14.2} {:>8}",
                tolerance,
                exports_per_unit,
                t_meas,
                t_closed,
                t_ub_ms,
                if measured == closed { "OK" } else { "FAIL" }
            );
            assert_eq!(measured, closed, "Equation (1) violated per region");
        }
    }
    println!();
    println!("* seconds of unnecessary memcpy at the default cost model");
    println!("  (2 MiB pieces at 1.5 GB/s), Equation (2).");
}
