//! Finite-buffer-space study (the paper's §6 future work, built here):
//! how a bounded framework buffer throttles the exporter, and how buddy-help
//! relieves the pressure by never buffering objects it can prove dead.
//!
//! Usage: `cargo run -p couplink-bench --release --bin finite_buffer`

use couplink_layout::{Decomposition, Extent2};
use couplink_runtime::{CostModel, CoupledConfig, CoupledSim};
use couplink_time::MatchPolicy;

fn config(
    buffer_capacity: Option<usize>,
    buddy_help: bool,
    importer_compute: f64,
) -> CoupledConfig {
    let grid = Extent2::new(256, 256);
    CoupledConfig {
        exporter_decomp: Decomposition::block_2d(grid, 2, 2).unwrap(),
        importer_decomp: Decomposition::row_block(grid, 16).unwrap(),
        policy: MatchPolicy::RegL,
        tolerance: 2.5,
        buddy_help,
        exports: 601,
        export_t0: 1.6,
        export_dt: 1.0,
        imports: 30,
        import_t0: 20.0,
        import_dt: 20.0,
        exporter_compute: vec![1.0e-3, 1.0e-3, 1.0e-3, 2.0e-3],
        importer_compute,
        importer_startup: 50.0e-3,
        cost: CostModel::default(),
        buffer_capacity,
    }
}

fn main() {
    println!("Finite framework buffers: exporter stalls vs capacity (slow rank p_s)");
    println!();
    println!(
        "{:>9} {:>11} {:>9} {:>8} {:>8} {:>12} {:>12}",
        "capacity", "buddy-help", "importer", "stalls", "peak", "duration s", "done imports"
    );
    for &importer_compute in &[40.0e-3_f64, 5.0e-3] {
        let importer = if importer_compute > 20.0e-3 {
            "slow"
        } else {
            "fast"
        };
        for capacity in [None, Some(24), Some(8), Some(4)] {
            for buddy in [true, false] {
                let report = CoupledSim::new(config(capacity, buddy, importer_compute))
                    .unwrap()
                    .run()
                    .unwrap();
                let slow = 3;
                println!(
                    "{:>9} {:>11} {:>9} {:>8} {:>8} {:>12.2} {:>12}",
                    capacity.map_or_else(|| "unbounded".into(), |c| c.to_string()),
                    buddy,
                    importer,
                    report.stats[slow].buffer_full_stalls,
                    report.stats[slow].buffered_hwm,
                    report.duration,
                    report.importer_done[0],
                );
            }
        }
        println!();
    }
    println!("Expected: with a slow importer, small buffers throttle the exporter to the");
    println!("importer's pace (stalls grow as capacity shrinks). With a fast importer and");
    println!("buddy-help, the slow process barely buffers at all, so even tiny buffers");
    println!("cost nothing — buddy-help doubles as a buffer-pressure valve.");
}
