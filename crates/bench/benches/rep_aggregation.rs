//! Benchmarks of the rep control gateway: request fan-out/aggregation cost
//! per collective request as the exporting program scales (the "low-overhead
//! control gateway" claim of §4).

use couplink_proto::{ExporterRep, ImporterRep, ProcResponse, Rank, RequestId};
use couplink_time::ts;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_exporter_rep(c: &mut Criterion) {
    let mut group = c.benchmark_group("exporter_rep_request");
    for &procs in &[4usize, 32, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(procs), &procs, |b, &procs| {
            b.iter_batched(
                || ExporterRep::new(procs, true),
                |mut rep| {
                    // 100 requests; half the ranks answer PENDING first and
                    // get buddy-help when the first MATCH lands.
                    for j in 0..100u64 {
                        let x = 20.0 * (j + 1) as f64;
                        rep.on_import_request(RequestId(j), ts(x)).unwrap();
                        for r in 0..procs / 2 {
                            rep.on_response(
                                Rank(r as u32),
                                RequestId(j),
                                ProcResponse::Pending { latest: None },
                            )
                            .unwrap();
                        }
                        for r in procs / 2..procs {
                            rep.on_response(
                                Rank(r as u32),
                                RequestId(j),
                                ProcResponse::Match(ts(x - 0.4)),
                            )
                            .unwrap();
                        }
                    }
                    black_box(rep.inflight_len())
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_importer_rep(c: &mut Criterion) {
    let mut group = c.benchmark_group("importer_rep_call");
    for &procs in &[4usize, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(procs), &procs, |b, &procs| {
            b.iter_batched(
                || ImporterRep::new(procs),
                |mut rep| {
                    for j in 0..100u64 {
                        let x = 20.0 * (j + 1) as f64;
                        for r in 0..procs {
                            rep.on_import_call(Rank(r as u32), ts(x)).unwrap();
                        }
                        rep.on_answer(RequestId(j), couplink_proto::RepAnswer::Match(ts(x - 0.4)))
                            .unwrap();
                    }
                    black_box(rep.issued())
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exporter_rep, bench_importer_rep);
criterion_main!(benches);
