//! Benchmarks of the M×N redistribution substrate: plan construction and
//! in-memory execution (pack + unpack of every transfer) for the paper's
//! 1024×1024 array moving from 2×2 quadrants to n row blocks.

use couplink_layout::{Decomposition, Extent2, LocalArray, RedistPlan};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_plan_build(c: &mut Criterion) {
    let e = Extent2::new(1024, 1024);
    let src = Decomposition::block_2d(e, 2, 2).unwrap();
    let mut group = c.benchmark_group("plan_build");
    for &n in &[4usize, 8, 16, 32] {
        let dst = Decomposition::row_block(e, n).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &dst, |b, dst| {
            b.iter(|| black_box(RedistPlan::build(src, *dst).unwrap()));
        });
    }
    group.finish();
}

fn bench_execute(c: &mut Criterion) {
    let e = Extent2::new(1024, 1024);
    let src = Decomposition::block_2d(e, 2, 2).unwrap();
    let mut group = c.benchmark_group("plan_execute");
    group.sample_size(20);
    group.throughput(Throughput::Bytes((e.cells() * 8) as u64));
    for &n in &[4usize, 32] {
        let dst = Decomposition::row_block(e, n).unwrap();
        let plan = RedistPlan::build(src, dst).unwrap();
        let src_pieces: Vec<LocalArray> = (0..src.procs())
            .map(|r| LocalArray::from_fn(src.owned(r), |a, b| (a * 7 + b) as f64))
            .collect();
        let mut dst_pieces: Vec<LocalArray> = (0..dst.procs())
            .map(|r| LocalArray::zeros(dst.owned(r)))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &plan, |b, plan| {
            b.iter(|| {
                plan.execute(&src_pieces, &mut dst_pieces);
                black_box(dst_pieces[0].as_slice()[0])
            });
        });
    }
    group.finish();
}

fn bench_pack(c: &mut Criterion) {
    let owned = couplink_layout::Rect::new(0, 0, 512, 512);
    let arr = LocalArray::from_fn(owned, |r, c| (r + c) as f64);
    let sub = couplink_layout::Rect::new(128, 0, 256, 512);
    let mut group = c.benchmark_group("pack");
    group.throughput(Throughput::Bytes((sub.cells() * 8) as u64));
    group.bench_function("contiguous_rows_1MiB", |b| {
        b.iter(|| black_box(arr.pack(&sub)));
    });
    let strided = couplink_layout::Rect::new(0, 128, 512, 256);
    group.bench_function("strided_rows_1MiB", |b| {
        b.iter(|| black_box(arr.pack(&strided)));
    });
    group.finish();
}

criterion_group!(benches, bench_plan_build, bench_execute, bench_pack);
criterion_main!(benches);
