//! The headline measurement behind Figure 4: what does an `export` call cost
//! on real hardware when the framework must buffer (memcpy) the object,
//! versus when buddy-help lets it skip the copy?
//!
//! Run with `cargo bench -p couplink-bench --bench fig4_export`.

use couplink_proto::{ConnectionId, ExportAction, ExportPort, RepAnswer, RequestId};
use couplink_runtime::CoupledSim;
use couplink_time::{ts, MatchPolicy, Tolerance};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::collections::BTreeMap;
use std::hint::black_box;

/// One exporter process's piece of the paper's array: 512×512 f64 = 2 MiB.
const PIECE_CELLS: usize = 512 * 512;

/// Baseline path: no request information, every export must memcpy into the
/// framework buffer (Figure 4(a)/(b) and the pre-optimal phase of (c)/(d)).
fn bench_buffer_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("export_call");
    group.throughput(Throughput::Bytes((PIECE_CELLS * 8) as u64));
    group.bench_function("buffer_memcpy_2MiB", |b| {
        let data = vec![1.25_f64; PIECE_CELLS];
        b.iter_batched(
            || {
                (
                    ExportPort::new(
                        ConnectionId(0),
                        MatchPolicy::RegL,
                        Tolerance::new(2.5).unwrap(),
                    ),
                    BTreeMap::<couplink_time::Timestamp, Vec<f64>>::new(),
                    0u32,
                )
            },
            |(mut port, mut store, mut i)| {
                // 16 exports per batch, all buffered (no request known).
                for _ in 0..16 {
                    i += 1;
                    let t = ts(i as f64);
                    let fx = port.on_export(t).unwrap();
                    if fx.action.unwrap().copies() {
                        store.insert(t, data.clone());
                    }
                    for f in &fx.freed {
                        store.remove(f);
                    }
                }
                black_box(store.len())
            },
            criterion::BatchSize::LargeInput,
        );
    });

    // Buddy-help path: the match for each window is known in advance, so 19
    // out of 20 exports skip the memcpy entirely (the optimal state).
    group.bench_function("buddy_help_skip_2MiB", |b| {
        let data = vec![1.25_f64; PIECE_CELLS];
        b.iter_batched(
            || {
                let mut port = ExportPort::new(
                    ConnectionId(0),
                    MatchPolicy::RegL,
                    Tolerance::new(2.5).unwrap(),
                );
                // A request for @20 with buddy-help answer @16 means exports
                // 1..16 are decided before they happen.
                port.on_request(RequestId(0), ts(20.0)).unwrap();
                port.on_buddy_help(RequestId(0), RepAnswer::Match(ts(19.0)))
                    .unwrap();
                (
                    port,
                    BTreeMap::<couplink_time::Timestamp, Vec<f64>>::new(),
                    0u32,
                )
            },
            |(mut port, mut store, mut i)| {
                for _ in 0..16 {
                    i += 1;
                    let t = ts(i as f64);
                    let fx = port.on_export(t).unwrap();
                    match fx.action.unwrap() {
                        ExportAction::Skip => {}
                        _ => {
                            store.insert(t, data.clone());
                        }
                    }
                    for f in &fx.freed {
                        store.remove(f);
                    }
                }
                black_box(store.len())
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

/// End-to-end discrete-event reproduction speed for shortened Figure 4
/// panels (simulator throughput, not virtual time).
fn bench_des_panels(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_des_panel");
    group.sample_size(10);
    for u_procs in [4usize, 16, 32] {
        group.bench_with_input(
            BenchmarkId::from_parameter(u_procs),
            &u_procs,
            |b, &u_procs| {
                let mut params = couplink_diffusion::fig4::Fig4Params::panel(u_procs);
                params.exports = 201;
                b.iter(|| {
                    let cfg = couplink_diffusion::fig4::fig4_config(params);
                    let report = CoupledSim::new(cfg).unwrap().run().unwrap();
                    black_box(report.duration)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_buffer_path, bench_des_panels);
criterion_main!(benches);
