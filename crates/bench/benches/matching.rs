//! Micro-benchmarks of the approximate matching engine: the per-request and
//! per-export control-plane costs that the framework adds over an ad-hoc
//! tightly coupled exchange (the §4.1 overhead discussion).

use couplink_time::{evaluate, ts, ExportHistory, MatchPolicy, Tolerance};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_evaluate(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluate");
    for &n in &[100usize, 10_000] {
        let mut history = ExportHistory::new();
        for i in 0..n {
            history.record(ts(i as f64 + 0.6)).unwrap();
        }
        let request = ts(n as f64 * 0.75);
        for policy in [MatchPolicy::RegL, MatchPolicy::RegU, MatchPolicy::Reg] {
            let region = policy.region(request, Tolerance::new(2.5).unwrap());
            group.bench_with_input(
                BenchmarkId::new(policy.as_str(), n),
                &region,
                |b, region| {
                    b.iter(|| black_box(evaluate(region, &history).unwrap()));
                },
            );
        }
    }
    group.finish();
}

fn bench_history(c: &mut Criterion) {
    let mut group = c.benchmark_group("history");
    group.bench_function("record_10k", |b| {
        b.iter(|| {
            let mut h = ExportHistory::new();
            for i in 0..10_000 {
                h.record(ts(i as f64)).unwrap();
            }
            black_box(h.retained())
        });
    });
    group.bench_function("record_with_rolling_prune_10k", |b| {
        b.iter(|| {
            let mut h = ExportHistory::new();
            for i in 0..10_000 {
                h.record(ts(i as f64)).unwrap();
                if i % 20 == 0 && i > 100 {
                    h.prune_below(ts((i - 100) as f64));
                }
            }
            black_box(h.retained())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_evaluate, bench_history);
criterion_main!(benches);
