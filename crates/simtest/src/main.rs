//! CLI entry point: run a seed corpus (or one seed) through both runtimes
//! and the oracles; `--mutate` proves the oracles catch a deliberately
//! broken pruning rule.

use couplink_simtest::{check_scenario, mutation_smoke, shrink, write_failure_report, Scenario};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: couplink-simtest [--seed N | --seeds N] [--mutate] [--out DIR]

  --seed N    run exactly one seed through both runtimes and the oracles
  --seeds N   run seeds 0..N (default 50)
  --mutate    arm the deliberately unsound pruning rule and demand the
              buffer-safety oracle catches it (mutation smoke test)
  --out DIR   where failure reports go (default results/simtest)";

struct Args {
    seed: Option<u64>,
    seeds: u64,
    mutate: bool,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: None,
        seeds: 50,
        mutate: false,
        out: PathBuf::from("results/simtest"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--seed" => {
                args.seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                )
            }
            "--seeds" => {
                args.seeds = value("--seeds")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?
            }
            "--mutate" => args.mutate = true,
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("{msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if args.mutate {
        return run_mutation(&args);
    }

    let seeds: Vec<u64> = match args.seed {
        Some(s) => vec![s],
        None => (0..args.seeds).collect(),
    };
    let total = seeds.len();
    for seed in seeds {
        let scenario = Scenario::generate(seed);
        match check_scenario(&scenario) {
            Err(e) => {
                eprintln!("seed {seed}: harness error: {e}");
                return ExitCode::from(2);
            }
            Ok(violations) if violations.is_empty() => {
                println!(
                    "seed {seed}: ok ({} exporters, {} importers, chaos: {})",
                    scenario.exporters.len(),
                    scenario.importers.len(),
                    scenario.chaos.is_some(),
                );
            }
            Ok(violations) => {
                eprintln!("seed {seed}: {} oracle violation(s)", violations.len());
                for v in &violations {
                    eprintln!("  - {v}");
                }
                let fails = |s: &Scenario| matches!(check_scenario(s), Ok(v) if !v.is_empty());
                let shrunk = shrink(&scenario, fails);
                let final_violations = check_scenario(&shrunk).unwrap_or(violations);
                match write_failure_report(
                    &args.out,
                    &format!("seed-{seed}"),
                    &shrunk,
                    &final_violations,
                ) {
                    Ok(path) => eprintln!("shrunk reproducer written to {}", path.display()),
                    Err(e) => eprintln!("failed to write report: {e}"),
                }
                return ExitCode::FAILURE;
            }
        }
    }
    println!("{total} seed(s), zero oracle violations on both runtimes");
    ExitCode::SUCCESS
}

fn run_mutation(args: &Args) -> ExitCode {
    match mutation_smoke(200) {
        Some((seed, shrunk, violations)) => {
            println!("mutation caught at seed {seed}; shrunk reproducer seed {seed}:");
            for v in &violations {
                println!("  - {v}");
            }
            match write_failure_report(
                &args.out,
                &format!("mutation-seed-{seed}"),
                &shrunk,
                &violations,
            ) {
                Ok(path) => println!("shrunk reproducer written to {}", path.display()),
                Err(e) => eprintln!("failed to write report: {e}"),
            }
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("mutation NOT caught in 200 seeds: the buffer-safety oracle has no teeth");
            ExitCode::FAILURE
        }
    }
}
