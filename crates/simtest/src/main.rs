//! CLI entry point: run a seed corpus (or one seed) through both runtimes
//! and the oracles; `--mutate` proves the oracles catch the deliberately
//! broken protocol rules; `--faults` forces permanent loss plus a rep
//! crash onto every seed and demands full recovery.

use couplink_runtime::engine::OracleViolation;
use couplink_runtime::net::SocketBackend;
use couplink_simtest::{
    check_scenario, check_scenario_socket, mutation_smoke, run_net_fault, run_socket, shrink,
    write_failure_report, Mutation, Scenario,
};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str =
    "usage: couplink-simtest [--seed N | --seeds N] [--mutate] [--faults] [--socket B] [--out DIR]

  --seed N    run exactly one seed through both runtimes and the oracles
  --seeds N   run seeds 0..N (default 50)
  --mutate    arm each deliberately unsound protocol rule in turn and
              demand the safety oracles catch it (mutation smoke): two
              export-side skips plus a dropped tree-relay edge
  --faults    force permanent faults (20% message loss + a rep crash with
              restart or heartbeat failover) onto every seed; all oracles
              must still pass on both runtimes
  --stress    concurrency stress: every program at the process ceiling
              with zero compute/startup skew, fault-free (the coalesced
              control plane under maximum simultaneous pressure)
  --socket B  also run each seed on the socket runtime (B = uds or tcp):
              every program its own OS process on loopback; checks all
              three runtimes agree on matches and protocol counters
  --drop-answers
              (with --socket) inject a receiver-side codec bug that
              silently drops collective-answer frames; the run FAILS
              unless the liveness oracle fires (negative test)
  --net-faults
              (with --socket uds) process-level chaos with durable
              journals: even seeds SIGKILL the first exporter at APP_DONE
              and restart it from its write-ahead journal; odd seeds sever
              a mesh link mid-run and demand re-dial + replay. Every run
              must complete with net_reconnects >= 1 (and wal_replayed
              >= 1 for the kill class) and zero process crashes
  --corrupt-wal
              (with --socket uds) SIGKILL + restart, but flip a byte in
              the victim's journal first; the run FAILS unless the
              restarted node refuses the corrupt journal (negative test)
  --out DIR   where failure reports go (default results/simtest)";

struct Args {
    seed: Option<u64>,
    seeds: u64,
    mutate: bool,
    faults: bool,
    stress: bool,
    socket: Option<SocketBackend>,
    drop_answers: bool,
    net_faults: bool,
    corrupt_wal: bool,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: None,
        seeds: 50,
        mutate: false,
        faults: false,
        stress: false,
        socket: None,
        drop_answers: false,
        net_faults: false,
        corrupt_wal: false,
        out: PathBuf::from("results/simtest"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--seed" => {
                args.seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                )
            }
            "--seeds" => {
                args.seeds = value("--seeds")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?
            }
            "--mutate" => args.mutate = true,
            "--faults" => args.faults = true,
            "--stress" => args.stress = true,
            "--socket" => {
                args.socket = Some(
                    value("--socket")?
                        .parse()
                        .map_err(|e: String| format!("--socket: {e}"))?,
                )
            }
            "--drop-answers" => args.drop_answers = true,
            "--net-faults" => args.net_faults = true,
            "--corrupt-wal" => args.corrupt_wal = true,
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("{msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if args.mutate {
        return run_mutation(&args);
    }
    if args.drop_answers {
        let Some(backend) = args.socket else {
            eprintln!("--drop-answers requires --socket\n{USAGE}");
            return ExitCode::from(2);
        };
        return run_drop_answers(&args, backend);
    }
    if args.corrupt_wal {
        let Some(backend) = args.socket else {
            eprintln!("--corrupt-wal requires --socket\n{USAGE}");
            return ExitCode::from(2);
        };
        return run_corrupt_wal(&args, backend);
    }
    if args.net_faults {
        let Some(backend) = args.socket else {
            eprintln!("--net-faults requires --socket\n{USAGE}");
            return ExitCode::from(2);
        };
        return run_net_faults(&args, backend);
    }

    let seeds: Vec<u64> = match args.seed {
        Some(s) => vec![s],
        None => (0..args.seeds).collect(),
    };
    let total = seeds.len();
    for seed in seeds {
        let mut scenario = if args.stress {
            Scenario::stress(seed)
        } else {
            Scenario::generate(seed)
        };
        if args.faults {
            scenario.force_faults();
        }
        let outcome = match args.socket {
            Some(backend) => check_scenario_socket(&scenario, backend),
            None => check_scenario(&scenario),
        };
        match outcome {
            Err(e) => {
                eprintln!("seed {seed}: harness error: {e}");
                return ExitCode::from(2);
            }
            Ok(violations) if violations.is_empty() => {
                println!(
                    "seed {seed}: ok ({} exporters, {} importers, chaos: {})",
                    scenario.exporters.len(),
                    scenario.importers.len(),
                    scenario.chaos.is_some(),
                );
            }
            Ok(violations) => {
                eprintln!("seed {seed}: {} oracle violation(s)", violations.len());
                for v in &violations {
                    eprintln!("  - {v}");
                }
                let check = |s: &Scenario| match args.socket {
                    Some(backend) => check_scenario_socket(s, backend),
                    None => check_scenario(s),
                };
                let fails = |s: &Scenario| matches!(check(s), Ok(v) if !v.is_empty());
                let shrunk = shrink(&scenario, fails);
                let final_violations = check(&shrunk).unwrap_or(violations);
                match write_failure_report(
                    &args.out,
                    &format!("seed-{seed}"),
                    &shrunk,
                    &final_violations,
                ) {
                    Ok(path) => eprintln!("shrunk reproducer written to {}", path.display()),
                    Err(e) => eprintln!("failed to write report: {e}"),
                }
                return ExitCode::FAILURE;
            }
        }
    }
    let runtimes = if args.socket.is_some() {
        "all three runtimes"
    } else {
        "both runtimes"
    };
    if args.faults {
        println!(
            "{total} seed(s) under forced loss+crash faults, zero oracle violations on {runtimes}"
        );
    } else if args.stress {
        println!(
            "{total} stress seed(s) at the process ceiling, zero oracle violations on {runtimes}"
        );
    } else {
        println!("{total} seed(s), zero oracle violations on {runtimes}");
    }
    ExitCode::SUCCESS
}

/// Negative mode: inject the answer-dropping codec bug into the socket
/// transport and demand the liveness oracle notices. A clean run here is
/// a FAILURE — it would mean a wedged import could pass unobserved.
fn run_drop_answers(args: &Args, backend: SocketBackend) -> ExitCode {
    let seed = args.seed.unwrap_or(0);
    let mut scenario = Scenario::generate(seed);
    scenario.chaos = None; // the injected bug must be the only fault
    match run_socket(&scenario, backend, true) {
        Err(e) => {
            eprintln!("seed {seed}: harness error: {e}");
            ExitCode::from(2)
        }
        Ok((_, _, violations)) => {
            if violations
                .iter()
                .any(|v| matches!(v, OracleViolation::Liveness { .. }))
            {
                println!(
                    "seed {seed}: dropped collective answers tripped the liveness oracle \
                     ({} violation(s)) — the oracle battery sees through the socket transport",
                    violations.len()
                );
                ExitCode::SUCCESS
            } else {
                eprintln!("seed {seed}: answer-dropping codec bug was NOT caught: {violations:?}");
                ExitCode::FAILURE
            }
        }
    }
}

/// Process-level chaos sweep: even seeds kill-and-restart the first
/// exporter from its durable journal, odd seeds sever a mesh link and
/// demand re-dial + replay. Each run must complete cleanly AND prove the
/// fault was real (reconnects metered; journal replayed for the kills).
fn run_net_faults(args: &Args, backend: SocketBackend) -> ExitCode {
    let seeds: Vec<u64> = match args.seed {
        Some(s) => vec![s],
        None => (0..args.seeds).collect(),
    };
    let total = seeds.len();
    for seed in seeds {
        let scenario = Scenario::generate(seed);
        let kill = seed % 2 == 0;
        let class = if kill {
            "kill+restart-from-journal"
        } else {
            "link-sever+re-dial"
        };
        match run_net_fault(&scenario, backend, kill, false) {
            Err(e) => {
                eprintln!("seed {seed}: harness error under {class}: {e}");
                return ExitCode::from(2);
            }
            Ok(violations) if violations.is_empty() => {
                println!("seed {seed}: {class} recovered, zero oracle violations");
            }
            Ok(violations) => {
                eprintln!(
                    "seed {seed}: {} oracle violation(s) under {class}",
                    violations.len()
                );
                for v in &violations {
                    eprintln!("  - {v}");
                }
                return ExitCode::FAILURE;
            }
        }
    }
    println!("{total} seed(s) of kill-restart / link-sever chaos, zero oracle violations");
    ExitCode::SUCCESS
}

/// Negative mode: flip a byte in the SIGKILLed node's journal before its
/// restart. A run that completes is a FAILURE — corrupted durable state
/// must be refused loudly, never replayed into a live session.
fn run_corrupt_wal(args: &Args, backend: SocketBackend) -> ExitCode {
    let seed = args.seed.unwrap_or(0);
    let scenario = Scenario::generate(seed);
    match run_net_fault(&scenario, backend, true, true) {
        Err(e) if e.contains("corrupt") => {
            println!("seed {seed}: corrupted journal refused at restart — {e}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("seed {seed}: run failed, but not on the corruption: {e}");
            ExitCode::FAILURE
        }
        Ok(_) => {
            eprintln!("seed {seed}: corrupted journal was silently accepted");
            ExitCode::FAILURE
        }
    }
}

fn run_mutation(args: &Args) -> ExitCode {
    for mutation in Mutation::ALL {
        match mutation_smoke(200, mutation) {
            Some((seed, shrunk, violations)) => {
                println!(
                    "mutation {} caught at seed {seed}; shrunk reproducer:",
                    mutation.as_str()
                );
                for v in &violations {
                    println!("  - {v}");
                }
                match write_failure_report(
                    &args.out,
                    &format!("mutation-{}-seed-{seed}", mutation.as_str()),
                    &shrunk,
                    &violations,
                ) {
                    Ok(path) => println!("shrunk reproducer written to {}", path.display()),
                    Err(e) => eprintln!("failed to write report: {e}"),
                }
            }
            None => {
                eprintln!(
                    "mutation {} NOT caught in 200 seeds: the safety oracles have no teeth",
                    mutation.as_str()
                );
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
