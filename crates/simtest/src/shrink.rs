//! Greedy structural shrinking of failing scenarios, and failure-report
//! dumps for replay.

use crate::scenario::Scenario;
use couplink_runtime::OracleViolation;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Shrinks a failing scenario to a structurally minimal one that still
/// fails, by greedily applying simplifications and keeping each one the
/// predicate still rejects. The predicate must return `true` while the
/// scenario *fails* (violations present).
///
/// Deterministic: candidates are tried in a fixed order, so the same
/// failing scenario always shrinks to the same reproducer.
pub fn shrink(s: &Scenario, fails: impl Fn(&Scenario) -> bool) -> Scenario {
    let mut best = s.clone();
    loop {
        let mut improved = false;
        for candidate in candidates(&best) {
            if fails(&candidate) {
                best = candidate;
                improved = true;
                break; // restart the candidate list from the smaller case
            }
        }
        if !improved {
            return best;
        }
    }
}

/// One step of simplification candidates, most aggressive first.
fn candidates(s: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    // Whole-importer removal shrinks the topology fastest.
    if s.importers.len() > 1 {
        for j in 0..s.importers.len() {
            out.push(without_importer(s, j));
        }
    }
    if s.chaos.is_some() {
        let mut c = s.clone();
        c.chaos = None;
        out.push(finish(c));
    }
    // Partial fault stripping: a failure may need only one of the permanent
    // faults, so try dropping the crash and the loss independently before
    // giving up on chaos-dependent reproducers.
    if let Some(chaos) = s.chaos {
        if chaos.crash.is_some() {
            let mut c = s.clone();
            c.chaos = Some(couplink_runtime::ChaosConfig {
                crash: None,
                ..chaos
            });
            out.push(finish(c));
        }
        if chaos.loss_prob > 0.0 {
            let mut c = s.clone();
            c.chaos = Some(couplink_runtime::ChaosConfig {
                loss_prob: 0.0,
                ..chaos
            });
            out.push(finish(c));
        }
    }
    if s.buddy_help {
        let mut c = s.clone();
        c.buddy_help = false;
        out.push(finish(c));
    }
    for j in 0..s.importers.len() {
        if s.importers[j].count > 2 {
            let mut c = s.clone();
            c.importers[j].count = (c.importers[j].count / 2).max(2);
            out.push(finish(c));
        }
        if s.importers[j].procs > 1 {
            let mut c = s.clone();
            c.importers[j].procs = 1;
            out.push(finish(c));
        }
    }
    for i in 0..s.exporters.len() {
        if s.exporters[i].procs > 1 {
            let mut c = s.clone();
            c.exporters[i].procs -= 1;
            let procs = c.exporters[i].procs;
            c.exporters[i].compute.truncate(procs);
            out.push(finish(c));
        }
    }
    if s.exporters
        .iter()
        .any(|e| e.compute.iter().any(|&x| x > 0.0))
        || s.importers
            .iter()
            .any(|i| i.compute > 0.0 || i.startup > 0.0)
    {
        let mut c = s.clone();
        for e in &mut c.exporters {
            e.compute.iter_mut().for_each(|x| *x = 0.0);
        }
        for imp in &mut c.importers {
            imp.compute = 0.0;
            imp.startup = 0.0;
        }
        out.push(finish(c));
    }
    out
}

/// Removes importer `j`, drops any exporter no longer referenced, and
/// renumbers the surviving importers' exporter indices.
fn without_importer(s: &Scenario, j: usize) -> Scenario {
    let mut c = s.clone();
    c.importers.remove(j);
    let mut new_idx = vec![None; c.exporters.len()];
    let mut kept = Vec::new();
    for imp in &c.importers {
        if new_idx[imp.exporter].is_none() {
            new_idx[imp.exporter] = Some(kept.len());
            kept.push(c.exporters[imp.exporter].clone());
        }
    }
    for imp in &mut c.importers {
        imp.exporter = new_idx[imp.exporter].expect("referenced exporter kept");
    }
    c.exporters = kept;
    finish(c)
}

/// Every structural edit must re-derive export counts so each request
/// stays decided under the full export history.
fn finish(mut c: Scenario) -> Scenario {
    c.fill_export_counts();
    c
}

/// Writes a replayable failure report to `dir/{label}.txt`: the seed, each
/// violation, the generated configuration file, and the full scenario
/// dump. Returns the path written.
pub fn write_failure_report(
    dir: &Path,
    label: &str,
    scenario: &Scenario,
    violations: &[OracleViolation],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let mut text = String::new();
    writeln!(text, "seed: {}", scenario.seed).expect("writing to String");
    writeln!(
        text,
        "replay: cargo run -p couplink-simtest -- --seed {}",
        scenario.seed
    )
    .expect("writing to String");
    writeln!(text, "\nviolations:").expect("writing to String");
    for v in violations {
        writeln!(text, "  - {v}").expect("writing to String");
    }
    writeln!(text, "\nconfig:\n{}", scenario.config_text()).expect("writing to String");
    writeln!(text, "scenario (shrunk): {scenario:#?}").expect("writing to String");
    let path = dir.join(format!("{label}.txt"));
    std::fs::write(&path, text)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shrinking against an always-failing predicate bottoms out at the
    /// minimal structure: one exporter, one importer, one rank each, no
    /// chaos, no buddy-help, zero compute.
    #[test]
    fn shrink_reaches_minimal_structure() {
        for seed in 0..20 {
            let s = Scenario::generate(seed);
            let min = shrink(&s, |_| true);
            assert_eq!(min.exporters.len(), 1);
            assert_eq!(min.importers.len(), 1);
            assert_eq!(min.exporters[0].procs, 1);
            assert_eq!(min.importers[0].procs, 1);
            assert_eq!(min.importers[0].count, 2);
            assert!(min.chaos.is_none());
            assert!(!min.buddy_help);
            assert!(min.exporters[0].compute.iter().all(|&x| x == 0.0));
        }
    }

    /// The shrunk scenario must still satisfy the predicate it was shrunk
    /// against, and removal must keep exporter indices valid.
    #[test]
    fn shrink_preserves_predicate_and_validity() {
        let s = Scenario::generate(7);
        let pred = |c: &Scenario| !c.importers.is_empty();
        let min = shrink(&s, pred);
        assert!(pred(&min));
        min.build_topology().expect("shrunk topology validates");
    }
}
