//! Seed → scenario expansion and topology construction.

use crate::Rng;
use couplink_config::RegionRef;
use couplink_layout::{Decomposition, Extent2};
use couplink_runtime::{ChaosConfig, CrashFault, CrashTarget, Topology};
use couplink_time::MatchPolicy;
use std::collections::HashMap;
use std::fmt::Write as _;

/// The shared global grid every generated region lives on. Small on
/// purpose: redistribution correctness is covered by the layout tests; here
/// the data plane only needs to exist.
pub const GRID: (usize, usize) = (8, 8);

/// One exporting program (one exported region, named `r`).
#[derive(Debug, Clone, PartialEq)]
pub struct ExporterSpec {
    /// Coupled processes (1–3).
    pub procs: usize,
    /// Timestamp of export `i` is `t0 + i * dt`.
    pub t0: f64,
    /// Timestamp step.
    pub dt: f64,
    /// Export iterations — always extends past every referencing importer's
    /// last acceptable region, so every request decides.
    pub count: usize,
    /// Per-rank compute seconds per iteration (virtual seconds in the
    /// simulator; scaled sleeps in the fabric).
    pub compute: Vec<f64>,
}

/// One importing program (one imported region, named `m`).
#[derive(Debug, Clone, PartialEq)]
pub struct ImporterSpec {
    /// Index into [`Scenario::exporters`] of the program it imports from.
    pub exporter: usize,
    /// Coupled processes (1–2).
    pub procs: usize,
    /// Match policy of the connection.
    pub policy: MatchPolicy,
    /// Tolerance of the connection.
    pub tol: f64,
    /// Timestamp of import `j` is `t0 + j * dt`.
    pub t0: f64,
    /// Timestamp step.
    pub dt: f64,
    /// Import iterations.
    pub count: usize,
    /// Compute seconds per iteration.
    pub compute: f64,
    /// One-time startup cost before the first iteration.
    pub startup: f64,
}

/// A complete generated test case: everything both runtimes need, derived
/// from one seed.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The seed this scenario was generated from (kept for reporting).
    pub seed: u64,
    /// Exporting programs `E0..`, each exporting region `r`.
    pub exporters: Vec<ExporterSpec>,
    /// Importing programs `I0..`, each importing region `m` over one
    /// connection.
    pub importers: Vec<ImporterSpec>,
    /// Whether reps send buddy-help.
    pub buddy_help: bool,
    /// Hierarchical collective distribution: reps fan out to the roots of
    /// the deterministic k-ary tree and ranks relay to their subtrees.
    /// `generate` keeps it off so the seed corpus is unchanged; `stress`
    /// turns it on (with deep programs, so relays actually happen).
    pub hierarchical: bool,
    /// Fault injection, if any.
    pub chaos: Option<ChaosConfig>,
}

impl Scenario {
    /// Expands a seed into a scenario. Pure: the same seed always yields
    /// the same scenario.
    pub fn generate(seed: u64) -> Self {
        let mut rng = Rng::new(seed);
        let n_imp = 1 + rng.below(3) as usize;
        // Never more exporters than importers: with the round-robin
        // assignment below that guarantees every exporter has at least one
        // connection, and a connectionless program declares no regions.
        let n_exp = 1 + rng.below(n_imp.min(2) as u64) as usize;
        let exporters: Vec<ExporterSpec> = (0..n_exp)
            .map(|_| {
                let procs = 1 + rng.below(3) as usize;
                ExporterSpec {
                    procs,
                    t0: 0.1 + rng.f64(),
                    dt: 0.5 + rng.f64(),
                    count: 0, // filled by fill_export_counts
                    compute: (0..procs).map(|_| rng.f64() * 0.004).collect(),
                }
            })
            .collect();
        let importers = (0..n_imp)
            .map(|j| {
                // Round-robin so every exporter is referenced by at least
                // one connection (an unreferenced program would be inert).
                let exporter = j % n_exp;
                let e = &exporters[exporter];
                ImporterSpec {
                    exporter,
                    procs: 1 + rng.below(2) as usize,
                    policy: match rng.below(3) {
                        0 => MatchPolicy::RegL,
                        1 => MatchPolicy::Reg,
                        _ => MatchPolicy::RegU,
                    },
                    tol: (0.3 + 0.7 * rng.f64()) * e.dt,
                    t0: e.t0 + rng.f64() * 3.0 * e.dt,
                    dt: e.dt * (0.6 + 1.8 * rng.f64()),
                    count: 2 + rng.below(4) as usize,
                    compute: rng.f64() * 0.003,
                    startup: rng.f64() * 0.002,
                }
            })
            .collect();
        let buddy_help = rng.below(4) != 0;
        let n_progs = n_exp + n_imp;
        let chaos = (rng.below(2) == 1).then(|| {
            let mut cfg = ChaosConfig {
                seed: rng.next_u64(),
                max_delay: 0.002 + rng.f64() * 0.003,
                duplicate_prob: 0.3,
                drop_prob: 0.15,
                retry_delay: 0.004,
                loss_prob: 0.0,
                crash: None,
            };
            // Half of the chaotic scenarios add faults only the protocol's
            // reliability layer can survive: permanent loss (p ≤ 0.2)
            // and/or a single rep crash (with or without restart).
            if rng.below(2) == 1 {
                cfg.loss_prob = 0.05 + rng.f64() * 0.15;
            }
            if rng.below(3) == 0 {
                cfg.crash = Some(CrashFault {
                    target: CrashTarget::Rep(rng.below(n_progs as u64) as usize),
                    after_msgs: 2 + rng.below(16),
                    restart_after: (rng.below(2) == 0).then(|| 0.2 + rng.f64() * 0.8),
                });
            }
            cfg
        });
        let mut s = Scenario {
            seed,
            exporters,
            importers,
            buddy_help,
            hierarchical: false,
            chaos,
        };
        s.fill_export_counts();
        s
    }

    /// A concurrency stress plan derived from `seed`: every program at 6
    /// ranks (row-block over 8 rows), zero compute and zero startup skew —
    /// every rank hammers the control plane simultaneously, the paper's
    /// tightest coupling — and fault-free, so the sharded reliability
    /// layer stays unarmed and the coalesced rep fan-out path is live.
    /// Hierarchical distribution is on, and 6 ranks exceed the tree's
    /// branching factor, so collectives genuinely traverse relay hops.
    /// Timestamp phases still vary by seed, so matching decisions differ
    /// per seed.
    pub fn stress(seed: u64) -> Self {
        let mut s = Scenario::generate(seed);
        s.chaos = None;
        s.buddy_help = true;
        s.hierarchical = true;
        for e in &mut s.exporters {
            e.procs = 6;
            e.compute = vec![0.0; 6];
        }
        for imp in &mut s.importers {
            imp.procs = 6;
            imp.compute = 0.0;
            imp.startup = 0.0;
            imp.count += 2;
        }
        s.fill_export_counts();
        s
    }

    /// Forces a fault-heavy plan onto this scenario: permanent loss at the
    /// ceiling rate plus a rep crash (restarting on even seeds, relying on
    /// heartbeat failover on odd ones). Used by the `--faults` sweep so a
    /// fixed seed set deterministically exercises crash/restart + loss on
    /// both runtimes regardless of what `generate` drew.
    pub fn force_faults(&mut self) {
        let n_progs = self.exporters.len() + self.importers.len();
        let mut cfg = self.chaos.unwrap_or(ChaosConfig {
            seed: self.seed ^ 0xFA17_FA17_FA17_FA17,
            max_delay: 0.003,
            duplicate_prob: 0.3,
            drop_prob: 0.15,
            retry_delay: 0.004,
            loss_prob: 0.0,
            crash: None,
        });
        cfg.loss_prob = 0.2;
        cfg.crash = Some(CrashFault {
            target: CrashTarget::Rep((self.seed as usize) % n_progs),
            after_msgs: 3 + self.seed % 12,
            restart_after: self.seed.is_multiple_of(2).then_some(0.6),
        });
        self.chaos = Some(cfg);
    }

    /// Recomputes every exporter's iteration count so its timestamps extend
    /// past the upper bound of every referencing importer's last acceptable
    /// region (plus margin). This makes every request *decided* under the
    /// full export history — the property the buffer-safety oracle's
    /// ground-truth replay and the runtime-equivalence check rely on.
    /// Must be re-run after any structural edit (see the shrinker).
    pub fn fill_export_counts(&mut self) {
        for (i, e) in self.exporters.iter_mut().enumerate() {
            let mut hi = e.t0 + e.dt;
            for imp in self.importers.iter().filter(|imp| imp.exporter == i) {
                let last_x = imp.t0 + (imp.count - 1) as f64 * imp.dt;
                hi = hi.max(last_x + imp.tol);
            }
            e.count = ((hi - e.t0) / e.dt).ceil() as usize + 3;
        }
    }

    /// The configuration-file text for this scenario (the same Figure-2
    /// format deployers write by hand).
    pub fn config_text(&self) -> String {
        let mut text = String::new();
        for (i, e) in self.exporters.iter().enumerate() {
            writeln!(text, "E{i} c0 /bin/e{i} {}", e.procs).expect("writing to String");
        }
        for (j, imp) in self.importers.iter().enumerate() {
            writeln!(text, "I{j} c0 /bin/i{j} {}", imp.procs).expect("writing to String");
        }
        text.push_str("#\n");
        for (j, imp) in self.importers.iter().enumerate() {
            writeln!(
                text,
                "E{}.r I{j}.m {} {:.9}",
                imp.exporter,
                imp.policy.as_str(),
                imp.tol
            )
            .expect("writing to String");
        }
        text
    }

    /// Builds the validated topology: parse the generated configuration,
    /// bind a row-block decomposition to every region, validate.
    pub fn build_topology(&self) -> Result<Topology, String> {
        let config = couplink_config::parse(&self.config_text())
            .map_err(|e| format!("generated config failed to parse: {e}"))?;
        let grid = Extent2::new(GRID.0, GRID.1);
        let mut bindings = HashMap::new();
        for (i, e) in self.exporters.iter().enumerate() {
            let d = Decomposition::row_block(grid, e.procs)
                .map_err(|e| format!("exporter decomposition: {e}"))?;
            bindings.insert(RegionRef::new(format!("E{i}"), "r"), d);
        }
        for (j, imp) in self.importers.iter().enumerate() {
            let d = Decomposition::row_block(grid, imp.procs)
                .map_err(|e| format!("importer decomposition: {e}"))?;
            bindings.insert(RegionRef::new(format!("I{j}"), "m"), d);
        }
        Topology::from_config(&config, &bindings).map_err(|e| format!("topology: {e}"))
    }

    /// Program index of exporter `i` in the built topology (exporters are
    /// declared first).
    pub fn exporter_prog(&self, i: usize) -> usize {
        i
    }

    /// Program index of importer `j` in the built topology.
    pub fn importer_prog(&self, j: usize) -> usize {
        self.exporters.len() + j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..50 {
            assert_eq!(Scenario::generate(seed), Scenario::generate(seed));
        }
    }

    #[test]
    fn generated_topologies_validate() {
        for seed in 0..100 {
            let s = Scenario::generate(seed);
            let topo = s.build_topology().expect("topology must validate");
            assert_eq!(topo.conns.len(), s.importers.len());
            for (j, imp) in s.importers.iter().enumerate() {
                let prog = &topo.programs[s.importer_prog(j)];
                assert_eq!(prog.procs, imp.procs);
                assert_eq!(prog.imports.len(), 1);
            }
        }
    }

    #[test]
    fn export_schedules_outlast_every_region() {
        for seed in 0..100 {
            let s = Scenario::generate(seed);
            for (j, imp) in s.importers.iter().enumerate() {
                let e = &s.exporters[imp.exporter];
                let last_export = e.t0 + (e.count - 1) as f64 * e.dt;
                let last_hi = imp.t0 + (imp.count - 1) as f64 * imp.dt + imp.tol;
                assert!(
                    last_export > last_hi,
                    "seed {seed} importer {j}: exports end at {last_export}, \
                     region ends at {last_hi}"
                );
            }
        }
    }
}
