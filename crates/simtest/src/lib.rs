//! Seeded, fully deterministic simulation testing for the coupling
//! framework — FoundationDB-style DST scaled down to this codebase.
//!
//! One `u64` seed expands into a complete *scenario*: a random
//! multi-program topology (exporters feeding one or more importers with
//! random policies and tolerances), random timestamp schedules, per-process
//! compute slowdowns, and optionally a seeded fault-injection plan
//! ([`couplink_runtime::ChaosConfig`]: per-message delay, duplication,
//! bounded drop-with-retry — plus *permanent* faults: probabilistic
//! message loss and a seeded rep crash with restart or heartbeat
//! failover). The scenario runs on **both** in-process runtimes — the
//! discrete-event simulator and the threaded fabric — and, with
//! `--socket`, additionally on the **socket runtime**
//! ([`couplink_runtime::net`]: every program its own OS process on
//! loopback UDS or TCP). The results are checked against the protocol
//! oracles in [`couplink_runtime::engine::oracle`]:
//!
//! 1. collective order (Property 1),
//! 2. buffer safety (ground-truth match replay),
//! 3. liveness (every import resolves),
//! 4. runtime equivalence (DES and threads decide identical matches),
//! 5. metric consistency (counter conservation laws), plus a fault-free
//!    inertness check: scenarios without permanent faults must show zero
//!    retransmits/timeouts/failovers/degraded buffers and no ack or
//!    heartbeat traffic.
//!
//! The `--faults` CLI mode ([`scenario::Scenario::force_faults`]) forces
//! 20% permanent loss plus a rep crash (restart on even seeds, heartbeat
//! failover on odd) onto every seed; all oracles must still pass.
//!
//! A failing seed shrinks to a structurally minimal scenario
//! ([`shrink::shrink`]) and is dumped under `results/simtest/` for replay.
//! The *mutation smoke* mode ([`runner::mutation_smoke`]) deliberately
//! arms an unsound protocol rule ([`runner::Mutation`]) and demands that
//! the buffer-safety oracle catches it — proving the oracles have teeth:
//!
//! * [`runner::Mutation::HelpSkip`] weakens the acceptable-region pruning
//!   rule ([`couplink_proto::ExportPort::set_unsound_help_skip`]) so the
//!   buddy-help match itself is skipped;
//! * [`runner::Mutation::StaleSkip`] drops "stale" buddy-help
//!   announcements ([`couplink_proto::ExportPort::set_unsound_stale_skip`])
//!   so a rank silently withholds its piece of the transfer.
//!
//! Everything is a pure function of the seed: no wall-clock, no OS entropy.
//! (The threaded runtime's interleavings are real and thus vary, but every
//! property checked is timing-independent, so a seed's verdict is stable.)

#![warn(missing_docs)]

pub mod runner;
pub mod scenario;
pub mod shrink;

pub use runner::{
    check_des, check_scenario, check_scenario_socket, check_socket, check_threaded, mutation_smoke,
    run_des, run_net_fault, run_socket, run_threaded, socket_node_bin, socket_plan, DesTweaks,
    Mutation,
};
pub use scenario::{ExporterSpec, ImporterSpec, Scenario};
pub use shrink::{shrink, write_failure_report};

/// Minimal splitmix64 generator — the same construction the offline
/// `proptest` shim uses, kept local so the harness has zero dependencies
/// beyond the workspace.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// A generator for one seed.
    pub fn new(seed: u64) -> Self {
        Rng(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}
