//! Runs one scenario on each runtime and applies the oracles.

use crate::scenario::{Scenario, GRID};
use couplink_layout::LocalArray;
use couplink_metrics::CounterSnapshot;
use couplink_proto::{ConnectionId, Trace};
use couplink_runtime::cost::CostModel;
use couplink_runtime::engine::oracle::{
    check_buffer_safety, check_collective_order, check_ctrl_scaling, check_fault_free,
    check_liveness, check_metric_consistency, check_runtime_equivalence, owed_matches,
    OracleViolation,
};
use couplink_runtime::engine::Topology;
use couplink_runtime::net::{
    run_plan, ExportSpec, ImportSpec, KillSpec, NetOptions, NodeFault, NodePlan, SocketBackend,
};
use couplink_runtime::{
    session_task_count, ChaosConfig, ExportSchedule, Fabric, FabricOptions, ImportSchedule,
    RetryPolicy, TopoReport, TopologyConfig, TopologySim,
};
use couplink_time::{ts, Timestamp};
use std::path::PathBuf;
use std::time::Duration;

/// Wall-seconds of sleep per virtual compute second in the threaded run —
/// enough to skew thread interleavings, small enough for large seed
/// corpora.
const THREADED_TIME_SCALE: f64 = 0.2;

/// Per-connection match decisions, indexed by `ConnectionId`.
pub type Matches = Vec<Vec<Option<Timestamp>>>;

/// The deliberately unsound protocol rules the harness can arm. Each is a
/// plausible-looking "optimization" whose unsoundness only an external
/// oracle can witness — running both proves the oracles have teeth from two
/// independent angles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// [`couplink_proto::ExportPort::set_unsound_help_skip`]: an export
    /// equal to a known buddy-help match is skipped instead of sent.
    HelpSkip,
    /// [`couplink_proto::ExportPort::set_unsound_stale_skip`]: a buddy-help
    /// announcement whose match was already exported locally is dropped
    /// without sending the piece.
    StaleSkip,
    /// [`TopologySim::arm_relay_drop`]: a hierarchical relay rank silently
    /// drops the coalesced answer broadcast on one subtree edge, starving
    /// every rank below it.
    RelayDrop,
}

impl Mutation {
    /// Every mutation, for sweeps.
    pub const ALL: [Mutation; 3] = [Mutation::HelpSkip, Mutation::StaleSkip, Mutation::RelayDrop];

    /// Short CLI/reporting name.
    pub fn as_str(self) -> &'static str {
        match self {
            Mutation::HelpSkip => "help-skip",
            Mutation::StaleSkip => "stale-skip",
            Mutation::RelayDrop => "relay-drop",
        }
    }

    /// Whether this violation is the kind of failure the armed mutation is
    /// expected to produce. The export-side skips discard owed data
    /// (buffer safety); a dropped relay edge starves a subtree outright
    /// (liveness — the stranded ranks never complete — or buffer safety
    /// when the missing broadcast surfaces as an unsent match first).
    pub fn is_expected_catch(self, v: &OracleViolation) -> bool {
        match self {
            Mutation::HelpSkip | Mutation::StaleSkip => {
                matches!(v, OracleViolation::BufferSafety { .. })
            }
            Mutation::RelayDrop => matches!(
                v,
                OracleViolation::BufferSafety { .. } | OracleViolation::Liveness { .. }
            ),
        }
    }
}

/// Extra knobs for [`run_des`] beyond the scenario itself, used by the
/// negative and degradation tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct DesTweaks {
    /// Arm one of the deliberately unsound rules.
    pub mutate: Option<Mutation>,
    /// Permanently lose every buddy-help announcement (degradation mode).
    pub drop_buddy_help: bool,
    /// Override the reliability layer's retry policy (e.g. `retransmit:
    /// false` for the no-recovery negative test).
    pub retry: Option<RetryPolicy>,
}

/// Whether the scenario's fault plan contains only transient chaos (or no
/// chaos at all) — i.e. the reliability machinery must stay inert and the
/// [`check_fault_free`] oracle applies.
fn permanent_fault_free(s: &Scenario) -> bool {
    s.chaos.is_none_or(|c| !c.needs_reliability())
}

/// Applies the trace oracles (collective order, buffer safety) to one
/// run's traces, grouped per connection across the exporter's ranks.
fn trace_oracles(
    view: &Topology,
    traces: &[(usize, usize, ConnectionId, Trace)],
    out: &mut Vec<OracleViolation>,
) {
    for ct in &view.conns {
        let procs = view.programs[ct.exporter_prog].procs;
        let mut ranked = Vec::with_capacity(procs);
        for rank in 0..procs {
            match traces
                .iter()
                .find(|(p, r, c, _)| *p == ct.exporter_prog && *r == rank && *c == ct.id)
            {
                Some((_, _, _, trace)) => ranked.push(trace.clone()),
                None => {
                    out.push(OracleViolation::CollectiveOrder {
                        conn: ct.id,
                        detail: format!("no trace recorded for exporter rank {rank}"),
                    });
                    return;
                }
            }
        }
        if let Err(v) = check_collective_order(ct.id, &ranked) {
            out.push(v);
        }
        for trace in &ranked {
            if let Err(v) = check_buffer_safety(ct.id, ct.policy, ct.tolerance, trace) {
                out.push(v);
                break; // one report per connection is enough
            }
        }
    }
}

/// Applies the metric-consistency oracle to one run: replays each
/// connection's rank-0 trace to recover the ground-truth owed-match count
/// and cross-checks it against the runtime's counter snapshot (memcpy
/// conservation, transfers = Σ owed × exporter procs). Property 1 makes
/// rank 0's trace representative of every rank.
fn metric_oracle(
    view: &Topology,
    traces: &[(usize, usize, ConnectionId, Trace)],
    counters: &CounterSnapshot,
    out: &mut Vec<OracleViolation>,
) {
    let mut owed = Vec::with_capacity(view.conns.len());
    for ct in &view.conns {
        let Some((_, _, _, trace)) = traces
            .iter()
            .find(|(p, r, c, _)| *p == ct.exporter_prog && *r == 0 && *c == ct.id)
        else {
            // trace_oracles already reports the missing trace.
            return;
        };
        match owed_matches(ct.id, ct.policy, ct.tolerance, trace) {
            Ok(n) => owed.push((ct.id, n, view.programs[ct.exporter_prog].procs)),
            Err(v) => {
                out.push(v);
                return;
            }
        }
    }
    if let Err(v) = check_metric_consistency(counters, &owed) {
        out.push(v);
    }
}

/// Applies the control-scaling oracle ([`check_ctrl_scaling`]) to one
/// run's counters. Only meaningful on hierarchical runs with no chaos at
/// all: message duplication legally inflates the relay counters, so the
/// exact tree conservation laws hold only on undisturbed runs. The
/// per-connection collective count is the importer's schedule length —
/// on a clean run every scheduled import aggregates into exactly one
/// request (anything less already fails the liveness oracle).
fn scaling_oracle(
    s: &Scenario,
    view: &Topology,
    counters: &CounterSnapshot,
    out: &mut Vec<OracleViolation>,
) {
    if !s.hierarchical || s.chaos.is_some() {
        return;
    }
    let conns: Vec<(ConnectionId, usize, usize, usize)> = view
        .conns
        .iter()
        .map(|ct| {
            (
                ct.id,
                s.importers[ct.importer_prog - s.exporters.len()].count,
                view.programs[ct.exporter_prog].procs,
                view.programs[ct.importer_prog].procs,
            )
        })
        .collect();
    if let Err(v) = check_ctrl_scaling(counters, &conns, s.buddy_help) {
        out.push(v);
    }
}

/// Runs the scenario on the discrete-event simulator and checks the
/// single-runtime oracles; also returns the run's counter snapshot so
/// callers can assert on fault metrics (failovers, degraded buffers).
///
/// `Err` means the harness itself failed (invalid generated input), not
/// that an oracle fired.
pub fn run_des(
    s: &Scenario,
    tweaks: DesTweaks,
) -> Result<(Matches, CounterSnapshot, Vec<OracleViolation>), String> {
    let topology = s.build_topology()?;
    let view = topology.clone();
    let cfg = TopologyConfig {
        topology,
        exports: s
            .exporters
            .iter()
            .enumerate()
            .map(|(i, e)| ExportSchedule {
                program: format!("E{i}"),
                region: "r".into(),
                t0: e.t0,
                dt: e.dt,
                count: e.count,
                compute: e.compute.clone(),
            })
            .collect(),
        imports: s
            .importers
            .iter()
            .enumerate()
            .map(|(j, imp)| ImportSchedule {
                program: format!("I{j}"),
                region: "m".into(),
                t0: imp.t0,
                dt: imp.dt,
                count: imp.count,
                compute: imp.compute,
                startup: imp.startup,
            })
            .collect(),
        buddy_help: s.buddy_help,
        hierarchical: s.hierarchical,
        cost: CostModel::default(),
        buffer_capacity: None,
    };
    let mut sim = TopologySim::new(cfg).map_err(|e| format!("building simulator: {e}"))?;
    for ct in &view.conns {
        let name = &view.programs[ct.exporter_prog].name;
        for rank in 0..view.programs[ct.exporter_prog].procs {
            sim.trace(name, rank, ct.id)
                .map_err(|e| format!("arming trace: {e}"))?;
        }
    }
    if let Some(chaos) = s.chaos {
        sim.chaos(chaos);
    }
    if tweaks.drop_buddy_help {
        sim.drop_buddy_help();
    }
    if let Some(policy) = tweaks.retry {
        sim.set_retry_policy(policy);
    }
    match tweaks.mutate {
        Some(Mutation::HelpSkip) => sim.arm_unsound_help_skip(),
        Some(Mutation::StaleSkip) => sim.arm_unsound_stale_skip(),
        Some(Mutation::RelayDrop) => sim.arm_relay_drop(),
        None => {}
    }
    let report = sim.run().map_err(|e| format!("simulator run: {e}"))?;
    let mut violations = Vec::new();
    des_liveness(s, &view, &report, &mut violations);
    let traces: Vec<(usize, usize, ConnectionId, Trace)> = report
        .traces
        .iter()
        .map(|(name, rank, conn, trace)| {
            let prog = view.program_idx(name).expect("trace program exists");
            (prog, *rank, *conn, trace.clone())
        })
        .collect();
    trace_oracles(&view, &traces, &mut violations);
    metric_oracle(&view, &traces, &report.metrics.counters, &mut violations);
    if permanent_fault_free(s) && !tweaks.drop_buddy_help {
        if let Err(v) = check_fault_free(&report.metrics.counters) {
            violations.push(v);
        }
    }
    if !tweaks.drop_buddy_help {
        scaling_oracle(s, &view, &report.metrics.counters, &mut violations);
    }
    Ok((report.matches, report.metrics.counters.clone(), violations))
}

/// Runs the scenario on the discrete-event simulator and checks the
/// single-runtime oracles. With `mutate`, arms one of the deliberately
/// unsound rules first (the oracles are then *expected* to fire).
pub fn check_des(
    s: &Scenario,
    mutate: Option<Mutation>,
) -> Result<(Matches, Vec<OracleViolation>), String> {
    let (matches, _, violations) = run_des(
        s,
        DesTweaks {
            mutate,
            ..DesTweaks::default()
        },
    )?;
    Ok((matches, violations))
}

fn des_liveness(
    s: &Scenario,
    view: &Topology,
    report: &TopoReport,
    out: &mut Vec<OracleViolation>,
) {
    for (j, imp) in s.importers.iter().enumerate() {
        let conn = view.programs[s.importer_prog(j)].imports[0].conn;
        let resolved = report.matches[conn.0 as usize].len();
        let done = report.import_done[j].iter().all(|&it| it == imp.count);
        if let Err(v) = check_liveness(conn, imp.count, resolved, done) {
            out.push(v);
        }
    }
}

/// Runs the scenario on the threaded fabric (real threads, real channels,
/// real memcpys) and checks the single-runtime oracles. Returns the
/// counter snapshot too (`None` when shutdown failed before reporting),
/// and accepts the degradation knob for the buddy-help-loss tests.
pub fn run_threaded(
    s: &Scenario,
    drop_buddy_help: bool,
) -> Result<(Matches, Option<CounterSnapshot>, Vec<OracleViolation>), String> {
    let topology = s.build_topology()?;
    let view = topology.clone();
    let mut trace_list = Vec::new();
    for ct in &view.conns {
        for rank in 0..view.programs[ct.exporter_prog].procs {
            trace_list.push((ct.exporter_prog, rank, ct.id));
        }
    }
    let opts = FabricOptions {
        buddy_help: s.buddy_help,
        import_timeout: Duration::from_secs(5),
        buffer_capacity: None,
        traces: trace_list,
        chaos: s.chaos,
        drop_buddy_help,
        hierarchical: s.hierarchical,
        wal: None,
    };
    // Executor invariant: a task is enqueued at most once, so the session's
    // run-queue depth can never exceed its task count — mailbox backlog
    // under pressure must not leak into unbounded run-queue growth.
    let task_budget = session_task_count(&topology, &opts) as u64;
    let mut fabric = Fabric::new(topology, opts);

    let mut exp_threads = Vec::new();
    for (i, e) in s.exporters.iter().enumerate() {
        let prog = s.exporter_prog(i);
        for rank in 0..e.procs {
            let mut h = fabric.take_export(prog, rank, 0);
            let owned = view.programs[prog].exports[0].decomp.owned(rank);
            let (t0, dt, count, compute) = (e.t0, e.dt, e.count, e.compute[rank]);
            exp_threads.push((
                i,
                std::thread::spawn(move || -> Result<(), String> {
                    let data = LocalArray::zeros(owned);
                    for k in 0..count {
                        if compute > 0.0 {
                            std::thread::sleep(Duration::from_secs_f64(
                                compute * THREADED_TIME_SCALE,
                            ));
                        }
                        h.export(ts(t0 + k as f64 * dt), &data)
                            .map_err(|e| e.to_string())?;
                    }
                    Ok(())
                }),
            ));
        }
    }
    let mut imp_threads = Vec::new();
    for (j, imp) in s.importers.iter().enumerate() {
        let prog = s.importer_prog(j);
        for rank in 0..imp.procs {
            let mut h = fabric.take_import(prog, rank, 0);
            let owned = view.programs[prog].imports[0].decomp.owned(rank);
            let (t0, dt, count, compute, startup) =
                (imp.t0, imp.dt, imp.count, imp.compute, imp.startup);
            imp_threads.push((
                j,
                rank,
                std::thread::spawn(move || -> Result<Vec<Option<Timestamp>>, String> {
                    std::thread::sleep(Duration::from_secs_f64(startup * THREADED_TIME_SCALE));
                    let mut got = Vec::with_capacity(count);
                    let mut dest = LocalArray::zeros(owned);
                    for k in 0..count {
                        if compute > 0.0 {
                            std::thread::sleep(Duration::from_secs_f64(
                                compute * THREADED_TIME_SCALE,
                            ));
                        }
                        got.push(
                            h.import(ts(t0 + k as f64 * dt), &mut dest)
                                .map_err(|e| e.to_string())?,
                        );
                    }
                    Ok(got)
                }),
            ));
        }
    }

    let mut violations = Vec::new();
    for (i, t) in exp_threads {
        if let Err(e) = t.join().expect("exporter thread panicked") {
            let conn = view.programs[s.exporter_prog(i)].exports[0].conns[0];
            violations.push(OracleViolation::Liveness {
                conn,
                detail: format!("exporter E{i} failed: {e}"),
            });
        }
    }
    let mut matches: Matches = vec![Vec::new(); view.conns.len()];
    for (j, rank, t) in imp_threads {
        let conn = view.programs[s.importer_prog(j)].imports[0].conn;
        match t.join().expect("importer thread panicked") {
            Ok(got) => {
                if let Err(v) = check_liveness(conn, s.importers[j].count, got.len(), true) {
                    violations.push(v);
                }
                if rank == 0 {
                    matches[conn.0 as usize] = got;
                }
            }
            Err(e) => violations.push(OracleViolation::Liveness {
                conn,
                detail: format!("importer I{j} rank {rank} failed: {e}"),
            }),
        }
    }
    let mut counters = None;
    match fabric.shutdown() {
        Ok(report) => {
            trace_oracles(&view, &report.traces, &mut violations);
            metric_oracle(
                &view,
                &report.traces,
                &report.metrics.counters,
                &mut violations,
            );
            if permanent_fault_free(s) && !drop_buddy_help {
                if let Err(v) = check_fault_free(&report.metrics.counters) {
                    violations.push(v);
                }
            }
            if !drop_buddy_help {
                scaling_oracle(s, &view, &report.metrics.counters, &mut violations);
            }
            if report.metrics.counters.runq_depth_hwm > task_budget {
                violations.push(OracleViolation::MetricConsistency {
                    conn: ConnectionId(0),
                    detail: format!(
                        "run-queue depth HWM {} exceeds the session's {} tasks \
                         (a task was enqueued more than once)",
                        report.metrics.counters.runq_depth_hwm, task_budget
                    ),
                });
            }
            counters = Some(report.metrics.counters.clone());
        }
        Err(e) => violations.push(OracleViolation::CollectiveOrder {
            conn: ConnectionId(0),
            detail: format!("fabric shutdown reported: {e}"),
        }),
    }
    Ok((matches, counters, violations))
}

/// Runs the scenario on the threaded fabric and checks the single-runtime
/// oracles (fault-injection as configured by the scenario, no degradation).
pub fn check_threaded(s: &Scenario) -> Result<(Matches, Vec<OracleViolation>), String> {
    let (matches, _, violations) = run_threaded(s, false)?;
    Ok((matches, violations))
}

/// Builds the socket runtime's plan for a scenario: same config text, same
/// grid, same schedules and chaos as the in-process runtimes, plus value
/// verification (exporters fill a deterministic per-cell pattern; importers
/// check every transferred cell bit-exactly).
pub fn socket_plan(s: &Scenario) -> Result<NodePlan, String> {
    let view = s.build_topology()?;
    let exports = s
        .exporters
        .iter()
        .enumerate()
        .map(|(i, e)| ExportSpec {
            program: format!("E{i}"),
            region: 0,
            t0: e.t0,
            dt: e.dt,
            count: e.count,
            compute: e.compute.clone(),
        })
        .collect();
    let imports = s
        .importers
        .iter()
        .enumerate()
        .map(|(j, imp)| ImportSpec {
            program: format!("I{j}"),
            region: 0,
            t0: imp.t0,
            dt: imp.dt,
            count: imp.count,
            compute: imp.compute,
            startup: imp.startup,
        })
        .collect();
    // Trace every exporter rank on every connection, exactly as the
    // threaded run does.
    let traces = view
        .conns
        .iter()
        .flat_map(|ct| {
            (0..view.programs[ct.exporter_prog].procs)
                .map(move |rank| (ct.exporter_prog, rank, ct.id.0))
        })
        .collect();
    Ok(NodePlan {
        config_text: s.config_text(),
        grid: GRID,
        exports,
        imports,
        buddy_help: s.buddy_help,
        import_timeout_s: 5.0,
        time_scale: THREADED_TIME_SCALE,
        verify_values: true,
        traces,
        chaos: s.chaos,
        fault: None,
        hierarchical: s.hierarchical,
        wal_dir: None,
        restart: false,
    })
}

/// Locates the `couplink-node` binary the socket runs need; `None` means
/// socket scenarios cannot run in this invocation (callers should skip,
/// the workspace test run always builds it).
pub fn socket_node_bin() -> Option<PathBuf> {
    couplink_runtime::net::default_node_bin()
}

/// Runs the scenario on the socket runtime — every program its own OS
/// process, coupled over loopback sockets — and checks the single-runtime
/// oracles. With `drop_answers`, one node's inbound codec silently
/// discards collective-answer frames on connection 0 (the ci negative:
/// the liveness oracle must fire).
pub fn run_socket(
    s: &Scenario,
    backend: SocketBackend,
    drop_answers: bool,
) -> Result<(Matches, Option<CounterSnapshot>, Vec<OracleViolation>), String> {
    let Some(node_bin) = socket_node_bin() else {
        return Err("couplink-node binary not found (set COUPLINK_NODE_BIN)".into());
    };
    let view = s.build_topology()?;
    let mut plan = socket_plan(s)?;
    if drop_answers {
        plan.fault = Some(NodeFault::DropAnswers { conn: 0 });
    }
    let opts = NetOptions {
        backend,
        ..NetOptions::new(node_bin)
    };
    let rep = run_plan(&plan, &opts).map_err(|e| format!("socket bootstrap: {e}"))?;

    let mut violations = Vec::new();
    socket_liveness(s, &view, &rep, &mut violations);

    let clean_run = rep.crashed.is_empty() && rep.shutdown_errors.is_empty();
    let mut counters = None;
    if clean_run {
        trace_oracles(&view, &rep.traces, &mut violations);
        metric_oracle(&view, &rep.traces, &rep.counters, &mut violations);
        if permanent_fault_free(s) {
            if let Err(v) = check_fault_free(&rep.counters) {
                violations.push(v);
            }
        }
        if !drop_answers {
            scaling_oracle(s, &view, &rep.counters, &mut violations);
        }
        // Socket-specific sanity: traffic really crossed sockets, and the
        // codec rejected nothing on a healthy loopback.
        if rep.counters.net_frames == 0 {
            violations.push(OracleViolation::MetricConsistency {
                conn: ConnectionId(0),
                detail: "no frames crossed the socket transport".into(),
            });
        }
        // Tx/rx conservation: every frame any writer metered must have
        // been read and metered by the peer it was written to — the
        // merged rx sums equal the merged tx sums. Only provable when no
        // link ever degraded: a reconnect replays salvage (double-count),
        // loss/timeouts mean frames died with a link, and a stalled
        // reader never consumes. All of those leave fingerprints in the
        // merged counters, so the run self-selects.
        let c = &rep.counters;
        let healthy = c.net_reconnects == 0
            && c.net_codec_rejects == 0
            && c.retransmits == 0
            && c.timeouts == 0;
        if healthy && (c.net_rx_frames != c.net_frames || c.net_rx_bytes != c.net_bytes) {
            violations.push(OracleViolation::MetricConsistency {
                conn: ConnectionId(0),
                detail: format!(
                    "tx/rx conservation broken: sent {} frames / {} bytes, \
                     received {} frames / {} bytes",
                    c.net_frames, c.net_bytes, c.net_rx_frames, c.net_rx_bytes
                ),
            });
        }
        counters = Some(rep.counters);
    }
    Ok((rep.matches, counters, violations))
}

/// The application-level outcome checks shared by every socket run:
/// nobody silently dead, no exporter/importer/shutdown failures, every
/// scheduled import completed.
fn socket_liveness(
    s: &Scenario,
    view: &Topology,
    rep: &couplink_runtime::net::NetReport,
    violations: &mut Vec<OracleViolation>,
) {
    for &prog in &rep.crashed {
        let conn = conn_of_program(view, prog);
        violations.push(OracleViolation::Liveness {
            conn,
            detail: format!("program {prog} exited without reporting"),
        });
    }
    for (prog, rank, e) in &rep.export_errors {
        let conn = conn_of_program(view, *prog);
        violations.push(OracleViolation::Liveness {
            conn,
            detail: format!("exporter program {prog} rank {rank} failed: {e}"),
        });
    }
    for (prog, rank, done, err) in &rep.imports_done {
        let conn = view.programs[*prog].imports[0].conn;
        let count = s.importers[*prog - s.exporters.len()].count;
        match err {
            Some(e) => violations.push(OracleViolation::Liveness {
                conn,
                detail: format!("importer program {prog} rank {rank} failed: {e}"),
            }),
            None => {
                if let Err(v) = check_liveness(conn, count, *done as usize, true) {
                    violations.push(v);
                }
            }
        }
    }
    for (prog, e) in &rep.shutdown_errors {
        violations.push(OracleViolation::CollectiveOrder {
            conn: ConnectionId(0),
            detail: format!("program {prog} fabric shutdown reported: {e}"),
        });
    }
}

fn conn_of_program(view: &Topology, prog: usize) -> ConnectionId {
    view.conns
        .iter()
        .find(|ct| ct.exporter_prog == prog || ct.importer_prog == prog)
        .map(|ct| ct.id)
        .unwrap_or(ConnectionId(0))
}

/// The socket-transport fault classes behind `--net-faults`: SIGKILL +
/// restart-from-journal of the first exporter (`kill`), or a mid-run
/// link sever with re-dial (`!kill`). With `corrupt_wal`, a byte of the
/// victim's journal is flipped before the restart and the run is
/// *expected to fail* — the caller asserts on the error text.
///
/// The scenario is reshaped so the fault lands mid-session: schedules are
/// slowed until the victim's peers are still importing when it goes down,
/// every node gets a durable journal (which also arms reconnect), and a
/// mild transient loss keeps the reliability pump honest during the
/// outage. Fault runs check application liveness and the trace oracles;
/// the conservation-law oracles (metric consistency, ctrl scaling,
/// fault-free inertness) do not apply when a process loses and replays
/// state mid-run. On success, the fault must also have been *real*:
/// `net_reconnects ≥ 1`, plus `wal_replayed ≥ 1` for the kill class.
pub fn run_net_fault(
    s: &Scenario,
    backend: SocketBackend,
    kill: bool,
    corrupt_wal: bool,
) -> Result<Vec<OracleViolation>, String> {
    let Some(node_bin) = socket_node_bin() else {
        return Err("couplink-node binary not found (set COUPLINK_NODE_BIN)".into());
    };
    let mut s = s.clone();
    s.chaos = Some(ChaosConfig {
        seed: 13,
        max_delay: 0.0,
        duplicate_prob: 0.0,
        drop_prob: 0.0,
        retry_delay: 0.004,
        loss_prob: 0.05,
        crash: None,
    });
    for e in &mut s.exporters {
        for c in &mut e.compute {
            *c = c.max(0.2);
        }
    }
    for imp in &mut s.importers {
        imp.compute = imp.compute.max(0.5);
    }

    let view = s.build_topology()?;
    let mut plan = socket_plan(&s)?;
    // Generous import budget: it must absorb the full re-dial backoff
    // (or the kill-to-rejoin window) without a spurious timeout.
    plan.import_timeout_s = 30.0;
    if !kill {
        let peer = view
            .conns
            .iter()
            .find(|ct| ct.exporter_prog == 0)
            .map(|ct| ct.importer_prog)
            .ok_or("program 0 exports on no connection")?;
        plan.fault = Some(NodeFault::SeverLink {
            prog: 0,
            peer,
            after_tx: 5,
        });
    }
    let opts = NetOptions {
        backend,
        durable: true,
        kill_restart: kill.then_some(KillSpec {
            prog: 0,
            corrupt_wal,
        }),
        ..NetOptions::new(node_bin)
    };
    let rep = run_plan(&plan, &opts).map_err(|e| format!("socket bootstrap: {e}"))?;

    let mut violations = Vec::new();
    socket_liveness(&s, &view, &rep, &mut violations);
    if rep.crashed.is_empty() && rep.shutdown_errors.is_empty() {
        trace_oracles(&view, &rep.traces, &mut violations);
    }
    if rep.counters.net_reconnects == 0 {
        violations.push(OracleViolation::MetricConsistency {
            conn: ConnectionId(0),
            detail: "fault run recorded no reconnects — the fault was vacuous".into(),
        });
    }
    if kill && rep.counters.wal_replayed == 0 {
        violations.push(OracleViolation::MetricConsistency {
            conn: ConnectionId(0),
            detail: "restarted node replayed nothing from its journal".into(),
        });
    }
    Ok(violations)
}

/// Runs the scenario on the socket runtime and checks the single-runtime
/// oracles.
pub fn check_socket(
    s: &Scenario,
    backend: SocketBackend,
) -> Result<(Matches, Vec<OracleViolation>), String> {
    let (matches, _, violations) = run_socket(s, backend, false)?;
    Ok((matches, violations))
}

/// The control-message classes whose counts are *deterministic* given the
/// match decisions (one per import call / request / decided answer /
/// per-rank forward or broadcast) — Response updates and BuddyHelp depend
/// on response timing and are excluded. Indices into
/// `CounterSnapshot::ctrl_sent`, i.e. `CtrlClass::ALL` order.
const DETERMINISTIC_CTRL: [(usize, &str); 5] = [
    (0, "ImportCall"),
    (1, "ImportRequest"),
    (2, "ForwardRequest"),
    (5, "Answer"),
    (6, "AnswerBcast"),
];

/// Cross-runtime counter equivalence for fault-free runs: the socket
/// processes' *summed* snapshots must agree with the threaded run on every
/// protocol counter whose value is determined by the (already equal) match
/// decisions. This is the acceptance bar for "same engine, different
/// transport" — the wire moved the messages without inventing or losing
/// any.
pub fn check_counter_equivalence(
    threaded: &CounterSnapshot,
    socket: &CounterSnapshot,
    out: &mut Vec<OracleViolation>,
) {
    let pairs = [
        ("import_calls", threaded.import_calls, socket.import_calls),
        ("export_calls", threaded.export_calls, socket.export_calls),
        ("transfers", threaded.transfers, socket.transfers),
    ];
    for (name, a, b) in pairs {
        if a != b {
            out.push(OracleViolation::MetricConsistency {
                conn: ConnectionId(0),
                detail: format!("{name} differs across transports: threaded {a}, socket {b}"),
            });
        }
    }
    for (idx, name) in DETERMINISTIC_CTRL {
        let (a, b) = (threaded.ctrl_sent[idx], socket.ctrl_sent[idx]);
        if a != b {
            out.push(OracleViolation::MetricConsistency {
                conn: ConnectionId(0),
                detail: format!(
                    "ctrl {name} count differs across transports: threaded {a}, socket {b}"
                ),
            });
        }
    }
}

/// Runs the scenario on all three runtimes — simulator, threaded fabric,
/// socket processes — and checks every oracle including cross-runtime
/// equivalence of match decisions (all pairs) and, on fault-free runs,
/// of the deterministic protocol counters (threaded vs socket).
pub fn check_scenario_socket(
    s: &Scenario,
    backend: SocketBackend,
) -> Result<Vec<OracleViolation>, String> {
    let (des_matches, mut violations) = check_des(s, None)?;
    let (thr_matches, thr_counters, thr_violations) = run_threaded(s, false)?;
    violations.extend(thr_violations);
    let (sock_matches, sock_counters, sock_violations) = run_socket(s, backend, false)?;
    violations.extend(sock_violations);
    for conn in 0..des_matches.len().min(sock_matches.len()) {
        if let Err(v) = check_runtime_equivalence(
            ConnectionId(conn as u32),
            &des_matches[conn],
            &sock_matches[conn],
        ) {
            violations.push(v);
        }
    }
    for conn in 0..des_matches.len().min(thr_matches.len()) {
        if let Err(v) = check_runtime_equivalence(
            ConnectionId(conn as u32),
            &des_matches[conn],
            &thr_matches[conn],
        ) {
            violations.push(v);
        }
    }
    if permanent_fault_free(s) {
        if let (Some(t), Some(k)) = (&thr_counters, &sock_counters) {
            check_counter_equivalence(t, k, &mut violations);
        }
    }
    Ok(violations)
}

/// Runs the scenario on both runtimes, checks every oracle including
/// runtime equivalence, and returns all violations (empty = pass).
pub fn check_scenario(s: &Scenario) -> Result<Vec<OracleViolation>, String> {
    let (des_matches, mut violations) = check_des(s, None)?;
    let (thr_matches, thr_violations) = check_threaded(s)?;
    violations.extend(thr_violations);
    for conn in 0..des_matches.len().min(thr_matches.len()) {
        if let Err(v) = check_runtime_equivalence(
            ConnectionId(conn as u32),
            &des_matches[conn],
            &thr_matches[conn],
        ) {
            violations.push(v);
        }
    }
    Ok(violations)
}

/// Mutation smoke test: arms one of the deliberately unsound rules in the
/// simulator and searches the seed space for a scenario where the broken
/// rule discards a match, a transfer, or a whole subtree's answers —
/// which the safety oracles must catch (buffer safety for the export-side
/// skips, buffer safety or liveness for the dropped relay edge). Returns
/// the first caught seed, the shrunk scenario and its violations; `None`
/// means the oracles never fired (which the caller should treat as a test
/// failure).
pub fn mutation_smoke(
    max_seeds: u64,
    mutation: Mutation,
) -> Option<(u64, Scenario, Vec<OracleViolation>)> {
    let caught = |s: &Scenario| -> bool {
        matches!(
            check_des(s, Some(mutation)),
            Ok((_, v)) if v.iter().any(|x| mutation.is_expected_catch(x))
        )
    };
    for seed in 0..max_seeds {
        let mut s = Scenario::generate(seed);
        // The export-side skips only bite where buddy-help fires: force
        // the optimization on, keep the run noise-free, and slow each
        // exporter's last rank so it still has open requests when the
        // collective answer arrives. The relay drop instead needs the
        // distribution tree: hierarchical mode with enough importer ranks
        // that the sabotaged rank-0 → rank-k edge exists.
        s.buddy_help = true;
        s.chaos = None;
        match mutation {
            Mutation::HelpSkip | Mutation::StaleSkip => {
                for e in &mut s.exporters {
                    if e.procs > 1 {
                        *e.compute.last_mut().expect("non-empty compute") += 0.02;
                    }
                }
            }
            Mutation::RelayDrop => {
                s.hierarchical = true;
                for imp in &mut s.importers {
                    imp.procs = 6;
                }
            }
        }
        if caught(&s) {
            let shrunk = crate::shrink::shrink(&s, caught);
            let violations = match check_des(&shrunk, Some(mutation)) {
                Ok((_, v)) => v,
                Err(_) => Vec::new(),
            };
            return Some((seed, shrunk, violations));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use couplink_runtime::{ChaosConfig, CrashFault, CrashTarget};

    /// A small fixed corpus through the simulator: no oracle may fire —
    /// including the fault-free inertness check on every chaos-free seed.
    #[test]
    fn des_seed_corpus_is_clean() {
        for seed in 0..25 {
            let s = Scenario::generate(seed);
            let (_, violations) = check_des(&s, None).expect("harness");
            assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        }
    }

    /// A smaller corpus end-to-end on both runtimes, including the
    /// runtime-equivalence oracle.
    #[test]
    fn dual_runtime_corpus_is_clean() {
        for seed in 0..6 {
            let s = Scenario::generate(seed);
            let violations = check_scenario(&s).expect("harness");
            assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        }
    }

    /// Forced permanent faults (20% loss plus a rep crash, restart on even
    /// seeds / heartbeat failover on odd) must pass every oracle on both
    /// runtimes, and the crash must actually fire somewhere in the corpus
    /// (failovers ≥ 1 — the faults are real, not vacuous).
    #[test]
    fn forced_fault_corpus_recovers_on_both_runtimes() {
        let mut total_failovers = 0;
        for seed in 0..4 {
            let mut s = Scenario::generate(seed);
            s.force_faults();
            let violations = check_scenario(&s).expect("harness");
            assert!(violations.is_empty(), "seed {seed}: {violations:?}");
            let (_, counters, _) = run_des(&s, DesTweaks::default()).expect("harness");
            total_failovers += counters.failovers;
        }
        assert!(
            total_failovers >= 1,
            "no rep crash fired across the forced-fault corpus"
        );
    }

    /// The deliberately broken pruning rule must be caught by the
    /// buffer-safety oracle — the oracles have teeth.
    #[test]
    fn help_skip_mutation_is_caught_by_buffer_safety() {
        let (seed, shrunk, violations) = mutation_smoke(200, Mutation::HelpSkip)
            .expect("mutation must be caught within 200 seeds");
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, OracleViolation::BufferSafety { .. })),
            "seed {seed} shrunk to {shrunk:?} without a buffer-safety violation: {violations:?}"
        );
    }

    /// The unsound "skip on stale announcement" rule — dropping a
    /// buddy-help answer whose match was already exported locally — must
    /// also be caught by the buffer-safety oracle.
    #[test]
    fn stale_skip_mutation_is_caught_by_buffer_safety() {
        let (seed, shrunk, violations) = mutation_smoke(200, Mutation::StaleSkip)
            .expect("mutation must be caught within 200 seeds");
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, OracleViolation::BufferSafety { .. })),
            "seed {seed} shrunk to {shrunk:?} without a buffer-safety violation: {violations:?}"
        );
    }

    /// The sabotaged distribution tree — relay rank 0 silently dropping
    /// the coalesced answer broadcast on its first subtree edge — must be
    /// caught: the starved subtree wedges (liveness) or an owed match
    /// never arrives (buffer safety).
    #[test]
    fn relay_drop_mutation_is_caught() {
        let (seed, shrunk, violations) = mutation_smoke(50, Mutation::RelayDrop)
            .expect("mutation must be caught within 50 seeds");
        assert!(
            violations
                .iter()
                .any(|v| Mutation::RelayDrop.is_expected_catch(v)),
            "seed {seed} shrunk to {shrunk:?} without the expected violation: {violations:?}"
        );
    }

    /// Hierarchical stress corpus on both in-process runtimes: match
    /// decisions agree and the control-scaling oracle's exact tree
    /// conservation laws hold (every rank served exactly once, through
    /// the tree).
    #[test]
    fn hierarchical_stress_corpus_is_clean() {
        for seed in 0..4 {
            let s = Scenario::stress(seed);
            let violations = check_scenario(&s).expect("harness");
            assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        }
    }

    /// The hierarchical counters are live, not vacuously zero: a stress
    /// run (6 ranks > branching factor 4) must actually relay, coalesce,
    /// and report a ≥2-level tree.
    #[test]
    fn hierarchical_stress_run_exercises_the_tree() {
        let s = Scenario::stress(0);
        let (_, counters, violations) = run_des(&s, DesTweaks::default()).expect("harness");
        assert!(violations.is_empty(), "{violations:?}");
        assert!(counters.ctrl_relay > 0, "no relay hops recorded");
        assert!(counters.ctrl_coalesced > 0, "no coalesced frames recorded");
        assert!(
            counters.tree_depth >= 2,
            "tree depth {}",
            counters.tree_depth
        );
    }

    /// One hierarchical stress seed across all three runtimes: the tree
    /// fan-out survives real sockets with every oracle green, including
    /// counter equivalence between the threaded and socket transports.
    #[test]
    fn socket_hierarchical_stress_seed_agrees() {
        if socket_node_bin().is_none() {
            eprintln!("skipping: couplink-node binary not built");
            return;
        }
        let s = Scenario::stress(2);
        let violations = check_scenario_socket(&s, SocketBackend::Uds).expect("harness");
        assert!(violations.is_empty(), "{violations:?}");
    }

    /// Negative liveness test: under 100% permanent loss with retransmit
    /// disabled, the protocol has no recovery and the liveness oracle must
    /// fire — proving the oracle detects a wedged run rather than passing
    /// vacuously.
    #[test]
    fn liveness_oracle_fires_without_retransmit() {
        let mut s = Scenario::generate(0);
        s.chaos = Some(ChaosConfig {
            seed: 7,
            max_delay: 0.0,
            duplicate_prob: 0.0,
            drop_prob: 0.0,
            retry_delay: 0.004,
            loss_prob: 1.0,
            crash: None,
        });
        let (_, _, violations) = run_des(
            &s,
            DesTweaks {
                retry: Some(RetryPolicy {
                    retransmit: false,
                    ..RetryPolicy::default()
                }),
                ..DesTweaks::default()
            },
        )
        .expect("harness");
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, OracleViolation::Liveness { .. })),
            "total loss without retransmit must wedge the run: {violations:?}"
        );
    }

    /// Graceful degradation: when every buddy-help announcement is
    /// permanently lost, the run still passes every oracle, meters each
    /// abandoned announcement (`degraded_buffers > 0`), performs no *extra*
    /// memcpy skips beyond the baseline region pruning (`memcpy_skipped`
    /// equals the ablation's), and decides exactly the matches of a
    /// no-buddy-help ablation.
    #[test]
    fn degraded_buddy_help_matches_no_help_ablation() {
        for seed in 0..50 {
            let mut s = Scenario::generate(seed);
            s.buddy_help = true;
            s.chaos = None;
            for e in &mut s.exporters {
                if e.procs > 1 {
                    *e.compute.last_mut().expect("non-empty compute") += 0.02;
                }
            }
            let (degraded_matches, counters, violations) = run_des(
                &s,
                DesTweaks {
                    drop_buddy_help: true,
                    ..DesTweaks::default()
                },
            )
            .expect("harness");
            assert!(violations.is_empty(), "seed {seed}: {violations:?}");
            if counters.degraded_buffers == 0 {
                continue; // no help traffic in this scenario — keep looking
            }
            let mut ablation = s.clone();
            ablation.buddy_help = false;
            let (plain_matches, plain_counters, plain_violations) =
                run_des(&ablation, DesTweaks::default()).expect("harness");
            assert!(
                plain_violations.is_empty(),
                "seed {seed}: {plain_violations:?}"
            );
            assert_eq!(
                counters.memcpy_skipped, plain_counters.memcpy_skipped,
                "seed {seed}: lost announcements must not change skip behavior"
            );
            assert_eq!(
                degraded_matches, plain_matches,
                "seed {seed}: degradation changed match decisions"
            );
            return;
        }
        panic!("no seed in 0..50 produced buddy-help traffic to degrade");
    }

    /// A small fixed corpus through the socket runtime on loopback UDS:
    /// all three runtimes must agree on match decisions, and the
    /// deterministic protocol counters must be identical between the
    /// threaded and socket transports.
    #[test]
    fn socket_corpus_matches_other_runtimes() {
        if socket_node_bin().is_none() {
            eprintln!("skipping: couplink-node binary not built");
            return;
        }
        for seed in 0..4 {
            let s = Scenario::generate(seed);
            let violations = check_scenario_socket(&s, SocketBackend::Uds).expect("harness");
            assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        }
    }

    /// Forced permanent faults (loss + rep crash) over the socket
    /// transport: the per-process reliability layer must recover exactly
    /// as the in-process runtimes do, with every oracle green.
    #[test]
    fn socket_forced_fault_seed_recovers() {
        if socket_node_bin().is_none() {
            eprintln!("skipping: couplink-node binary not built");
            return;
        }
        let mut s = Scenario::generate(1);
        s.force_faults();
        let (_, _, violations) = run_socket(&s, SocketBackend::Uds, false).expect("harness");
        assert!(violations.is_empty(), "{violations:?}");
    }

    /// The ci negative: a receiver-side codec bug that silently drops
    /// collective-answer frames must wedge the importer, and the liveness
    /// oracle must say so.
    #[test]
    fn socket_drop_answers_fires_liveness_oracle() {
        if socket_node_bin().is_none() {
            eprintln!("skipping: couplink-node binary not built");
            return;
        }
        let mut s = Scenario::generate(0);
        s.chaos = None;
        let (_, _, violations) = run_socket(&s, SocketBackend::Uds, true).expect("harness");
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, OracleViolation::Liveness { .. })),
            "dropped answers must trip the liveness oracle: {violations:?}"
        );
    }

    /// A crashed agent thread must surface as a `ProcessCrash` error from
    /// fabric shutdown (via `catch_unwind`) instead of hanging the run.
    #[test]
    fn agent_crash_surfaces_as_process_crash() {
        let mut s = Scenario::generate(
            (0..)
                .find(|&seed| Scenario::generate(seed).exporters[0].procs >= 2)
                .expect("some seed has a multi-rank exporter"),
        );
        s.chaos = Some(ChaosConfig {
            seed: 11,
            max_delay: 0.0,
            duplicate_prob: 0.0,
            drop_prob: 0.0,
            retry_delay: 0.004,
            loss_prob: 0.0,
            crash: Some(CrashFault {
                target: CrashTarget::Agent {
                    prog: s.exporter_prog(0),
                    rank: 1,
                },
                after_msgs: 0,
                restart_after: None,
            }),
        });
        let (_, _, violations) = run_threaded(&s, false).expect("harness");
        assert!(
            violations
                .iter()
                .any(|v| v.to_string().contains("process crashed")),
            "agent panic must surface as ProcessCrash: {violations:?}"
        );
    }
}
