//! Property-based tests of the exporter rep's collective aggregation: for
//! any *legal* interleaving of responses (PENDING-then-consistent-definitive
//! per rank), the rep answers the importer exactly once, with the right
//! answer, helps exactly the PENDING ranks (when enabled), and completes.
//! Any *illegal* set (conflicting definitive answers) is rejected.

use couplink_proto::{ExporterRep, ProcResponse, Rank, RepAnswer, RequestId};
use couplink_time::{ts, Timestamp};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum RankPlan {
    /// Responds definitively right away.
    Immediate,
    /// Responds PENDING first, later updates definitively (unless helped).
    PendingThenResolve,
}

fn plans() -> impl Strategy<Value = (Vec<RankPlan>, bool, bool)> {
    (
        proptest::collection::vec(
            prop_oneof![
                Just(RankPlan::Immediate),
                Just(RankPlan::PendingThenResolve)
            ],
            1..12,
        ),
        any::<bool>(), // buddy-help enabled
        any::<bool>(), // answer is MATCH (vs NO MATCH)
    )
}

fn definitive(is_match: bool, m: Timestamp) -> ProcResponse {
    if is_match {
        ProcResponse::Match(m)
    } else {
        ProcResponse::NoMatch
    }
}

proptest! {
    #[test]
    fn legal_interleavings_converge((plans, buddy, is_match) in plans(), order_seed in 0u64..1000) {
        let n = plans.len();
        let m = ts(19.6);
        let expected = if is_match { RepAnswer::Match(m) } else { RepAnswer::NoMatch };
        let mut rep = ExporterRep::new(n, buddy);
        let fx = rep.on_import_request(RequestId(0), ts(20.0)).unwrap();
        prop_assert_eq!(fx.forward, Some((RequestId(0), ts(20.0))));

        // Phase 1: first responses, in a seed-rotated order.
        let mut answered: Option<RepAnswer> = None;
        let mut helped: Vec<u32> = Vec::new();
        let mut completed = false;
        let rot = (order_seed as usize) % n;
        let order: Vec<usize> = (0..n).map(|i| (i + rot) % n).collect();
        for &r in &order {
            let resp = match plans[r] {
                RankPlan::Immediate => definitive(is_match, m),
                RankPlan::PendingThenResolve => ProcResponse::Pending { latest: None },
            };
            let fx = rep.on_response(Rank(r as u32), RequestId(0), resp).unwrap();
            if let Some((req, ans)) = fx.answer {
                prop_assert_eq!(req, RequestId(0));
                prop_assert_eq!(ans, expected);
                prop_assert!(answered.is_none(), "answered the importer twice");
                answered = Some(ans);
            }
            for (rank, req, ans) in fx.buddy_help {
                prop_assert!(buddy);
                prop_assert_eq!(req, RequestId(0));
                prop_assert_eq!(ans, expected);
                helped.push(rank.0);
            }
            if fx.completed.is_some() {
                prop_assert!(!completed);
                completed = true;
            }
        }
        let any_immediate = plans.iter().any(|p| matches!(p, RankPlan::Immediate));
        prop_assert_eq!(answered.is_some(), any_immediate);

        // Phase 2: unhelped pending ranks resolve locally.
        if any_immediate {
            for &r in &order {
                if matches!(plans[r], RankPlan::PendingThenResolve)
                    && !helped.contains(&(r as u32))
                {
                    let fx = rep
                        .on_response(Rank(r as u32), RequestId(0), definitive(is_match, m))
                        .unwrap();
                    if fx.completed.is_some() {
                        prop_assert!(!completed);
                        completed = true;
                    }
                }
            }
            prop_assert!(completed, "request never completed");
            if buddy {
                // Exactly the pending ranks that responded before the first
                // immediate one plus those after it got help... in this
                // drive, every pending rank is helped (the answer exists
                // when each pending response lands or is pushed when the
                // first definitive arrives).
                let mut expect: Vec<u32> = plans
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| matches!(p, RankPlan::PendingThenResolve))
                    .map(|(i, _)| i as u32)
                    .collect();
                expect.sort_unstable();
                helped.sort_unstable();
                prop_assert_eq!(helped, expect);
            } else {
                prop_assert!(helped.is_empty());
            }
        } else {
            // All pending: nothing decided yet; resolve everyone now.
            for &r in &order {
                rep.on_response(Rank(r as u32), RequestId(0), definitive(is_match, m))
                    .unwrap();
            }
            prop_assert_eq!(rep.inflight_len(), 0);
        }
    }

    /// Any two conflicting definitive answers — MATCH vs NO MATCH or two
    /// different matched timestamps — are rejected wherever they appear in
    /// the interleaving.
    #[test]
    fn conflicting_definitives_always_detected(
        n in 2usize..8,
        first in 0usize..8,
        second in 0usize..8,
        pendings in 0usize..6,
        kind in 0..2,
    ) {
        let first = first % n;
        let second = (first + 1 + second % (n - 1)) % n;
        let mut rep = ExporterRep::new(n, true);
        rep.on_import_request(RequestId(0), ts(20.0)).unwrap();
        // Some pending noise first.
        for r in 0..pendings.min(n) {
            if r != first && r != second {
                rep.on_response(Rank(r as u32), RequestId(0), ProcResponse::Pending { latest: None })
                    .unwrap();
            }
        }
        rep.on_response(Rank(first as u32), RequestId(0), ProcResponse::Match(ts(19.6)))
            .unwrap();
        let conflicting = if kind == 0 {
            ProcResponse::NoMatch
        } else {
            ProcResponse::Match(ts(18.6))
        };
        let result = rep.on_response(Rank(second as u32), RequestId(0), conflicting);
        prop_assert!(result.is_err(), "conflict not detected");
    }
}
