//! Property tests of the wire codec: every control message and payload
//! frame round-trips bit-exactly, and every way a frame can be damaged —
//! truncation, version skew, bit flips, outright garbage — maps to a
//! typed [`WireError`], never a panic, with checksum damage recoverable
//! (the decoder resynchronizes on the next frame).

use couplink_proto::wire::{
    crc32, crc32_reference, decode_ctrl, decode_payload, encode_ctrl, encode_frame, encode_payload,
    encode_payload_with, BodyWriter, FrameDecoder, FrameWriter, WireError, WireRect, HEADER_LEN,
    KIND_CTRL, KIND_PAYLOAD, WIRE_VERSION,
};
use couplink_proto::{ConnectionId, CtrlMsg, ProcResponse, Rank, RepAnswer, RequestId};
use couplink_time::ts;
use proptest::prelude::*;

/// Every [`CtrlMsg`] variant, with randomized fields. Timestamps stay
/// finite (non-finite bits are rejected by construction, not carried).
fn ctrl_msg() -> impl Strategy<Value = CtrlMsg> {
    (
        0u8..9,
        0u32..1000,
        0u64..u64::MAX,
        0u32..64,
        0.0f64..1e9,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(tag, conn, req, rank, t, flag_a, flag_b)| {
            let conn = ConnectionId(conn);
            let req = RequestId(req);
            let rank = Rank(rank);
            let answer = if flag_a {
                RepAnswer::Match(ts(t))
            } else {
                RepAnswer::NoMatch
            };
            match tag {
                0 => CtrlMsg::ImportCall {
                    conn,
                    rank,
                    ts: ts(t),
                },
                1 => CtrlMsg::ImportRequest {
                    conn,
                    req,
                    ts: ts(t),
                },
                2 => CtrlMsg::ForwardRequest {
                    conn,
                    req,
                    ts: ts(t),
                },
                3 => CtrlMsg::Response {
                    conn,
                    req,
                    rank,
                    resp: match (flag_a, flag_b) {
                        (true, _) => ProcResponse::Match(ts(t)),
                        (false, true) => ProcResponse::NoMatch,
                        (false, false) => ProcResponse::Pending {
                            latest: (t > 0.5).then(|| ts(t)),
                        },
                    },
                },
                4 => CtrlMsg::BuddyHelp { conn, req, answer },
                5 => CtrlMsg::Answer { conn, req, answer },
                6 => CtrlMsg::AnswerBcast { conn, req, answer },
                7 => CtrlMsg::Ack { seq: req.0 },
                _ => CtrlMsg::Heartbeat { beat: req.0 },
            }
        })
}

proptest! {
    /// Body-level and frame-level round trip for every variant.
    #[test]
    fn ctrl_roundtrips(msg in ctrl_msg()) {
        let body = encode_ctrl(&msg);
        prop_assert_eq!(decode_ctrl(&body).unwrap(), msg.clone());

        let mut dec = FrameDecoder::new();
        dec.extend(&encode_frame(KIND_CTRL, &body));
        let frame = dec.next_frame().unwrap().unwrap();
        prop_assert_eq!(frame.kind, KIND_CTRL);
        prop_assert_eq!(decode_ctrl(&frame.body).unwrap(), msg);
        prop_assert!(dec.next_frame().unwrap().is_none());
    }

    /// Payload frames round-trip for random rects, including empty ones,
    /// with the data serialized bit-exactly.
    #[test]
    fn payload_roundtrips(
        row0 in 0u64..512, col0 in 0u64..512,
        rows in 0u64..7, cols in 0u64..7,
        dst in 0u32..64, seed in 0u64..u64::MAX,
    ) {
        let owned = WireRect { row0, col0, rows, cols };
        let rect = WireRect { row0, col0, rows: rows.min(1), cols };
        let n = (rows * cols) as usize;
        // Deterministic but irregular finite values.
        let data: Vec<f64> = (0..n)
            .map(|i| (seed.wrapping_mul(i as u64 + 1) % 1_000_000) as f64 * 0.5 - 1e5)
            .collect();
        let frame_bytes = encode_payload(
            ConnectionId(3), Rank(dst), RequestId(seed), rect, owned, &data,
        );
        let mut dec = FrameDecoder::new();
        dec.extend(&frame_bytes);
        let frame = dec.next_frame().unwrap().unwrap();
        prop_assert_eq!(frame.kind, KIND_PAYLOAD);
        let p = decode_payload(&frame.body).unwrap();
        prop_assert_eq!(p.conn, ConnectionId(3));
        prop_assert_eq!(p.dst, Rank(dst));
        prop_assert_eq!(p.req, RequestId(seed));
        prop_assert_eq!(p.rect, rect);
        prop_assert_eq!(p.owned, owned);
        prop_assert_eq!(p.data, data);
    }

    /// Truncating a body anywhere yields a typed error, never a panic.
    #[test]
    fn truncated_bodies_reject(msg in ctrl_msg(), cut in 0u64..1000) {
        let body = encode_ctrl(&msg);
        let cut = (cut as usize) % body.len();
        match decode_ctrl(&body[..cut]) {
            Err(WireError::Truncated) => {}
            Err(WireError::Malformed { .. }) | Err(WireError::BadTag { .. }) => {}
            Ok(m) => prop_assert!(
                cut == body.len(),
                "decoded {m:?} from a truncated body ({cut}/{} bytes)", body.len()
            ),
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
        }
    }

    /// A partial frame is "not yet", not an error; completing it decodes.
    #[test]
    fn partial_frames_wait(msg in ctrl_msg(), cut in 1u64..1000) {
        let bytes = encode_frame(KIND_CTRL, &encode_ctrl(&msg));
        let cut = 1 + (cut as usize) % (bytes.len() - 1);
        let mut dec = FrameDecoder::new();
        dec.extend(&bytes[..cut]);
        if cut < bytes.len() {
            prop_assert!(dec.next_frame().unwrap().is_none());
        }
        dec.extend(&bytes[cut..]);
        let frame = dec.next_frame().unwrap().unwrap();
        prop_assert_eq!(decode_ctrl(&frame.body).unwrap(), msg);
    }

    /// Version skew is a permanent, typed rejection.
    #[test]
    fn version_skew_rejects(msg in ctrl_msg(), v in 0u8..=255) {
        let mut bytes = encode_frame(KIND_CTRL, &encode_ctrl(&msg));
        if v == WIRE_VERSION {
            return Ok(());
        }
        bytes[2] = v;
        let mut dec = FrameDecoder::new();
        dec.extend(&bytes);
        let skew = matches!(dec.next_frame(), Err(WireError::BadVersion { got }) if got == v);
        prop_assert!(skew, "expected BadVersion for version byte {}", v);
        // The stream is poisoned: feeding a pristine frame cannot revive it.
        dec.extend(&encode_frame(KIND_CTRL, &encode_ctrl(&msg)));
        prop_assert!(dec.next_frame().is_err());
    }

    /// A bit flip in the body region fails the checksum — and only skips
    /// that frame: the next frame on the stream still decodes.
    #[test]
    fn bit_flips_are_skipped_not_fatal(msg in ctrl_msg(), bit in 0u64..10_000) {
        let mut bytes = encode_frame(KIND_CTRL, &encode_ctrl(&msg));
        let body_bits = (bytes.len() - HEADER_LEN) * 8;
        let bit = (bit as usize) % body_bits;
        bytes[HEADER_LEN + bit / 8] ^= 1 << (bit % 8);
        let follow = encode_frame(KIND_CTRL, &encode_ctrl(&msg));
        let mut dec = FrameDecoder::new();
        dec.extend(&bytes);
        dec.extend(&follow);
        prop_assert!(matches!(dec.next_frame(), Err(WireError::BadChecksum)));
        let frame = dec.next_frame().unwrap().unwrap();
        prop_assert_eq!(decode_ctrl(&frame.body).unwrap(), msg);
    }

    /// The slice-by-8 crc32 agrees with the byte-at-a-time reference for
    /// every input, at every length and alignment.
    #[test]
    fn crc32_matches_reference(
        bytes in proptest::collection::vec(0u8..=255, 0..512),
        skew in 0usize..8,
    ) {
        let cut = skew.min(bytes.len());
        prop_assert_eq!(crc32(&bytes), crc32_reference(&bytes));
        prop_assert_eq!(crc32(&bytes[cut..]), crc32_reference(&bytes[cut..]));
    }

    /// The bulk-f64 payload encoder is byte-identical to the old
    /// per-element BodyWriter + `encode_frame` construction, including
    /// when it reuses a dirty pooled buffer.
    #[test]
    fn bulk_payload_encoder_matches_per_element_reference(
        rows in 0u64..9, cols in 0u64..9, seed in 0u64..u64::MAX,
        garbage in proptest::collection::vec(0u8..=255, 0..64),
    ) {
        let owned = WireRect { row0: 1, col0: 2, rows, cols };
        let rect = owned;
        let n = (rows * cols) as usize;
        let data: Vec<f64> = (0..n)
            .map(|i| f64::from_bits(seed.wrapping_mul(i as u64 + 1) | 1))
            .collect();

        // The pre-existing construction, inlined as the oracle.
        let mut w = BodyWriter::with_capacity(8 + 8 * 8 + 8 + 8 + 8 * data.len());
        w.u32(3);
        w.u32(7);
        w.u64(seed);
        for r in [rect, owned] {
            w.u64(r.row0);
            w.u64(r.col0);
            w.u64(r.rows);
            w.u64(r.cols);
        }
        w.u64(data.len() as u64);
        for &v in &data {
            w.f64(v);
        }
        let reference = encode_frame(KIND_PAYLOAD, &w.into_body());

        let fresh = encode_payload(
            ConnectionId(3), Rank(7), RequestId(seed), rect, owned, &data,
        );
        prop_assert_eq!(&fresh, &reference);

        // A recycled buffer with arbitrary leftover contents must not
        // leak a single byte into the frame.
        let pooled = encode_payload_with(
            garbage, ConnectionId(3), Rank(7), RequestId(seed), rect, owned, &data,
        );
        prop_assert_eq!(&pooled, &reference);
    }

    /// A frame assembled in place by [`FrameWriter`] is byte-identical to
    /// the old two-buffer `encode_frame` path for every control message.
    #[test]
    fn frame_writer_matches_encode_frame(msg in ctrl_msg()) {
        let body = encode_ctrl(&msg);
        let mut w = FrameWriter::with_capacity(KIND_CTRL, body.len());
        w.bytes(&body);
        prop_assert_eq!(w.finish(), encode_frame(KIND_CTRL, &body));
    }

    /// The compacting decoder yields identical frames no matter where the
    /// byte stream is cut: every split of two back-to-back payload frames
    /// round-trips, and a truncated prefix is `Ok(None)`, never data.
    #[test]
    fn decoder_roundtrips_at_every_cut(
        rows in 0u64..6, cols in 0u64..6, seed in 0u64..u64::MAX,
        cut_sel in 0usize..usize::MAX,
    ) {
        let owned = WireRect { row0: 0, col0: 0, rows, cols };
        let n = (rows * cols) as usize;
        let data: Vec<f64> = (0..n).map(|i| (i as f64) * 1.5 - 3.0).collect();
        let one = encode_payload(
            ConnectionId(1), Rank(0), RequestId(seed), owned, owned, &data,
        );
        let mut stream = one.clone();
        stream.extend_from_slice(&one);
        let cut = cut_sel % (stream.len() + 1);

        let mut dec = FrameDecoder::new();
        dec.extend(&stream[..cut]);
        let mut got = Vec::new();
        while let Some(f) = dec.next_frame().unwrap() {
            got.push(f);
        }
        prop_assert_eq!(got.len(), cut / one.len(), "only whole frames surface");
        dec.extend(&stream[cut..]);
        while let Some(f) = dec.next_frame().unwrap() {
            got.push(f);
        }
        prop_assert_eq!(got.len(), 2);
        for f in got {
            prop_assert_eq!(f.kind, KIND_PAYLOAD);
            let p = decode_payload(&f.body).unwrap();
            prop_assert_eq!(&p.data, &data);
        }
        prop_assert_eq!(dec.buffered(), 0, "stream fully consumed");
    }

    /// Arbitrary garbage never panics any decode entry point.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
        let _ = decode_ctrl(&bytes);
        let _ = decode_payload(&bytes);
        let mut dec = FrameDecoder::new();
        dec.extend(&bytes);
        for _ in 0..8 {
            match dec.next_frame() {
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => break,
            }
        }
    }
}

/// A near-worst-case payload (512×512 cells, 2 MiB of f64) survives the
/// round trip intact — the size guard admits real frames.
#[test]
fn large_payload_roundtrip() {
    let owned = WireRect {
        row0: 0,
        col0: 0,
        rows: 512,
        cols: 512,
    };
    let data: Vec<f64> = (0..512 * 512).map(|i| i as f64 * 0.25).collect();
    let bytes = encode_payload(ConnectionId(0), Rank(7), RequestId(1), owned, owned, &data);
    let mut dec = FrameDecoder::new();
    dec.extend(&bytes);
    let frame = dec.next_frame().unwrap().unwrap();
    let p = decode_payload(&frame.body).unwrap();
    assert_eq!(p.data, data);
    assert_eq!(p.owned, owned);
}

/// Regression for the receive-buffer growth pathology: a multi-megabyte
/// payload fed one byte at a time (the worst drip a socket can produce)
/// must keep peak buffering bounded by the frame itself — the old decoder
/// paid a drain/compact per frame and accumulated unboundedly when frames
/// were pulled slower than bytes arrived.
#[test]
fn byte_at_a_time_multi_megabyte_payload_stays_bounded() {
    let owned = WireRect {
        row0: 0,
        col0: 0,
        rows: 512,
        cols: 512,
    };
    let data: Vec<f64> = (0..512 * 512).map(|i| i as f64 * 0.125).collect();
    let one = encode_payload(ConnectionId(0), Rank(1), RequestId(9), owned, owned, &data);

    let mut dec = FrameDecoder::new();
    let mut got = 0usize;
    for _ in 0..3 {
        for &b in &one {
            dec.extend(std::slice::from_ref(&b));
            while let Some(f) = dec.next_frame().unwrap() {
                let p = decode_payload(&f.body).unwrap();
                assert_eq!(p.data, data);
                got += 1;
            }
        }
        assert_eq!(dec.buffered(), 0, "frame boundary leaves nothing buffered");
    }
    assert_eq!(got, 3);
    assert!(
        dec.buffered_hwm() <= one.len(),
        "peak rx buffering {} exceeded one frame ({})",
        dec.buffered_hwm(),
        one.len()
    );
}

/// Payload data whose length disagrees with its owned rect is malformed.
#[test]
fn payload_shape_mismatch_rejects() {
    let owned = WireRect {
        row0: 0,
        col0: 0,
        rows: 2,
        cols: 3,
    };
    let bytes = encode_payload(
        ConnectionId(0),
        Rank(0),
        RequestId(0),
        owned,
        owned,
        &[1.0; 5], // 5 != 2*3
    );
    let mut dec = FrameDecoder::new();
    dec.extend(&bytes);
    let frame = dec.next_frame().unwrap().unwrap();
    assert!(matches!(
        decode_payload(&frame.body),
        Err(WireError::Malformed { .. })
    ));
}
