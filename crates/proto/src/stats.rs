//! Statistics implementing the paper's Equations (1)–(2) in event counts.
//!
//! The proto layer is clockless, so "time spent on unnecessary buffering"
//! is recorded here as *counts of unnecessary memcpys*; the runtimes convert
//! counts × per-object memcpy cost into the paper's `T_i` / `T_ub` seconds
//! (all objects on one connection have the same size, so the conversion is a
//! single multiplication).

use serde::{Deserialize, Serialize};

/// Counters accumulated by one [`crate::ExportPort`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExportStats {
    /// Import requests seen (forwarded by the rep).
    pub requests: u64,
    /// Export calls made by the process.
    pub exports: u64,
    /// Export calls that copied the object into the framework buffer.
    pub memcpys: u64,
    /// Export calls whose memcpy was skipped (the buddy-help saving).
    pub skips: u64,
    /// Objects transferred to the importer.
    pub sends: u64,
    /// Buffered objects freed after having been sent (useful buffering).
    pub freed_sent: u64,
    /// Buffered objects freed without ever being sent (unnecessary
    /// buffering — the quantity Equations (1)–(2) sum).
    pub freed_unsent: u64,
    /// Buddy-help messages consumed.
    pub buddy_helps: u64,
    /// High-water mark of buffered objects (peak framework memory in
    /// objects; × object bytes = peak buffer footprint — the finite-buffer
    /// question the paper's §6 leaves as future work).
    pub buffered_hwm: usize,
    /// Export attempts rejected because a bounded buffer was full (each is
    /// one stall of the exporting process).
    pub buffer_full_stalls: u64,
    /// Equation (1) attribution: `unnecessary_by_request[i]` is the number
    /// of unnecessarily buffered objects that fell inside the acceptable
    /// region `R_i` of the `i`-th request (the paper's `n(i) − 1` when the
    /// region got a match).
    pub unnecessary_by_request: Vec<u64>,
    /// Unnecessarily buffered objects that fell in no acceptable region
    /// (exported between regions, pruned when a later request arrived).
    pub unnecessary_inter_region: u64,
}

impl ExportStats {
    /// Equation (2) in counts: total unnecessary memcpys attributed to
    /// acceptable regions, `Σ_i (n(i) − 1)`.
    pub fn t_ub_in_region_count(&self) -> u64 {
        self.unnecessary_by_request.iter().sum()
    }

    /// All unnecessary memcpys, in and between regions.
    pub fn unnecessary_total(&self) -> u64 {
        self.t_ub_in_region_count() + self.unnecessary_inter_region
    }

    /// Fraction of export calls whose memcpy was skipped.
    pub fn skip_ratio(&self) -> f64 {
        if self.exports == 0 {
            0.0
        } else {
            self.skips as f64 / self.exports as f64
        }
    }

    /// Whether the port has reached the paper's *optimal state* over the
    /// last `window` requests: no unnecessary in-region buffering
    /// (`T_i = 0`, Figure 6). Requests beyond the attribution vector's end
    /// had zero unnecessary copies (the vector only grows on attribution).
    pub fn optimal_over_last(&self, window: usize) -> bool {
        let total = self.requests as usize;
        let start = total.saturating_sub(window);
        (start..total).all(|i| self.unnecessary_by_request.get(i).copied().unwrap_or(0) == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation2_sums_per_region_terms() {
        let s = ExportStats {
            unnecessary_by_request: vec![4, 7, 0, 2],
            unnecessary_inter_region: 12,
            ..Default::default()
        };
        assert_eq!(s.t_ub_in_region_count(), 13);
        assert_eq!(s.unnecessary_total(), 25);
    }

    #[test]
    fn skip_ratio_handles_zero_exports() {
        assert_eq!(ExportStats::default().skip_ratio(), 0.0);
        let s = ExportStats {
            exports: 10,
            skips: 4,
            ..Default::default()
        };
        assert!((s.skip_ratio() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn optimal_state_window() {
        let s = ExportStats {
            requests: 5,
            unnecessary_by_request: vec![4, 7, 0, 0, 0],
            ..Default::default()
        };
        assert!(s.optimal_over_last(3));
        assert!(!s.optimal_over_last(4));
        assert!(ExportStats::default().optimal_over_last(5));
    }

    #[test]
    fn optimal_state_counts_unrecorded_trailing_requests_as_clean() {
        // 10 requests, attribution vector only reached index 1: requests
        // 2..10 buffered nothing unnecessarily.
        let s = ExportStats {
            requests: 10,
            unnecessary_by_request: vec![3, 2],
            ..Default::default()
        };
        assert!(s.optimal_over_last(8));
        assert!(!s.optimal_over_last(9));
    }
}
