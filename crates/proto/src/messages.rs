//! Control-plane message payloads exchanged between processes and reps.
//!
//! Data-plane payloads (the actual array pieces) are runtime-specific and
//! live in `couplink-runtime`; only the control messages are defined here so
//! both runtimes (and tests) speak the same protocol.

use crate::ids::{ConnectionId, Rank, RequestId};
use couplink_time::{MatchResult, Timestamp};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One process's response to a forwarded import request.
///
/// The paper's reply triple `{D@20, PENDING, D@14.6}` carries the latest
/// exported timestamp along with a PENDING verdict; [`ProcResponse::Pending`]
/// keeps that diagnostic field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ProcResponse {
    /// This process has decided the match.
    Match(Timestamp),
    /// This process has decided no export can satisfy the request.
    NoMatch,
    /// The best match cannot yet be decided; `latest` is the most recent
    /// timestamp this process has exported (None if it has exported nothing).
    Pending {
        /// Latest exported timestamp at response time.
        latest: Option<Timestamp>,
    },
}

impl ProcResponse {
    /// Converts a local [`MatchResult`] evaluation into a response.
    pub fn from_result(result: MatchResult, latest: Option<Timestamp>) -> Self {
        match result {
            MatchResult::Match(t) => ProcResponse::Match(t),
            MatchResult::NoMatch => ProcResponse::NoMatch,
            MatchResult::Pending => ProcResponse::Pending { latest },
        }
    }

    /// The definitive answer carried by this response, if any.
    pub fn decided(self) -> Option<RepAnswer> {
        match self {
            ProcResponse::Match(t) => Some(RepAnswer::Match(t)),
            ProcResponse::NoMatch => Some(RepAnswer::NoMatch),
            ProcResponse::Pending { .. } => None,
        }
    }
}

impl fmt::Display for ProcResponse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcResponse::Match(t) => write!(f, "MATCH({t})"),
            ProcResponse::NoMatch => write!(f, "NO MATCH"),
            ProcResponse::Pending { latest: Some(l) } => write!(f, "PENDING(latest {l})"),
            ProcResponse::Pending { latest: None } => write!(f, "PENDING(no exports)"),
        }
    }
}

/// The rep's final, definitive answer to an import request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RepAnswer {
    /// The request is satisfied by the export with this timestamp.
    Match(Timestamp),
    /// The request cannot be satisfied.
    NoMatch,
}

impl RepAnswer {
    /// The matched timestamp, if any.
    pub fn matched(self) -> Option<Timestamp> {
        match self {
            RepAnswer::Match(t) => Some(t),
            RepAnswer::NoMatch => None,
        }
    }
}

impl fmt::Display for RepAnswer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepAnswer::Match(t) => write!(f, "YES {t}"),
            RepAnswer::NoMatch => write!(f, "NO"),
        }
    }
}

/// Control-plane messages. The comments give the paper's §4 flow:
/// importer rep → exporter rep → exporter processes → exporter rep →
/// (importer rep, plus buddy-help back to the slow exporter processes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CtrlMsg {
    /// Importer process notifies its own rep of a collective `import(ts)`.
    ImportCall {
        /// Connection the import is on.
        conn: ConnectionId,
        /// Calling process rank.
        rank: Rank,
        /// Requested timestamp.
        ts: Timestamp,
    },
    /// Importer rep asks the exporter rep for a match.
    ImportRequest {
        /// Connection the request is on.
        conn: ConnectionId,
        /// Request id (assigned by the importer rep).
        req: RequestId,
        /// Requested timestamp.
        ts: Timestamp,
    },
    /// Exporter rep forwards the request to each of its processes.
    ForwardRequest {
        /// Connection.
        conn: ConnectionId,
        /// Request id.
        req: RequestId,
        /// Requested timestamp.
        ts: Timestamp,
    },
    /// Exporter process replies (or later updates a PENDING reply).
    Response {
        /// Connection.
        conn: ConnectionId,
        /// Request id.
        req: RequestId,
        /// Responding process rank.
        rank: Rank,
        /// The response.
        resp: ProcResponse,
    },
    /// Exporter rep's buddy-help: the final answer, sent to processes whose
    /// response was PENDING (the §4.1 optimization).
    BuddyHelp {
        /// Connection.
        conn: ConnectionId,
        /// Request id.
        req: RequestId,
        /// The final answer.
        answer: RepAnswer,
    },
    /// Exporter rep answers the importer rep.
    Answer {
        /// Connection.
        conn: ConnectionId,
        /// Request id.
        req: RequestId,
        /// The final answer.
        answer: RepAnswer,
    },
    /// Importer rep broadcasts the answer to its processes.
    AnswerBcast {
        /// Connection.
        conn: ConnectionId,
        /// Request id.
        req: RequestId,
        /// The final answer.
        answer: RepAnswer,
    },
    /// A coalesced collective frame routed down the k-ary distribution
    /// tree (hierarchical fan-out): the importer-side answer broadcast
    /// and/or the buddy-help announcements for one match, folded into a
    /// single message. Each receiving rank applies the roles it plays and
    /// relays the frame unchanged to its own subtree, so the rep sends at
    /// most `k` frames per collective instead of one per rank.
    Coalesced {
        /// Connection.
        conn: ConnectionId,
        /// Request id.
        req: RequestId,
        /// The final answer.
        answer: RepAnswer,
        /// Apply as the importer rep's answer broadcast ([`CtrlMsg::AnswerBcast`]).
        bcast: bool,
        /// Apply as the exporter rep's buddy-help ([`CtrlMsg::BuddyHelp`]).
        help: bool,
    },
    /// Reliability-layer acknowledgement of the sequenced message `seq` on
    /// the directed link back to its sender. Idempotent: duplicated or
    /// reordered acks are harmless (acking a seq twice is a no-op).
    Ack {
        /// Sequence number being acknowledged.
        seq: u64,
    },
    /// Liveness heartbeat from a rep to a member process. Idempotent:
    /// carries only the monotone beat index, so duplicates and stale
    /// reorderings are harmless (receivers keep the max).
    Heartbeat {
        /// Monotone beat index from this rep.
        beat: u64,
    },
}

impl CtrlMsg {
    /// Whether this message belongs to the reliability/liveness layer
    /// itself (acks and heartbeats), as opposed to the §4 coupling
    /// protocol. Layer messages are never themselves sequenced — an ack of
    /// an ack would regress infinitely — and must be idempotent instead.
    pub fn is_link_layer(&self) -> bool {
        matches!(self, CtrlMsg::Ack { .. } | CtrlMsg::Heartbeat { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use couplink_time::ts;

    #[test]
    fn response_from_result() {
        assert_eq!(
            ProcResponse::from_result(MatchResult::Match(ts(19.6)), Some(ts(20.6))),
            ProcResponse::Match(ts(19.6))
        );
        assert_eq!(
            ProcResponse::from_result(MatchResult::NoMatch, Some(ts(21.0))),
            ProcResponse::NoMatch
        );
        assert_eq!(
            ProcResponse::from_result(MatchResult::Pending, Some(ts(14.6))),
            ProcResponse::Pending {
                latest: Some(ts(14.6))
            }
        );
    }

    #[test]
    fn decided_extraction() {
        assert_eq!(
            ProcResponse::Match(ts(1.0)).decided(),
            Some(RepAnswer::Match(ts(1.0)))
        );
        assert_eq!(ProcResponse::NoMatch.decided(), Some(RepAnswer::NoMatch));
        assert_eq!(ProcResponse::Pending { latest: None }.decided(), None);
    }

    #[test]
    fn display_matches_paper_vocabulary() {
        assert_eq!(RepAnswer::Match(ts(19.6)).to_string(), "YES @19.6");
        assert_eq!(RepAnswer::NoMatch.to_string(), "NO");
        assert_eq!(
            ProcResponse::Pending {
                latest: Some(ts(14.6))
            }
            .to_string(),
            "PENDING(latest @14.6)"
        );
    }
}
