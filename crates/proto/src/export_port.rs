//! The exporter-process buffer manager: buffer / skip / send decisions.
//!
//! One [`ExportPort`] exists per (exporting process × connection). It is the
//! state machine at the heart of the paper: it answers forwarded import
//! requests, decides for every export whether the framework must memcpy the
//! object into its buffer, frees buffered objects the moment they can no
//! longer be needed, and — given a buddy-help message — skips buffering of
//! objects that are already known not to be the match, *before they are even
//! generated* (§4.1).
//!
//! # The dominance rule
//!
//! All skipping and freeing is justified by one lemma, exploiting that both
//! export timestamps and request timestamps strictly increase:
//!
//! > Once the match `m` for request `x` is known, no export with timestamp
//! > `t < m` can ever be the match of any current or future request.
//!
//! *Proof sketch.* A future request `x' > x` prefers whichever in-region
//! candidate is closest to `x'`. For `REGL`, `t < m ≤ x < x'`, so whenever
//! `t` is in `x'`'s region so is `m`, and `m` is closer. For `REG`, `m` won
//! over `t` at `x`, which gives `m + t ≤ 2x < 2x'`, making `m` strictly
//! closer to `x'` as well; and `t ≥ lo' = x'−tol` implies
//! `m ≤ t + 2·tol ≤ x' + tol = hi'`, so `m` is in the region whenever `t`
//! is. For `REGU`, `t < m` with `t` in a region `[x', x'+tol]`, `x' > x`,
//! would require `t > x ≥` every pre-match export, i.e. `t ∈ (x, m)`, which
//! cannot exist because `m` is the first export at or above `x`.
//!
//! The same argument with `m` replaced by the best candidate seen so far
//! justifies freeing a superseded candidate inside a still-pending region
//! (the paper's Figure 8, "call memcpy, remove previous").

use crate::ids::{ConnectionId, RequestId};
use crate::messages::{ProcResponse, RepAnswer};
use crate::stats::ExportStats;
use couplink_time::{
    evaluate, AcceptableRegion, ExportHistory, HistoryError, MatchPolicy, MatchResult, Timestamp,
    Tolerance,
};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// Error from an [`ExportPort`] operation.
#[derive(Debug, Clone, PartialEq)]
pub enum PortError {
    /// An export or request timestamp violated the increasing invariant, or
    /// a history query could not be answered after pruning.
    History(HistoryError),
    /// A buddy-help or duplicate message referenced an unknown request.
    UnknownRequest(RequestId),
    /// Collective semantics (Property 1) were violated.
    CollectiveViolation {
        /// The request on which the violation was detected.
        request: RequestId,
        /// Human-readable description of the conflict.
        detail: String,
    },
    /// The framework buffer is at capacity and the export would need to be
    /// copied. Nothing was recorded: the caller must retry the same export
    /// after buffer space frees (a request arrival, a buddy-help message or
    /// a resolution). This models the finite-buffer-space question the
    /// paper's §6 leaves open.
    BufferFull {
        /// The export that could not be accepted.
        offered: Timestamp,
    },
}

impl fmt::Display for PortError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortError::History(e) => write!(f, "history error: {e}"),
            PortError::UnknownRequest(r) => write!(f, "unknown request {r}"),
            PortError::CollectiveViolation { request, detail } => {
                write!(f, "collective violation on {request}: {detail}")
            }
            PortError::BufferFull { offered } => {
                write!(f, "framework buffer full; export {offered} must wait")
            }
        }
    }
}

impl std::error::Error for PortError {}

impl From<HistoryError> for PortError {
    fn from(e: HistoryError) -> Self {
        PortError::History(e)
    }
}

/// What the driver must do with the object being exported right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportAction {
    /// Copy the object into the framework buffer (it may be a match later).
    Buffer,
    /// Copy the object and immediately transfer it to the importer: it is
    /// the known match for `request` (buddy-help told us before the object
    /// was generated).
    BufferAndSend {
        /// The request this object satisfies.
        request: RequestId,
    },
    /// Do nothing: the object can never be needed. This is the memcpy the
    /// buddy-help optimization saves.
    Skip,
}

impl ExportAction {
    /// Whether the action involves a memcpy.
    pub fn copies(self) -> bool {
        !matches!(self, ExportAction::Skip)
    }
}

/// A locally decided resolution of a previously PENDING request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Resolution {
    /// The request that was resolved.
    pub request: RequestId,
    /// The decided answer.
    pub answer: RepAnswer,
    /// If `Some`, the buffered object with this timestamp must now be
    /// transferred to the importer (it is this process's share of the match).
    pub send: Option<Timestamp>,
}

/// Effects of [`ExportPort::on_export`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExportEffects {
    /// What to do with the object being exported.
    pub action: Option<ExportAction>,
    /// Buffered objects to free (their memcpy turned out unnecessary unless
    /// they were already sent).
    pub freed: Vec<Timestamp>,
    /// Requests this export resolved locally; each must be reported to the
    /// rep (and data sent for matches).
    pub resolutions: Vec<Resolution>,
}

/// Effects of [`ExportPort::on_request`].
#[derive(Debug, Clone, PartialEq)]
pub struct RequestEffects {
    /// The response to return to the rep.
    pub response: ProcResponse,
    /// Buffered objects to free.
    pub freed: Vec<Timestamp>,
    /// If `Some`, the buffered object with this timestamp must be
    /// transferred to the importer (immediate MATCH).
    pub send: Option<Timestamp>,
}

/// Effects of [`ExportPort::on_buddy_help`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HelpEffects {
    /// Buffered objects to free.
    pub freed: Vec<Timestamp>,
    /// If `Some`, the buffered object with this timestamp must be
    /// transferred to the importer (the match had already been exported by
    /// the time the buddy-help message arrived).
    pub send: Option<Timestamp>,
}

#[derive(Debug, Clone)]
struct OpenRequest {
    id: RequestId,
    region: AcceptableRegion,
    /// Final answer learned via buddy-help, if any.
    help: Option<RepAnswer>,
}

#[derive(Debug, Clone, Copy)]
struct Buffered {
    sent: bool,
}

/// Per-(process × connection) exporter state machine. See the module docs.
///
/// # Example: a buddy-help window
///
/// ```
/// use couplink_proto::{ConnectionId, ExportAction, ExportPort, RepAnswer, RequestId};
/// use couplink_time::{ts, MatchPolicy, Tolerance};
///
/// let mut port = ExportPort::new(
///     ConnectionId(0), MatchPolicy::RegL, Tolerance::new(2.5).unwrap());
/// // A request for @20 arrives before anything was exported: PENDING.
/// port.on_request(RequestId(0), ts(20.0))?;
/// // The rep's buddy-help announces the collective match: @19.6.
/// port.on_buddy_help(RequestId(0), RepAnswer::Match(ts(19.6)))?;
/// // Every export below the known match now skips the framework memcpy...
/// assert_eq!(port.on_export(ts(18.6))?.action, Some(ExportAction::Skip));
/// // ...and the match itself is copied and sent in one step.
/// assert_eq!(
///     port.on_export(ts(19.6))?.action,
///     Some(ExportAction::BufferAndSend { request: RequestId(0) }),
/// );
/// # Ok::<(), couplink_proto::export_port::PortError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ExportPort {
    conn: ConnectionId,
    policy: MatchPolicy,
    tol: Tolerance,
    history: ExportHistory,
    /// Regions of all requests seen, in arrival order (for attribution).
    regions: Vec<AcceptableRegion>,
    open: VecDeque<OpenRequest>,
    /// Watermark from fully resolved requests: exports below it can never be
    /// needed (max over resolved requests of the match timestamp, or the
    /// region lower bound for NO MATCH).
    resolved_bound: Option<Timestamp>,
    buffered: BTreeMap<Timestamp, Buffered>,
    /// Maximum buffered objects; `None` = unbounded (the paper's setting).
    capacity: Option<usize>,
    /// Deliberate soundness bug for mutation testing: treat the buddy-help
    /// match itself as skippable. See [`ExportPort::set_unsound_help_skip`].
    unsound_help_skip: bool,
    /// Deliberate soundness bug for mutation testing: drop a buddy-help
    /// announcement whose match the local history has already passed. See
    /// [`ExportPort::set_unsound_stale_skip`].
    unsound_stale_skip: bool,
    stats: ExportStats,
}

impl ExportPort {
    /// Creates a port for one connection with the connection's match policy
    /// and tolerance.
    pub fn new(conn: ConnectionId, policy: MatchPolicy, tol: Tolerance) -> Self {
        ExportPort {
            conn,
            policy,
            tol,
            history: ExportHistory::new(),
            regions: Vec::new(),
            open: VecDeque::new(),
            resolved_bound: None,
            buffered: BTreeMap::new(),
            capacity: None,
            unsound_help_skip: false,
            unsound_stale_skip: false,
            stats: ExportStats::default(),
        }
    }

    /// Deliberately weakens the pruning rule: an export equal to a known
    /// buddy-help match is *skipped* instead of buffered-and-sent, as if the
    /// dominance lemma read `t ≤ m` instead of `t < m`.
    ///
    /// This is a **mutation-testing hook** (never enabled in production
    /// paths): the simulation-testing harness flips it on to prove that the
    /// buffer-safety and liveness oracles actually catch a broken pruning
    /// rule rather than vacuously passing.
    pub fn set_unsound_help_skip(&mut self, enabled: bool) {
        self.unsound_help_skip = enabled;
    }

    /// Deliberately discards "stale" buddy-help announcements: when the
    /// announced match has already been exported here (local history passed
    /// it before the help arrived), the request is resolved **without
    /// sending the buffered piece** — as if a rank that has moved past the
    /// match could assume someone else handles the transfer. Every rank owes
    /// its own piece, so the importer is left waiting forever.
    ///
    /// This is a **mutation-testing hook** (never enabled in production
    /// paths): the simulation-testing harness flips it on to prove that the
    /// buffer-safety and liveness oracles catch a dropped transfer rather
    /// than vacuously passing.
    pub fn set_unsound_stale_skip(&mut self, enabled: bool) {
        self.unsound_stale_skip = enabled;
    }

    /// Creates a port whose framework buffer holds at most `capacity`
    /// objects. When full, [`ExportPort::on_export`] returns
    /// [`PortError::BufferFull`] without consuming the export; the caller
    /// retries once buffer space frees.
    pub fn with_capacity(
        conn: ConnectionId,
        policy: MatchPolicy,
        tol: Tolerance,
        capacity: usize,
    ) -> Self {
        let mut port = Self::new(conn, policy, tol);
        port.capacity = Some(capacity);
        port
    }

    /// The buffer capacity, if bounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// The connection this port serves.
    pub fn connection(&self) -> ConnectionId {
        self.conn
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &ExportStats {
        &self.stats
    }

    /// Number of objects currently held in the framework buffer.
    pub fn buffered_len(&self) -> usize {
        self.buffered.len()
    }

    /// The timestamps currently buffered (ascending).
    pub fn buffered_timestamps(&self) -> impl Iterator<Item = Timestamp> + '_ {
        self.buffered.keys().copied()
    }

    /// Exports below this bound will be skipped outright.
    ///
    /// This is the *skip floor*: the minimum over open requests of their
    /// known bound (the buddy-help match if known, else the region's lower
    /// bound), or the resolved watermark when no request is open.
    pub fn skip_floor(&self) -> Option<Timestamp> {
        if self.open.is_empty() {
            self.resolved_bound
        } else {
            self.open
                .iter()
                .map(|r| match r.help {
                    Some(RepAnswer::Match(m)) => m,
                    _ => r.region.lo(),
                })
                .min()
        }
    }

    /// Handles a request forwarded by the rep. Returns the response for the
    /// rep plus buffer effects.
    pub fn on_request(
        &mut self,
        id: RequestId,
        ts: Timestamp,
    ) -> Result<RequestEffects, PortError> {
        let region = self.policy.region(ts, self.tol);
        // Validate the increasing-request invariant through the region list.
        if let Some(prev) = self.regions.last() {
            if ts <= prev.request() {
                return Err(PortError::History(HistoryError::NotIncreasing {
                    last: prev.request(),
                    offered: ts,
                }));
            }
        }
        self.regions.push(region);
        self.stats.requests += 1;

        let result = evaluate(&region, &self.history)?;
        let response = ProcResponse::from_result(result, self.history.latest());
        let mut send = None;
        match result {
            MatchResult::Match(m) => {
                self.mark_resolved_bound(m);
                send = Some(self.mark_sent(id, m)?);
            }
            MatchResult::NoMatch => {
                self.mark_resolved_bound(region.lo());
            }
            MatchResult::Pending => {
                self.open.push_back(OpenRequest {
                    id,
                    region,
                    help: None,
                });
            }
        }
        let freed = self.advance();
        Ok(RequestEffects {
            response,
            freed,
            send,
        })
    }

    /// Decides, without mutating anything, what `on_export(t)` would do.
    ///
    /// Returns the action and, for a buddy-help-resolved match, the position
    /// of the resolved request in the open queue.
    fn classify(&self, t: Timestamp) -> Result<(ExportAction, Option<usize>), PortError> {
        for (pos, req) in self.open.iter().enumerate() {
            if let Some(RepAnswer::Match(m)) = req.help {
                if t == m {
                    if self.unsound_help_skip {
                        // Mutation: the broken rule drops the match object
                        // itself. No internal check fires — the request just
                        // stays open forever — which is exactly what the
                        // external buffer-safety/liveness oracles must catch.
                        return Ok((ExportAction::Skip, None));
                    }
                    return Ok((ExportAction::BufferAndSend { request: req.id }, Some(pos)));
                }
                // Property 1 check: an export strictly between the known
                // match and the region's request (for REGL) contradicts the
                // fast process's complete view of the export sequence.
                if t > m && req.region.contains(t) && t <= req.region.request() {
                    return Err(PortError::CollectiveViolation {
                        request: req.id,
                        detail: format!(
                            "export {t} is in the acceptable region and beats the \
                             buddy-help match {m}, but all processes export the \
                             same sequence"
                        ),
                    });
                }
            }
        }
        let action = if self.skip_floor().is_some_and(|floor| t < floor) {
            ExportAction::Skip
        } else {
            ExportAction::Buffer
        };
        Ok((action, None))
    }

    /// The buffered objects that buffering `t` would supersede (Fig. 8's
    /// "remove previous"): smaller candidates inside the newest pending
    /// region that no older open request can still need.
    fn superseded_by(&self, t: Timestamp) -> Vec<Timestamp> {
        match self.open.back() {
            Some(n) if n.region.contains(t) && t <= n.region.request() => {}
            _ => return Vec::new(),
        }
        let older: Vec<AcceptableRegion> = self
            .open
            .iter()
            .take(self.open.len() - 1)
            .map(|r| r.region)
            .collect();
        self.buffered
            .range(..t)
            .filter(|(ts0, _)| !older.iter().any(|r| r.contains(**ts0)))
            .map(|(ts0, _)| *ts0)
            .collect()
    }

    /// Handles an export call with timestamp `t`: decides the buffering
    /// action and resolves any open requests this export decides.
    ///
    /// With a bounded buffer, returns [`PortError::BufferFull`] — without
    /// consuming the export — when the object would have to be copied but no
    /// space can be made; retry after a request, buddy-help message or
    /// resolution frees space.
    pub fn on_export(&mut self, t: Timestamp) -> Result<ExportEffects, PortError> {
        if let Some(last) = self.history.latest() {
            if t <= last {
                return Err(PortError::History(HistoryError::NotIncreasing {
                    last,
                    offered: t,
                }));
            }
        }
        let (action, resolved_by_help) = self.classify(t)?;
        let doomed = match action {
            ExportAction::Buffer => self.superseded_by(t),
            _ => Vec::new(),
        };
        if action.copies() {
            if let Some(cap) = self.capacity {
                if self.buffered.len() - doomed.len() >= cap {
                    self.stats.buffer_full_stalls += 1;
                    return Err(PortError::BufferFull { offered: t });
                }
            }
        }
        self.history.record(t).expect("increase checked above");
        self.stats.exports += 1;
        let mut effects = ExportEffects::default();

        match action {
            ExportAction::Skip => {
                self.stats.skips += 1;
            }
            ExportAction::Buffer => {
                for d in doomed {
                    self.free(d);
                    effects.freed.push(d);
                }
                self.buffered.insert(t, Buffered { sent: false });
                self.stats.memcpys += 1;
                self.stats.buffered_hwm = self.stats.buffered_hwm.max(self.buffered.len());
            }
            ExportAction::BufferAndSend { request } => {
                self.buffered.insert(t, Buffered { sent: true });
                self.stats.memcpys += 1;
                self.stats.buffered_hwm = self.stats.buffered_hwm.max(self.buffered.len());
                self.stats.sends += 1;
                let pos = resolved_by_help.expect("set together with the action");
                let req = self.open.remove(pos).expect("position is in range");
                debug_assert_eq!(req.id, request);
                self.mark_resolved_bound(t);
                // One export can be the announced match of *several* helped
                // requests: under REGL consecutive overlapping regions share
                // their maximum, so the rep may announce the same object for
                // back-to-back requests. Each one owes the importer a piece;
                // resolving only the first would leave the rest open forever.
                // (The rep already knows these answers; the late responses it
                // gets from the resolutions below are validated, not re-counted.)
                let mut idx = 0;
                while idx < self.open.len() {
                    if self.open[idx].help == Some(RepAnswer::Match(t)) {
                        let extra = self.open.remove(idx).expect("index is in range");
                        let send = self.mark_sent(extra.id, t)?;
                        effects.resolutions.push(Resolution {
                            request: extra.id,
                            answer: RepAnswer::Match(t),
                            send: Some(send),
                        });
                    } else {
                        idx += 1;
                    }
                }
            }
        }
        effects.action = Some(action);

        // 2. Local resolution of open requests this export decides.
        //    (Requests that already have a buddy-help answer are resolved on
        //    the matched export above and need no rep update.)
        let mut still_open = VecDeque::new();
        let open = std::mem::take(&mut self.open);
        for req in open {
            if req.help.is_some() {
                still_open.push_back(req);
                continue;
            }
            let result = evaluate(&req.region, &self.history)?;
            match result {
                MatchResult::Pending => still_open.push_back(req),
                MatchResult::Match(m) => {
                    self.mark_resolved_bound(m);
                    let send = self.mark_sent(req.id, m)?;
                    effects.resolutions.push(Resolution {
                        request: req.id,
                        answer: RepAnswer::Match(m),
                        send: Some(send),
                    });
                }
                MatchResult::NoMatch => {
                    self.mark_resolved_bound(req.region.lo());
                    effects.resolutions.push(Resolution {
                        request: req.id,
                        answer: RepAnswer::NoMatch,
                        send: None,
                    });
                }
            }
        }
        self.open = still_open;

        effects.freed.extend(self.advance());
        Ok(effects)
    }

    /// Handles a buddy-help message from the rep: the final answer for a
    /// request this process answered PENDING.
    pub fn on_buddy_help(
        &mut self,
        id: RequestId,
        answer: RepAnswer,
    ) -> Result<HelpEffects, PortError> {
        let pos = match self.open.iter().position(|r| r.id == id) {
            Some(p) => p,
            None => {
                // The request may have been resolved locally in the meantime
                // (the process caught up before the help arrived). That is
                // legal; the rep validated consistency. Everything else is a
                // protocol error.
                return if self.regions.len() > self.open.len() {
                    Ok(HelpEffects::default())
                } else {
                    Err(PortError::UnknownRequest(id))
                };
            }
        };
        let region = self.open[pos].region;
        let mut effects = HelpEffects::default();
        match answer {
            RepAnswer::Match(m) => {
                if !region.contains(m) {
                    return Err(PortError::CollectiveViolation {
                        request: id,
                        detail: format!("buddy-help match {m} is outside {region}"),
                    });
                }
                // Property 1: our local exports are a prefix of what the
                // deciding process saw, so none of our in-region candidates
                // may beat the announced match.
                if let Some(best) = self.best_local_candidate(&region)? {
                    if region.prefer(best, m) != m {
                        return Err(PortError::CollectiveViolation {
                            request: id,
                            detail: format!(
                                "buddy-help match {m} is beaten by the locally \
                                 exported candidate {best}"
                            ),
                        });
                    }
                }
                // If we already exported the match, resolve right away and
                // send our piece; otherwise remember the answer and wait for
                // the matching export (skipping everything below it).
                let already = self.history.latest().is_some_and(|l| l >= m);
                if already {
                    if !self.buffered.contains_key(&m) {
                        return Err(PortError::CollectiveViolation {
                            request: id,
                            detail: format!(
                                "buddy-help match {m} was already exported here but \
                                 is not buffered — local and collective decisions \
                                 diverged"
                            ),
                        });
                    }
                    self.open.remove(pos);
                    self.mark_resolved_bound(m);
                    if self.unsound_stale_skip {
                        // Mutation: treat the announcement as stale and drop
                        // it without sending our piece. No internal check
                        // fires — the importer just never receives this
                        // rank's contribution — which is exactly what the
                        // external buffer-safety/liveness oracles must catch.
                        self.mark_help(id);
                    } else {
                        effects.send = Some(self.mark_sent(id, m)?);
                    }
                } else {
                    self.open[pos].help = Some(answer);
                    self.mark_help(id);
                }
            }
            RepAnswer::NoMatch => {
                // Property 1: no process will ever export into this region,
                // so the request is simply dead.
                self.open.remove(pos);
                self.mark_resolved_bound(region.lo());
                self.mark_help(id);
            }
        }
        effects.freed = self.advance();
        Ok(effects)
    }

    /// Attributes statistics and frees everything below the current floor.
    fn advance(&mut self) -> Vec<Timestamp> {
        let floor = match self.skip_floor() {
            Some(f) => f,
            None => return Vec::new(),
        };
        let doomed: Vec<Timestamp> = self.buffered.range(..floor).map(|(t, _)| *t).collect();
        for t in &doomed {
            self.free(*t);
        }
        // History pruning must stay conservative: only below the smallest
        // region lower bound that could still be queried.
        let history_floor = self
            .open
            .iter()
            .map(|r| r.region.lo())
            .chain(self.regions.last().map(|r| r.lo()))
            .min();
        if let Some(hf) = history_floor {
            self.history.prune_below(hf);
        }
        doomed
    }

    /// Frees one buffered object, attributing unnecessary-buffering stats.
    fn free(&mut self, t: Timestamp) {
        let meta = self.buffered.remove(&t).expect("freeing unbuffered object");
        if meta.sent {
            self.stats.freed_sent += 1;
        } else {
            self.stats.freed_unsent += 1;
            // Equation (1) attribution: which acceptable region was this
            // unnecessarily buffered object in, if any?
            match self.regions.iter().rposition(|r| r.contains(t)) {
                Some(i) => {
                    if self.stats.unnecessary_by_request.len() <= i {
                        self.stats.unnecessary_by_request.resize(i + 1, 0);
                    }
                    self.stats.unnecessary_by_request[i] += 1;
                }
                None => self.stats.unnecessary_inter_region += 1,
            }
        }
    }

    /// Marks the buffered object `m` as sent and returns its timestamp.
    fn mark_sent(&mut self, id: RequestId, m: Timestamp) -> Result<Timestamp, PortError> {
        match self.buffered.get_mut(&m) {
            Some(meta) => {
                if !meta.sent {
                    meta.sent = true;
                    self.stats.sends += 1;
                }
                Ok(m)
            }
            None => Err(PortError::CollectiveViolation {
                request: id,
                detail: format!("match {m} decided but the object is not buffered"),
            }),
        }
    }

    /// The best locally exported candidate inside `region` (the timestamp
    /// the matcher would currently prefer), ignoring decidedness.
    fn best_local_candidate(
        &self,
        region: &AcceptableRegion,
    ) -> Result<Option<Timestamp>, PortError> {
        let x = region.request();
        let best = match region.policy() {
            MatchPolicy::RegL => self.history.max_in(region.lo(), region.hi())?,
            MatchPolicy::RegU => self.history.min_in(region.lo(), region.hi())?,
            MatchPolicy::Reg => {
                let below = self.history.max_in(region.lo(), x)?;
                let above = self.history.min_in(x, region.hi())?;
                match (below, above) {
                    (Some(b), Some(a)) => Some(region.prefer(b, a)),
                    (b, a) => b.or(a),
                }
            }
        };
        Ok(best)
    }

    fn mark_resolved_bound(&mut self, bound: Timestamp) {
        self.resolved_bound = Some(match self.resolved_bound {
            Some(b) => b.max(bound),
            None => bound,
        });
    }

    fn mark_help(&mut self, _id: RequestId) {
        self.stats.buddy_helps += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use couplink_time::ts;

    fn port(policy: MatchPolicy, tol: f64) -> ExportPort {
        ExportPort::new(ConnectionId(0), policy, Tolerance::new(tol).unwrap())
    }

    fn regl_port(tol: f64) -> ExportPort {
        port(MatchPolicy::RegL, tol)
    }

    /// Drives the paper's Figure 5 scenario and checks every line.
    #[test]
    fn figure5_with_buddy_help() {
        let mut p = regl_port(2.5);
        // Lines 1-4: export D@1.6 .. D@14.6, all memcpy'd.
        for i in 1..=14 {
            let fx = p.on_export(ts(i as f64 + 0.6)).unwrap();
            assert_eq!(fx.action, Some(ExportAction::Buffer), "iteration {i}");
            assert!(fx.resolutions.is_empty());
        }
        assert_eq!(p.buffered_len(), 14);
        // Lines 5-7: request D@20 arrives; reply PENDING with latest 14.6;
        // remove D@1.6 .. D@14.6? No — the region is [17.5, 20], so only
        // entries below 17.5 are removed, which is all 14 of them.
        let rfx = p.on_request(RequestId(0), ts(20.0)).unwrap();
        assert_eq!(
            rfx.response,
            ProcResponse::Pending {
                latest: Some(ts(14.6))
            }
        );
        assert_eq!(rfx.freed.len(), 14);
        assert_eq!(p.buffered_len(), 0);
        // Line 8: buddy-help {D@20, YES, D@19.6}.
        let hfx = p
            .on_buddy_help(RequestId(0), RepAnswer::Match(ts(19.6)))
            .unwrap();
        assert_eq!(hfx.send, None);
        // Lines 10-13: exports 15.6 .. 18.6 skip the memcpy.
        for i in 15..=18 {
            let fx = p.on_export(ts(i as f64 + 0.6)).unwrap();
            assert_eq!(fx.action, Some(ExportAction::Skip), "iteration {i}");
        }
        // Lines 14-16: export D@19.6 → memcpy + send out.
        let fx = p.on_export(ts(19.6)).unwrap();
        assert_eq!(
            fx.action,
            Some(ExportAction::BufferAndSend {
                request: RequestId(0)
            })
        );
        // Lines 17-20: exports 20.6 .. 31.6 buffered again (the next request
        // is unknown).
        for i in 20..=31 {
            let fx = p.on_export(ts(i as f64 + 0.6)).unwrap();
            assert_eq!(fx.action, Some(ExportAction::Buffer), "iteration {i}");
        }
        // D@19.6 is still buffered alongside 20.6 .. 31.6.
        assert_eq!(p.buffered_len(), 13);
        // Lines 21-23: request D@40 → PENDING, remove D@19.6 .. D@34.x below
        // the new region [37.5, 40].
        let rfx = p.on_request(RequestId(1), ts(40.0)).unwrap();
        assert_eq!(
            rfx.response,
            ProcResponse::Pending {
                latest: Some(ts(31.6))
            }
        );
        assert_eq!(rfx.freed.len(), 13);
        assert_eq!(p.buffered_len(), 0);
        // Lines 24-29: buddy-help {D@40, YES, D@39.6}; exports 32.6 .. 38.6
        // skip (7 skips this time, up from 4 — T_i decreasing).
        p.on_buddy_help(RequestId(1), RepAnswer::Match(ts(39.6)))
            .unwrap();
        for i in 32..=38 {
            let fx = p.on_export(ts(i as f64 + 0.6)).unwrap();
            assert_eq!(fx.action, Some(ExportAction::Skip), "iteration {i}");
        }
        // Lines 30-32: D@39.6 memcpy + send.
        let fx = p.on_export(ts(39.6)).unwrap();
        assert_eq!(
            fx.action,
            Some(ExportAction::BufferAndSend {
                request: RequestId(1)
            })
        );
        // Line 33: D@40.6 buffered.
        let fx = p.on_export(ts(40.6)).unwrap();
        assert_eq!(fx.action, Some(ExportAction::Buffer));

        let s = p.stats();
        assert_eq!(s.skips, 4 + 7);
        assert_eq!(s.sends, 2);
    }

    /// The paper's Figure 7: REGL tolerance 5.0, request at 10.0, with
    /// buddy-help — only the match is copied.
    #[test]
    fn figure7_with_buddy_help() {
        let mut p = regl_port(5.0);
        for i in 1..=3 {
            assert_eq!(
                p.on_export(ts(i as f64 + 0.6)).unwrap().action,
                Some(ExportAction::Buffer)
            );
        }
        // Request D@10.0: region [5.0, 10.0]; reply PENDING; remove
        // D@1.6..D@3.6 (all below 5.0).
        let rfx = p.on_request(RequestId(0), ts(10.0)).unwrap();
        assert_eq!(
            rfx.response,
            ProcResponse::Pending {
                latest: Some(ts(3.6))
            }
        );
        assert_eq!(rfx.freed.len(), 3);
        // Buddy-help: the match is D@9.6.
        p.on_buddy_help(RequestId(0), RepAnswer::Match(ts(9.6)))
            .unwrap();
        // Line 8: D@4.6 skipped (outside the region would have been the
        // reason pre-help; with help everything below 9.6 skips).
        // Lines 9-11: D@5.6 .. D@8.6 skipped despite being inside the region.
        for i in 4..=8 {
            assert_eq!(
                p.on_export(ts(i as f64 + 0.6)).unwrap().action,
                Some(ExportAction::Skip),
                "iteration {i}"
            );
        }
        // Lines 12-14: D@9.6 memcpy + send.
        let fx = p.on_export(ts(9.6)).unwrap();
        assert_eq!(
            fx.action,
            Some(ExportAction::BufferAndSend {
                request: RequestId(0)
            })
        );
        // Line 15: D@10.6 buffered.
        assert_eq!(
            p.on_export(ts(10.6)).unwrap().action,
            Some(ExportAction::Buffer)
        );
        assert_eq!(p.stats().skips, 5);
        assert_eq!(p.stats().memcpys, 3 + 1 + 1);
    }

    /// The paper's Figure 8: same scenario without buddy-help — every
    /// in-region export is copied and supersedes its predecessor; the match
    /// resolves locally at the first export beyond the region.
    #[test]
    fn figure8_without_buddy_help() {
        let mut p = regl_port(5.0);
        for i in 1..=3 {
            p.on_export(ts(i as f64 + 0.6)).unwrap();
        }
        let rfx = p.on_request(RequestId(0), ts(10.0)).unwrap();
        assert_eq!(rfx.freed.len(), 3);
        // Line 7: D@4.6 — below the region [5.0, 10.0] → skip.
        assert_eq!(
            p.on_export(ts(4.6)).unwrap().action,
            Some(ExportAction::Skip)
        );
        // Lines 8-18: D@5.6 .. D@9.6 each memcpy'd, freeing the predecessor.
        let mut prev: Option<Timestamp> = None;
        for i in 5..=9 {
            let t = ts(i as f64 + 0.6);
            let fx = p.on_export(t).unwrap();
            assert_eq!(fx.action, Some(ExportAction::Buffer), "iteration {i}");
            match prev {
                None => assert!(fx.freed.is_empty()),
                Some(pv) => assert_eq!(fx.freed, vec![pv], "iteration {i}"),
            }
            assert!(fx.resolutions.is_empty());
            prev = Some(t);
        }
        assert_eq!(p.buffered_len(), 1); // only the current candidate D@9.6
                                         // Lines 19-21: D@10.6 memcpy'd; resolves the request; send D@9.6.
        let fx = p.on_export(ts(10.6)).unwrap();
        assert_eq!(fx.action, Some(ExportAction::Buffer));
        assert_eq!(
            fx.resolutions,
            vec![Resolution {
                request: RequestId(0),
                answer: RepAnswer::Match(ts(9.6)),
                send: Some(ts(9.6)),
            }]
        );
        // Unnecessary buffering: D@5.6 .. D@8.6 were copied then freed
        // unsent — exactly n(i) - 1 = 4 of the 5 in-region copies (Eq. 1).
        assert_eq!(p.stats().freed_unsent, 3 + 4);
        assert_eq!(p.stats().unnecessary_by_request, vec![4]);
        assert_eq!(p.stats().unnecessary_inter_region, 3); // pre-request 1.6..3.6
    }

    #[test]
    fn immediate_match_when_fast() {
        // The fast process has already exported past the region when the
        // request arrives: immediate MATCH and the piece is sent.
        let mut p = regl_port(2.5);
        for i in 1..=21 {
            p.on_export(ts(i as f64 + 0.6)).unwrap();
        }
        let rfx = p.on_request(RequestId(0), ts(20.0)).unwrap();
        assert_eq!(rfx.response, ProcResponse::Match(ts(19.6)));
        assert_eq!(rfx.send, Some(ts(19.6)));
        // Everything below the match is freed; the match itself and later
        // exports stay.
        assert!(p.buffered_timestamps().all(|t| t >= ts(19.6)));
    }

    #[test]
    fn immediate_no_match_when_region_jumped() {
        let mut p = regl_port(0.5);
        p.on_export(ts(1.0)).unwrap();
        p.on_export(ts(5.0)).unwrap();
        let rfx = p.on_request(RequestId(0), ts(3.0)).unwrap();
        assert_eq!(rfx.response, ProcResponse::NoMatch);
        assert_eq!(rfx.send, None);
    }

    #[test]
    fn buddy_help_no_match_kills_request() {
        let mut p = regl_port(0.5);
        p.on_export(ts(1.0)).unwrap();
        let rfx = p.on_request(RequestId(0), ts(3.0)).unwrap();
        assert!(matches!(rfx.response, ProcResponse::Pending { .. }));
        let hfx = p.on_buddy_help(RequestId(0), RepAnswer::NoMatch).unwrap();
        assert_eq!(hfx.send, None);
        // Exports below the dead region's lower bound now skip.
        assert_eq!(
            p.on_export(ts(2.0)).unwrap().action,
            Some(ExportAction::Skip)
        );
        // Exports above it buffer again (they may match future requests).
        assert_eq!(
            p.on_export(ts(2.6)).unwrap().action,
            Some(ExportAction::Buffer)
        );
    }

    #[test]
    fn buddy_help_after_local_export_of_match_sends_immediately() {
        let mut p = regl_port(2.5);
        for i in 1..=19 {
            p.on_export(ts(i as f64 + 0.6)).unwrap();
        }
        // Request arrives; local latest is 19.6 < 20 → PENDING.
        let rfx = p.on_request(RequestId(0), ts(20.0)).unwrap();
        assert!(matches!(rfx.response, ProcResponse::Pending { .. }));
        // Buddy-help says 19.6, which we have already exported and buffered.
        let hfx = p
            .on_buddy_help(RequestId(0), RepAnswer::Match(ts(19.6)))
            .unwrap();
        assert_eq!(hfx.send, Some(ts(19.6)));
    }

    #[test]
    fn buddy_help_outside_region_is_violation() {
        let mut p = regl_port(2.5);
        p.on_export(ts(1.0)).unwrap();
        p.on_request(RequestId(0), ts(20.0)).unwrap();
        let err = p
            .on_buddy_help(RequestId(0), RepAnswer::Match(ts(10.0)))
            .unwrap_err();
        assert!(matches!(err, PortError::CollectiveViolation { .. }));
    }

    #[test]
    fn export_beating_known_match_is_violation() {
        let mut p = regl_port(2.5);
        p.on_export(ts(1.0)).unwrap();
        p.on_request(RequestId(0), ts(20.0)).unwrap();
        p.on_buddy_help(RequestId(0), RepAnswer::Match(ts(18.0)))
            .unwrap();
        // An export at 19.0 would be a better REGL match than 18.0 — but the
        // fast process (whose history is complete up to 20) said 18.0.
        let err = p.on_export(ts(19.0)).unwrap_err();
        assert!(matches!(err, PortError::CollectiveViolation { .. }));
    }

    #[test]
    fn requests_must_increase() {
        let mut p = regl_port(2.5);
        p.on_request(RequestId(0), ts(20.0)).unwrap();
        assert!(matches!(
            p.on_request(RequestId(1), ts(20.0)),
            Err(PortError::History(HistoryError::NotIncreasing { .. }))
        ));
    }

    #[test]
    fn exports_must_increase() {
        let mut p = regl_port(2.5);
        p.on_export(ts(5.0)).unwrap();
        assert!(matches!(
            p.on_export(ts(5.0)),
            Err(PortError::History(HistoryError::NotIncreasing { .. }))
        ));
    }

    #[test]
    fn late_buddy_help_for_resolved_request_is_ignored() {
        let mut p = regl_port(2.5);
        for i in 1..=19 {
            p.on_export(ts(i as f64 + 0.6)).unwrap();
        }
        p.on_request(RequestId(0), ts(20.0)).unwrap();
        // Local resolution at the first export past the region.
        let fx = p.on_export(ts(20.6)).unwrap();
        assert_eq!(fx.resolutions.len(), 1);
        // Buddy-help arrives afterwards: a no-op.
        let hfx = p
            .on_buddy_help(RequestId(0), RepAnswer::Match(ts(19.6)))
            .unwrap();
        assert_eq!(hfx, HelpEffects::default());
    }

    #[test]
    fn buddy_help_for_never_seen_request_errors() {
        let mut p = regl_port(2.5);
        assert_eq!(
            p.on_buddy_help(RequestId(7), RepAnswer::NoMatch),
            Err(PortError::UnknownRequest(RequestId(7)))
        );
    }

    #[test]
    fn regu_policy_first_in_region_export_matches() {
        let mut p = port(MatchPolicy::RegU, 0.5);
        p.on_export(ts(1.0)).unwrap();
        let rfx = p.on_request(RequestId(0), ts(2.0)).unwrap();
        assert!(matches!(rfx.response, ProcResponse::Pending { .. }));
        // 1.5 is below the region [2.0, 2.5] → skip.
        assert_eq!(
            p.on_export(ts(1.5)).unwrap().action,
            Some(ExportAction::Skip)
        );
        // 2.2 is in the region → buffered, and it resolves the request.
        let fx = p.on_export(ts(2.2)).unwrap();
        assert_eq!(fx.action, Some(ExportAction::Buffer));
        assert_eq!(
            fx.resolutions,
            vec![Resolution {
                request: RequestId(0),
                answer: RepAnswer::Match(ts(2.2)),
                send: Some(ts(2.2)),
            }]
        );
    }

    #[test]
    fn reg_policy_closest_wins_locally() {
        let mut p = port(MatchPolicy::Reg, 1.0);
        p.on_export(ts(9.8)).unwrap();
        let rfx = p.on_request(RequestId(0), ts(10.0)).unwrap();
        assert!(matches!(rfx.response, ProcResponse::Pending { .. }));
        // 10.5: in region, at-or-above the request → decides. 9.8 is closer.
        let fx = p.on_export(ts(10.5)).unwrap();
        assert_eq!(
            fx.resolutions,
            vec![Resolution {
                request: RequestId(0),
                answer: RepAnswer::Match(ts(9.8)),
                send: Some(ts(9.8)),
            }]
        );
    }

    /// Regression (found by the simtest harness, seed 50): under REGL two
    /// consecutive overlapping regions can share their maximum, so the rep
    /// may announce the *same* object as the match of back-to-back
    /// requests. When both are buddy-helped before the object is exported,
    /// the single matching export must resolve — and send a piece for —
    /// every one of them, not just the first in the queue.
    #[test]
    fn one_export_resolves_all_helped_requests_sharing_the_match() {
        let mut p = regl_port(1.0);
        // Two pending requests with overlapping regions [1.0, 2.0] and
        // [1.5, 2.5]; nothing exported yet.
        let r0 = p.on_request(RequestId(0), ts(2.0)).unwrap();
        let r1 = p.on_request(RequestId(1), ts(2.5)).unwrap();
        assert!(matches!(r0.response, ProcResponse::Pending { .. }));
        assert!(matches!(r1.response, ProcResponse::Pending { .. }));
        // A faster process decided both: the shared match is D@1.8.
        p.on_buddy_help(RequestId(0), RepAnswer::Match(ts(1.8)))
            .unwrap();
        p.on_buddy_help(RequestId(1), RepAnswer::Match(ts(1.8)))
            .unwrap();
        // The matching export arrives once and must pay both debts.
        let fx = p.on_export(ts(1.8)).unwrap();
        assert_eq!(
            fx.action,
            Some(ExportAction::BufferAndSend {
                request: RequestId(0)
            })
        );
        assert_eq!(
            fx.resolutions,
            vec![Resolution {
                request: RequestId(1),
                answer: RepAnswer::Match(ts(1.8)),
                send: Some(ts(1.8)),
            }]
        );
        // Both requests closed: the next export is prunable dead weight.
        assert_eq!(p.skip_floor(), Some(ts(1.8)));
    }

    #[test]
    fn sent_objects_are_freed_as_sent_not_unnecessary() {
        let mut p = regl_port(2.5);
        for i in 1..=21 {
            p.on_export(ts(i as f64 + 0.6)).unwrap();
        }
        p.on_request(RequestId(0), ts(20.0)).unwrap(); // match 19.6, sent
        let before = p.stats().freed_sent;
        // Next request's region [37.5, 40] prunes 19.6 (sent) and later
        // unsent entries.
        p.on_request(RequestId(1), ts(40.0)).unwrap();
        assert_eq!(p.stats().freed_sent, before + 1);
        assert!(p.stats().freed_unsent > 0);
    }

    #[test]
    fn buffer_high_water_mark_tracks_peak() {
        let mut p = regl_port(2.5);
        for i in 1..=5 {
            p.on_export(ts(i as f64)).unwrap();
        }
        assert_eq!(p.buffered_len(), 5);
        p.on_request(RequestId(0), ts(100.0)).unwrap();
        assert_eq!(p.buffered_len(), 0);
        // The peak survives the prune.
        assert_eq!(p.stats().buffered_hwm, 5);
    }

    #[test]
    fn bounded_buffer_rejects_when_full() {
        let mut p = ExportPort::with_capacity(
            ConnectionId(0),
            MatchPolicy::RegL,
            Tolerance::new(2.5).unwrap(),
            3,
        );
        for i in 1..=3 {
            p.on_export(ts(i as f64)).unwrap();
        }
        // Fourth copy would exceed the capacity; the export is not consumed.
        assert_eq!(
            p.on_export(ts(4.0)),
            Err(PortError::BufferFull { offered: ts(4.0) })
        );
        assert_eq!(p.stats().exports, 3);
        assert_eq!(p.stats().buffer_full_stalls, 1);
        // A request frees the stale entries; the retried export succeeds.
        let rfx = p.on_request(RequestId(0), ts(20.0)).unwrap();
        assert_eq!(rfx.freed.len(), 3);
        let fx = p.on_export(ts(4.0)).unwrap();
        assert_eq!(fx.action, Some(ExportAction::Skip)); // below [17.5, 20]
        assert_eq!(p.stats().exports, 4);
    }

    #[test]
    fn bounded_buffer_skip_path_never_blocks() {
        let mut p = ExportPort::with_capacity(
            ConnectionId(0),
            MatchPolicy::RegL,
            Tolerance::new(2.5).unwrap(),
            1,
        );
        p.on_export(ts(1.0)).unwrap(); // fills the single slot
        p.on_request(RequestId(0), ts(20.0)).unwrap(); // frees it, floor 17.5
        p.on_buddy_help(RequestId(0), RepAnswer::Match(ts(19.6)))
            .unwrap();
        // Everything below the known match skips without touching the buffer.
        for i in 2..=19 {
            let fx = p.on_export(ts(i as f64 + 0.6)).unwrap();
            if i < 19 {
                assert_eq!(fx.action, Some(ExportAction::Skip), "iteration {i}");
            }
        }
        assert_eq!(p.stats().buffer_full_stalls, 0);
    }

    #[test]
    fn bounded_buffer_supersession_makes_room() {
        // Capacity 1 with a pending in-region candidate chain: each new
        // candidate supersedes the previous, so the single slot suffices
        // (the Figure 8 pattern under a finite buffer).
        let mut p = ExportPort::with_capacity(
            ConnectionId(0),
            MatchPolicy::RegL,
            Tolerance::new(5.0).unwrap(),
            1,
        );
        p.on_request(RequestId(0), ts(10.0)).unwrap();
        for i in 5..=9 {
            let fx = p.on_export(ts(i as f64 + 0.6)).unwrap();
            assert_eq!(fx.action, Some(ExportAction::Buffer), "iteration {i}");
        }
        assert_eq!(p.buffered_len(), 1);
        assert_eq!(p.stats().buffer_full_stalls, 0);
    }

    #[test]
    fn skip_floor_tracks_min_over_open_requests() {
        let mut p = regl_port(2.5);
        assert_eq!(p.skip_floor(), None);
        p.on_request(RequestId(0), ts(20.0)).unwrap();
        assert_eq!(p.skip_floor(), Some(ts(17.5)));
        p.on_buddy_help(RequestId(0), RepAnswer::Match(ts(19.6)))
            .unwrap();
        assert_eq!(p.skip_floor(), Some(ts(19.6)));
    }
}
