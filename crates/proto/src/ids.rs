//! Identifier newtypes used throughout the protocol.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a participating program (e.g. `P0` in a configuration file).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProgramId(pub u32);

impl fmt::Display for ProgramId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A process rank within one program (`0 .. procs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Rank(pub u32);

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank{}", self.0)
    }
}

/// Identifies one export→import connection (one line of the connection
/// section of a configuration file).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ConnectionId(pub u32);

impl fmt::Display for ConnectionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conn{}", self.0)
    }
}

/// Identifies one import request on a connection. Assigned by the importer's
/// rep, strictly increasing per connection (like the request timestamps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RequestId(pub u64);

impl RequestId {
    /// The next request id.
    pub fn next(self) -> RequestId {
        RequestId(self.0 + 1)
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(ProgramId(3).to_string(), "P3");
        assert_eq!(Rank(0).to_string(), "rank0");
        assert_eq!(ConnectionId(2).to_string(), "conn2");
        assert_eq!(RequestId(7).to_string(), "req7");
    }

    #[test]
    fn request_id_next() {
        assert_eq!(RequestId(0).next(), RequestId(1));
        assert!(RequestId(1) > RequestId(0));
    }
}
