//! The representative (*rep*) state machines.
//!
//! Each program runs one extra low-overhead control process, the *rep*
//! (§4 of the paper). The exporter-side rep forwards import requests to all
//! processes, aggregates their collective responses, validates Property 1
//! (only five response sets are legal), answers the importer, and — when the
//! responses are a PENDING/decided mixture — sends the decided answer back
//! to the PENDING processes as *buddy-help*. The importer-side rep turns the
//! collective `import` calls of its processes into a single request and
//! broadcasts the answer.

use crate::ids::{Rank, RequestId};
use crate::messages::{ProcResponse, RepAnswer};
use couplink_time::{HistoryError, RequestStream, Timestamp};
use std::collections::BTreeMap;
use std::fmt;

/// Error from a rep state machine.
#[derive(Debug, Clone, PartialEq)]
pub enum RepError {
    /// Request timestamps must strictly increase per connection.
    History(HistoryError),
    /// A message referenced a request the rep does not know.
    UnknownRequest(RequestId),
    /// A rank outside the program responded.
    UnknownRank(Rank),
    /// Collective semantics (Property 1) were violated.
    CollectiveViolation {
        /// The offending request.
        request: RequestId,
        /// Description of the conflict (e.g. MATCH vs NO MATCH).
        detail: String,
    },
}

impl fmt::Display for RepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepError::History(e) => write!(f, "request stream error: {e}"),
            RepError::UnknownRequest(r) => write!(f, "unknown request {r}"),
            RepError::UnknownRank(r) => write!(f, "unknown rank {r}"),
            RepError::CollectiveViolation { request, detail } => {
                write!(f, "collective violation on {request}: {detail}")
            }
        }
    }
}

impl std::error::Error for RepError {}

impl From<HistoryError> for RepError {
    fn from(e: HistoryError) -> Self {
        RepError::History(e)
    }
}

/// Effects returned by [`ExporterRep`] event handlers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RepEffects {
    /// Forward this request to every process of the program.
    pub forward: Option<(RequestId, Timestamp)>,
    /// Send this final answer to the importer's rep (at most once per
    /// request).
    pub answer: Option<(RequestId, RepAnswer)>,
    /// Buddy-help messages: `(rank, request, answer)` for each process whose
    /// response was PENDING now that the answer is known.
    pub buddy_help: Vec<(Rank, RequestId, RepAnswer)>,
    /// The request is fully settled on every rank and can be forgotten.
    pub completed: Option<RequestId>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum RankState {
    /// No response yet.
    Silent,
    /// Responded PENDING (awaiting a local update or buddy-help).
    Pending,
    /// Settled: responded definitively, or was sent buddy-help.
    Settled,
}

#[derive(Debug)]
struct Inflight {
    ts: Timestamp,
    answer: Option<RepAnswer>,
    answered_importer: bool,
    ranks: Vec<RankState>,
}

impl Inflight {
    fn settled(&self) -> bool {
        self.ranks.iter().all(|s| *s == RankState::Settled)
    }
}

/// The exporting program's representative.
///
/// Aggregation rules (§4): the legal collective response sets are
/// all-MATCH, all-NO-MATCH, all-PENDING, PENDING+MATCH and
/// PENDING+NO-MATCH; all MATCH responses must carry the same timestamp.
/// Anything else is a [`RepError::CollectiveViolation`].
#[derive(Debug)]
pub struct ExporterRep {
    n_procs: usize,
    buddy_help_enabled: bool,
    requests: RequestStream,
    inflight: BTreeMap<RequestId, Inflight>,
    /// Answers of completed requests, kept so that late response updates
    /// (a process that resolved locally while its buddy-help message was in
    /// flight) can still be consistency-checked instead of rejected.
    completed: BTreeMap<RequestId, RepAnswer>,
}

impl ExporterRep {
    /// Creates a rep for a program with `n_procs` processes. `buddy_help`
    /// toggles the §4.1 optimization (off = baseline framework).
    pub fn new(n_procs: usize, buddy_help: bool) -> Self {
        assert!(n_procs > 0, "a program has at least one process");
        ExporterRep {
            n_procs,
            buddy_help_enabled: buddy_help,
            requests: RequestStream::new(),
            inflight: BTreeMap::new(),
            completed: BTreeMap::new(),
        }
    }

    /// Whether buddy-help is enabled.
    pub fn buddy_help_enabled(&self) -> bool {
        self.buddy_help_enabled
    }

    /// Number of requests currently being aggregated.
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// An import request arrived from the importer's rep: start aggregation
    /// and forward to every process.
    pub fn on_import_request(
        &mut self,
        req: RequestId,
        ts: Timestamp,
    ) -> Result<RepEffects, RepError> {
        self.requests.accept(ts)?;
        let prev = self.inflight.insert(
            req,
            Inflight {
                ts,
                answer: None,
                answered_importer: false,
                ranks: vec![RankState::Silent; self.n_procs],
            },
        );
        if prev.is_some() {
            return Err(RepError::CollectiveViolation {
                request: req,
                detail: "duplicate request id from importer".into(),
            });
        }
        Ok(RepEffects {
            forward: Some((req, ts)),
            ..Default::default()
        })
    }

    /// A process responded (or updated a previous PENDING response).
    pub fn on_response(
        &mut self,
        rank: Rank,
        req: RequestId,
        resp: ProcResponse,
    ) -> Result<RepEffects, RepError> {
        let idx = rank.0 as usize;
        if idx >= self.n_procs {
            return Err(RepError::UnknownRank(rank));
        }
        let inflight = match self.inflight.get_mut(&req) {
            Some(i) => i,
            None => {
                // Late message for a completed request: legal when a process
                // resolved locally while its buddy-help was in flight. It
                // must still agree with the collective answer.
                let answer = self
                    .completed
                    .get(&req)
                    .copied()
                    .ok_or(RepError::UnknownRequest(req))?;
                if let Some(decided) = resp.decided() {
                    if decided != answer {
                        return Err(RepError::CollectiveViolation {
                            request: req,
                            detail: format!(
                                "late response {decided} from rank {rank} conflicts \
                                 with the completed answer {answer}"
                            ),
                        });
                    }
                }
                return Ok(RepEffects::default());
            }
        };
        let mut effects = RepEffects::default();

        match resp.decided() {
            None => {
                // PENDING response.
                match inflight.ranks[idx] {
                    RankState::Settled => {
                        // Stale PENDING after buddy-help/settlement: ignore.
                    }
                    _ => {
                        if let Some(answer) = inflight.answer {
                            // Answer already known: help this straggler.
                            inflight.ranks[idx] = RankState::Settled;
                            if self.buddy_help_enabled {
                                effects.buddy_help.push((rank, req, answer));
                            } else {
                                // Without buddy-help the rank must resolve
                                // locally; keep waiting for its update.
                                inflight.ranks[idx] = RankState::Pending;
                            }
                        } else {
                            inflight.ranks[idx] = RankState::Pending;
                        }
                    }
                }
            }
            Some(decided) => {
                match inflight.answer {
                    None => {
                        inflight.answer = Some(decided);
                        inflight.ranks[idx] = RankState::Settled;
                        // First definitive response: answer the importer and
                        // help everyone currently pending.
                        inflight.answered_importer = true;
                        effects.answer = Some((req, decided));
                        if self.buddy_help_enabled {
                            for (i, state) in inflight.ranks.iter_mut().enumerate() {
                                if *state == RankState::Pending {
                                    *state = RankState::Settled;
                                    effects.buddy_help.push((Rank(i as u32), req, decided));
                                }
                            }
                        }
                    }
                    Some(existing) => {
                        if existing != decided {
                            return Err(RepError::CollectiveViolation {
                                request: req,
                                detail: format!(
                                    "rank {rank} answered {decided} but the collective \
                                     answer is {existing}"
                                ),
                            });
                        }
                        inflight.ranks[idx] = RankState::Settled;
                    }
                }
            }
        }

        if inflight.settled() {
            effects.completed = Some(req);
            if let Some(done) = self.inflight.remove(&req) {
                if let Some(answer) = done.answer {
                    self.completed.insert(req, answer);
                }
            }
        }
        Ok(effects)
    }

    /// The timestamp of an in-flight request (for diagnostics).
    pub fn inflight_ts(&self, req: RequestId) -> Option<Timestamp> {
        self.inflight.get(&req).map(|i| i.ts)
    }
}

/// Effects returned by [`ImporterRep`] event handlers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ImpRepEffects {
    /// Send this request to the exporter's rep (first caller triggers it).
    pub request: Option<(RequestId, Timestamp)>,
    /// Deliver the answer to these ranks.
    pub deliver: Vec<(Rank, RequestId, RepAnswer)>,
}

#[derive(Debug)]
struct ImpInflight {
    ts: Timestamp,
    answer: Option<RepAnswer>,
    /// Ranks that have made this import call (delivery targets).
    called: Vec<bool>,
    delivered: Vec<bool>,
}

/// The importing program's representative.
///
/// Import calls are collective too (Property 1): every process makes the
/// same sequence of `import(ts)` calls. The rep keys each call by its
/// per-rank *call index*, so the `k`-th call of every rank maps to
/// `RequestId(k)`; mismatched timestamps at the same index are collective
/// violations. Processes may run ahead: a fast process's call for a later
/// request is accepted while slower peers are still on an earlier one, and
/// the remote request is sent as soon as the *first* process asks.
#[derive(Debug)]
pub struct ImporterRep {
    n_procs: usize,
    cursor: Vec<u64>,
    requests: Vec<ImpInflight>,
    stream: RequestStream,
}

impl ImporterRep {
    /// Creates a rep for an importing program with `n_procs` processes.
    pub fn new(n_procs: usize) -> Self {
        assert!(n_procs > 0, "a program has at least one process");
        ImporterRep {
            n_procs,
            cursor: vec![0; n_procs],
            requests: Vec::new(),
            stream: RequestStream::new(),
        }
    }

    /// A process made its next collective `import(ts)` call.
    pub fn on_import_call(&mut self, rank: Rank, ts: Timestamp) -> Result<ImpRepEffects, RepError> {
        let idx = rank.0 as usize;
        if idx >= self.n_procs {
            return Err(RepError::UnknownRank(rank));
        }
        let k = self.cursor[idx] as usize;
        self.cursor[idx] += 1;
        let mut effects = ImpRepEffects::default();
        if k == self.requests.len() {
            // First caller of this request: validate and go remote.
            self.stream.accept(ts)?;
            self.requests.push(ImpInflight {
                ts,
                answer: None,
                called: {
                    let mut v = vec![false; self.n_procs];
                    v[idx] = true;
                    v
                },
                delivered: vec![false; self.n_procs],
            });
            effects.request = Some((RequestId(k as u64), ts));
        } else {
            let inflight = &mut self.requests[k];
            if inflight.ts != ts {
                return Err(RepError::CollectiveViolation {
                    request: RequestId(k as u64),
                    detail: format!(
                        "rank {rank} imported {ts} but the collective call {k} \
                         requested {}",
                        inflight.ts
                    ),
                });
            }
            inflight.called[idx] = true;
            if let Some(answer) = inflight.answer {
                inflight.delivered[idx] = true;
                effects.deliver.push((rank, RequestId(k as u64), answer));
            }
        }
        Ok(effects)
    }

    /// The exporter rep answered request `req`.
    pub fn on_answer(
        &mut self,
        req: RequestId,
        answer: RepAnswer,
    ) -> Result<ImpRepEffects, RepError> {
        let k = req.0 as usize;
        let inflight = self
            .requests
            .get_mut(k)
            .ok_or(RepError::UnknownRequest(req))?;
        if let Some(existing) = inflight.answer {
            if existing != answer {
                return Err(RepError::CollectiveViolation {
                    request: req,
                    detail: format!("conflicting answers {existing} and {answer}"),
                });
            }
        }
        inflight.answer = Some(answer);
        let mut effects = ImpRepEffects::default();
        for i in 0..self.n_procs {
            if inflight.called[i] && !inflight.delivered[i] {
                inflight.delivered[i] = true;
                effects.deliver.push((Rank(i as u32), req, answer));
            }
        }
        Ok(effects)
    }

    /// Number of requests issued so far.
    pub fn issued(&self) -> usize {
        self.requests.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use couplink_time::ts;

    fn pending(latest: f64) -> ProcResponse {
        ProcResponse::Pending {
            latest: Some(couplink_time::ts(latest)),
        }
    }

    // --- ExporterRep: the five legal response sets ---

    #[test]
    fn all_match_same_timestamp() {
        let mut rep = ExporterRep::new(3, true);
        let fx = rep.on_import_request(RequestId(0), ts(20.0)).unwrap();
        assert_eq!(fx.forward, Some((RequestId(0), ts(20.0))));
        let fx = rep
            .on_response(Rank(0), RequestId(0), ProcResponse::Match(ts(19.6)))
            .unwrap();
        assert_eq!(fx.answer, Some((RequestId(0), RepAnswer::Match(ts(19.6)))));
        assert!(fx.buddy_help.is_empty());
        for r in 1..3 {
            let fx = rep
                .on_response(Rank(r), RequestId(0), ProcResponse::Match(ts(19.6)))
                .unwrap();
            assert_eq!(fx.answer, None, "importer answered exactly once");
        }
        assert_eq!(rep.inflight_len(), 0);
    }

    #[test]
    fn all_no_match() {
        let mut rep = ExporterRep::new(2, true);
        rep.on_import_request(RequestId(0), ts(5.0)).unwrap();
        let fx = rep
            .on_response(Rank(1), RequestId(0), ProcResponse::NoMatch)
            .unwrap();
        assert_eq!(fx.answer, Some((RequestId(0), RepAnswer::NoMatch)));
        let fx = rep
            .on_response(Rank(0), RequestId(0), ProcResponse::NoMatch)
            .unwrap();
        assert_eq!(fx.completed, Some(RequestId(0)));
    }

    #[test]
    fn all_pending_waits() {
        let mut rep = ExporterRep::new(2, true);
        rep.on_import_request(RequestId(0), ts(5.0)).unwrap();
        for r in 0..2 {
            let fx = rep
                .on_response(Rank(r), RequestId(0), pending(1.0))
                .unwrap();
            assert_eq!(fx.answer, None);
            assert!(fx.buddy_help.is_empty());
            assert_eq!(fx.completed, None);
        }
        assert_eq!(rep.inflight_len(), 1);
    }

    #[test]
    fn pending_then_match_triggers_buddy_help() {
        let mut rep = ExporterRep::new(4, true);
        rep.on_import_request(RequestId(0), ts(20.0)).unwrap();
        // Three slow processes answer PENDING first.
        for r in 0..3 {
            rep.on_response(Rank(r), RequestId(0), pending(14.6))
                .unwrap();
        }
        // The fast process answers MATCH: importer answered, buddy-help to
        // the three pending ranks.
        let fx = rep
            .on_response(Rank(3), RequestId(0), ProcResponse::Match(ts(19.6)))
            .unwrap();
        assert_eq!(fx.answer, Some((RequestId(0), RepAnswer::Match(ts(19.6)))));
        let mut helped: Vec<u32> = fx.buddy_help.iter().map(|(r, _, _)| r.0).collect();
        helped.sort_unstable();
        assert_eq!(helped, vec![0, 1, 2]);
        assert!(fx
            .buddy_help
            .iter()
            .all(|&(_, req, ans)| req == RequestId(0) && ans == RepAnswer::Match(ts(19.6))));
        // Buddy-help settles the pending ranks: request complete.
        assert_eq!(fx.completed, Some(RequestId(0)));
    }

    #[test]
    fn match_then_pending_helps_straggler_immediately() {
        let mut rep = ExporterRep::new(2, true);
        rep.on_import_request(RequestId(0), ts(20.0)).unwrap();
        rep.on_response(Rank(0), RequestId(0), ProcResponse::Match(ts(19.6)))
            .unwrap();
        let fx = rep
            .on_response(Rank(1), RequestId(0), pending(3.0))
            .unwrap();
        assert_eq!(
            fx.buddy_help,
            vec![(Rank(1), RequestId(0), RepAnswer::Match(ts(19.6)))]
        );
        assert_eq!(fx.completed, Some(RequestId(0)));
    }

    #[test]
    fn pending_then_no_match_mixture() {
        let mut rep = ExporterRep::new(2, true);
        rep.on_import_request(RequestId(0), ts(20.0)).unwrap();
        rep.on_response(Rank(0), RequestId(0), pending(1.0))
            .unwrap();
        let fx = rep
            .on_response(Rank(1), RequestId(0), ProcResponse::NoMatch)
            .unwrap();
        assert_eq!(fx.answer, Some((RequestId(0), RepAnswer::NoMatch)));
        assert_eq!(
            fx.buddy_help,
            vec![(Rank(0), RequestId(0), RepAnswer::NoMatch)]
        );
    }

    // --- violations ---

    #[test]
    fn match_and_no_match_is_violation() {
        let mut rep = ExporterRep::new(2, true);
        rep.on_import_request(RequestId(0), ts(20.0)).unwrap();
        rep.on_response(Rank(0), RequestId(0), ProcResponse::Match(ts(19.6)))
            .unwrap();
        let err = rep
            .on_response(Rank(1), RequestId(0), ProcResponse::NoMatch)
            .unwrap_err();
        assert!(matches!(err, RepError::CollectiveViolation { .. }));
    }

    #[test]
    fn differing_match_timestamps_is_violation() {
        let mut rep = ExporterRep::new(2, true);
        rep.on_import_request(RequestId(0), ts(20.0)).unwrap();
        rep.on_response(Rank(0), RequestId(0), ProcResponse::Match(ts(19.6)))
            .unwrap();
        let err = rep
            .on_response(Rank(1), RequestId(0), ProcResponse::Match(ts(18.6)))
            .unwrap_err();
        assert!(matches!(err, RepError::CollectiveViolation { .. }));
    }

    #[test]
    fn unknown_rank_and_request_rejected() {
        let mut rep = ExporterRep::new(2, true);
        rep.on_import_request(RequestId(0), ts(20.0)).unwrap();
        assert!(matches!(
            rep.on_response(Rank(2), RequestId(0), ProcResponse::NoMatch),
            Err(RepError::UnknownRank(_))
        ));
        assert!(matches!(
            rep.on_response(Rank(0), RequestId(9), ProcResponse::NoMatch),
            Err(RepError::UnknownRequest(_))
        ));
    }

    #[test]
    fn request_timestamps_must_increase() {
        let mut rep = ExporterRep::new(1, true);
        rep.on_import_request(RequestId(0), ts(20.0)).unwrap();
        rep.on_response(Rank(0), RequestId(0), ProcResponse::NoMatch)
            .unwrap();
        assert!(matches!(
            rep.on_import_request(RequestId(1), ts(19.0)),
            Err(RepError::History(_))
        ));
    }

    // --- buddy-help disabled (baseline) ---

    #[test]
    fn without_buddy_help_pending_ranks_must_self_resolve() {
        let mut rep = ExporterRep::new(2, false);
        rep.on_import_request(RequestId(0), ts(20.0)).unwrap();
        rep.on_response(Rank(0), RequestId(0), pending(1.0))
            .unwrap();
        let fx = rep
            .on_response(Rank(1), RequestId(0), ProcResponse::Match(ts(19.6)))
            .unwrap();
        // The importer still gets its answer, but no buddy-help flows.
        assert_eq!(fx.answer, Some((RequestId(0), RepAnswer::Match(ts(19.6)))));
        assert!(fx.buddy_help.is_empty());
        assert_eq!(fx.completed, None, "rank 0 still unresolved");
        // Rank 0 later resolves locally and updates its response.
        let fx = rep
            .on_response(Rank(0), RequestId(0), ProcResponse::Match(ts(19.6)))
            .unwrap();
        assert_eq!(fx.completed, Some(RequestId(0)));
    }

    // --- ImporterRep ---

    #[test]
    fn first_caller_triggers_remote_request() {
        let mut rep = ImporterRep::new(3);
        let fx = rep.on_import_call(Rank(1), ts(20.0)).unwrap();
        assert_eq!(fx.request, Some((RequestId(0), ts(20.0))));
        // Later callers of the same collective call do not re-request.
        let fx = rep.on_import_call(Rank(0), ts(20.0)).unwrap();
        assert_eq!(fx.request, None);
    }

    #[test]
    fn answer_delivered_to_callers_then_late_callers() {
        let mut rep = ImporterRep::new(3);
        rep.on_import_call(Rank(0), ts(20.0)).unwrap();
        rep.on_import_call(Rank(1), ts(20.0)).unwrap();
        let fx = rep
            .on_answer(RequestId(0), RepAnswer::Match(ts(19.6)))
            .unwrap();
        let mut got: Vec<u32> = fx.deliver.iter().map(|(r, _, _)| r.0).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1]);
        // Rank 2 calls late and is answered immediately.
        let fx = rep.on_import_call(Rank(2), ts(20.0)).unwrap();
        assert_eq!(
            fx.deliver,
            vec![(Rank(2), RequestId(0), RepAnswer::Match(ts(19.6)))]
        );
    }

    #[test]
    fn pipelined_calls_get_increasing_request_ids() {
        let mut rep = ImporterRep::new(2);
        // Rank 0 runs ahead by two collective calls.
        assert_eq!(
            rep.on_import_call(Rank(0), ts(20.0)).unwrap().request,
            Some((RequestId(0), ts(20.0)))
        );
        assert_eq!(
            rep.on_import_call(Rank(0), ts(40.0)).unwrap().request,
            Some((RequestId(1), ts(40.0)))
        );
        // Rank 1 catches up on call 0.
        assert_eq!(rep.on_import_call(Rank(1), ts(20.0)).unwrap().request, None);
        assert_eq!(rep.issued(), 2);
    }

    #[test]
    fn importer_collective_violation_on_mismatched_timestamp() {
        let mut rep = ImporterRep::new(2);
        rep.on_import_call(Rank(0), ts(20.0)).unwrap();
        let err = rep.on_import_call(Rank(1), ts(21.0)).unwrap_err();
        assert!(matches!(err, RepError::CollectiveViolation { .. }));
    }

    #[test]
    fn importer_requests_must_increase() {
        let mut rep = ImporterRep::new(1);
        rep.on_import_call(Rank(0), ts(20.0)).unwrap();
        assert!(matches!(
            rep.on_import_call(Rank(0), ts(20.0)),
            Err(RepError::History(_))
        ));
    }

    #[test]
    fn conflicting_remote_answers_are_violations() {
        let mut rep = ImporterRep::new(1);
        rep.on_import_call(Rank(0), ts(20.0)).unwrap();
        rep.on_answer(RequestId(0), RepAnswer::Match(ts(19.6)))
            .unwrap();
        assert!(matches!(
            rep.on_answer(RequestId(0), RepAnswer::NoMatch),
            Err(RepError::CollectiveViolation { .. })
        ));
    }
}
