//! Event traces in the style of the paper's Figures 5, 7 and 8.
//!
//! The figure harnesses drive an [`crate::ExportPort`] and record one
//! [`TraceEvent`] per protocol step; `Display` renders lines matching the
//! paper's notation (`export D@15.6, skip memcpy.`), so the regenerated
//! traces can be compared to the figures by eye.

use crate::export_port::{ExportAction, ExportEffects, HelpEffects, RequestEffects};
use crate::ids::RequestId;
use crate::messages::{ProcResponse, RepAnswer};
use couplink_time::Timestamp;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One line of a buffering trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// `export D@t, call memcpy.` / `export D@t, skip memcpy.`
    Export {
        /// The exported timestamp.
        t: Timestamp,
        /// Whether the framework copied the object.
        copied: bool,
    },
    /// `receive request for D@x, reply {...}.`
    Request {
        /// The requested timestamp.
        x: Timestamp,
        /// This process's reply.
        reply: ProcResponse,
    },
    /// `receive buddy-help {D@x, YES/NO, D@m}.`
    BuddyHelp {
        /// The requested timestamp.
        x: Timestamp,
        /// The final answer.
        answer: RepAnswer,
    },
    /// `remove D@a, ..., D@b.` (buffer frees)
    Remove {
        /// The freed timestamps, ascending.
        freed: Vec<Timestamp>,
    },
    /// `send D@m out.`
    Send {
        /// The transferred timestamp.
        m: Timestamp,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Export { t, copied: true } => write!(f, "export D{t}, call memcpy."),
            TraceEvent::Export { t, copied: false } => write!(f, "export D{t}, skip memcpy."),
            TraceEvent::Request { x, reply } => {
                write!(f, "receive request for D{x}, reply {{D{x}, {reply}}}.")
            }
            TraceEvent::BuddyHelp { x, answer } => {
                write!(f, "receive buddy-help {{D{x}, {answer}}}.")
            }
            TraceEvent::Remove { freed } => match freed.as_slice() {
                [] => write!(f, "remove nothing."),
                [one] => write!(f, "remove D{one}."),
                [first, .., last] => write!(f, "remove D{first}, ..., D{last}."),
            },
            TraceEvent::Send { m } => write!(f, "send D{m} out."),
        }
    }
}

/// An append-only trace recorder with helpers that translate port effects
/// into events.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Reassembles a trace from previously recorded events — how a parent
    /// process reconstructs a child's trace shipped over the wire.
    pub fn from_events(events: Vec<TraceEvent>) -> Self {
        Trace { events }
    }

    /// Records an export call and its effects.
    pub fn record_export(&mut self, t: Timestamp, fx: &ExportEffects) {
        let copied = fx.action.is_some_and(ExportAction::copies);
        self.events.push(TraceEvent::Export { t, copied });
        if !fx.freed.is_empty() {
            self.events.push(TraceEvent::Remove {
                freed: fx.freed.clone(),
            });
        }
        if let ExportAction::BufferAndSend { .. } = fx.action.unwrap_or(ExportAction::Skip) {
            self.events.push(TraceEvent::Send { m: t });
        }
        for r in &fx.resolutions {
            if let Some(m) = r.send {
                self.events.push(TraceEvent::Send { m });
            }
        }
    }

    /// Records a forwarded request and its effects.
    pub fn record_request(&mut self, x: Timestamp, fx: &RequestEffects) {
        self.events.push(TraceEvent::Request {
            x,
            reply: fx.response,
        });
        if !fx.freed.is_empty() {
            self.events.push(TraceEvent::Remove {
                freed: fx.freed.clone(),
            });
        }
        if let Some(m) = fx.send {
            self.events.push(TraceEvent::Send { m });
        }
    }

    /// Records a buddy-help message and its effects.
    pub fn record_buddy_help(
        &mut self,
        x: Timestamp,
        _req: RequestId,
        answer: RepAnswer,
        fx: &HelpEffects,
    ) {
        self.events.push(TraceEvent::BuddyHelp { x, answer });
        if !fx.freed.is_empty() {
            self.events.push(TraceEvent::Remove {
                freed: fx.freed.clone(),
            });
        }
        if let Some(m) = fx.send {
            self.events.push(TraceEvent::Send { m });
        }
    }

    /// Renders the trace as numbered lines, like the paper's figures.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, ev) in self.events.iter().enumerate() {
            writeln!(out, "{:>3}  {ev}", i + 1).expect("writing to String");
        }
        out
    }

    /// Renders the trace as numbered lines with running metric annotations:
    /// each line carries the memcpys paid, memcpys skipped, sends and
    /// buffered-object count *after* the event. This is the golden-snapshot
    /// format — the annotations make a diff point at the exact event where
    /// a buffering decision regressed, not just that some count changed.
    pub fn render_annotated(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let (mut paid, mut skipped, mut sent) = (0usize, 0usize, 0usize);
        let mut buffered = 0isize;
        for (i, ev) in self.events.iter().enumerate() {
            match ev {
                TraceEvent::Export { copied: true, .. } => {
                    paid += 1;
                    buffered += 1;
                }
                TraceEvent::Export { copied: false, .. } => skipped += 1,
                TraceEvent::Remove { freed } => buffered -= freed.len() as isize,
                TraceEvent::Send { .. } => sent += 1,
                TraceEvent::Request { .. } | TraceEvent::BuddyHelp { .. } => {}
            }
            writeln!(
                out,
                "{:>3}  {:<44} [paid {paid:>3} | skip {skipped:>3} | sent {sent:>3} | buf {buffered:>3}]",
                i + 1,
                ev.to_string()
            )
            .expect("writing to String");
        }
        out
    }

    /// The exported timestamps in trace order, regardless of whether the
    /// object was copied.
    ///
    /// Unlike the per-event `copied` flags (which legally differ between
    /// runs — a slower process learns the buddy-help answer earlier relative
    /// to its own exports and skips more), the export *sequence* is fixed by
    /// the application schedule, so it is directly comparable across
    /// runtimes and timings.
    pub fn export_sequence(&self) -> Vec<Timestamp> {
        self.events
            .iter()
            .filter_map(|ev| match ev {
                TraceEvent::Export { t, .. } => Some(*t),
                _ => None,
            })
            .collect()
    }

    /// The skipped (never memcpy'd) export timestamps in trace order.
    pub fn skipped_exports(&self) -> Vec<Timestamp> {
        self.events
            .iter()
            .filter_map(|ev| match ev {
                TraceEvent::Export { t, copied: false } => Some(*t),
                _ => None,
            })
            .collect()
    }

    /// The requested timestamps in trace order (one per forwarded request).
    ///
    /// Property 1 makes this sequence identical across all processes of the
    /// exporting program, for any runtime and any timing.
    pub fn request_sequence(&self) -> Vec<Timestamp> {
        self.events
            .iter()
            .filter_map(|ev| match ev {
                TraceEvent::Request { x, .. } => Some(*x),
                _ => None,
            })
            .collect()
    }

    /// The transferred (sent) timestamps in trace order.
    ///
    /// Like [`Trace::request_sequence`], this is timing-independent: every
    /// process sends exactly its share of each decided match, in request
    /// order.
    pub fn send_sequence(&self) -> Vec<Timestamp> {
        self.events
            .iter()
            .filter_map(|ev| match ev {
                TraceEvent::Send { m } => Some(*m),
                _ => None,
            })
            .collect()
    }

    /// Counts memcpy'd and skipped exports in the trace.
    pub fn export_counts(&self) -> (usize, usize) {
        let mut copied = 0;
        let mut skipped = 0;
        for ev in &self.events {
            if let TraceEvent::Export { copied: c, .. } = ev {
                if *c {
                    copied += 1;
                } else {
                    skipped += 1;
                }
            }
        }
        (copied, skipped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use couplink_time::ts;

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(
            TraceEvent::Export {
                t: ts(15.6),
                copied: false
            }
            .to_string(),
            "export D@15.6, skip memcpy."
        );
        assert_eq!(
            TraceEvent::Export {
                t: ts(1.6),
                copied: true
            }
            .to_string(),
            "export D@1.6, call memcpy."
        );
        assert_eq!(
            TraceEvent::BuddyHelp {
                x: ts(20.0),
                answer: RepAnswer::Match(ts(19.6))
            }
            .to_string(),
            "receive buddy-help {D@20, YES @19.6}."
        );
        assert_eq!(
            TraceEvent::Send { m: ts(19.6) }.to_string(),
            "send D@19.6 out."
        );
        assert_eq!(
            TraceEvent::Remove {
                freed: vec![ts(1.6), ts(2.6), ts(14.6)]
            }
            .to_string(),
            "remove D@1.6, ..., D@14.6."
        );
        assert_eq!(
            TraceEvent::Remove {
                freed: vec![ts(31.6)]
            }
            .to_string(),
            "remove D@31.6."
        );
    }

    #[test]
    fn export_counts() {
        let mut trace = Trace::new();
        trace.events.push(TraceEvent::Export {
            t: ts(1.0),
            copied: true,
        });
        trace.events.push(TraceEvent::Export {
            t: ts(2.0),
            copied: false,
        });
        trace.events.push(TraceEvent::Send { m: ts(1.0) });
        assert_eq!(trace.export_counts(), (1, 1));
    }

    #[test]
    fn render_numbers_lines() {
        let mut trace = Trace::new();
        trace.events.push(TraceEvent::Send { m: ts(9.6) });
        let text = trace.render();
        assert!(text.contains("  1  send D@9.6 out."));
    }

    #[test]
    fn annotated_render_tracks_running_counts() {
        let mut trace = Trace::new();
        trace.events.push(TraceEvent::Export {
            t: ts(1.0),
            copied: true,
        });
        trace.events.push(TraceEvent::Export {
            t: ts(2.0),
            copied: false,
        });
        trace.events.push(TraceEvent::Remove {
            freed: vec![ts(1.0)],
        });
        trace.events.push(TraceEvent::Send { m: ts(2.0) });
        let text = trace.render_annotated();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("[paid   1 | skip   0 | sent   0 | buf   1]"));
        assert!(lines[1].contains("[paid   1 | skip   1 | sent   0 | buf   1]"));
        assert!(lines[2].contains("[paid   1 | skip   1 | sent   0 | buf   0]"));
        assert!(lines[3].contains("[paid   1 | skip   1 | sent   1 | buf   0]"));
    }
}
