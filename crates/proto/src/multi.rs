//! Multi-connection export regions: one region feeding several importers.
//!
//! Figure 2 of the paper connects `P0.r1` to both `P1.r1` and `P2.r3`. Each
//! connection has its own match policy, tolerance and request stream, hence
//! its own [`ExportPort`]; but the *object* is one: the framework should
//! memcpy it at most once and free the copy only when **no** connection can
//! still need it. [`MultiExport`] aggregates the per-connection decisions
//! into exactly that: a single `copy` verdict and reference-counted frees.

use crate::export_port::{ExportEffects, ExportPort, PortError, RequestEffects};
use crate::ids::RequestId;
use crate::messages::RepAnswer;
use couplink_time::Timestamp;
use std::collections::BTreeMap;

/// Aggregated effects of exporting one object across all connections.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MultiExportEffects {
    /// Whether the object must be copied into the shared framework buffer
    /// (true iff at least one connection buffers it).
    pub copy: bool,
    /// Timestamps whose shared copy is no longer needed by *any* connection.
    pub freed: Vec<Timestamp>,
    /// Per-connection effects, in connection order (for sends/resolutions).
    pub per_conn: Vec<ExportEffects>,
}

/// One process's export side for a region with several connections.
///
/// Internally each connection keeps its own [`ExportPort`]; the combinator
/// reference-counts buffered objects so the shared object store holds one
/// copy per timestamp, freed when the last interested connection lets go.
#[derive(Debug, Clone)]
pub struct MultiExport {
    ports: Vec<ExportPort>,
    /// How many connections still hold each buffered timestamp.
    refcount: BTreeMap<Timestamp, usize>,
}

impl MultiExport {
    /// Builds the combinator from one port per connection.
    ///
    /// # Panics
    ///
    /// Panics on zero ports (a region with no connection needs no port at
    /// all — the framework's zero-overhead path).
    pub fn new(ports: Vec<ExportPort>) -> Self {
        assert!(
            !ports.is_empty(),
            "a connected region has at least one connection"
        );
        MultiExport {
            ports,
            refcount: BTreeMap::new(),
        }
    }

    /// Number of connections.
    pub fn connections(&self) -> usize {
        self.ports.len()
    }

    /// The port for one connection (e.g. to inspect statistics).
    pub fn port(&self, idx: usize) -> &ExportPort {
        &self.ports[idx]
    }

    /// Mutable access to one connection's port (used by the simulation-test
    /// harness to arm mutation-testing hooks on an assembled topology).
    pub fn port_mut(&mut self, idx: usize) -> &mut ExportPort {
        &mut self.ports[idx]
    }

    /// Objects currently held in the shared store.
    pub fn shared_buffered_len(&self) -> usize {
        self.refcount.len()
    }

    /// Exports the object on every connection. `copy` in the result is the
    /// single shared-buffer decision; `freed` lists objects no connection
    /// needs anymore.
    ///
    /// With several bounded connections, a [`PortError::BufferFull`] from a
    /// later port must not leave earlier ports already mutated — the export
    /// has to stay non-consuming as a whole so the caller can retry it after
    /// space frees up. The export is therefore probed on a scratch clone
    /// first; only a fully successful probe is committed. On failure the
    /// offending *real* port re-runs the export once so its
    /// `buffer_full_stalls` counter still records the stall.
    pub fn on_export(&mut self, t: Timestamp) -> Result<MultiExportEffects, PortError> {
        if self.ports.len() > 1 && self.ports.iter().any(|p| p.capacity().is_some()) {
            let mut probe = self.clone();
            return match probe.apply_export(t) {
                Ok(fx) => {
                    *self = probe;
                    Ok(fx)
                }
                Err((idx, e)) => {
                    if matches!(e, PortError::BufferFull { .. }) {
                        // The failing port was not mutated by the probe
                        // (BufferFull is non-consuming), so replaying on the
                        // untouched real port reproduces the error and bumps
                        // its stall statistic.
                        let _ = self.ports[idx].on_export(t);
                    }
                    Err(e)
                }
            };
        }
        self.apply_export(t).map_err(|(_, e)| e)
    }

    /// Runs the export on every port in order, committing mutations as it
    /// goes. On error, reports which port failed.
    fn apply_export(&mut self, t: Timestamp) -> Result<MultiExportEffects, (usize, PortError)> {
        let mut out = MultiExportEffects::default();
        for idx in 0..self.ports.len() {
            let fx = self.ports[idx].on_export(t).map_err(|e| (idx, e))?;
            let action = fx.action.expect("on_export decides");
            if action.copies() {
                out.copy = true;
                *self.refcount.entry(t).or_insert(0) += 1;
            }
            for f in fx.freed.clone() {
                out.freed.extend(self.release(f));
            }
            out.per_conn.push(fx);
        }
        Ok(out)
    }

    /// Forwards a request on connection `idx`.
    pub fn on_request(
        &mut self,
        idx: usize,
        id: RequestId,
        ts: Timestamp,
    ) -> Result<(RequestEffects, Vec<Timestamp>), PortError> {
        let fx = self.ports[idx].on_request(id, ts)?;
        let mut freed = Vec::new();
        for f in &fx.freed {
            freed.extend(self.release(*f));
        }
        Ok((fx, freed))
    }

    /// Forwards a buddy-help message on connection `idx`.
    pub fn on_buddy_help(
        &mut self,
        idx: usize,
        id: RequestId,
        answer: RepAnswer,
    ) -> Result<(crate::export_port::HelpEffects, Vec<Timestamp>), PortError> {
        let fx = self.ports[idx].on_buddy_help(id, answer)?;
        let mut freed = Vec::new();
        for f in &fx.freed {
            freed.extend(self.release(*f));
        }
        Ok((fx, freed))
    }

    /// Drops one connection's hold on `t`; returns it if the shared copy is
    /// now dead.
    fn release(&mut self, t: Timestamp) -> Option<Timestamp> {
        match self.refcount.get_mut(&t) {
            Some(n) if *n > 1 => {
                *n -= 1;
                None
            }
            Some(_) => {
                self.refcount.remove(&t);
                Some(t)
            }
            // A connection freeing an object it never buffered (it skipped
            // the export while another connection copied it): no effect.
            None => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export_port::ExportAction;
    use crate::ids::ConnectionId;
    use couplink_time::{ts, MatchPolicy, Tolerance};

    fn multi(specs: &[(MatchPolicy, f64)]) -> MultiExport {
        MultiExport::new(
            specs
                .iter()
                .enumerate()
                .map(|(i, (p, tol))| {
                    ExportPort::new(ConnectionId(i as u32), *p, Tolerance::new(*tol).unwrap())
                })
                .collect(),
        )
    }

    #[test]
    fn copy_iff_any_connection_buffers() {
        let mut m = multi(&[(MatchPolicy::RegL, 2.5), (MatchPolicy::RegL, 2.5)]);
        // Connection 0 knows its request + help; connection 1 knows nothing.
        m.on_request(0, RequestId(0), ts(20.0)).unwrap();
        m.on_buddy_help(0, RequestId(0), RepAnswer::Match(ts(19.6)))
            .unwrap();
        let fx = m.on_export(ts(1.6)).unwrap();
        // Connection 0 would skip, but connection 1 must buffer: copy once.
        assert!(fx.copy);
        assert_eq!(
            fx.per_conn[0].action,
            Some(ExportAction::Skip),
            "connection 0 skips"
        );
        assert_eq!(fx.per_conn[1].action, Some(ExportAction::Buffer));
        assert_eq!(m.shared_buffered_len(), 1);
    }

    #[test]
    fn skip_when_all_connections_skip() {
        let mut m = multi(&[(MatchPolicy::RegL, 2.5), (MatchPolicy::RegL, 1.0)]);
        m.on_request(0, RequestId(0), ts(20.0)).unwrap();
        m.on_request(1, RequestId(0), ts(30.0)).unwrap();
        m.on_buddy_help(0, RequestId(0), RepAnswer::Match(ts(19.6)))
            .unwrap();
        m.on_buddy_help(1, RequestId(0), RepAnswer::Match(ts(29.5)))
            .unwrap();
        let fx = m.on_export(ts(1.6)).unwrap();
        assert!(!fx.copy, "both connections proved the object dead");
        assert_eq!(m.shared_buffered_len(), 0);
    }

    #[test]
    fn freed_only_when_no_connection_needs_it() {
        let mut m = multi(&[(MatchPolicy::RegL, 2.5), (MatchPolicy::RegL, 2.5)]);
        // Both buffer 1.6 .. 5.6.
        for i in 1..=5 {
            let fx = m.on_export(ts(i as f64 + 0.6)).unwrap();
            assert!(fx.copy);
        }
        assert_eq!(m.shared_buffered_len(), 5);
        // Connection 0's request prunes everything below 17.5 for it — but
        // connection 1 still holds the objects: nothing freed yet.
        let (_, freed) = m.on_request(0, RequestId(0), ts(20.0)).unwrap();
        assert!(freed.is_empty(), "connection 1 still needs the objects");
        assert_eq!(m.shared_buffered_len(), 5);
        // Connection 1's request releases the last holds.
        let (_, freed) = m.on_request(1, RequestId(0), ts(20.0)).unwrap();
        assert_eq!(freed.len(), 5);
        assert_eq!(m.shared_buffered_len(), 0);
    }

    #[test]
    fn different_policies_can_match_different_objects() {
        let mut m = multi(&[(MatchPolicy::RegL, 2.5), (MatchPolicy::RegU, 2.5)]);
        m.on_request(0, RequestId(0), ts(20.0)).unwrap();
        m.on_request(1, RequestId(0), ts(20.0)).unwrap();
        let mut sends = Vec::new();
        for i in 1..=21 {
            let fx = m.on_export(ts(i as f64 + 0.6)).unwrap();
            for (conn, pfx) in fx.per_conn.iter().enumerate() {
                for r in &pfx.resolutions {
                    sends.push((conn, r.send.unwrap()));
                }
                if let Some(ExportAction::BufferAndSend { .. }) = pfx.action {
                    sends.push((conn, ts(i as f64 + 0.6)));
                }
            }
        }
        // REGL matches 19.6 (closest below 20); REGU matches 20.6 (first
        // at-or-above).
        assert!(sends.contains(&(0, ts(19.6))), "{sends:?}");
        assert!(sends.contains(&(1, ts(20.6))), "{sends:?}");
    }

    #[test]
    fn single_connection_degenerates_to_plain_port() {
        let mut m = multi(&[(MatchPolicy::RegL, 2.5)]);
        let fx = m.on_export(ts(1.0)).unwrap();
        assert!(fx.copy);
        let (rfx, freed) = m.on_request(0, RequestId(0), ts(20.0)).unwrap();
        assert!(matches!(rfx.response, crate::ProcResponse::Pending { .. }));
        assert_eq!(freed, vec![ts(1.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one connection")]
    fn zero_connections_rejected() {
        MultiExport::new(Vec::new());
    }

    #[test]
    fn bounded_buffer_full_leaves_every_connection_untouched() {
        // Connection 0 unbounded, connection 1 bounded at 2: the third
        // export overflows connection 1 *after* connection 0 would already
        // have buffered it. The export must fail atomically: no port keeps
        // partial state, and retrying after space frees succeeds cleanly.
        let mut m = MultiExport::new(vec![
            ExportPort::new(
                ConnectionId(0),
                MatchPolicy::RegL,
                Tolerance::new(2.5).unwrap(),
            ),
            ExportPort::with_capacity(
                ConnectionId(1),
                MatchPolicy::RegL,
                Tolerance::new(2.5).unwrap(),
                2,
            ),
        ]);
        m.on_export(ts(1.6)).unwrap();
        m.on_export(ts(2.6)).unwrap();
        let err = m.on_export(ts(3.6)).unwrap_err();
        assert!(matches!(err, PortError::BufferFull { .. }), "{err:?}");
        assert_eq!(
            m.port(0).buffered_len(),
            2,
            "conn 0 must not see the failed export"
        );
        assert_eq!(m.port(1).stats().buffer_full_stalls, 1, "stall recorded");
        assert_eq!(m.shared_buffered_len(), 2);
        // A request on connection 1 frees its buffer; the retry goes through
        // and buffers exactly once per connection.
        let (_, _freed) = m.on_request(1, RequestId(0), ts(20.0)).unwrap();
        let fx = m.on_export(ts(3.6)).unwrap();
        assert!(fx.copy);
        assert_eq!(m.port(0).buffered_len(), 3);
    }
}
