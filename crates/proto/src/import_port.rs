//! Importer-process state: one collective import at a time, with
//! out-of-order data tolerance.

use crate::ids::RequestId;
use crate::messages::RepAnswer;
use couplink_time::Timestamp;
use std::collections::HashMap;
use std::fmt;

/// Error from an [`ImportPort`] operation.
#[derive(Debug, Clone, PartialEq)]
pub enum ImportError {
    /// `begin_import` while a previous import is still incomplete.
    Busy,
    /// An answer arrived for a request this port is not waiting on.
    UnexpectedAnswer(RequestId),
    /// More data pieces arrived for a request than the plan expects.
    TooManyPieces(RequestId),
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportError::Busy => write!(f, "an import is already in progress"),
            ImportError::UnexpectedAnswer(r) => write!(f, "unexpected answer for {r}"),
            ImportError::TooManyPieces(r) => write!(f, "too many data pieces for {r}"),
        }
    }
}

impl std::error::Error for ImportError {}

/// The current state of an import on one process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ImportState {
    /// No import in progress.
    Idle,
    /// Waiting for the rep's answer (pieces may already be arriving).
    Waiting {
        /// The in-progress request.
        req: RequestId,
        /// The requested timestamp.
        ts: Timestamp,
    },
    /// The import finished.
    Done {
        /// The finished request.
        req: RequestId,
        /// Its outcome: `Match` means all pieces arrived.
        answer: RepAnswer,
    },
}

/// Per-importer-process import tracker.
///
/// Data pieces may arrive *before* the rep's answer (exporter processes send
/// their share as soon as they know the match, and the control path through
/// two reps can be slower), and pieces for a *future* request may arrive
/// while an earlier import is still assembling on a slow process. The port
/// therefore counts pieces per request id and completes an import when the
/// answer is `Match` and all `expected_pieces` have arrived.
#[derive(Debug, Clone)]
pub struct ImportPort {
    /// Pieces this rank receives per matched transfer (from the
    /// redistribution plan's `recvs_to(rank)` count).
    expected_pieces: usize,
    next_req: RequestId,
    state: ImportState,
    pieces: HashMap<RequestId, usize>,
    answers: HashMap<RequestId, RepAnswer>,
}

impl ImportPort {
    /// Creates a port for a rank that receives `expected_pieces` pieces per
    /// matched transfer.
    pub fn new(expected_pieces: usize) -> Self {
        ImportPort {
            expected_pieces,
            next_req: RequestId(0),
            state: ImportState::Idle,
            pieces: HashMap::new(),
            answers: HashMap::new(),
        }
    }

    /// Current state.
    pub fn state(&self) -> ImportState {
        self.state
    }

    /// Starts the next collective import; returns the deterministic request
    /// id (the per-rank call index).
    pub fn begin_import(&mut self, ts: Timestamp) -> Result<RequestId, ImportError> {
        if matches!(self.state, ImportState::Waiting { .. }) {
            return Err(ImportError::Busy);
        }
        let req = self.next_req;
        self.next_req = req.next();
        self.state = ImportState::Waiting { req, ts };
        // The answer or all pieces may already have arrived (stashed).
        self.try_complete();
        Ok(req)
    }

    /// The rep delivered the answer for `req`. Answers for calls this rank
    /// has not reached yet (we are the slowest importer process) are stashed
    /// until `begin_import` catches up.
    pub fn on_answer(&mut self, req: RequestId, answer: RepAnswer) -> Result<(), ImportError> {
        self.answers.insert(req, answer);
        self.try_complete();
        Ok(())
    }

    /// A data piece for `req` arrived from an exporter process.
    pub fn on_piece(&mut self, req: RequestId) -> Result<(), ImportError> {
        let got = self.pieces.entry(req).or_insert(0);
        *got += 1;
        if *got > self.expected_pieces {
            return Err(ImportError::TooManyPieces(req));
        }
        self.try_complete();
        Ok(())
    }

    /// Whether the in-progress import (if any) has finished; transitions to
    /// `Done` when it has.
    fn try_complete(&mut self) {
        if let ImportState::Waiting { req, .. } = self.state {
            if let Some(&answer) = self.answers.get(&req) {
                let complete = match answer {
                    RepAnswer::NoMatch => true,
                    RepAnswer::Match(_) => {
                        self.pieces.get(&req).copied().unwrap_or(0) == self.expected_pieces
                    }
                };
                if complete {
                    self.answers.remove(&req);
                    self.pieces.remove(&req);
                    self.state = ImportState::Done { req, answer };
                }
            }
        }
    }

    /// Acknowledges a finished import, returning to `Idle`.
    pub fn finish(&mut self) -> Option<RepAnswer> {
        if let ImportState::Done { answer, .. } = self.state {
            self.state = ImportState::Idle;
            Some(answer)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use couplink_time::ts;

    #[test]
    fn answer_then_pieces_completes() {
        let mut p = ImportPort::new(2);
        let req = p.begin_import(ts(20.0)).unwrap();
        assert_eq!(req, RequestId(0));
        p.on_answer(req, RepAnswer::Match(ts(19.6))).unwrap();
        assert!(matches!(p.state(), ImportState::Waiting { .. }));
        p.on_piece(req).unwrap();
        p.on_piece(req).unwrap();
        assert_eq!(
            p.state(),
            ImportState::Done {
                req,
                answer: RepAnswer::Match(ts(19.6))
            }
        );
        assert_eq!(p.finish(), Some(RepAnswer::Match(ts(19.6))));
        assert_eq!(p.state(), ImportState::Idle);
    }

    #[test]
    fn pieces_before_answer_are_stashed() {
        let mut p = ImportPort::new(1);
        let req = p.begin_import(ts(20.0)).unwrap();
        p.on_piece(req).unwrap();
        assert!(matches!(p.state(), ImportState::Waiting { .. }));
        p.on_answer(req, RepAnswer::Match(ts(19.6))).unwrap();
        assert!(matches!(p.state(), ImportState::Done { .. }));
    }

    #[test]
    fn pieces_before_begin_are_stashed() {
        let mut p = ImportPort::new(1);
        // Data for our first call arrives before we even make it (we are the
        // slowest importer process).
        p.on_piece(RequestId(0)).unwrap();
        p.on_answer(RequestId(0), RepAnswer::Match(ts(19.6)))
            .unwrap();
        let req = p.begin_import(ts(20.0)).unwrap();
        assert_eq!(
            p.state(),
            ImportState::Done {
                req,
                answer: RepAnswer::Match(ts(19.6))
            }
        );
    }

    #[test]
    fn no_match_completes_without_pieces() {
        let mut p = ImportPort::new(4);
        let req = p.begin_import(ts(20.0)).unwrap();
        p.on_answer(req, RepAnswer::NoMatch).unwrap();
        assert_eq!(
            p.state(),
            ImportState::Done {
                req,
                answer: RepAnswer::NoMatch
            }
        );
    }

    #[test]
    fn begin_while_waiting_is_busy() {
        let mut p = ImportPort::new(1);
        p.begin_import(ts(20.0)).unwrap();
        assert_eq!(p.begin_import(ts(40.0)), Err(ImportError::Busy));
    }

    #[test]
    fn begin_after_done_is_allowed_and_ids_increase() {
        let mut p = ImportPort::new(0);
        let r0 = p.begin_import(ts(20.0)).unwrap();
        p.on_answer(r0, RepAnswer::Match(ts(19.6))).unwrap();
        assert!(matches!(p.state(), ImportState::Done { .. }));
        let r1 = p.begin_import(ts(40.0)).unwrap();
        assert_eq!(r1, RequestId(1));
    }

    #[test]
    fn too_many_pieces_is_error() {
        let mut p = ImportPort::new(1);
        let req = p.begin_import(ts(20.0)).unwrap();
        p.on_piece(req).unwrap();
        assert_eq!(p.on_piece(req), Err(ImportError::TooManyPieces(req)));
    }

    #[test]
    fn zero_piece_ranks_complete_on_answer() {
        // A rank whose owned rectangle intersects no exporter piece.
        let mut p = ImportPort::new(0);
        let req = p.begin_import(ts(20.0)).unwrap();
        p.on_answer(req, RepAnswer::Match(ts(19.6))).unwrap();
        assert!(matches!(p.state(), ImportState::Done { .. }));
    }
}
