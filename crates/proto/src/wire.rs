//! Binary wire codec for control messages and payload frames.
//!
//! The socket transport in `couplink-runtime` moves [`CtrlMsg`]s and data
//! pieces between OS processes; this module defines the byte format. It
//! lives in the protocol crate so the frame layout is specified next to the
//! messages it carries (and so codec tests need no runtime).
//!
//! Every frame is:
//!
//! ```text
//! magic   u16 LE   0xC11F ("couplink frame")
//! version u8       WIRE_VERSION
//! kind    u8       frame discriminator (KIND_* or runtime-defined)
//! len     u32 LE   body length in bytes (<= MAX_BODY)
//! crc     u32 LE   CRC-32 (IEEE) of the body
//! body    len bytes
//! ```
//!
//! Bodies are little-endian with one leading tag byte per enum. Timestamps
//! travel as raw `f64` bits and are re-validated on decode (NaN/infinite
//! bits are a [`WireError::Malformed`], never a panic). Decoding never
//! trusts length fields beyond [`MAX_BODY`] and never indexes past the
//! received bytes: every malformed input maps to a typed [`WireError`].
//!
//! The protocol crate defines bodies for control messages
//! ([`encode_ctrl`]/[`decode_ctrl`], frame kind [`KIND_CTRL`]) and data
//! pieces ([`encode_payload`]/[`decode_payload`], kind [`KIND_PAYLOAD`]).
//! The runtime builds its bootstrap/session envelopes out of the same
//! primitives ([`BodyWriter`]/[`BodyReader`]) with kind bytes at or above
//! [`KIND_RUNTIME_BASE`].

use crate::ids::{ConnectionId, Rank, RequestId};
use crate::messages::{CtrlMsg, ProcResponse, RepAnswer};
use couplink_time::Timestamp;
use std::fmt;

/// First two bytes of every frame.
pub const MAGIC: u16 = 0xC11F;

/// Wire format version stamped into (and demanded of) every frame.
pub const WIRE_VERSION: u8 = 1;

/// Fixed frame header size in bytes (magic + version + kind + len + crc).
pub const HEADER_LEN: usize = 12;

/// Upper bound on a frame body; larger `len` fields are rejected before
/// any allocation so corrupt headers cannot OOM the receiver.
pub const MAX_BODY: u32 = 1 << 26;

/// Frame kind carrying an encoded [`CtrlMsg`].
pub const KIND_CTRL: u8 = 1;

/// Frame kind carrying an encoded [`PayloadFrame`].
pub const KIND_PAYLOAD: u8 = 2;

/// First frame kind reserved for runtime-level envelopes (bootstrap,
/// acks, reports). The protocol crate never assigns kinds at or above
/// this value.
pub const KIND_RUNTIME_BASE: u8 = 16;

/// Typed decode failure. No malformed input panics; every rejection is one
/// of these variants so transports can meter and classify them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the advertised frame or field did.
    Truncated,
    /// The first two bytes were not [`MAGIC`].
    BadMagic {
        /// The bytes found where the magic was expected.
        got: u16,
    },
    /// The frame was built by an incompatible codec version.
    BadVersion {
        /// The version byte found on the wire.
        got: u8,
    },
    /// The body checksum did not match the header's CRC.
    BadChecksum,
    /// A frame body advertised more than [`MAX_BODY`] bytes.
    Oversize {
        /// The advertised body length.
        len: u32,
    },
    /// An enum tag byte had no corresponding variant.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The unrecognized tag.
        tag: u8,
    },
    /// A field decoded but violated an invariant (non-finite timestamp,
    /// payload length mismatch, trailing bytes).
    Malformed {
        /// What invariant failed.
        what: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::BadMagic { got } => write!(f, "bad magic 0x{got:04X}"),
            WireError::BadVersion { got } => {
                write!(f, "wire version {got} (this codec speaks {WIRE_VERSION})")
            }
            WireError::BadChecksum => write!(f, "body checksum mismatch"),
            WireError::Oversize { len } => write!(f, "body length {len} exceeds {MAX_BODY}"),
            WireError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            WireError::Malformed { what } => write!(f, "malformed {what}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Legacy-codec switch.
// ---------------------------------------------------------------------------

use std::sync::atomic::{AtomicBool, Ordering};

/// When set, the codec's internal frame paths fall back to the pre-
/// optimization implementations: byte-at-a-time CRC and per-element `f64`
/// payload encode/decode. The wire bytes are identical either way — this
/// exists so `bench net --mutate` can measure the legacy data plane with
/// the same binary and prove the zero-copy path's speedup is real.
static LEGACY_CODEC: AtomicBool = AtomicBool::new(false);

/// Switches the process-global legacy-codec mode (see [`legacy_codec`]).
pub fn set_legacy_codec(on: bool) {
    LEGACY_CODEC.store(on, Ordering::Relaxed);
}

/// Whether the legacy (pre-optimization) codec paths are active.
pub fn legacy_codec() -> bool {
    LEGACY_CODEC.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3): slice-by-8 with const-built tables, plus the
// byte-at-a-time reference both the proptests and legacy mode use.
// ---------------------------------------------------------------------------

/// Number of slice-by-N tables (8 input bytes folded per step).
const CRC_SLICES: usize = 8;

const fn crc32_tables() -> [[u32; 256]; CRC_SLICES] {
    let mut t = [[0u32; 256]; CRC_SLICES];
    // Table 0 is the classic byte-at-a-time table.
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    // Table k advances table k-1 by one more zero byte.
    let mut k = 1;
    while k < CRC_SLICES {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

static CRC_TABLES: [[u32; 256]; CRC_SLICES] = crc32_tables();

/// CRC-32 (IEEE) of `bytes` — the checksum carried in every frame header.
/// Slice-by-8: eight input bytes folded per table lookup round.
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = &CRC_TABLES;
    let mut c = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ c;
        let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        c = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// The original byte-at-a-time CRC-32. Kept as the independent reference
/// the property tests compare [`crc32`] against, and as the legacy-mode
/// implementation.
pub fn crc32_reference(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// The CRC the frame paths use: identical values either way, but legacy
/// mode pays the byte-at-a-time cost.
fn frame_crc(bytes: &[u8]) -> u32 {
    if legacy_codec() {
        crc32_reference(bytes)
    } else {
        crc32(bytes)
    }
}

// ---------------------------------------------------------------------------
// Body primitives.
// ---------------------------------------------------------------------------

/// Little-endian body builder. All multi-byte integers on the wire go
/// through this (or its inverse, [`BodyReader`]) so the two cannot drift.
#[derive(Debug, Default)]
pub struct BodyWriter {
    buf: Vec<u8>,
}

impl BodyWriter {
    /// An empty body.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty body with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BodyWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw bit pattern, little-endian.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string (u32 length).
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends raw bytes (caller handles any length prefix).
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// The finished body.
    pub fn into_body(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian body cursor; every read is bounds-checked and returns
/// [`WireError::Truncated`] rather than panicking.
#[derive(Debug)]
pub struct BodyReader<'a> {
    body: &'a [u8],
    pos: usize,
}

impl<'a> BodyReader<'a> {
    /// A cursor over `body`.
    pub fn new(body: &'a [u8]) -> Self {
        BodyReader { body, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.body.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.body[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an `f64` bit pattern. The caller validates finiteness where
    /// the value is a timestamp ([`Self::timestamp`] does it for you).
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a validated [`Timestamp`] (non-finite bits are malformed).
    pub fn timestamp(&mut self) -> Result<Timestamp, WireError> {
        Timestamp::new(self.f64()?).map_err(|_| WireError::Malformed { what: "timestamp" })
    }

    /// Reads a length-prefixed UTF-8 string written by [`BodyWriter::str`].
    pub fn str(&mut self) -> Result<&'a str, WireError> {
        let len = self.u32()? as usize;
        std::str::from_utf8(self.take(len)?).map_err(|_| WireError::Malformed { what: "utf-8" })
    }

    /// Reads `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Asserts the body is fully consumed (trailing bytes are malformed).
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Malformed {
                what: "trailing bytes",
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Frame envelope.
// ---------------------------------------------------------------------------

/// Wraps a body in the frame envelope (header + checksum) and returns the
/// complete wire bytes.
pub fn encode_frame(kind: u8, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    encode_frame_into(kind, body, &mut out);
    out
}

/// Appends a complete frame (header + body) to `out`.
pub fn encode_frame_into(kind: u8, body: &[u8], out: &mut Vec<u8>) {
    debug_assert!(body.len() <= MAX_BODY as usize, "frame body over MAX_BODY");
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(WIRE_VERSION);
    out.push(kind);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame_crc(body).to_le_bytes());
    out.extend_from_slice(body);
}

/// Builds a complete frame *in place*: the body is written directly after
/// a reserved header region in one buffer, and [`finish`](Self::finish)
/// back-fills the envelope — no header+body concatenation copy, and the
/// buffer can come from (and return to) a transport pool.
///
/// Byte-for-byte identical output to `encode_frame(kind, &body)`.
#[derive(Debug)]
pub struct FrameWriter {
    kind: u8,
    buf: Vec<u8>,
}

impl FrameWriter {
    /// A frame writer over a fresh buffer.
    pub fn new(kind: u8) -> Self {
        Self::with_buffer(kind, Vec::new())
    }

    /// A frame writer over a fresh buffer with `body_cap` body bytes
    /// reserved (plus the header).
    pub fn with_capacity(kind: u8, body_cap: usize) -> Self {
        Self::with_buffer(kind, Vec::with_capacity(HEADER_LEN + body_cap))
    }

    /// A frame writer reusing `buf`'s allocation (a pooled buffer). The
    /// buffer is cleared; its capacity is kept.
    pub fn with_buffer(kind: u8, mut buf: Vec<u8>) -> Self {
        buf.clear();
        buf.resize(HEADER_LEN, 0);
        FrameWriter { kind, buf }
    }

    /// Reserves room for at least `body_bytes` more body bytes.
    pub fn reserve(&mut self, body_bytes: usize) {
        self.buf.reserve(body_bytes);
    }

    /// Appends one body byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw bit pattern, little-endian.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string (u32 length).
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends raw bytes (caller handles any length prefix).
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Appends a whole `f64` slice as little-endian bit patterns in one
    /// bulk copy (the wire byte order *is* the in-memory order on
    /// little-endian targets; big-endian targets fall back per element).
    pub fn f64_slice(&mut self, data: &[f64]) {
        #[cfg(target_endian = "little")]
        {
            // SAFETY: every f64 is 8 plain bytes with no padding or
            // invalid representations; on little-endian targets those
            // bytes are exactly the wire encoding.
            let bytes = unsafe {
                std::slice::from_raw_parts(data.as_ptr().cast::<u8>(), std::mem::size_of_val(data))
            };
            self.buf.extend_from_slice(bytes);
        }
        #[cfg(not(target_endian = "little"))]
        for &v in data {
            self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }

    /// Body bytes written so far.
    pub fn body_len(&self) -> usize {
        self.buf.len() - HEADER_LEN
    }

    /// Back-fills the header (magic, version, kind, length, body CRC) and
    /// returns the complete frame.
    pub fn finish(mut self) -> Vec<u8> {
        let body_len = self.buf.len() - HEADER_LEN;
        debug_assert!(body_len <= MAX_BODY as usize, "frame body over MAX_BODY");
        let crc = frame_crc(&self.buf[HEADER_LEN..]);
        self.buf[0..2].copy_from_slice(&MAGIC.to_le_bytes());
        self.buf[2] = WIRE_VERSION;
        self.buf[3] = self.kind;
        self.buf[4..8].copy_from_slice(&(body_len as u32).to_le_bytes());
        self.buf[8..12].copy_from_slice(&crc.to_le_bytes());
        self.buf
    }
}

/// One decoded frame: its kind byte and verified body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame discriminator from the header.
    pub kind: u8,
    /// The checksum-verified body bytes.
    pub body: Vec<u8>,
}

/// A parsed frame's position inside a [`FrameDecoder`]'s ring buffer:
/// kind byte plus the checksum-verified body range. Resolve the bytes with
/// [`FrameDecoder::body`]. The range is valid until the decoder is next
/// [`extend`](FrameDecoder::extend)ed or [`read_from`](FrameDecoder::read_from)
/// (compaction shifts the buffer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameSlot {
    /// The frame discriminator from the header.
    pub kind: u8,
    /// Byte range of the verified body inside the decoder's buffer.
    pub body: std::ops::Range<usize>,
}

/// Incremental frame parser over a byte stream.
///
/// Feed arbitrary chunks with [`extend`](Self::extend) (or read straight
/// off a socket with [`read_from`](Self::read_from)) and pull complete
/// frames with [`poll_frame`](Self::poll_frame), which yields
/// [`FrameSlot`] ranges over the internal buffer — no per-frame copy.
/// [`next_frame`](Self::next_frame) is the owned-`Frame` convenience on
/// top (replay paths, tests).
///
/// The buffer is a compacting ring: consumed frames advance a start
/// cursor, and the unparsed tail is moved to the front once per feed —
/// peak memory is bounded by the largest in-flight frame plus one read,
/// not by throughput. [`buffered_hwm`](Self::buffered_hwm) reports the
/// peak.
///
/// Recoverable rejections (checksum mismatch on a plausibly framed body)
/// consume the bad frame so the stream can continue; structural
/// rejections (bad magic, wrong version, oversize length) poison the
/// decoder — once framing is lost there is no resynchronization point, so
/// every later call returns the same error and the transport must drop
/// the connection.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Start of the unparsed region; everything before it is consumed.
    start: usize,
    /// Peak of `buffered()` — the rx memory bound.
    hwm: usize,
    poisoned: Option<WireError>,
}

impl FrameDecoder {
    /// A decoder with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves the unparsed tail to the front of the buffer, releasing the
    /// consumed prefix. Called once per feed, not once per frame.
    fn compact(&mut self) {
        if self.start > 0 {
            let len = self.buf.len();
            self.buf.copy_within(self.start..len, 0);
            self.buf.truncate(len - self.start);
            self.start = 0;
        }
    }

    /// Appends received bytes (compacting first).
    pub fn extend(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
        self.hwm = self.hwm.max(self.buf.len());
    }

    /// Reads up to `max` bytes from `src` directly into the buffer (one
    /// copy off the socket — no intermediate stack buffer). Returns the
    /// byte count from the underlying `read` (0 = EOF).
    pub fn read_from(
        &mut self,
        src: &mut impl std::io::Read,
        max: usize,
    ) -> std::io::Result<usize> {
        self.compact();
        let old = self.buf.len();
        self.buf.resize(old + max, 0);
        match src.read(&mut self.buf[old..]) {
            Ok(n) => {
                self.buf.truncate(old + n);
                self.hwm = self.hwm.max(self.buf.len());
                Ok(n)
            }
            Err(e) => {
                self.buf.truncate(old);
                Err(e)
            }
        }
    }

    /// Bytes buffered but not yet parsed into frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Peak of [`buffered`](Self::buffered) over the decoder's lifetime.
    pub fn buffered_hwm(&self) -> usize {
        self.hwm
    }

    /// Parses the next complete frame, if one is buffered, as a zero-copy
    /// [`FrameSlot`] over the internal buffer.
    ///
    /// `Ok(None)` means more bytes are needed. `Err(BadChecksum)` consumes
    /// the corrupt frame (callers meter it and may keep reading); any
    /// other error is sticky.
    pub fn poll_frame(&mut self) -> Result<Option<FrameSlot>, WireError> {
        if let Some(e) = self.poisoned {
            return Err(e);
        }
        let avail = &self.buf[self.start..];
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        let magic = u16::from_le_bytes([avail[0], avail[1]]);
        if magic != MAGIC {
            return Err(self.poison(WireError::BadMagic { got: magic }));
        }
        let version = avail[2];
        if version != WIRE_VERSION {
            return Err(self.poison(WireError::BadVersion { got: version }));
        }
        let kind = avail[3];
        let len = u32::from_le_bytes(avail[4..8].try_into().expect("4 bytes"));
        if len > MAX_BODY {
            return Err(self.poison(WireError::Oversize { len }));
        }
        let crc = u32::from_le_bytes(avail[8..12].try_into().expect("4 bytes"));
        let total = HEADER_LEN + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let body = self.start + HEADER_LEN..self.start + total;
        // Consume the frame whether or not the checksum holds: a bad body
        // is recoverable precisely because the framing stays intact.
        self.start += total;
        if frame_crc(&self.buf[body.clone()]) != crc {
            return Err(WireError::BadChecksum);
        }
        Ok(Some(FrameSlot { kind, body }))
    }

    /// The verified body bytes of a slot returned by
    /// [`poll_frame`](Self::poll_frame).
    pub fn body(&self, slot: &FrameSlot) -> &[u8] {
        &self.buf[slot.body.clone()]
    }

    /// Parses the next complete frame into an owned [`Frame`] (a copy) —
    /// the convenience API for replay paths and tests; hot receive loops
    /// use [`poll_frame`](Self::poll_frame).
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        match self.poll_frame()? {
            Some(slot) => Ok(Some(Frame {
                kind: slot.kind,
                body: self.buf[slot.body].to_vec(),
            })),
            None => Ok(None),
        }
    }

    fn poison(&mut self, e: WireError) -> WireError {
        self.poisoned = Some(e);
        e
    }
}

// ---------------------------------------------------------------------------
// CtrlMsg body codec.
// ---------------------------------------------------------------------------

const TAG_IMPORT_CALL: u8 = 1;
const TAG_IMPORT_REQUEST: u8 = 2;
const TAG_FORWARD_REQUEST: u8 = 3;
const TAG_RESPONSE: u8 = 4;
const TAG_BUDDY_HELP: u8 = 5;
const TAG_ANSWER: u8 = 6;
const TAG_ANSWER_BCAST: u8 = 7;
const TAG_ACK: u8 = 8;
const TAG_HEARTBEAT: u8 = 9;
const TAG_COALESCED: u8 = 10;

const TAG_RESP_MATCH: u8 = 1;
const TAG_RESP_NO_MATCH: u8 = 2;
const TAG_RESP_PENDING_NONE: u8 = 3;
const TAG_RESP_PENDING_SOME: u8 = 4;

const TAG_ANS_MATCH: u8 = 1;
const TAG_ANS_NO_MATCH: u8 = 2;

fn put_answer(w: &mut BodyWriter, a: RepAnswer) {
    match a {
        RepAnswer::Match(t) => {
            w.u8(TAG_ANS_MATCH);
            w.f64(t.value());
        }
        RepAnswer::NoMatch => w.u8(TAG_ANS_NO_MATCH),
    }
}

fn take_answer(r: &mut BodyReader<'_>) -> Result<RepAnswer, WireError> {
    match r.u8()? {
        TAG_ANS_MATCH => Ok(RepAnswer::Match(r.timestamp()?)),
        TAG_ANS_NO_MATCH => Ok(RepAnswer::NoMatch),
        tag => Err(WireError::BadTag {
            what: "rep answer",
            tag,
        }),
    }
}

fn put_response(w: &mut BodyWriter, resp: ProcResponse) {
    match resp {
        ProcResponse::Match(t) => {
            w.u8(TAG_RESP_MATCH);
            w.f64(t.value());
        }
        ProcResponse::NoMatch => w.u8(TAG_RESP_NO_MATCH),
        ProcResponse::Pending { latest: None } => w.u8(TAG_RESP_PENDING_NONE),
        ProcResponse::Pending { latest: Some(t) } => {
            w.u8(TAG_RESP_PENDING_SOME);
            w.f64(t.value());
        }
    }
}

fn take_response(r: &mut BodyReader<'_>) -> Result<ProcResponse, WireError> {
    match r.u8()? {
        TAG_RESP_MATCH => Ok(ProcResponse::Match(r.timestamp()?)),
        TAG_RESP_NO_MATCH => Ok(ProcResponse::NoMatch),
        TAG_RESP_PENDING_NONE => Ok(ProcResponse::Pending { latest: None }),
        TAG_RESP_PENDING_SOME => Ok(ProcResponse::Pending {
            latest: Some(r.timestamp()?),
        }),
        tag => Err(WireError::BadTag {
            what: "proc response",
            tag,
        }),
    }
}

/// Encodes a control message into a frame body (no envelope).
pub fn encode_ctrl(msg: &CtrlMsg) -> Vec<u8> {
    let mut w = BodyWriter::with_capacity(32);
    match *msg {
        CtrlMsg::ImportCall { conn, rank, ts } => {
            w.u8(TAG_IMPORT_CALL);
            w.u32(conn.0);
            w.u32(rank.0);
            w.f64(ts.value());
        }
        CtrlMsg::ImportRequest { conn, req, ts } => {
            w.u8(TAG_IMPORT_REQUEST);
            w.u32(conn.0);
            w.u64(req.0);
            w.f64(ts.value());
        }
        CtrlMsg::ForwardRequest { conn, req, ts } => {
            w.u8(TAG_FORWARD_REQUEST);
            w.u32(conn.0);
            w.u64(req.0);
            w.f64(ts.value());
        }
        CtrlMsg::Response {
            conn,
            req,
            rank,
            resp,
        } => {
            w.u8(TAG_RESPONSE);
            w.u32(conn.0);
            w.u64(req.0);
            w.u32(rank.0);
            put_response(&mut w, resp);
        }
        CtrlMsg::BuddyHelp { conn, req, answer } => {
            w.u8(TAG_BUDDY_HELP);
            w.u32(conn.0);
            w.u64(req.0);
            put_answer(&mut w, answer);
        }
        CtrlMsg::Answer { conn, req, answer } => {
            w.u8(TAG_ANSWER);
            w.u32(conn.0);
            w.u64(req.0);
            put_answer(&mut w, answer);
        }
        CtrlMsg::AnswerBcast { conn, req, answer } => {
            w.u8(TAG_ANSWER_BCAST);
            w.u32(conn.0);
            w.u64(req.0);
            put_answer(&mut w, answer);
        }
        CtrlMsg::Coalesced {
            conn,
            req,
            answer,
            bcast,
            help,
        } => {
            w.u8(TAG_COALESCED);
            w.u32(conn.0);
            w.u64(req.0);
            put_answer(&mut w, answer);
            w.u8(u8::from(bcast) | (u8::from(help) << 1));
        }
        CtrlMsg::Ack { seq } => {
            w.u8(TAG_ACK);
            w.u64(seq);
        }
        CtrlMsg::Heartbeat { beat } => {
            w.u8(TAG_HEARTBEAT);
            w.u64(beat);
        }
    }
    w.into_body()
}

/// Decodes a control message from a frame body produced by
/// [`encode_ctrl`]. Trailing bytes are rejected.
pub fn decode_ctrl(body: &[u8]) -> Result<CtrlMsg, WireError> {
    let mut r = BodyReader::new(body);
    let msg = match r.u8()? {
        TAG_IMPORT_CALL => CtrlMsg::ImportCall {
            conn: ConnectionId(r.u32()?),
            rank: Rank(r.u32()?),
            ts: r.timestamp()?,
        },
        TAG_IMPORT_REQUEST => CtrlMsg::ImportRequest {
            conn: ConnectionId(r.u32()?),
            req: RequestId(r.u64()?),
            ts: r.timestamp()?,
        },
        TAG_FORWARD_REQUEST => CtrlMsg::ForwardRequest {
            conn: ConnectionId(r.u32()?),
            req: RequestId(r.u64()?),
            ts: r.timestamp()?,
        },
        TAG_RESPONSE => CtrlMsg::Response {
            conn: ConnectionId(r.u32()?),
            req: RequestId(r.u64()?),
            rank: Rank(r.u32()?),
            resp: take_response(&mut r)?,
        },
        TAG_BUDDY_HELP => CtrlMsg::BuddyHelp {
            conn: ConnectionId(r.u32()?),
            req: RequestId(r.u64()?),
            answer: take_answer(&mut r)?,
        },
        TAG_ANSWER => CtrlMsg::Answer {
            conn: ConnectionId(r.u32()?),
            req: RequestId(r.u64()?),
            answer: take_answer(&mut r)?,
        },
        TAG_ANSWER_BCAST => CtrlMsg::AnswerBcast {
            conn: ConnectionId(r.u32()?),
            req: RequestId(r.u64()?),
            answer: take_answer(&mut r)?,
        },
        TAG_COALESCED => {
            let conn = ConnectionId(r.u32()?);
            let req = RequestId(r.u64()?);
            let answer = take_answer(&mut r)?;
            let roles = r.u8()?;
            if roles == 0 || roles > 3 {
                return Err(WireError::BadTag {
                    what: "coalesced roles",
                    tag: roles,
                });
            }
            CtrlMsg::Coalesced {
                conn,
                req,
                answer,
                bcast: roles & 1 != 0,
                help: roles & 2 != 0,
            }
        }
        TAG_ACK => CtrlMsg::Ack { seq: r.u64()? },
        TAG_HEARTBEAT => CtrlMsg::Heartbeat { beat: r.u64()? },
        tag => {
            return Err(WireError::BadTag {
                what: "ctrl message",
                tag,
            })
        }
    };
    r.finish()?;
    Ok(msg)
}

// ---------------------------------------------------------------------------
// Payload (data-piece) codec.
// ---------------------------------------------------------------------------

/// A rectangle on the wire. The protocol crate carries it as raw `u64`
/// coordinates; the runtime converts to/from its layout type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireRect {
    /// First row of the rectangle.
    pub row0: u64,
    /// First column of the rectangle.
    pub col0: u64,
    /// Row count.
    pub rows: u64,
    /// Column count.
    pub cols: u64,
}

fn put_rect(w: &mut BodyWriter, r: WireRect) {
    w.u64(r.row0);
    w.u64(r.col0);
    w.u64(r.rows);
    w.u64(r.cols);
}

fn take_rect(r: &mut BodyReader<'_>) -> Result<WireRect, WireError> {
    Ok(WireRect {
        row0: r.u64()?,
        col0: r.u64()?,
        rows: r.u64()?,
        cols: r.u64()?,
    })
}

/// One matched data piece on the wire: the transfer rectangle, the
/// exporter-owned rectangle the flat `data` spans (row-major,
/// `owned.rows * owned.cols` values), and the addressing needed to hand it
/// to the right importer.
#[derive(Debug, Clone, PartialEq)]
pub struct PayloadFrame {
    /// Connection the transfer is on.
    pub conn: ConnectionId,
    /// Destination importer rank.
    pub dst: Rank,
    /// Request the piece satisfies.
    pub req: RequestId,
    /// The region of `data` the importer should copy.
    pub rect: WireRect,
    /// The rectangle `data` spans (the exporting process's owned region).
    pub owned: WireRect,
    /// Row-major values of `owned`.
    pub data: Vec<f64>,
}

/// Encodes a payload frame (envelope included). The `data` slice is
/// serialized directly — the caller hands the shared buffer's slice, no
/// intermediate copy of the array is made.
pub fn encode_payload(
    conn: ConnectionId,
    dst: Rank,
    req: RequestId,
    rect: WireRect,
    owned: WireRect,
    data: &[f64],
) -> Vec<u8> {
    encode_payload_with(Vec::new(), conn, dst, req, rect, owned, data)
}

/// [`encode_payload`] into a recycled buffer (the pooled tx path): the
/// envelope and body are written in place, so a buffer whose capacity
/// already covers the frame incurs zero allocations.
pub fn encode_payload_with(
    buf: Vec<u8>,
    conn: ConnectionId,
    dst: Rank,
    req: RequestId,
    rect: WireRect,
    owned: WireRect,
    data: &[f64],
) -> Vec<u8> {
    if legacy_codec() {
        // Reference path: per-element serialize plus a header+body concat,
        // kept as the byte-compatibility oracle for the bulk encoder.
        let mut w = BodyWriter::with_capacity(8 + 8 * 8 + 8 + 8 + 8 * data.len());
        w.u32(conn.0);
        w.u32(dst.0);
        w.u64(req.0);
        put_rect(&mut w, rect);
        put_rect(&mut w, owned);
        w.u64(data.len() as u64);
        for &v in data {
            w.f64(v);
        }
        return encode_frame(KIND_PAYLOAD, &w.into_body());
    }
    let mut w = FrameWriter::with_buffer(KIND_PAYLOAD, buf);
    w.reserve(8 + 8 * 8 + 8 + 8 + 8 * data.len());
    w.u32(conn.0);
    w.u32(dst.0);
    w.u64(req.0);
    w.u64(rect.row0);
    w.u64(rect.col0);
    w.u64(rect.rows);
    w.u64(rect.cols);
    w.u64(owned.row0);
    w.u64(owned.col0);
    w.u64(owned.rows);
    w.u64(owned.cols);
    w.u64(data.len() as u64);
    w.f64_slice(data);
    w.finish()
}

/// Decodes a payload frame body. Rejects data whose length disagrees with
/// either its own length prefix or the owned rectangle's area.
pub fn decode_payload(body: &[u8]) -> Result<PayloadFrame, WireError> {
    let mut r = BodyReader::new(body);
    let conn = ConnectionId(r.u32()?);
    let dst = Rank(r.u32()?);
    let req = RequestId(r.u64()?);
    let rect = take_rect(&mut r)?;
    let owned = take_rect(&mut r)?;
    let n = r.u64()?;
    if n != owned.rows.saturating_mul(owned.cols) {
        return Err(WireError::Malformed {
            what: "payload length vs owned rect",
        });
    }
    if n as usize * 8 != r.remaining() {
        return Err(WireError::Malformed {
            what: "payload length vs body",
        });
    }
    let data = if legacy_codec() {
        // Reference path: per-element deserialize, the oracle for the
        // bulk fill below.
        let mut data = Vec::with_capacity(n as usize);
        for _ in 0..n {
            data.push(r.f64()?);
        }
        data
    } else {
        // Bulk path: one correctly-sized allocation filled straight from
        // the body bytes — this vector becomes the importer-side shared
        // array, so the socket-to-array path is a single copy.
        let raw = r.raw(n as usize * 8)?;
        let mut data = vec![0f64; n as usize];
        for (d, ch) in data.iter_mut().zip(raw.chunks_exact(8)) {
            *d = f64::from_le_bytes(ch.try_into().expect("8 bytes"));
        }
        data
    };
    r.finish()?;
    Ok(PayloadFrame {
        conn,
        dst,
        req,
        rect,
        owned,
        data,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use couplink_time::ts;

    #[test]
    fn crc32_known_vector() {
        // The standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn ctrl_frame_roundtrip() {
        let msg = CtrlMsg::Response {
            conn: ConnectionId(3),
            req: RequestId(41),
            rank: Rank(2),
            resp: ProcResponse::Pending {
                latest: Some(ts(14.6)),
            },
        };
        let frame = encode_frame(KIND_CTRL, &encode_ctrl(&msg));
        let mut dec = FrameDecoder::new();
        dec.extend(&frame);
        let got = dec.next_frame().expect("valid").expect("complete");
        assert_eq!(got.kind, KIND_CTRL);
        assert_eq!(decode_ctrl(&got.body).expect("decodes"), msg);
        assert!(dec.next_frame().expect("no error").is_none());
    }

    #[test]
    fn coalesced_frame_roundtrip_covers_every_role_combination() {
        for (bcast, help) in [(true, false), (false, true), (true, true)] {
            let msg = CtrlMsg::Coalesced {
                conn: ConnectionId(5),
                req: RequestId(17),
                answer: RepAnswer::Match(ts(19.6)),
                bcast,
                help,
            };
            let frame = encode_frame(KIND_CTRL, &encode_ctrl(&msg));
            let mut dec = FrameDecoder::new();
            dec.extend(&frame);
            let got = dec.next_frame().expect("valid").expect("complete");
            assert_eq!(decode_ctrl(&got.body).expect("decodes"), msg);
        }
        // A coalesced frame with no role is malformed, not silently empty.
        let mut body = encode_ctrl(&CtrlMsg::Coalesced {
            conn: ConnectionId(0),
            req: RequestId(0),
            answer: RepAnswer::NoMatch,
            bcast: true,
            help: false,
        });
        *body.last_mut().expect("roles byte") = 0;
        assert!(decode_ctrl(&body).is_err());
    }

    #[test]
    fn decoder_handles_split_and_batched_frames() {
        let a = encode_frame(KIND_CTRL, &encode_ctrl(&CtrlMsg::Ack { seq: 9 }));
        let b = encode_frame(KIND_CTRL, &encode_ctrl(&CtrlMsg::Heartbeat { beat: 7 }));
        let mut wire: Vec<u8> = a.iter().chain(&b).copied().collect();
        let tail = wire.split_off(5);
        let mut dec = FrameDecoder::new();
        dec.extend(&wire);
        assert!(dec.next_frame().expect("incomplete is fine").is_none());
        dec.extend(&tail);
        let first = dec.next_frame().expect("ok").expect("frame");
        let second = dec.next_frame().expect("ok").expect("frame");
        assert_eq!(decode_ctrl(&first.body), Ok(CtrlMsg::Ack { seq: 9 }));
        assert_eq!(
            decode_ctrl(&second.body),
            Ok(CtrlMsg::Heartbeat { beat: 7 })
        );
    }

    #[test]
    fn checksum_rejection_is_recoverable() {
        let good = CtrlMsg::Answer {
            conn: ConnectionId(1),
            req: RequestId(2),
            answer: RepAnswer::NoMatch,
        };
        let mut bad = encode_frame(KIND_CTRL, &encode_ctrl(&good));
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        let mut dec = FrameDecoder::new();
        dec.extend(&bad);
        dec.extend(&encode_frame(KIND_CTRL, &encode_ctrl(&good)));
        assert_eq!(dec.next_frame(), Err(WireError::BadChecksum));
        let next = dec.next_frame().expect("recovered").expect("frame");
        assert_eq!(decode_ctrl(&next.body), Ok(good));
    }

    #[test]
    fn structural_rejections_poison_the_stream() {
        let mut dec = FrameDecoder::new();
        let mut frame = encode_frame(KIND_CTRL, &encode_ctrl(&CtrlMsg::Ack { seq: 1 }));
        frame[2] = WIRE_VERSION + 1;
        dec.extend(&frame);
        assert_eq!(
            dec.next_frame(),
            Err(WireError::BadVersion {
                got: WIRE_VERSION + 1
            })
        );
        // Sticky: later (valid) bytes never resurrect the stream.
        dec.extend(&encode_frame(
            KIND_CTRL,
            &encode_ctrl(&CtrlMsg::Ack { seq: 2 }),
        ));
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn payload_roundtrip() {
        let rect = WireRect {
            row0: 2,
            col0: 0,
            rows: 2,
            cols: 8,
        };
        let owned = WireRect {
            row0: 2,
            col0: 0,
            rows: 3,
            cols: 8,
        };
        let data: Vec<f64> = (0..24).map(|i| i as f64 * 0.5).collect();
        let frame = encode_payload(ConnectionId(0), Rank(1), RequestId(7), rect, owned, &data);
        let mut dec = FrameDecoder::new();
        dec.extend(&frame);
        let got = dec.next_frame().expect("ok").expect("frame");
        assert_eq!(got.kind, KIND_PAYLOAD);
        let p = decode_payload(&got.body).expect("decodes");
        assert_eq!(p.rect, rect);
        assert_eq!(p.owned, owned);
        assert_eq!(p.data, data);
    }

    #[test]
    fn payload_length_mismatch_rejected() {
        let owned = WireRect {
            row0: 0,
            col0: 0,
            rows: 2,
            cols: 2,
        };
        let frame = encode_payload(
            ConnectionId(0),
            Rank(0),
            RequestId(0),
            owned,
            owned,
            &[1.0, 2.0, 3.0],
        );
        let mut dec = FrameDecoder::new();
        dec.extend(&frame);
        let got = dec.next_frame().expect("framing fine").expect("frame");
        assert_eq!(
            decode_payload(&got.body),
            Err(WireError::Malformed {
                what: "payload length vs owned rect"
            })
        );
    }
}
