//! Sans-IO protocol state machines for the couplink coupling framework.
//!
//! This crate contains the *control plane* of the framework as pure state
//! machines: no threads, no clocks, no sockets. Every machine consumes events
//! (an export call, a forwarded request, a buddy-help message) and returns an
//! *effects* value describing what the driver must do (memcpy or skip, free
//! buffer entries, send a response, transfer data). The two runtimes in
//! `couplink-runtime` — the deterministic discrete-event simulator and the
//! threaded in-process fabric — drive exactly the same machines, which is how
//! the repository can both reproduce the paper's figures deterministically
//! and measure real memcpys on real hardware.
//!
//! The machines:
//!
//! * [`ExportPort`](export_port::ExportPort) — one per (exporting process ×
//!   connection). Decides, for every exported data object, whether the
//!   framework must buffer it (memcpy), may skip it, or must send it; answers
//!   forwarded import requests with MATCH / NO MATCH / PENDING; consumes
//!   buddy-help messages to skip buffering of objects that are already known
//!   not to be the match (§4.1 of the paper).
//! * [`ExporterRep`](rep::ExporterRep) — the exporting program's
//!   representative: forwards requests, aggregates the collective responses,
//!   validates Property 1 (the five legal response sets), answers the
//!   importer, and emits buddy-help to PENDING processes.
//! * [`ImporterRep`](rep::ImporterRep) / [`ImportPort`](import_port::ImportPort)
//!   — the importing program's side: collective import calls, answer
//!   broadcast, and per-process transfer completion tracking.
//!
//! Statistics ([`stats`]) implement the paper's Equations (1)–(2): the time
//! spent on *unnecessary buffering* (`T_i` per acceptable region, `T_ub`
//! total), plus memcpy/skip counters and buffer occupancy high-water marks.

#![warn(missing_docs)]

pub mod export_port;
pub mod ids;
pub mod import_port;
pub mod messages;
pub mod multi;
pub mod rep;
pub mod stats;
pub mod trace;
pub mod wire;

pub use export_port::{
    ExportAction, ExportEffects, ExportPort, HelpEffects, PortError, RequestEffects, Resolution,
};
pub use ids::{ConnectionId, ProgramId, Rank, RequestId};
pub use import_port::{ImportError, ImportPort, ImportState};
pub use messages::{CtrlMsg, ProcResponse, RepAnswer};
pub use multi::{MultiExport, MultiExportEffects};
pub use rep::{ExporterRep, ImporterRep, RepError};
pub use stats::ExportStats;
pub use trace::{Trace, TraceEvent};
pub use wire::{Frame, FrameDecoder, PayloadFrame, WireError, WireRect};
