//! Export histories and request streams — the increasing-timestamp invariants.

use crate::timestamp::Timestamp;
use std::collections::VecDeque;
use std::fmt;

/// Violation of the increasing-timestamp invariants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HistoryError {
    /// A new export/request timestamp was not strictly greater than the last.
    NotIncreasing {
        /// The last accepted timestamp.
        last: Timestamp,
        /// The offending new timestamp.
        offered: Timestamp,
    },
    /// A queried timestamp fell below the pruning watermark, so the history
    /// can no longer answer questions about it.
    BelowWatermark {
        /// The current watermark.
        watermark: Timestamp,
        /// The timestamp asked about.
        asked: Timestamp,
    },
}

impl fmt::Display for HistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryError::NotIncreasing { last, offered } => write!(
                f,
                "timestamp {offered} is not strictly greater than the previous {last}"
            ),
            HistoryError::BelowWatermark { watermark, asked } => write!(
                f,
                "timestamp {asked} is below the pruning watermark {watermark}"
            ),
        }
    }
}

impl std::error::Error for HistoryError {}

/// The strictly increasing sequence of timestamps exported so far on one
/// region, with safe pruning of entries that can no longer matter.
///
/// The matching engine queries this structure for the in-region candidates of
/// an acceptable region. Because both exports and requests increase, entries
/// below the lower bound of the most recent request's region can never be a
/// candidate again and may be pruned ([`ExportHistory::prune_below`]).
#[derive(Debug, Clone, Default)]
pub struct ExportHistory {
    /// Retained timestamps, strictly increasing.
    entries: VecDeque<Timestamp>,
    /// Latest timestamp ever recorded (survives pruning).
    latest: Option<Timestamp>,
    /// Everything strictly below this may have been pruned.
    watermark: Option<Timestamp>,
    /// Total number of timestamps ever recorded.
    recorded: u64,
}

impl ExportHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a new exported timestamp; must exceed all previous ones.
    pub fn record(&mut self, t: Timestamp) -> Result<(), HistoryError> {
        if let Some(last) = self.latest {
            if t <= last {
                return Err(HistoryError::NotIncreasing { last, offered: t });
            }
        }
        self.entries.push_back(t);
        self.latest = Some(t);
        self.recorded += 1;
        Ok(())
    }

    /// The most recent exported timestamp, if any.
    #[inline]
    pub fn latest(&self) -> Option<Timestamp> {
        self.latest
    }

    /// Total number of timestamps ever recorded (pruned ones included).
    #[inline]
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Number of timestamps currently retained.
    #[inline]
    pub fn retained(&self) -> usize {
        self.entries.len()
    }

    /// Discards all retained entries strictly below `bound`.
    ///
    /// Safe whenever the caller knows no future acceptable region can extend
    /// below `bound` (requests increase, so region lower bounds do too).
    pub fn prune_below(&mut self, bound: Timestamp) {
        while let Some(&front) = self.entries.front() {
            if front < bound {
                self.entries.pop_front();
            } else {
                break;
            }
        }
        self.watermark = Some(match self.watermark {
            Some(w) => w.max(bound),
            None => bound,
        });
    }

    /// The pruning watermark: queries about timestamps below it may be
    /// answered incompletely and return [`HistoryError::BelowWatermark`].
    #[inline]
    pub fn watermark(&self) -> Option<Timestamp> {
        self.watermark
    }

    /// The largest retained timestamp in the closed interval `[lo, hi]`.
    ///
    /// A found candidate is always correct, even if `lo` dips below the
    /// pruning watermark: every pruned entry is strictly below the watermark
    /// and hence below any retained candidate, so it could not have been the
    /// maximum. Only when *no* retained candidate exists and `lo` is below
    /// the watermark is the answer unknowable, and an error is returned.
    pub fn max_in(&self, lo: Timestamp, hi: Timestamp) -> Result<Option<Timestamp>, HistoryError> {
        // Binary search for the partition point of `> hi`.
        let idx = self.entries.partition_point(|&t| t <= hi);
        if idx > 0 {
            let candidate = self.entries[idx - 1];
            if candidate >= lo {
                return Ok(Some(candidate));
            }
        }
        self.check_watermark(lo)?;
        Ok(None)
    }

    /// The smallest retained timestamp in the closed interval `[lo, hi]`.
    pub fn min_in(&self, lo: Timestamp, hi: Timestamp) -> Result<Option<Timestamp>, HistoryError> {
        self.check_watermark(lo)?;
        let idx = self.entries.partition_point(|&t| t < lo);
        if idx == self.entries.len() {
            return Ok(None);
        }
        let candidate = self.entries[idx];
        Ok(if candidate <= hi {
            Some(candidate)
        } else {
            None
        })
    }

    /// Whether the exact timestamp `t` is retained.
    pub fn contains(&self, t: Timestamp) -> Result<bool, HistoryError> {
        self.check_watermark(t)?;
        Ok(self.entries.binary_search_by(|probe| probe.cmp(&t)).is_ok())
    }

    fn check_watermark(&self, asked: Timestamp) -> Result<(), HistoryError> {
        if let Some(w) = self.watermark {
            if asked < w {
                return Err(HistoryError::BelowWatermark {
                    watermark: w,
                    asked,
                });
            }
        }
        Ok(())
    }
}

/// The strictly increasing sequence of request timestamps on one connection.
///
/// The paper's temporal-consistency model requires import requests to arrive
/// with increasing timestamps; this type enforces that and remembers the most
/// recent request, which bounds future acceptable regions from below.
#[derive(Debug, Clone, Default)]
pub struct RequestStream {
    last: Option<Timestamp>,
    count: u64,
}

impl RequestStream {
    /// Creates an empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accepts the next request timestamp; must exceed all previous ones.
    pub fn accept(&mut self, t: Timestamp) -> Result<(), HistoryError> {
        if let Some(last) = self.last {
            if t <= last {
                return Err(HistoryError::NotIncreasing { last, offered: t });
            }
        }
        self.last = Some(t);
        self.count += 1;
        Ok(())
    }

    /// The most recent accepted request timestamp.
    #[inline]
    pub fn last(&self) -> Option<Timestamp> {
        self.last
    }

    /// Number of requests accepted.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timestamp::ts;

    #[test]
    fn record_requires_strict_increase() {
        let mut h = ExportHistory::new();
        h.record(ts(1.0)).unwrap();
        h.record(ts(2.0)).unwrap();
        let err = h.record(ts(2.0)).unwrap_err();
        assert_eq!(
            err,
            HistoryError::NotIncreasing {
                last: ts(2.0),
                offered: ts(2.0)
            }
        );
        assert!(h.record(ts(1.5)).is_err());
        assert_eq!(h.latest(), Some(ts(2.0)));
        assert_eq!(h.recorded(), 2);
    }

    #[test]
    fn max_min_in_interval() {
        let mut h = ExportHistory::new();
        for i in 1..=10 {
            h.record(ts(i as f64)).unwrap();
        }
        assert_eq!(h.max_in(ts(2.5), ts(7.5)).unwrap(), Some(ts(7.0)));
        assert_eq!(h.min_in(ts(2.5), ts(7.5)).unwrap(), Some(ts(3.0)));
        assert_eq!(h.max_in(ts(10.5), ts(20.0)).unwrap(), None);
        assert_eq!(h.min_in(ts(0.0), ts(0.5)).unwrap(), None);
        // Closed-interval endpoints are included.
        assert_eq!(h.max_in(ts(3.0), ts(3.0)).unwrap(), Some(ts(3.0)));
        assert_eq!(h.min_in(ts(3.0), ts(3.0)).unwrap(), Some(ts(3.0)));
    }

    #[test]
    fn empty_history_has_no_candidates() {
        let h = ExportHistory::new();
        assert_eq!(h.latest(), None);
        assert_eq!(h.max_in(ts(0.0), ts(100.0)).unwrap(), None);
        assert_eq!(h.min_in(ts(0.0), ts(100.0)).unwrap(), None);
    }

    #[test]
    fn pruning_drops_entries_and_sets_watermark() {
        let mut h = ExportHistory::new();
        for i in 1..=10 {
            h.record(ts(i as f64)).unwrap();
        }
        h.prune_below(ts(5.0));
        assert_eq!(h.retained(), 6); // 5..=10
        assert_eq!(h.watermark(), Some(ts(5.0)));
        // Queries entirely above the watermark still work.
        assert_eq!(h.max_in(ts(5.0), ts(10.0)).unwrap(), Some(ts(10.0)));
        // A query dipping below the watermark is fine when a retained
        // candidate answers it (the candidate dominates anything pruned) ...
        assert_eq!(h.max_in(ts(4.0), ts(10.0)).unwrap(), Some(ts(10.0)));
        // ... but errors when no retained candidate exists, because a pruned
        // entry might have been the answer.
        assert!(matches!(
            h.max_in(ts(3.0), ts(4.5)),
            Err(HistoryError::BelowWatermark { .. })
        ));
        // Latest survives pruning.
        h.prune_below(ts(100.0));
        assert_eq!(h.retained(), 0);
        assert_eq!(h.latest(), Some(ts(10.0)));
    }

    #[test]
    fn watermark_is_monotone() {
        let mut h = ExportHistory::new();
        h.record(ts(1.0)).unwrap();
        h.prune_below(ts(5.0));
        h.prune_below(ts(3.0)); // must not lower the watermark
        assert_eq!(h.watermark(), Some(ts(5.0)));
    }

    #[test]
    fn contains_exact() {
        let mut h = ExportHistory::new();
        h.record(ts(1.5)).unwrap();
        h.record(ts(2.5)).unwrap();
        assert!(h.contains(ts(1.5)).unwrap());
        assert!(!h.contains(ts(2.0)).unwrap());
    }

    #[test]
    fn request_stream_enforces_increase() {
        let mut r = RequestStream::new();
        r.accept(ts(20.0)).unwrap();
        r.accept(ts(40.0)).unwrap();
        assert!(r.accept(ts(40.0)).is_err());
        assert!(r.accept(ts(30.0)).is_err());
        assert_eq!(r.last(), Some(ts(40.0)));
        assert_eq!(r.count(), 2);
    }
}
