//! Periodic timestamp schedules — the `t₀ + i·Δt` patterns every timestep
//! loop in the paper uses (`F` exports at `1.6, 2.6, …`; `U` imports at
//! `20, 40, …`).

use crate::timestamp::{Timestamp, TimestampError};
use serde::{Deserialize, Serialize};

/// A strictly increasing arithmetic sequence of timestamps.
///
/// # Example
///
/// ```
/// use couplink_time::{PeriodicSchedule, ts};
///
/// let exports = PeriodicSchedule::new(1.6, 1.0)?;
/// assert_eq!(exports.at(0)?, ts(1.6));
/// assert_eq!(exports.at(18)?, ts(19.6));
/// // The last export at-or-below a request timestamp (the REGL match
/// // candidate when the tolerance covers the gap):
/// assert_eq!(exports.last_index_at_or_below(ts(20.0)), Some(18));
/// # Ok::<(), couplink_time::TimestampError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeriodicSchedule {
    t0: f64,
    dt: f64,
}

impl PeriodicSchedule {
    /// Creates a schedule starting at `t0` with step `dt` (finite, > 0).
    pub fn new(t0: f64, dt: f64) -> Result<Self, TimestampError> {
        if !t0.is_finite() || !dt.is_finite() || dt <= 0.0 {
            return Err(TimestampError::NotFinite);
        }
        Ok(PeriodicSchedule { t0, dt })
    }

    /// The first timestamp.
    pub fn t0(&self) -> f64 {
        self.t0
    }

    /// The step.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// The `i`-th timestamp, `t0 + i·dt`.
    pub fn at(&self, i: usize) -> Result<Timestamp, TimestampError> {
        Timestamp::new(self.t0 + i as f64 * self.dt)
    }

    /// The largest index whose timestamp is `≤ t`, if any.
    pub fn last_index_at_or_below(&self, t: Timestamp) -> Option<usize> {
        let k = (t.value() - self.t0) / self.dt;
        if k < 0.0 {
            None
        } else {
            Some(k.floor() as usize)
        }
    }

    /// The smallest index whose timestamp is `≥ t` (0 if `t` precedes the
    /// schedule).
    pub fn first_index_at_or_above(&self, t: Timestamp) -> usize {
        let k = (t.value() - self.t0) / self.dt;
        if k <= 0.0 {
            0
        } else {
            k.ceil() as usize
        }
    }

    /// Iterates the first `n` timestamps.
    pub fn take(&self, n: usize) -> impl Iterator<Item = Timestamp> + '_ {
        (0..n).map(move |i| self.at(i).expect("finite schedule prefix"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timestamp::ts;

    #[test]
    fn rejects_degenerate_steps() {
        assert!(PeriodicSchedule::new(0.0, 0.0).is_err());
        assert!(PeriodicSchedule::new(0.0, -1.0).is_err());
        assert!(PeriodicSchedule::new(f64::NAN, 1.0).is_err());
        assert!(PeriodicSchedule::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn indexing() {
        let s = PeriodicSchedule::new(1.6, 1.0).unwrap();
        assert_eq!(s.at(0).unwrap(), ts(1.6));
        assert_eq!(s.at(13).unwrap(), ts(14.6));
        let imports = PeriodicSchedule::new(20.0, 20.0).unwrap();
        assert_eq!(imports.at(2).unwrap(), ts(60.0));
    }

    #[test]
    fn boundary_searches() {
        let s = PeriodicSchedule::new(1.6, 1.0).unwrap();
        assert_eq!(s.last_index_at_or_below(ts(20.0)), Some(18)); // 19.6
        assert_eq!(s.last_index_at_or_below(ts(19.6)), Some(18)); // exact
        assert_eq!(s.last_index_at_or_below(ts(1.0)), None);
        assert_eq!(s.first_index_at_or_above(ts(17.5)), 16); // 17.6
        assert_eq!(s.first_index_at_or_above(ts(0.0)), 0);
        assert_eq!(s.first_index_at_or_above(ts(2.6)), 1); // exact hit
    }

    #[test]
    fn take_iterates_prefix() {
        let s = PeriodicSchedule::new(0.5, 0.25).unwrap();
        let v: Vec<f64> = s.take(4).map(|t| t.value()).collect();
        assert_eq!(v, vec![0.5, 0.75, 1.0, 1.25]);
    }

    #[test]
    fn schedule_feeds_a_history_legally() {
        use crate::history::ExportHistory;
        let s = PeriodicSchedule::new(1.6, 1.0).unwrap();
        let mut h = ExportHistory::new();
        for t in s.take(100) {
            h.record(t).unwrap();
        }
        assert_eq!(h.recorded(), 100);
    }
}
