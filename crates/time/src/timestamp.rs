//! Finite, totally ordered simulation timestamps.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error constructing a [`Timestamp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimestampError {
    /// The value was NaN or infinite.
    NotFinite,
}

impl fmt::Display for TimestampError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimestampError::NotFinite => write!(f, "timestamp must be a finite number"),
        }
    }
}

impl std::error::Error for TimestampError {}

/// A simulation timestamp: a finite `f64` with a total order.
///
/// Timestamps are the currency of the coupling framework: every exported data
/// object carries one, every import request asks for one, and both sequences
/// must be strictly increasing per region (enforced by
/// [`crate::ExportHistory`] / [`crate::RequestStream`]).
///
/// The inner value is guaranteed finite, so `Ord`/`Eq` are well defined.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Timestamp(f64);

impl Timestamp {
    /// The smallest representable timestamp; useful as a watermark sentinel.
    pub const MIN: Timestamp = Timestamp(f64::MIN);
    /// The largest representable timestamp.
    pub const MAX: Timestamp = Timestamp(f64::MAX);
    /// Time zero.
    pub const ZERO: Timestamp = Timestamp(0.0);

    /// Creates a timestamp, rejecting NaN and infinities.
    pub fn new(value: f64) -> Result<Self, TimestampError> {
        if value.is_finite() {
            Ok(Timestamp(value))
        } else {
            Err(TimestampError::NotFinite)
        }
    }

    /// Returns the raw value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Offsets this timestamp by `delta` (saturating at the finite range).
    ///
    /// Used to build acceptable-region bounds (`x - tol`, `x + tol`).
    pub fn offset(self, delta: f64) -> Timestamp {
        debug_assert!(delta.is_finite());
        let v = self.0 + delta;
        if v.is_finite() {
            Timestamp(v)
        } else if v > 0.0 {
            Timestamp::MAX
        } else {
            Timestamp::MIN
        }
    }

    /// Absolute distance to another timestamp.
    #[inline]
    pub fn distance(self, other: Timestamp) -> f64 {
        (self.0 - other.0).abs()
    }
}

impl Eq for Timestamp {}

impl PartialOrd for Timestamp {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Timestamp {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Inner values are finite, so partial_cmp never fails.
        self.0.partial_cmp(&other.0).expect("timestamps are finite")
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl TryFrom<f64> for Timestamp {
    type Error = TimestampError;
    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Timestamp::new(value)
    }
}

/// Convenience constructor for tests and examples; panics on non-finite input.
pub fn ts(value: f64) -> Timestamp {
    Timestamp::new(value).expect("finite timestamp")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_nan_and_infinity() {
        assert_eq!(Timestamp::new(f64::NAN), Err(TimestampError::NotFinite));
        assert_eq!(
            Timestamp::new(f64::INFINITY),
            Err(TimestampError::NotFinite)
        );
        assert_eq!(
            Timestamp::new(f64::NEG_INFINITY),
            Err(TimestampError::NotFinite)
        );
    }

    #[test]
    fn accepts_finite_values() {
        assert!(Timestamp::new(0.0).is_ok());
        assert!(Timestamp::new(-1.5e300).is_ok());
        assert!(Timestamp::new(f64::MAX).is_ok());
    }

    #[test]
    fn total_order() {
        let a = ts(1.0);
        let b = ts(2.0);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.max(b), b);
        assert_eq!(ts(3.0), ts(3.0));
    }

    #[test]
    fn offset_saturates() {
        assert_eq!(Timestamp::MAX.offset(f64::MAX), Timestamp::MAX);
        assert_eq!(Timestamp::MIN.offset(f64::MIN), Timestamp::MIN);
        assert_eq!(ts(1.0).offset(2.5), ts(3.5));
        assert_eq!(ts(1.0).offset(-2.5), ts(-1.5));
    }

    #[test]
    fn distance_is_symmetric() {
        assert_eq!(ts(1.0).distance(ts(4.0)), 3.0);
        assert_eq!(ts(4.0).distance(ts(1.0)), 3.0);
        assert_eq!(ts(2.0).distance(ts(2.0)), 0.0);
    }

    #[test]
    fn display_format() {
        assert_eq!(ts(19.6).to_string(), "@19.6");
    }

    #[test]
    fn try_from_f64() {
        assert_eq!(Timestamp::try_from(2.5).unwrap(), ts(2.5));
        assert!(Timestamp::try_from(f64::NAN).is_err());
    }
}
