//! Match policies, tolerances and acceptable regions.

use crate::timestamp::{Timestamp, TimestampError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A per-connection approximate-matching policy.
///
/// Given a requested timestamp `x` and a [`Tolerance`] `tol`, the policy
/// defines the *acceptable region* of exported timestamps that may satisfy
/// the request (§3.1 of the paper):
///
/// * `RegL` → `[x − tol, x]` (only older-or-equal data is acceptable),
/// * `RegU` → `[x, x + tol]` (only newer-or-equal data is acceptable),
/// * `Reg`  → `[x − tol, x + tol]` (both directions).
///
/// Among the exported timestamps inside the region, the one **closest to
/// `x`** is the match. For `Reg`, an exact distance tie between a candidate
/// below `x` and one above resolves to the *earlier* timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MatchPolicy {
    /// `REGL`: acceptable region `[x − tol, x]`.
    RegL,
    /// `REGU`: acceptable region `[x, x + tol]`.
    RegU,
    /// `REG`: acceptable region `[x − tol, x + tol]`.
    Reg,
}

impl MatchPolicy {
    /// Builds the acceptable region for a request at `request` with `tol`.
    pub fn region(self, request: Timestamp, tol: Tolerance) -> AcceptableRegion {
        let t = tol.value();
        let (lo, hi) = match self {
            MatchPolicy::RegL => (request.offset(-t), request),
            MatchPolicy::RegU => (request, request.offset(t)),
            MatchPolicy::Reg => (request.offset(-t), request.offset(t)),
        };
        AcceptableRegion {
            policy: self,
            request,
            lo,
            hi,
        }
    }

    /// Canonical configuration-file spelling (`REGL`, `REGU`, `REG`).
    pub fn as_str(self) -> &'static str {
        match self {
            MatchPolicy::RegL => "REGL",
            MatchPolicy::RegU => "REGU",
            MatchPolicy::Reg => "REG",
        }
    }
}

impl fmt::Display for MatchPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error parsing a [`MatchPolicy`] from its configuration-file spelling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError(pub String);

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown match policy `{}` (expected REGL, REGU or REG)",
            self.0
        )
    }
}

impl std::error::Error for ParsePolicyError {}

impl FromStr for MatchPolicy {
    type Err = ParsePolicyError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "REGL" => Ok(MatchPolicy::RegL),
            "REGU" => Ok(MatchPolicy::RegU),
            "REG" => Ok(MatchPolicy::Reg),
            other => Err(ParsePolicyError(other.to_owned())),
        }
    }
}

/// A non-negative, finite matching tolerance (the paper's "precision").
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Tolerance(f64);

impl Tolerance {
    /// Creates a tolerance; must be finite and ≥ 0.
    pub fn new(value: f64) -> Result<Self, TimestampError> {
        if value.is_finite() && value >= 0.0 {
            Ok(Tolerance(value))
        } else {
            Err(TimestampError::NotFinite)
        }
    }

    /// The raw tolerance value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Tolerance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The closed interval of exported timestamps acceptable for one request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceptableRegion {
    policy: MatchPolicy,
    request: Timestamp,
    lo: Timestamp,
    hi: Timestamp,
}

impl AcceptableRegion {
    /// The policy that produced this region.
    #[inline]
    pub fn policy(&self) -> MatchPolicy {
        self.policy
    }

    /// The requested timestamp `x`.
    #[inline]
    pub fn request(&self) -> Timestamp {
        self.request
    }

    /// Inclusive lower bound.
    #[inline]
    pub fn lo(&self) -> Timestamp {
        self.lo
    }

    /// Inclusive upper bound.
    #[inline]
    pub fn hi(&self) -> Timestamp {
        self.hi
    }

    /// Whether `t` lies inside the (closed) region.
    #[inline]
    pub fn contains(&self, t: Timestamp) -> bool {
        self.lo <= t && t <= self.hi
    }

    /// Whether this region overlaps another.
    pub fn overlaps(&self, other: &AcceptableRegion) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Of two in-region candidates, returns the one preferred as the match.
    ///
    /// Preference is distance to the request; on an exact tie the earlier
    /// timestamp wins (only reachable under [`MatchPolicy::Reg`]).
    pub fn prefer(&self, a: Timestamp, b: Timestamp) -> Timestamp {
        debug_assert!(self.contains(a) && self.contains(b));
        let da = a.distance(self.request);
        let db = b.distance(self.request);
        if da < db || (da == db && a <= b) {
            a
        } else {
            b
        }
    }
}

impl fmt::Display for AcceptableRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}, {}] for {}",
            self.policy,
            self.lo.value(),
            self.hi.value(),
            self.request
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timestamp::ts;

    fn tol(v: f64) -> Tolerance {
        Tolerance::new(v).unwrap()
    }

    #[test]
    fn regl_region_bounds() {
        let r = MatchPolicy::RegL.region(ts(20.0), tol(2.5));
        assert_eq!(r.lo(), ts(17.5));
        assert_eq!(r.hi(), ts(20.0));
        assert!(r.contains(ts(17.5)));
        assert!(r.contains(ts(20.0)));
        assert!(!r.contains(ts(20.1)));
        assert!(!r.contains(ts(17.4)));
    }

    #[test]
    fn regu_region_bounds() {
        let r = MatchPolicy::RegU.region(ts(10.0), tol(0.3));
        assert_eq!(r.lo(), ts(10.0));
        assert_eq!(r.hi(), ts(10.3));
    }

    #[test]
    fn reg_region_bounds() {
        let r = MatchPolicy::Reg.region(ts(10.0), tol(0.1));
        assert_eq!(r.lo(), ts(9.9));
        assert_eq!(r.hi(), ts(10.1));
    }

    #[test]
    fn zero_tolerance_is_exact_matching() {
        let r = MatchPolicy::Reg.region(ts(5.0), tol(0.0));
        assert_eq!(r.lo(), ts(5.0));
        assert_eq!(r.hi(), ts(5.0));
        assert!(r.contains(ts(5.0)));
        assert!(!r.contains(ts(5.0000001)));
    }

    #[test]
    fn negative_tolerance_rejected() {
        assert!(Tolerance::new(-0.1).is_err());
        assert!(Tolerance::new(f64::NAN).is_err());
        assert!(Tolerance::new(f64::INFINITY).is_err());
    }

    #[test]
    fn policy_parse_roundtrip() {
        for p in [MatchPolicy::RegL, MatchPolicy::RegU, MatchPolicy::Reg] {
            assert_eq!(p.as_str().parse::<MatchPolicy>().unwrap(), p);
        }
        assert!("regl".parse::<MatchPolicy>().is_err());
        assert!("REGX".parse::<MatchPolicy>().is_err());
    }

    #[test]
    fn prefer_closest() {
        let r = MatchPolicy::Reg.region(ts(10.0), tol(5.0));
        assert_eq!(r.prefer(ts(9.0), ts(12.0)), ts(9.0));
        assert_eq!(r.prefer(ts(12.0), ts(9.0)), ts(9.0));
        assert_eq!(r.prefer(ts(9.5), ts(10.2)), ts(10.2));
    }

    #[test]
    fn prefer_tie_resolves_earlier() {
        let r = MatchPolicy::Reg.region(ts(10.0), tol(5.0));
        assert_eq!(r.prefer(ts(9.0), ts(11.0)), ts(9.0));
        assert_eq!(r.prefer(ts(11.0), ts(9.0)), ts(9.0));
    }

    #[test]
    fn overlap_detection() {
        let a = MatchPolicy::RegL.region(ts(20.0), tol(2.5));
        let b = MatchPolicy::RegL.region(ts(22.0), tol(2.5));
        let c = MatchPolicy::RegL.region(ts(40.0), tol(2.5));
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }
}
