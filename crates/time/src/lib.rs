//! Simulation time, match policies and the approximate matching engine.
//!
//! The coupling framework described in Wu & Sussman (IPDPS 2007) associates an
//! increasing *simulation timestamp* with every data object exported from (or
//! imported into) a region. An import request carries the timestamp the
//! importer wants; the framework answers it with *approximate matching*: a
//! per-connection [`MatchPolicy`] and [`Tolerance`] define an
//! [`AcceptableRegion`] around the requested timestamp, and the exported
//! timestamp inside that region closest to the request is the match.
//!
//! Because exports arrive over time, evaluating a request against the exports
//! seen *so far* yields one of three results ([`MatchResult`]):
//!
//! * [`MatchResult::Match`] — the best match is decided and can never be
//!   improved by a future export,
//! * [`MatchResult::NoMatch`] — no export fell inside the acceptable region
//!   and none ever can,
//! * [`MatchResult::Pending`] — a future export might still be (a better)
//!   match.
//!
//! The engine in [`matching`] is pure and deterministic: it is the single
//! source of truth used by every process of an exporting program, which is
//! what makes the paper's Property 1 (collective consistency) hold — all
//! processes evaluating the same request against the same (eventual) export
//! sequence reach the same decision.

#![warn(missing_docs)]

pub mod history;
pub mod matching;
pub mod policy;
pub mod schedule;
pub mod timestamp;

pub use history::{ExportHistory, HistoryError, RequestStream};
pub use matching::{evaluate, MatchResult};
pub use policy::{AcceptableRegion, MatchPolicy, Tolerance};
pub use schedule::PeriodicSchedule;
pub use timestamp::{ts, Timestamp, TimestampError};
