//! The approximate matching engine: evaluating a request against the exports
//! seen so far.

use crate::history::{ExportHistory, HistoryError};
use crate::policy::{AcceptableRegion, MatchPolicy};
use crate::timestamp::Timestamp;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The result of evaluating one import request against an export history.
///
/// `Pending` is the distinguishing feature of *approximate* matching: the
/// best match cannot yet be decided, either because no acceptable export has
/// been generated or because a future export might be closer to the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchResult {
    /// The match is decided: this exported timestamp satisfies the request
    /// and no future export can improve on it.
    Match(Timestamp),
    /// No exported timestamp fell in the acceptable region, and none ever
    /// will (the exporter has already moved past the region).
    NoMatch,
    /// The best match cannot yet be decided.
    Pending,
}

impl MatchResult {
    /// Whether this result is final (not [`MatchResult::Pending`]).
    #[inline]
    pub fn is_decided(self) -> bool {
        !matches!(self, MatchResult::Pending)
    }

    /// The matched timestamp, if this is a [`MatchResult::Match`].
    #[inline]
    pub fn matched(self) -> Option<Timestamp> {
        match self {
            MatchResult::Match(t) => Some(t),
            _ => None,
        }
    }
}

impl fmt::Display for MatchResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatchResult::Match(t) => write!(f, "MATCH({t})"),
            MatchResult::NoMatch => write!(f, "NO MATCH"),
            MatchResult::Pending => write!(f, "PENDING"),
        }
    }
}

/// Evaluates `region` against the exports recorded in `history`.
///
/// The decision is *final-by-construction*: once this returns
/// [`MatchResult::Match`] or [`MatchResult::NoMatch`] for a region, appending
/// further (strictly larger) exports to the history can never change the
/// answer. This is what lets one fast process decide for its whole program
/// (Property 1) and what makes buddy-help sound.
///
/// Decision rules, exploiting that exports strictly increase:
///
/// * `REGL` (`[x−tol, x]`): candidates are below-or-at `x`; a later export
///   closer to `x` may still arrive, so the result stays `Pending` until the
///   history's latest export reaches `x`. Then the largest in-region export
///   is the match (or `NoMatch` if the exporter jumped the region).
/// * `REGU` (`[x, x+tol]`): the first in-region export is the closest one
///   possible, so it decides immediately; an export beyond `x+tol` without a
///   candidate decides `NoMatch`.
/// * `REG` (`[x−tol, x+tol]`): pending until the latest export reaches `x`;
///   then the closer of {largest export ≤ x, smallest export ≥ x} in-region
///   wins, ties resolving to the earlier timestamp.
///
/// # Example
///
/// ```
/// use couplink_time::{evaluate, ts, ExportHistory, MatchPolicy, MatchResult, Tolerance};
///
/// let mut history = ExportHistory::new();
/// for i in 1..=21 {
///     history.record(ts(i as f64 + 0.6))?;
/// }
/// // REGL with tolerance 2.5: the acceptable region for a request at 20
/// // is [17.5, 20], and the closest export at-or-below 20 wins.
/// let region = MatchPolicy::RegL.region(ts(20.0), Tolerance::new(2.5).unwrap());
/// assert_eq!(evaluate(&region, &history)?, MatchResult::Match(ts(19.6)));
/// # Ok::<(), couplink_time::HistoryError>(())
/// ```
///
/// # Errors
///
/// Propagates [`HistoryError::BelowWatermark`] if the history was pruned past
/// the region's lower bound, which would make the answer unreliable.
pub fn evaluate(
    region: &AcceptableRegion,
    history: &ExportHistory,
) -> Result<MatchResult, HistoryError> {
    let latest = match history.latest() {
        Some(l) => l,
        None => return Ok(MatchResult::Pending),
    };
    let x = region.request();
    match region.policy() {
        MatchPolicy::RegL => {
            if latest < region.hi() {
                return Ok(MatchResult::Pending);
            }
            let best = history.max_in(region.lo(), region.hi())?;
            Ok(best.map_or(MatchResult::NoMatch, MatchResult::Match))
        }
        MatchPolicy::RegU => {
            let best = history.min_in(region.lo(), region.hi())?;
            match best {
                Some(t) => Ok(MatchResult::Match(t)),
                None if latest > region.hi() => Ok(MatchResult::NoMatch),
                None => Ok(MatchResult::Pending),
            }
        }
        MatchPolicy::Reg => {
            if latest < x {
                return Ok(MatchResult::Pending);
            }
            let below = history.max_in(region.lo(), x)?;
            let above = history.min_in(x, region.hi())?;
            let best = match (below, above) {
                (Some(b), Some(a)) => Some(region.prefer(b, a)),
                (Some(b), None) => Some(b),
                (None, Some(a)) => Some(a),
                (None, None) => None,
            };
            Ok(best.map_or(MatchResult::NoMatch, MatchResult::Match))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{MatchPolicy, Tolerance};
    use crate::timestamp::ts;

    fn history(times: &[f64]) -> ExportHistory {
        let mut h = ExportHistory::new();
        for &t in times {
            h.record(ts(t)).unwrap();
        }
        h
    }

    fn regl(x: f64, tol: f64) -> AcceptableRegion {
        MatchPolicy::RegL.region(ts(x), Tolerance::new(tol).unwrap())
    }
    fn regu(x: f64, tol: f64) -> AcceptableRegion {
        MatchPolicy::RegU.region(ts(x), Tolerance::new(tol).unwrap())
    }
    fn reg(x: f64, tol: f64) -> AcceptableRegion {
        MatchPolicy::Reg.region(ts(x), Tolerance::new(tol).unwrap())
    }

    // --- the paper's Figure 5 scenario: REGL, tol 2.5, request @20 ---

    #[test]
    fn figure5_pending_before_region_upper_bound() {
        // Exports 1.6, 2.6, ..., 14.6 then a request for D@20 arrives:
        // acceptable region [17.5, 20], latest export 14.6 → PENDING.
        let h = history(&(1..=14).map(|i| i as f64 + 0.6).collect::<Vec<_>>());
        assert_eq!(
            evaluate(&regl(20.0, 2.5), &h).unwrap(),
            MatchResult::Pending
        );
    }

    #[test]
    fn figure5_match_once_region_passed() {
        // The fastest process has exported up to 20.6 → match is D@19.6.
        let h = history(&(1..=20).map(|i| i as f64 + 0.6).collect::<Vec<_>>());
        assert_eq!(
            evaluate(&regl(20.0, 2.5), &h).unwrap(),
            MatchResult::Match(ts(19.6))
        );
    }

    #[test]
    fn regl_exact_hit_decides_immediately() {
        let h = history(&[18.0, 20.0]);
        assert_eq!(
            evaluate(&regl(20.0, 2.5), &h).unwrap(),
            MatchResult::Match(ts(20.0))
        );
    }

    #[test]
    fn regl_in_region_candidate_is_still_pending() {
        // 19.0 is acceptable but 19.5 could still arrive → PENDING.
        let h = history(&[19.0]);
        assert_eq!(
            evaluate(&regl(20.0, 2.5), &h).unwrap(),
            MatchResult::Pending
        );
    }

    #[test]
    fn regl_no_match_when_region_jumped() {
        // Exporter jumped from 17.0 straight past 20 → nothing in [17.5, 20].
        let h = history(&[17.0, 21.0]);
        assert_eq!(
            evaluate(&regl(20.0, 2.5), &h).unwrap(),
            MatchResult::NoMatch
        );
    }

    #[test]
    fn regl_picks_largest_candidate() {
        let h = history(&[17.5, 18.5, 19.5, 20.5]);
        assert_eq!(
            evaluate(&regl(20.0, 2.5), &h).unwrap(),
            MatchResult::Match(ts(19.5))
        );
    }

    #[test]
    fn empty_history_is_pending() {
        let h = ExportHistory::new();
        assert_eq!(
            evaluate(&regl(20.0, 2.5), &h).unwrap(),
            MatchResult::Pending
        );
        assert_eq!(
            evaluate(&regu(20.0, 2.5), &h).unwrap(),
            MatchResult::Pending
        );
        assert_eq!(evaluate(&reg(20.0, 2.5), &h).unwrap(), MatchResult::Pending);
    }

    // --- REGU ---

    #[test]
    fn regu_first_in_region_export_decides() {
        let h = history(&[9.0, 10.1]);
        assert_eq!(
            evaluate(&regu(10.0, 0.3), &h).unwrap(),
            MatchResult::Match(ts(10.1))
        );
    }

    #[test]
    fn regu_pending_below_region() {
        let h = history(&[9.0, 9.9]);
        assert_eq!(
            evaluate(&regu(10.0, 0.3), &h).unwrap(),
            MatchResult::Pending
        );
    }

    #[test]
    fn regu_no_match_when_jumped() {
        let h = history(&[9.0, 10.4]);
        assert_eq!(
            evaluate(&regu(10.0, 0.3), &h).unwrap(),
            MatchResult::NoMatch
        );
    }

    #[test]
    fn regu_exact_hit() {
        let h = history(&[10.0]);
        assert_eq!(
            evaluate(&regu(10.0, 0.3), &h).unwrap(),
            MatchResult::Match(ts(10.0))
        );
    }

    // --- REG ---

    #[test]
    fn reg_pending_until_request_reached() {
        // 9.95 is in [9.9, 10.1] but an export at 10.0 would be better.
        let h = history(&[9.95]);
        assert_eq!(evaluate(&reg(10.0, 0.1), &h).unwrap(), MatchResult::Pending);
    }

    #[test]
    fn reg_decides_on_first_export_at_or_above_request() {
        // Equidistant candidates (up to float rounding): the earlier one wins.
        let h = history(&[9.95, 10.05]);
        assert_eq!(
            evaluate(&reg(10.0, 0.1), &h).unwrap(),
            MatchResult::Match(ts(9.95))
        );
    }

    #[test]
    fn reg_below_candidate_wins_when_closer() {
        let h = history(&[9.99, 10.05]);
        assert_eq!(
            evaluate(&reg(10.0, 0.1), &h).unwrap(),
            MatchResult::Match(ts(9.99))
        );
    }

    #[test]
    fn reg_tie_resolves_to_earlier() {
        let h = history(&[9.5, 10.5]);
        assert_eq!(
            evaluate(&reg(10.0, 1.0), &h).unwrap(),
            MatchResult::Match(ts(9.5))
        );
    }

    #[test]
    fn reg_no_match_when_region_empty_and_passed() {
        let h = history(&[8.0, 11.0]);
        assert_eq!(evaluate(&reg(10.0, 0.5), &h).unwrap(), MatchResult::NoMatch);
    }

    #[test]
    fn reg_above_only() {
        let h = history(&[8.0, 10.4]);
        assert_eq!(
            evaluate(&reg(10.0, 0.5), &h).unwrap(),
            MatchResult::Match(ts(10.4))
        );
    }

    // --- pruning interaction ---

    #[test]
    fn evaluate_after_safe_prune_is_identical() {
        let mut h = history(&(1..=25).map(|i| i as f64 + 0.6).collect::<Vec<_>>());
        let r = regl(20.0, 2.5);
        let before = evaluate(&r, &h).unwrap();
        h.prune_below(r.lo());
        assert_eq!(evaluate(&r, &h).unwrap(), before);
    }

    #[test]
    fn evaluate_after_unsafe_prune_errors() {
        // 18.0 was the only in-region export and it was pruned away: the
        // engine must refuse to answer rather than claim NO MATCH.
        let mut h = history(&[18.0, 21.0]);
        h.prune_below(ts(19.0));
        assert!(evaluate(&regl(20.0, 2.5), &h).is_err());
    }

    #[test]
    fn evaluate_with_retained_candidate_survives_deep_prune() {
        // Pruning past the region's lower bound is harmless as long as a
        // retained candidate can answer the query: anything pruned was
        // smaller and could not have been the REGL match.
        let mut h = history(&[18.0, 19.0, 21.0]);
        h.prune_below(ts(19.0));
        assert_eq!(
            evaluate(&regl(20.0, 2.5), &h).unwrap(),
            MatchResult::Match(ts(19.0))
        );
    }

    #[test]
    fn decidedness_helpers() {
        assert!(MatchResult::Match(ts(1.0)).is_decided());
        assert!(MatchResult::NoMatch.is_decided());
        assert!(!MatchResult::Pending.is_decided());
        assert_eq!(MatchResult::Match(ts(1.0)).matched(), Some(ts(1.0)));
        assert_eq!(MatchResult::NoMatch.matched(), None);
    }
}
