//! Property-based tests for the approximate matching engine.
//!
//! These check the invariants the buddy-help optimization relies on:
//! finality (a decided result never changes as more exports arrive),
//! best-candidate optimality, and pruning safety.

use couplink_time::{evaluate, ts, ExportHistory, MatchPolicy, MatchResult, Tolerance};
use proptest::prelude::*;

/// Strategy: a strictly increasing export sequence of 0..60 timestamps in a
/// modest range with irregular gaps.
fn export_seq() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.01f64..5.0, 0..60).prop_map(|gaps| {
        let mut acc = 0.0;
        gaps.iter()
            .map(|g| {
                acc += *g;
                acc
            })
            .collect()
    })
}

fn any_policy() -> impl Strategy<Value = MatchPolicy> {
    prop_oneof![
        Just(MatchPolicy::RegL),
        Just(MatchPolicy::RegU),
        Just(MatchPolicy::Reg),
    ]
}

fn build(times: &[f64]) -> ExportHistory {
    let mut h = ExportHistory::new();
    for &t in times {
        h.record(ts(t)).unwrap();
    }
    h
}

proptest! {
    /// Finality: once a prefix of the export sequence decides the request,
    /// every longer prefix reaches the same decision. This is the soundness
    /// condition for buddy-help — the fastest process's answer must be the
    /// answer every slower process eventually computes.
    #[test]
    fn decisions_are_final(
        exports in export_seq(),
        policy in any_policy(),
        request in 0.0f64..120.0,
        tol in 0.0f64..10.0,
    ) {
        let region = policy.region(ts(request), Tolerance::new(tol).unwrap());
        let mut decided: Option<MatchResult> = None;
        let mut h = ExportHistory::new();
        for &t in &exports {
            h.record(ts(t)).unwrap();
            let r = evaluate(&region, &h).unwrap();
            if let Some(d) = decided {
                prop_assert_eq!(r, d, "decision changed after more exports");
            } else if r.is_decided() {
                decided = Some(r);
            }
        }
    }

    /// A matched timestamp is always an in-region member of the history, and
    /// no other in-region export is strictly closer to the request.
    #[test]
    fn match_is_best_in_region(
        exports in export_seq(),
        policy in any_policy(),
        request in 0.0f64..120.0,
        tol in 0.0f64..10.0,
    ) {
        let region = policy.region(ts(request), Tolerance::new(tol).unwrap());
        let h = build(&exports);
        if let MatchResult::Match(m) = evaluate(&region, &h).unwrap() {
            prop_assert!(region.contains(m));
            prop_assert!(exports.iter().any(|&t| ts(t) == m));
            let dm = m.distance(region.request());
            for &t in &exports {
                let t = ts(t);
                if region.contains(t) {
                    prop_assert!(
                        t.distance(region.request()) >= dm,
                        "{} is closer than match {}", t, m
                    );
                }
            }
        }
    }

    /// NoMatch implies the region really is empty of exports and the
    /// exporter has moved past it.
    #[test]
    fn no_match_is_justified(
        exports in export_seq(),
        policy in any_policy(),
        request in 0.0f64..120.0,
        tol in 0.0f64..10.0,
    ) {
        let region = policy.region(ts(request), Tolerance::new(tol).unwrap());
        let h = build(&exports);
        if evaluate(&region, &h).unwrap() == MatchResult::NoMatch {
            for &t in &exports {
                prop_assert!(!region.contains(ts(t)));
            }
            let latest = h.latest().expect("NoMatch needs at least one export");
            prop_assert!(latest > region.hi());
        }
    }

    /// Pending implies a future export could still (better) match: there is
    /// some strictly larger timestamp whose arrival would change or set the
    /// match.
    #[test]
    fn pending_is_justified(
        exports in export_seq(),
        policy in any_policy(),
        request in 0.0f64..120.0,
        tol in 0.0f64..10.0,
    ) {
        let region = policy.region(ts(request), Tolerance::new(tol).unwrap());
        let h = build(&exports);
        if evaluate(&region, &h).unwrap() == MatchResult::Pending {
            // Appending an export exactly at the request timestamp (or just
            // above the latest if that's already past) must be legal and
            // decide the request as a Match — i.e. the engine was right to
            // keep waiting.
            let mut h2 = h.clone();
            let probe = match h2.latest() {
                Some(l) if l >= region.request() => l.offset(1e-9),
                _ => region.request(),
            };
            if region.contains(probe) {
                h2.record(probe).unwrap();
                prop_assert_eq!(
                    evaluate(&region, &h2).unwrap(),
                    MatchResult::Match(probe)
                );
            }
        }
    }

    /// Pruning below the region lower bound never changes the decision.
    #[test]
    fn prune_below_region_is_safe(
        exports in export_seq(),
        policy in any_policy(),
        request in 0.0f64..120.0,
        tol in 0.0f64..10.0,
    ) {
        let region = policy.region(ts(request), Tolerance::new(tol).unwrap());
        let mut h = build(&exports);
        let before = evaluate(&region, &h).unwrap();
        h.prune_below(region.lo());
        prop_assert_eq!(evaluate(&region, &h).unwrap(), before);
    }

    /// Collective consistency (Property 1 core): any two processes that have
    /// seen different-length prefixes of the same export sequence can only
    /// disagree in that the shorter one is Pending. MATCH vs NO MATCH, or two
    /// different matched timestamps, are impossible.
    #[test]
    fn prefixes_never_conflict(
        exports in export_seq(),
        policy in any_policy(),
        request in 0.0f64..120.0,
        tol in 0.0f64..10.0,
        split in 0usize..60,
    ) {
        let region = policy.region(ts(request), Tolerance::new(tol).unwrap());
        let split = split.min(exports.len());
        let fast = build(&exports);
        let slow = build(&exports[..split]);
        let rf = evaluate(&region, &fast).unwrap();
        let rs = evaluate(&region, &slow).unwrap();
        if rs.is_decided() {
            prop_assert_eq!(rs, rf);
        }
    }
}
