//! Experiment series output: the CSV files the figure harnesses write.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A named column of numbers (one figure curve).
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Header name.
    pub name: String,
    /// Values, one per row.
    pub values: Vec<f64>,
}

impl Column {
    /// Creates a column.
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Self {
        Column {
            name: name.into(),
            values,
        }
    }
}

/// Renders columns as CSV with an index column. Shorter columns leave blank
/// cells.
pub fn to_csv(index_name: &str, columns: &[Column]) -> String {
    let mut out = String::new();
    out.push_str(index_name);
    for c in columns {
        out.push(',');
        out.push_str(&c.name);
    }
    out.push('\n');
    let rows = columns.iter().map(|c| c.values.len()).max().unwrap_or(0);
    for row in 0..rows {
        write!(out, "{row}").expect("writing to String");
        for c in columns {
            out.push(',');
            if let Some(v) = c.values.get(row) {
                write!(out, "{v}").expect("writing to String");
            }
        }
        out.push('\n');
    }
    out
}

/// Writes columns as a CSV file.
pub fn write_csv(path: impl AsRef<Path>, index_name: &str, columns: &[Column]) -> io::Result<()> {
    std::fs::write(path, to_csv(index_name, columns))
}

/// Downsamples a series by averaging consecutive windows of `window` points
/// (used to de-noise per-iteration plots the way the paper's figures do).
pub fn window_mean(values: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "window must be positive");
    values
        .chunks(window)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_layout() {
        let csv = to_csv(
            "iter",
            &[
                Column::new("a", vec![1.0, 2.0]),
                Column::new("b", vec![0.5]),
            ],
        );
        assert_eq!(csv, "iter,a,b\n0,1,0.5\n1,2,\n");
    }

    #[test]
    fn empty_columns() {
        assert_eq!(to_csv("i", &[]), "i\n");
        assert_eq!(to_csv("i", &[Column::new("x", vec![])]), "i,x\n");
    }

    #[test]
    fn window_mean_averages() {
        assert_eq!(window_mean(&[1.0, 3.0, 5.0, 7.0], 2), vec![2.0, 6.0]);
        // Trailing partial window averages what is left.
        assert_eq!(window_mean(&[1.0, 3.0, 8.0], 2), vec![2.0, 8.0]);
        assert_eq!(window_mean(&[], 4), Vec::<f64>::new());
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        window_mean(&[1.0], 0);
    }

    #[test]
    fn write_csv_roundtrip() {
        let dir = std::env::temp_dir().join("couplink-series-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        write_csv(&path, "i", &[Column::new("v", vec![1.5])]).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "i,v\n0,1.5\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
