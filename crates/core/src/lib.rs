//! **couplink** — a loosely coupled simulation coupling framework with
//! approximate temporal matching and the *buddy-help* collective
//! optimization.
//!
//! This crate is the public face of a from-scratch Rust reproduction of
//! *"Taking Advantage of Collective Operation Semantics for Loosely Coupled
//! Simulations"* (Wu & Sussman, IPDPS 2007). The framework couples
//! independently developed data-parallel programs: each program declares
//! *regions* of a distributed array once, then exports or imports data as
//! often as it likes, tagged with increasing simulation timestamps. A
//! framework-level configuration file — not the programs — declares who is
//! connected to whom, with what match policy (`REGL`/`REGU`/`REG`) and
//! tolerance.
//!
//! Exported objects are buffered by the framework until it can prove they
//! will never be requested. Because export and import operations are
//! *collective* (every process of a program performs the same sequence),
//! the answer computed by the fastest process of an exporting program can be
//! forwarded to its slower peers — **buddy-help** — letting them skip
//! buffering entirely for objects that are already known not to match.
//!
//! # Quick start
//!
//! ```no_run
//! use couplink::prelude::*;
//! use std::time::Duration;
//!
//! // One 64x64 array: exporter F holds 2x2 quadrants, importer U holds
//! // 2 row blocks.
//! let grid = Extent2::new(64, 64);
//! let f = Decomposition::block_2d(grid, 2, 2).unwrap();
//! let u = Decomposition::row_block(grid, 2).unwrap();
//!
//! let config = couplink::config::parse(
//!     "F c0 /bin/f 4\nU c0 /bin/u 2\n#\nF.force U.force REGL 2.5\n",
//! ).unwrap();
//! let mut session = SessionBuilder::new(config)
//!     .bind("F", "force", f)
//!     .bind("U", "force", u)
//!     .build()
//!     .unwrap();
//!
//! // Spawn one thread per process of each program; each thread drives its
//! // ProcessHandle: exporters call `export`, importers call `import`.
//! let mut handles = session.take_program("F").unwrap();
//! let mut rank0 = handles.take_process(0);
//! let piece = LocalArray::zeros(f.owned(0));
//! rank0.export_region("force").unwrap().export(ts(1.6), &piece).unwrap();
//! ```
//!
//! # Crate map
//!
//! | layer | crate | contents |
//! |---|---|---|
//! | timestamps & matching | `couplink-time` | policies, acceptable regions, MATCH/NO MATCH/PENDING engine |
//! | data layout | `couplink-layout` | decompositions, M×N redistribution plans |
//! | protocol | `couplink-proto` | buffer manager, rep aggregation, buddy-help (sans-IO) |
//! | runtimes | `couplink-runtime` | deterministic DES + threaded fabric |
//! | configuration | `couplink-config` | Figure-2 config file format |
//! | this crate | `couplink` | config-driven sessions, experiment series output |

#![warn(missing_docs)]

pub mod series;
pub mod session;

/// Re-export of the configuration crate.
pub mod config {
    pub use couplink_config::*;
}

/// Everything needed by typical applications.
pub mod prelude {
    pub use crate::session::{
        ProcessHandle, ProgramHandles, Session, SessionBuilder, SessionError,
    };
    pub use couplink_config::{Config, ConnectionSpec, ProgramSpec, RegionRef};
    pub use couplink_layout::{Decomposition, Extent2, LocalArray, Rect, RedistPlan};
    pub use couplink_runtime::threaded::ExportOutcome;
    pub use couplink_runtime::CostModel;
    pub use couplink_time::{ts, MatchPolicy, MatchResult, Timestamp, Tolerance};
}

pub use prelude::*;
