//! Config-driven coupled sessions over the threaded runtime.
//!
//! A [`Session`] builds one multi-program [`Fabric`] for the whole parsed
//! configuration — a validated [`Topology`] of N programs and any number of
//! connections — and hands each program's processes their framework API: a
//! [`ProcessHandle`] with one export port per exported region and one
//! import port per imported region. This is the crate-level realization of
//! the paper's Figure 1/Figure 2 workflow — programs declare regions once,
//! the configuration wires them up, and data flows with approximate
//! temporal matching.

use couplink_config::{Config, RegionRef};
use couplink_layout::{Decomposition, LocalArray};
use couplink_proto::{ConnectionId, Trace};
use couplink_runtime::engine::{Topology, TopologyError};
use couplink_runtime::threaded::{
    ExportAccess, ExportOutcome, Fabric, FabricOptions, ImportAccess, ThreadedError,
};
use couplink_time::Timestamp;
use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

/// Error building or using a session.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// A connection references a region with no bound decomposition.
    UnboundRegion(RegionRef),
    /// A bound decomposition's process count disagrees with the program's
    /// declared process count.
    ProcsMismatch {
        /// The program.
        program: String,
        /// Processes declared in the configuration.
        declared: usize,
        /// Processes implied by the bound decomposition.
        bound: usize,
    },
    /// Two connections import into the same region (ambiguous source).
    DoublyImportedRegion(RegionRef),
    /// The named program is not in the configuration.
    UnknownProgram(String),
    /// The program's handles were already taken.
    AlreadyTaken(String),
    /// The named region does not exist on this process handle.
    NoSuchRegion(String),
    /// A runtime error.
    Runtime(ThreadedError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::UnboundRegion(r) => write!(f, "no decomposition bound for {r}"),
            SessionError::ProcsMismatch {
                program,
                declared,
                bound,
            } => write!(
                f,
                "program {program} declares {declared} processes but its bound \
                 decomposition has {bound}"
            ),
            SessionError::DoublyImportedRegion(r) => {
                write!(f, "region {r} is imported from more than one exporter")
            }
            SessionError::UnknownProgram(p) => write!(f, "unknown program {p}"),
            SessionError::AlreadyTaken(p) => write!(f, "handles for {p} already taken"),
            SessionError::NoSuchRegion(r) => write!(f, "no region named {r} on this process"),
            SessionError::Runtime(e) => write!(f, "runtime: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ThreadedError> for SessionError {
    fn from(e: ThreadedError) -> Self {
        SessionError::Runtime(e)
    }
}

impl From<TopologyError> for SessionError {
    fn from(e: TopologyError) -> Self {
        match e {
            TopologyError::UnboundRegion(r) => SessionError::UnboundRegion(r),
            TopologyError::ProcsMismatch {
                program,
                declared,
                bound,
            } => SessionError::ProcsMismatch {
                program,
                declared,
                bound,
            },
            TopologyError::DoublyImportedRegion(r) => SessionError::DoublyImportedRegion(r),
            TopologyError::UnknownProgram(p) => SessionError::UnknownProgram(p),
            TopologyError::Layout(m) => SessionError::Runtime(ThreadedError::Config(m)),
        }
    }
}

/// Builder for a [`Session`].
pub struct SessionBuilder {
    config: Config,
    bindings: HashMap<RegionRef, Decomposition>,
    buddy_help: bool,
    import_timeout: Duration,
    buffer_capacity: Option<usize>,
    traces: Vec<(String, usize, String)>,
}

impl SessionBuilder {
    /// Starts a builder from a parsed configuration.
    pub fn new(config: Config) -> Self {
        SessionBuilder {
            config,
            bindings: HashMap::new(),
            buddy_help: true,
            import_timeout: Duration::from_secs(30),
            buffer_capacity: None,
            traces: Vec::new(),
        }
    }

    /// Binds a program's declared region to its decomposition of the global
    /// array. Every region that appears in a connection must be bound.
    pub fn bind(mut self, program: &str, region: &str, decomp: Decomposition) -> Self {
        self.bindings
            .insert(RegionRef::new(program, region), decomp);
        self
    }

    /// Enables or disables the buddy-help optimization (default: enabled).
    pub fn buddy_help(mut self, enabled: bool) -> Self {
        self.buddy_help = enabled;
        self
    }

    /// Sets the import timeout (default 30 s).
    pub fn import_timeout(mut self, timeout: Duration) -> Self {
        self.import_timeout = timeout;
        self
    }

    /// Bounds each process's framework buffer to `capacity` objects per
    /// connection; exports block while the buffer is full (default:
    /// unbounded, the paper's setting).
    pub fn buffer_capacity(mut self, capacity: usize) -> Self {
        self.buffer_capacity = Some(capacity);
        self
    }

    /// Records a Figure 5-style event trace on process `rank` of `program`
    /// for every connection of its exported `region`. The traces come back
    /// from [`Session::shutdown_with_traces`].
    pub fn trace(mut self, program: &str, rank: usize, region: &str) -> Self {
        self.traces.push((program.into(), rank, region.into()));
        self
    }

    /// Builds the session: validates the configuration and bindings into a
    /// [`Topology`] and spawns one fabric for the whole topology.
    pub fn build(self) -> Result<Session, SessionError> {
        let topo = Topology::from_config(&self.config, &self.bindings)?;
        let mut traces = Vec::new();
        for (program, rank, region) in &self.traces {
            let Some(pi) = topo.program_idx(program) else {
                return Err(SessionError::UnknownProgram(program.clone()));
            };
            let Some(ri) = topo.programs[pi].export_idx(region) else {
                return Err(SessionError::NoSuchRegion(region.clone()));
            };
            for &conn in &topo.programs[pi].exports[ri].conns {
                traces.push((pi, *rank, conn));
            }
        }
        let fabric = Fabric::new(
            topo,
            FabricOptions {
                buddy_help: self.buddy_help,
                import_timeout: self.import_timeout,
                buffer_capacity: self.buffer_capacity,
                traces,
                chaos: None,
                drop_buddy_help: false,
                hierarchical: false,
                wal: None,
            },
        );
        Ok(Session {
            config: self.config,
            fabric,
            taken: Vec::new(),
        })
    }
}

/// A live coupled session: one fabric spanning every configured connection.
pub struct Session {
    config: Config,
    fabric: Fabric,
    taken: Vec<String>,
}

impl Session {
    /// The configuration this session was built from.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Takes the per-process handles of `program` (once per program). Hand
    /// each [`ProcessHandle`] to the thread driving that rank.
    pub fn take_program(&mut self, program: &str) -> Result<ProgramHandles, SessionError> {
        let prog = self
            .fabric
            .topology()
            .program_idx(program)
            .ok_or_else(|| SessionError::UnknownProgram(program.to_owned()))?;
        if self.taken.iter().any(|t| t == program) {
            return Err(SessionError::AlreadyTaken(program.to_owned()));
        }
        self.taken.push(program.to_owned());
        let pt = &self.fabric.topology().programs[prog];
        let procs = pt.procs;
        let export_names: Vec<String> = pt.exports.iter().map(|r| r.name.clone()).collect();
        let import_names: Vec<String> = pt.imports.iter().map(|r| r.name.clone()).collect();
        let procs = (0..procs)
            .map(|rank| {
                let exports = export_names
                    .iter()
                    .enumerate()
                    .map(|(ri, name)| {
                        (
                            name.clone(),
                            ExportRegion {
                                access: self.fabric.take_export(prog, rank, ri),
                            },
                        )
                    })
                    .collect();
                let imports = import_names
                    .iter()
                    .enumerate()
                    .map(|(ii, name)| {
                        (
                            name.clone(),
                            ImportRegion {
                                access: self.fabric.take_import(prog, rank, ii),
                            },
                        )
                    })
                    .collect();
                ProcessHandle {
                    program: program.to_owned(),
                    rank,
                    exports,
                    imports,
                }
            })
            .collect();
        Ok(ProgramHandles { procs })
    }

    /// Shuts the fabric down and returns per-connection exporter statistics
    /// (indexed like the configuration's connection list, then by rank).
    /// Call after all program threads have finished and dropped their
    /// handles.
    pub fn shutdown(self) -> Result<Vec<Vec<couplink_proto::ExportStats>>, SessionError> {
        Ok(self.fabric.shutdown()?.stats)
    }

    /// Like [`Session::shutdown`], additionally returning the event traces
    /// requested through [`SessionBuilder::trace`] as `(program, rank,
    /// connection, trace)`.
    #[allow(clippy::type_complexity)]
    pub fn shutdown_with_traces(
        self,
    ) -> Result<
        (
            Vec<Vec<couplink_proto::ExportStats>>,
            Vec<(String, usize, ConnectionId, Trace)>,
        ),
        SessionError,
    > {
        let names: Vec<String> = self
            .fabric
            .topology()
            .programs
            .iter()
            .map(|p| p.name.clone())
            .collect();
        let report = self.fabric.shutdown()?;
        let traces = report
            .traces
            .into_iter()
            .map(|(prog, rank, conn, trace)| (names[prog].clone(), rank, conn, trace))
            .collect();
        Ok((report.stats, traces))
    }
}

/// The process handles of one program, to be distributed over its threads.
pub struct ProgramHandles {
    procs: Vec<ProcessHandle>,
}

impl ProgramHandles {
    /// Number of processes.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// Whether the program has no processes (never true for parsed configs).
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// Takes the handle for `rank`.
    ///
    /// # Panics
    ///
    /// Panics if taken twice or out of range.
    pub fn take_process(&mut self, rank: usize) -> ProcessHandle {
        assert!(rank < self.procs.len(), "rank {rank} out of range");
        let placeholder = ProcessHandle {
            program: String::new(),
            rank: usize::MAX,
            exports: HashMap::new(),
            imports: HashMap::new(),
        };
        let p = std::mem::replace(&mut self.procs[rank], placeholder);
        assert!(p.rank != usize::MAX, "process {rank} already taken");
        p
    }

    /// Takes all remaining handles, lowest rank first.
    pub fn take_all(&mut self) -> Vec<ProcessHandle> {
        (0..self.procs.len())
            .map(|r| self.take_process(r))
            .collect()
    }
}

/// One process's framework API: its exported and imported regions.
pub struct ProcessHandle {
    program: String,
    rank: usize,
    exports: HashMap<String, ExportRegion>,
    imports: HashMap<String, ImportRegion>,
}

impl ProcessHandle {
    /// The program this process belongs to.
    pub fn program(&self) -> &str {
        &self.program
    }

    /// This process's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The export port for a declared region.
    pub fn export_region(&mut self, region: &str) -> Result<&mut ExportRegion, SessionError> {
        self.exports
            .get_mut(region)
            .ok_or_else(|| SessionError::NoSuchRegion(region.to_owned()))
    }

    /// The import port for a declared region.
    pub fn import_region(&mut self, region: &str) -> Result<&mut ImportRegion, SessionError> {
        self.imports
            .get_mut(region)
            .ok_or_else(|| SessionError::NoSuchRegion(region.to_owned()))
    }

    /// Names of the exported regions this process serves.
    pub fn exported_regions(&self) -> impl Iterator<Item = &str> {
        self.exports.keys().map(String::as_str)
    }

    /// Names of the imported regions this process serves.
    pub fn imported_regions(&self) -> impl Iterator<Item = &str> {
        self.imports.keys().map(String::as_str)
    }
}

/// A process's export port for one region. A region exported over several
/// connections (Figure 2's `P0.r1` feeding both `P1` and `P2`) is served by
/// one shared object store with per-connection acceptable-region tracking:
/// the piece is copied at most once per export, and an object is freed only
/// when *no* connection can still need it.
pub struct ExportRegion {
    access: ExportAccess,
}

impl ExportRegion {
    /// Exports this process's piece at simulation time `ts` on every
    /// connection of the region. Returns one outcome per connection.
    pub fn export(
        &mut self,
        ts: Timestamp,
        data: &LocalArray,
    ) -> Result<Vec<ExportOutcome>, SessionError> {
        Ok(self.access.export(ts, data)?)
    }

    /// Number of connections this region feeds.
    pub fn connections(&self) -> usize {
        self.access.connections()
    }

    /// Objects currently buffered, summed over the region's connections.
    pub fn buffered_len(&self) -> usize {
        self.access.buffered_len()
    }

    /// Statistics per connection.
    pub fn stats(&self) -> Vec<couplink_proto::ExportStats> {
        self.access.stats()
    }
}

/// A process's import port for one region (exactly one exporting connection).
pub struct ImportRegion {
    access: ImportAccess,
}

impl ImportRegion {
    /// Collectively imports the data matched to `ts` into this process's
    /// piece. Blocks until the framework answers; returns the matched
    /// timestamp or `None` on NO MATCH.
    pub fn import(
        &mut self,
        ts: Timestamp,
        dest: &mut LocalArray,
    ) -> Result<Option<Timestamp>, SessionError> {
        Ok(self.access.import(ts, dest)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use couplink_layout::Extent2;
    use couplink_time::ts;

    fn two_program_config() -> Config {
        couplink_config::parse("F c0 /bin/f 4\nU c0 /bin/u 2\n#\nF.force U.force REGL 2.5\n")
            .unwrap()
    }

    fn grid() -> (Extent2, Decomposition, Decomposition) {
        let e = Extent2::new(32, 32);
        (
            e,
            Decomposition::block_2d(e, 2, 2).unwrap(),
            Decomposition::row_block(e, 2).unwrap(),
        )
    }

    #[test]
    fn build_requires_bindings() {
        let err = SessionBuilder::new(two_program_config())
            .build()
            .map(|_| ())
            .unwrap_err();
        assert_eq!(
            err,
            SessionError::UnboundRegion(RegionRef::new("F", "force"))
        );
    }

    #[test]
    fn build_checks_proc_counts() {
        let (e, f, _) = grid();
        let wrong_u = Decomposition::row_block(e, 3).unwrap();
        let err = SessionBuilder::new(two_program_config())
            .bind("F", "force", f)
            .bind("U", "force", wrong_u)
            .build()
            .map(|_| ())
            .unwrap_err();
        assert_eq!(
            err,
            SessionError::ProcsMismatch {
                program: "U".into(),
                declared: 2,
                bound: 3
            }
        );
    }

    #[test]
    fn double_import_rejected() {
        let config = couplink_config::parse(
            "A c0 /bin/a 1\nB c0 /bin/b 1\nC c0 /bin/c 1\n#\n\
             A.x C.z REGL 1.0\nB.y C.z REGL 1.0\n",
        )
        .unwrap();
        let e = Extent2::new(8, 8);
        let d1 = Decomposition::row_block(e, 1).unwrap();
        let err = SessionBuilder::new(config)
            .bind("A", "x", d1)
            .bind("B", "y", d1)
            .bind("C", "z", d1)
            .build()
            .map(|_| ())
            .unwrap_err();
        assert_eq!(
            err,
            SessionError::DoublyImportedRegion(RegionRef::new("C", "z"))
        );
    }

    #[test]
    fn full_session_transfer() {
        let (_, f_d, u_d) = grid();
        let mut session = SessionBuilder::new(two_program_config())
            .bind("F", "force", f_d)
            .bind("U", "force", u_d)
            .build()
            .unwrap();
        let mut f = session.take_program("F").unwrap();
        let mut u = session.take_program("U").unwrap();

        let mut threads = Vec::new();
        for rank in 0..4 {
            let mut p = f.take_process(rank);
            let owned = f_d.owned(rank);
            threads.push(std::thread::spawn(move || {
                let region = p.export_region("force").unwrap();
                for i in 0..30 {
                    let t = 1.6 + i as f64;
                    let data = LocalArray::from_fn(owned, |r, c| t + (r + c) as f64);
                    region.export(ts(t), &data).unwrap();
                }
            }));
        }
        let mut imp_threads = Vec::new();
        for rank in 0..2 {
            let mut p = u.take_process(rank);
            let owned = u_d.owned(rank);
            imp_threads.push(std::thread::spawn(move || {
                let mut dest = LocalArray::zeros(owned);
                p.import_region("force")
                    .unwrap()
                    .import(ts(20.0), &mut dest)
                    .unwrap()
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        for t in imp_threads {
            assert_eq!(t.join().unwrap(), Some(ts(19.6)));
        }
        let stats = session.shutdown().unwrap();
        assert_eq!(stats.len(), 1); // one connection
        assert_eq!(stats[0].len(), 4); // four exporter ranks
        for s in &stats[0] {
            assert_eq!(s.sends, 1);
        }
    }

    #[test]
    fn take_program_twice_fails() {
        let (_, f_d, u_d) = grid();
        let mut session = SessionBuilder::new(two_program_config())
            .bind("F", "force", f_d)
            .bind("U", "force", u_d)
            .build()
            .unwrap();
        session.take_program("F").unwrap();
        assert_eq!(
            session.take_program("F").map(|_| ()).unwrap_err(),
            SessionError::AlreadyTaken("F".into())
        );
        assert_eq!(
            session.take_program("X").map(|_| ()).unwrap_err(),
            SessionError::UnknownProgram("X".into())
        );
    }

    #[test]
    fn unknown_region_on_process() {
        let (_, f_d, u_d) = grid();
        let mut session = SessionBuilder::new(two_program_config())
            .bind("F", "force", f_d)
            .bind("U", "force", u_d)
            .build()
            .unwrap();
        let mut f = session.take_program("F").unwrap();
        let mut p = f.take_process(0);
        assert!(matches!(
            p.export_region("nope"),
            Err(SessionError::NoSuchRegion(_))
        ));
        assert!(matches!(
            p.import_region("force"),
            Err(SessionError::NoSuchRegion(_))
        ));
        assert_eq!(p.exported_regions().collect::<Vec<_>>(), vec!["force"]);
    }

    #[test]
    fn multi_importer_fanout() {
        // Figure 2 pattern: one exported region feeding two importers with
        // different policies.
        let config = couplink_config::parse(
            "F c0 /bin/f 2\nU c0 /bin/u 2\nV c0 /bin/v 2\n#\n\
             F.r U.r REGL 2.5\nF.r V.q REGU 2.5\n",
        )
        .unwrap();
        let e = Extent2::new(16, 16);
        let d2 = Decomposition::row_block(e, 2).unwrap();
        let mut session = SessionBuilder::new(config)
            .bind("F", "r", d2)
            .bind("U", "r", d2)
            .bind("V", "q", d2)
            .build()
            .unwrap();
        let mut f = session.take_program("F").unwrap();
        let mut u = session.take_program("U").unwrap();
        let mut v = session.take_program("V").unwrap();

        let mut threads = Vec::new();
        for rank in 0..2 {
            let mut p = f.take_process(rank);
            let owned = d2.owned(rank);
            threads.push(std::thread::spawn(move || {
                let region = p.export_region("r").unwrap();
                assert_eq!(region.connections(), 2);
                for i in 0..30 {
                    let t = 1.6 + i as f64;
                    let data = LocalArray::from_fn(owned, |_, _| t);
                    let outcomes = region.export(ts(t), &data).unwrap();
                    assert_eq!(outcomes.len(), 2);
                }
            }));
        }
        for rank in 0..2 {
            let mut p = u.take_process(rank);
            let owned = d2.owned(rank);
            threads.push(std::thread::spawn(move || {
                let mut dest = LocalArray::zeros(owned);
                // REGL: acceptable region [17.5, 20] → match 19.6.
                let m = p
                    .import_region("r")
                    .unwrap()
                    .import(ts(20.0), &mut dest)
                    .unwrap();
                assert_eq!(m, Some(ts(19.6)));
                assert_eq!(dest.get(owned.row0, 0), 19.6);
            }));
        }
        for rank in 0..2 {
            let mut p = v.take_process(rank);
            let owned = d2.owned(rank);
            threads.push(std::thread::spawn(move || {
                let mut dest = LocalArray::zeros(owned);
                // REGU: acceptable region [20, 22.5] → match 20.6.
                let m = p
                    .import_region("q")
                    .unwrap()
                    .import(ts(20.0), &mut dest)
                    .unwrap();
                assert_eq!(m, Some(ts(20.6)));
                assert_eq!(dest.get(owned.row0, 0), 20.6);
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        session.shutdown().unwrap();
    }
}
