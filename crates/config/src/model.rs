//! Configuration data model and semantic queries.

use couplink_time::{MatchPolicy, Tolerance};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One program deployment line of the first section.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgramSpec {
    /// Program name (e.g. `P0`).
    pub name: String,
    /// Cluster the program runs on.
    pub cluster: String,
    /// Executable path.
    pub executable: String,
    /// Number of processes.
    pub procs: usize,
    /// Any further tokens on the line, passed through verbatim.
    pub extra: Vec<String>,
}

impl fmt::Display for ProgramSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {}",
            self.name, self.cluster, self.executable, self.procs
        )?;
        for e in &self.extra {
            write!(f, " {e}")?;
        }
        Ok(())
    }
}

/// A `program.region` reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegionRef {
    /// Program name.
    pub program: String,
    /// Region name within that program.
    pub region: String,
}

impl RegionRef {
    /// Creates a reference.
    pub fn new(program: impl Into<String>, region: impl Into<String>) -> Self {
        RegionRef {
            program: program.into(),
            region: region.into(),
        }
    }
}

impl fmt::Display for RegionRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.program, self.region)
    }
}

/// One connection line of the second section.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnectionSpec {
    /// The exporting side.
    pub exporter: RegionRef,
    /// The importing side.
    pub importer: RegionRef,
    /// Match policy of the connection.
    pub policy: MatchPolicy,
    /// Matching tolerance.
    pub tolerance: Tolerance,
}

impl fmt::Display for ConnectionSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {}",
            self.exporter, self.importer, self.policy, self.tolerance
        )
    }
}

/// The result of validating a program's declared regions against the
/// connection specification (§3's initialization-stage checks).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RegionReport {
    /// Declared exported regions no connection imports: legal, and the
    /// framework can run them with zero buffering overhead.
    pub unimported_exports: Vec<String>,
    /// Declared imported regions with no exporting connection: a coupling
    /// error detected before the run starts.
    pub unmatched_imports: Vec<String>,
    /// Regions referenced by connections but not declared by the program.
    pub undeclared: Vec<String>,
}

impl RegionReport {
    /// Whether the configuration is usable for this program.
    pub fn is_ok(&self) -> bool {
        self.unmatched_imports.is_empty() && self.undeclared.is_empty()
    }
}

/// A parsed, semantically valid configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Program deployment section.
    pub programs: Vec<ProgramSpec>,
    /// Connection section.
    pub connections: Vec<ConnectionSpec>,
}

impl Config {
    /// Looks up a program by name.
    pub fn program(&self, name: &str) -> Option<&ProgramSpec> {
        self.programs.iter().find(|p| p.name == name)
    }

    /// The connections exporting from `program`.
    pub fn exports_of<'a>(&'a self, program: &'a str) -> impl Iterator<Item = &'a ConnectionSpec> {
        self.connections
            .iter()
            .filter(move |c| c.exporter.program == program)
    }

    /// The connections importing into `program`.
    pub fn imports_of<'a>(&'a self, program: &'a str) -> impl Iterator<Item = &'a ConnectionSpec> {
        self.connections
            .iter()
            .filter(move |c| c.importer.program == program)
    }

    /// Validates the regions a program declares at initialization against
    /// the connection specification.
    ///
    /// * An *exported* region that no connection imports is reported as
    ///   `unimported_exports` — legal, and the framework skips all buffering
    ///   for it (the paper's low-overhead path).
    /// * An *imported* region with no exporting connection is an error
    ///   (`unmatched_imports`): the import could never be satisfied.
    /// * Connections referencing regions the program did not declare are
    ///   reported as `undeclared`.
    pub fn validate_regions(
        &self,
        program: &str,
        exported: &[&str],
        imported: &[&str],
    ) -> RegionReport {
        let mut report = RegionReport::default();
        for region in exported {
            if !self
                .exports_of(program)
                .any(|c| c.exporter.region == *region)
            {
                report.unimported_exports.push((*region).to_owned());
            }
        }
        for region in imported {
            if !self
                .imports_of(program)
                .any(|c| c.importer.region == *region)
            {
                report.unmatched_imports.push((*region).to_owned());
            }
        }
        for c in &self.connections {
            if c.exporter.program == program && !exported.contains(&c.exporter.region.as_str()) {
                report.undeclared.push(c.exporter.region.clone());
            }
            if c.importer.program == program && !imported.contains(&c.importer.region.as_str()) {
                report.undeclared.push(c.importer.region.clone());
            }
        }
        report.undeclared.sort();
        report.undeclared.dedup();
        report
    }

    /// Renders the configuration back into the file format (round-trips
    /// through [`crate::parse`]).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for p in &self.programs {
            writeln!(out, "{p}").expect("writing to String");
        }
        out.push_str("#\n");
        for c in &self.connections {
            writeln!(out, "{c}").expect("writing to String");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use couplink_time::MatchPolicy;

    fn figure2() -> Config {
        crate::parse(
            "P0 cluster0 /home/meou/bin/P0 16\n\
             P1 cluster1 /home/meou/bin/P1 8\n\
             P2 cluster1 /home/meou/bin/P2 32\n\
             P4 cluster1 /home/meou/bin/P4 4\n\
             #\n\
             P0.r1 P1.r1 REGL 0.2\n\
             P0.r1 P2.r3 REG 0.1\n\
             P0.r2 P4.r2 REGU 0.3\n",
        )
        .unwrap()
    }

    #[test]
    fn program_lookup() {
        let cfg = figure2();
        assert_eq!(cfg.program("P2").unwrap().procs, 32);
        assert!(cfg.program("P9").is_none());
    }

    #[test]
    fn exports_and_imports_queries() {
        let cfg = figure2();
        assert_eq!(cfg.exports_of("P0").count(), 3);
        assert_eq!(cfg.imports_of("P0").count(), 0);
        assert_eq!(cfg.imports_of("P1").count(), 1);
        let c = cfg.imports_of("P2").next().unwrap();
        assert_eq!(c.policy, MatchPolicy::Reg);
        assert_eq!(c.importer.region, "r3");
    }

    #[test]
    fn validate_regions_flags_unimported_export() {
        let cfg = figure2();
        // P0 declares r1, r2, r3 (like Figure 1); r3 has no connection.
        let report = cfg.validate_regions("P0", &["r1", "r2", "r3"], &[]);
        assert_eq!(report.unimported_exports, vec!["r3".to_owned()]);
        assert!(report.unmatched_imports.is_empty());
        assert!(report.undeclared.is_empty());
        assert!(report.is_ok());
    }

    #[test]
    fn validate_regions_flags_unmatched_import() {
        let cfg = figure2();
        let report = cfg.validate_regions("P1", &[], &["r1", "r9"]);
        assert_eq!(report.unmatched_imports, vec!["r9".to_owned()]);
        assert!(!report.is_ok());
    }

    #[test]
    fn validate_regions_flags_undeclared() {
        let cfg = figure2();
        // P0 forgot to declare r2, which a connection exports.
        let report = cfg.validate_regions("P0", &["r1"], &[]);
        assert_eq!(report.undeclared, vec!["r2".to_owned()]);
        assert!(!report.is_ok());
    }

    #[test]
    fn render_roundtrips() {
        let cfg = figure2();
        let again = crate::parse(&cfg.render()).unwrap();
        assert_eq!(cfg, again);
    }

    #[test]
    fn region_ref_display() {
        assert_eq!(RegionRef::new("P0", "r1").to_string(), "P0.r1");
    }
}
