//! Parser for the two-section configuration-file format.

use crate::model::{Config, ConnectionSpec, ProgramSpec, RegionRef};
use couplink_time::{MatchPolicy, Tolerance};
use std::collections::HashSet;
use std::fmt;

/// A parse or validation error, with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number (0 for file-level errors).
    pub line: usize,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

/// The kinds of configuration errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// A program line did not have at least name, cluster, path and procs.
    MalformedProgramLine,
    /// The process count was not a positive integer.
    BadProcessCount(String),
    /// Two programs share a name.
    DuplicateProgram(String),
    /// A connection line did not have exactly four fields.
    MalformedConnectionLine,
    /// A region reference was not of the form `program.region`.
    BadRegionRef(String),
    /// Unknown match policy.
    BadPolicy(String),
    /// Tolerance was not a non-negative finite number.
    BadTolerance(String),
    /// A connection references an undeclared program.
    UnknownProgram(String),
    /// A program exports a region to itself.
    SelfConnection,
    /// Two identical connection lines.
    DuplicateConnection,
    /// The file has no `#` section separator.
    MissingSeparator,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            ParseErrorKind::MalformedProgramLine => {
                write!(f, "expected `name cluster executable procs [extra...]`")
            }
            ParseErrorKind::BadProcessCount(s) => {
                write!(f, "process count `{s}` is not a positive integer")
            }
            ParseErrorKind::DuplicateProgram(p) => write!(f, "program `{p}` declared twice"),
            ParseErrorKind::MalformedConnectionLine => {
                write!(f, "expected `exp.region imp.region POLICY tolerance`")
            }
            ParseErrorKind::BadRegionRef(s) => {
                write!(f, "`{s}` is not of the form `program.region`")
            }
            ParseErrorKind::BadPolicy(s) => write!(f, "unknown policy `{s}`"),
            ParseErrorKind::BadTolerance(s) => {
                write!(f, "tolerance `{s}` must be a non-negative finite number")
            }
            ParseErrorKind::UnknownProgram(p) => {
                write!(f, "connection references undeclared program `{p}`")
            }
            ParseErrorKind::SelfConnection => {
                write!(f, "a program cannot import its own exported region")
            }
            ParseErrorKind::DuplicateConnection => write!(f, "duplicate connection"),
            ParseErrorKind::MissingSeparator => {
                write!(f, "missing `#` separator between programs and connections")
            }
        }
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, kind: ParseErrorKind) -> ParseError {
    ParseError { line, kind }
}

fn parse_region_ref(token: &str, line: usize) -> Result<RegionRef, ParseError> {
    match token.split_once('.') {
        Some((p, r)) if !p.is_empty() && !r.is_empty() && !r.contains('.') => {
            Ok(RegionRef::new(p, r))
        }
        _ => Err(err(line, ParseErrorKind::BadRegionRef(token.to_owned()))),
    }
}

/// Parses a configuration file.
///
/// # Example
///
/// ```
/// let config = couplink_config::parse(
///     "P0 cluster0 /bin/p0 16\nP1 cluster1 /bin/p1 8\n#\nP0.r1 P1.r1 REGL 0.2\n",
/// )?;
/// assert_eq!(config.programs.len(), 2);
/// assert_eq!(config.connections[0].tolerance.value(), 0.2);
/// # Ok::<(), couplink_config::ParseError>(())
/// ```
pub fn parse(input: &str) -> Result<Config, ParseError> {
    let mut programs: Vec<ProgramSpec> = Vec::new();
    let mut connections: Vec<ConnectionSpec> = Vec::new();
    let mut names = HashSet::new();
    let mut in_connections = false;
    let mut saw_separator = false;

    for (i, raw) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('#') {
            if !in_connections {
                in_connections = true;
                saw_separator = true;
            }
            // After the separator, `#`-prefixed lines are comments.
            continue;
        }
        if !in_connections {
            let mut tokens = line.split_whitespace();
            let name = tokens.next();
            let cluster = tokens.next();
            let executable = tokens.next();
            let procs = tokens.next();
            let (name, cluster, executable, procs) = match (name, cluster, executable, procs) {
                (Some(a), Some(b), Some(c), Some(d)) => (a, b, c, d),
                _ => return Err(err(lineno, ParseErrorKind::MalformedProgramLine)),
            };
            let procs: usize =
                procs.parse().ok().filter(|&n| n > 0).ok_or_else(|| {
                    err(lineno, ParseErrorKind::BadProcessCount(procs.to_owned()))
                })?;
            if !names.insert(name.to_owned()) {
                return Err(err(
                    lineno,
                    ParseErrorKind::DuplicateProgram(name.to_owned()),
                ));
            }
            programs.push(ProgramSpec {
                name: name.to_owned(),
                cluster: cluster.to_owned(),
                executable: executable.to_owned(),
                procs,
                extra: tokens.map(str::to_owned).collect(),
            });
        } else {
            let tokens: Vec<&str> = line.split_whitespace().collect();
            if tokens.len() != 4 {
                return Err(err(lineno, ParseErrorKind::MalformedConnectionLine));
            }
            let exporter = parse_region_ref(tokens[0], lineno)?;
            let importer = parse_region_ref(tokens[1], lineno)?;
            let policy: MatchPolicy = tokens[2]
                .parse()
                .map_err(|_| err(lineno, ParseErrorKind::BadPolicy(tokens[2].to_owned())))?;
            let tolerance = tokens[3]
                .parse::<f64>()
                .ok()
                .and_then(|v| Tolerance::new(v).ok())
                .ok_or_else(|| err(lineno, ParseErrorKind::BadTolerance(tokens[3].to_owned())))?;
            for side in [&exporter, &importer] {
                if !names.contains(&side.program) {
                    return Err(err(
                        lineno,
                        ParseErrorKind::UnknownProgram(side.program.clone()),
                    ));
                }
            }
            if exporter.program == importer.program {
                return Err(err(lineno, ParseErrorKind::SelfConnection));
            }
            let spec = ConnectionSpec {
                exporter,
                importer,
                policy,
                tolerance,
            };
            if connections
                .iter()
                .any(|c| c.exporter == spec.exporter && c.importer == spec.importer)
            {
                return Err(err(lineno, ParseErrorKind::DuplicateConnection));
            }
            connections.push(spec);
        }
    }
    if !saw_separator {
        return Err(err(0, ParseErrorKind::MissingSeparator));
    }
    Ok(Config {
        programs,
        connections,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIGURE2: &str = "\
P0 cluster0 /home/meou/bin/P0 16
P1 cluster1 /home/meou/bin/P1 8
P2 cluster1 /home/meou/bin/P2 32
P4 cluster1 /home/meou/bin/P4 4
#
P0.r1 P1.r1 REGL 0.2
P0.r1 P2.r3 REG 0.1
P0.r2 P4.r2 REGU 0.3
";

    #[test]
    fn parses_figure2() {
        let cfg = parse(FIGURE2).unwrap();
        assert_eq!(cfg.programs.len(), 4);
        assert_eq!(cfg.connections.len(), 3);
        assert_eq!(cfg.programs[0].name, "P0");
        assert_eq!(cfg.programs[0].procs, 16);
        let c0 = &cfg.connections[0];
        assert_eq!(c0.exporter, RegionRef::new("P0", "r1"));
        assert_eq!(c0.importer, RegionRef::new("P1", "r1"));
        assert_eq!(c0.policy, MatchPolicy::RegL);
        assert_eq!(c0.tolerance.value(), 0.2);
    }

    #[test]
    fn extra_tokens_preserved() {
        let cfg = parse("P0 c0 /bin/p0 4 --foo bar\n#\n").unwrap();
        assert_eq!(
            cfg.programs[0].extra,
            vec!["--foo".to_owned(), "bar".to_owned()]
        );
    }

    #[test]
    fn empty_lines_and_comments_skipped() {
        let cfg =
            parse("\nP0 c0 /bin/p0 4\nP1 c0 /bin/p1 2\n\n#\n# a comment\nP0.r P1.r REG 1.0\n\n")
                .unwrap();
        assert_eq!(cfg.connections.len(), 1);
    }

    #[test]
    fn missing_separator_is_error() {
        let e = parse("P0 c0 /bin/p0 4\n").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::MissingSeparator);
    }

    #[test]
    fn malformed_program_line() {
        let e = parse("P0 c0 /bin/p0\n#\n").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::MalformedProgramLine);
        assert_eq!(e.line, 1);
    }

    #[test]
    fn bad_process_count() {
        assert_eq!(
            parse("P0 c0 /bin/p0 zero\n#\n").unwrap_err().kind,
            ParseErrorKind::BadProcessCount("zero".into())
        );
        assert_eq!(
            parse("P0 c0 /bin/p0 0\n#\n").unwrap_err().kind,
            ParseErrorKind::BadProcessCount("0".into())
        );
    }

    #[test]
    fn duplicate_program_rejected() {
        let e = parse("P0 c0 /bin/a 1\nP0 c1 /bin/b 2\n#\n").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::DuplicateProgram("P0".into()));
        assert_eq!(e.line, 2);
    }

    #[test]
    fn malformed_connection_line() {
        let e = parse("P0 c0 /bin/a 1\nP1 c0 /bin/b 1\n#\nP0.r P1.r REGL\n").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::MalformedConnectionLine);
    }

    #[test]
    fn bad_region_refs() {
        for bad in ["P0r", "P0.", ".r1", "P0.r.x"] {
            let input = format!("P0 c0 /bin/a 1\nP1 c0 /bin/b 1\n#\n{bad} P1.r REGL 0.5\n");
            let e = parse(&input).unwrap_err();
            assert_eq!(e.kind, ParseErrorKind::BadRegionRef(bad.into()), "{bad}");
        }
    }

    #[test]
    fn bad_policy_and_tolerance() {
        let base = "P0 c0 /bin/a 1\nP1 c0 /bin/b 1\n#\n";
        assert_eq!(
            parse(&format!("{base}P0.r P1.r REGX 0.5\n"))
                .unwrap_err()
                .kind,
            ParseErrorKind::BadPolicy("REGX".into())
        );
        assert_eq!(
            parse(&format!("{base}P0.r P1.r REGL -0.5\n"))
                .unwrap_err()
                .kind,
            ParseErrorKind::BadTolerance("-0.5".into())
        );
        assert_eq!(
            parse(&format!("{base}P0.r P1.r REGL nan\n"))
                .unwrap_err()
                .kind,
            ParseErrorKind::BadTolerance("nan".into())
        );
    }

    #[test]
    fn unknown_program_in_connection() {
        let e = parse("P0 c0 /bin/a 1\n#\nP0.r P9.r REGL 0.5\n").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::UnknownProgram("P9".into()));
    }

    #[test]
    fn self_connection_rejected() {
        let e = parse("P0 c0 /bin/a 2\n#\nP0.r1 P0.r2 REGL 0.5\n").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::SelfConnection);
    }

    #[test]
    fn duplicate_connection_rejected() {
        let e = parse("P0 c0 /bin/a 1\nP1 c0 /bin/b 1\n#\nP0.r P1.r REGL 0.5\nP0.r P1.r REG 0.1\n")
            .unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::DuplicateConnection);
    }

    #[test]
    fn one_exported_region_to_two_importers_is_fine() {
        let cfg = parse(
            "P0 c0 /bin/a 1\nP1 c0 /bin/b 1\nP2 c0 /bin/c 1\n#\n\
             P0.r P1.r REGL 0.5\nP0.r P2.q REG 0.1\n",
        )
        .unwrap();
        assert_eq!(cfg.exports_of("P0").count(), 2);
    }

    #[test]
    fn zero_tolerance_is_exact_matching() {
        let cfg = parse("P0 c0 /bin/a 1\nP1 c0 /bin/b 1\n#\nP0.r P1.r REG 0\n").unwrap();
        assert_eq!(cfg.connections[0].tolerance.value(), 0.0);
    }
}
