//! The framework-level configuration file (Figure 2 of the paper).
//!
//! A configuration file connects independently developed programs without
//! recompiling them. It has two sections separated by a line starting with
//! `#`:
//!
//! ```text
//! P0 cluster0 /home/meou/bin/P0 16
//! P1 cluster1 /home/meou/bin/P1 8
//! P2 cluster1 /home/meou/bin/P2 32
//! P4 cluster1 /home/meou/bin/P4 4
//! #
//! P0.r1 P1.r1 REGL 0.2
//! P0.r1 P2.r3 REG  0.1
//! P0.r2 P4.r2 REGU 0.3
//! ```
//!
//! The first section lists the participating programs (name, cluster,
//! executable path, process count, optional extra arguments); the second
//! lists the export→import connections with a match policy and tolerance.
//! Parsing validates the file in the spirit of §3.1: every connection must
//! reference declared programs, and [`Config::validate_regions`] supports
//! the framework's initialization-time checks (an imported region with no
//! exporter is an error; an exported region no one imports gets the
//! zero-overhead flag).

#![warn(missing_docs)]

pub mod model;
pub mod parser;

pub use model::{Config, ConnectionSpec, ProgramSpec, RegionRef, RegionReport};
pub use parser::{parse, ParseError};
