//! `cfgcheck` — validate a couplink configuration file and print its
//! deployment and coupling structure (the framework's initialization-time
//! checks, runnable standalone).
//!
//! Usage: `cargo run -p couplink-config --bin cfgcheck -- <file>`
//! (or pipe the file on stdin with no argument).

use couplink_config::parse;
use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let input = match std::env::args().nth(1) {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cfgcheck: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let mut s = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut s) {
                eprintln!("cfgcheck: cannot read stdin: {e}");
                return ExitCode::FAILURE;
            }
            s
        }
    };

    let config = match parse(&input) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cfgcheck: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("programs ({}):", config.programs.len());
    for p in &config.programs {
        let exports = config.exports_of(&p.name).count();
        let imports = config.imports_of(&p.name).count();
        println!(
            "  {:<10} {:>4} procs on {:<12} {}  ({} export conn, {} import conn)",
            p.name, p.procs, p.cluster, p.executable, exports, imports
        );
    }
    println!();
    println!("connections ({}):", config.connections.len());
    for c in &config.connections {
        println!(
            "  {:<14} -> {:<14} {:<5} tolerance {}",
            c.exporter.to_string(),
            c.importer.to_string(),
            c.policy.as_str(),
            c.tolerance
        );
    }
    println!();
    println!("ok: configuration is well-formed");
    ExitCode::SUCCESS
}
