//! Property tests for decompositions and redistribution schedules.

use couplink_layout::{Decomposition, Extent2, LocalArray, Partition, Rect, RedistPlan};
use proptest::prelude::*;

/// Recursively splits a rectangle into an irregular tiling, driven by a
/// sequence of cut decisions.
fn split_rect(rect: Rect, cuts: &[(bool, u8)], depth: usize, out: &mut Vec<Rect>) {
    if depth >= cuts.len() || rect.cells() <= 1 {
        out.push(rect);
        return;
    }
    let (horizontal, frac) = cuts[depth];
    if horizontal && rect.rows > 1 {
        let at = 1 + (frac as usize) % (rect.rows - 1);
        split_rect(
            Rect::new(rect.row0, rect.col0, at, rect.cols),
            cuts,
            depth + 1,
            out,
        );
        split_rect(
            Rect::new(rect.row0 + at, rect.col0, rect.rows - at, rect.cols),
            cuts,
            depth + 1,
            out,
        );
    } else if !horizontal && rect.cols > 1 {
        let at = 1 + (frac as usize) % (rect.cols - 1);
        split_rect(
            Rect::new(rect.row0, rect.col0, rect.rows, at),
            cuts,
            depth + 1,
            out,
        );
        split_rect(
            Rect::new(rect.row0, rect.col0 + at, rect.rows, rect.cols - at),
            cuts,
            depth + 1,
            out,
        );
    } else {
        out.push(rect);
    }
}

/// Strategy: a random valid decomposition of the given extent.
fn decomp_for(extent: Extent2) -> impl Strategy<Value = Decomposition> {
    let rows = extent.rows;
    let cols = extent.cols;
    prop_oneof![
        (1..=rows).prop_map(move |p| Decomposition::row_block(extent, p).unwrap()),
        (1..=cols).prop_map(move |p| Decomposition::col_block(extent, p).unwrap()),
        (1..=rows.min(4), 1..=cols.min(4))
            .prop_map(move |(pr, pc)| Decomposition::block_2d(extent, pr, pc).unwrap()),
    ]
}

fn extent() -> impl Strategy<Value = Extent2> {
    (1usize..24, 1usize..24).prop_map(|(r, c)| Extent2::new(r, c))
}

fn extent_and_decomp() -> impl Strategy<Value = (Extent2, Decomposition)> {
    extent().prop_flat_map(|e| decomp_for(e).prop_map(move |d| (e, d)))
}

proptest! {
    /// Owned rectangles of any decomposition partition the grid: every cell
    /// owned by exactly one rank, and `rank_of` agrees with `owned`.
    #[test]
    fn decomposition_is_a_partition((e, d) in extent_and_decomp()) {
        let mut owner = vec![usize::MAX; e.cells()];
        for rank in 0..d.procs() {
            let r = d.owned(rank);
            for row in r.row0..r.row_end() {
                for col in r.col0..r.col_end() {
                    let idx = row * e.cols + col;
                    prop_assert_eq!(owner[idx], usize::MAX, "cell owned twice");
                    owner[idx] = rank;
                }
            }
        }
        for row in 0..e.rows {
            for col in 0..e.cols {
                let idx = row * e.cols + col;
                prop_assert!(owner[idx] != usize::MAX, "cell unowned");
                prop_assert_eq!(d.rank_of(row, col), owner[idx]);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A redistribution between any two decompositions of the same grid moves
    /// every cell exactly once and preserves all values.
    #[test]
    fn redistribution_roundtrip(
        e in extent(),
        src_procs in 1usize..6,
        dst_procs in 1usize..6,
        salt in 0u64..u64::MAX,
    ) {
        let src_procs = src_procs.min(e.rows);
        let dst_procs = dst_procs.min(e.cols);
        let src = Decomposition::row_block(e, src_procs).unwrap();
        let dst = Decomposition::col_block(e, dst_procs).unwrap();
        let plan = RedistPlan::build(src, dst).unwrap();
        prop_assert_eq!(plan.total_cells(), e.cells());

        let value = |r: usize, c: usize| ((r * 131 + c * 31) as f64) + (salt % 97) as f64;
        let src_pieces: Vec<_> = (0..src.procs())
            .map(|r| LocalArray::from_fn(src.owned(r), value))
            .collect();
        let mut dst_pieces: Vec<_> = (0..dst.procs())
            .map(|r| LocalArray::from_fn(dst.owned(r), |_, _| f64::NEG_INFINITY))
            .collect();
        plan.execute(&src_pieces, &mut dst_pieces);
        for (rank, piece) in dst_pieces.iter().enumerate() {
            let r = dst.owned(rank);
            for row in r.row0..r.row_end() {
                for col in r.col0..r.col_end() {
                    prop_assert_eq!(piece.get(row, col), value(row, col));
                }
            }
        }
    }

    /// Any recursively split irregular tiling validates as a partition, and
    /// redistributing into (and out of) it preserves every value.
    #[test]
    fn irregular_partitions_roundtrip(
        rows in 2usize..20,
        cols in 2usize..20,
        cuts in proptest::collection::vec((any::<bool>(), any::<u8>()), 1..5),
    ) {
        let e = Extent2::new(rows, cols);
        let mut rects = Vec::new();
        split_rect(e.full_rect(), &cuts, 0, &mut rects);
        let irregular = Partition::new(e, rects).expect("recursive splits tile the grid");
        let regular = Partition::from_decomposition(
            &Decomposition::row_block(e, (rows / 2).max(1)).unwrap(),
        );
        let plan = RedistPlan::between(regular.clone(), irregular.clone()).unwrap();
        prop_assert_eq!(plan.total_cells(), e.cells());
        let value = |r: usize, c: usize| (r * 131 + c * 31) as f64;
        let src: Vec<LocalArray> = regular
            .rects()
            .iter()
            .map(|r| LocalArray::from_fn(*r, value))
            .collect();
        let mut dst: Vec<LocalArray> = irregular
            .rects()
            .iter()
            .map(|r| LocalArray::zeros(*r))
            .collect();
        plan.execute(&src, &mut dst);
        for (rank, piece) in dst.iter().enumerate() {
            let owned = irregular.owned(rank);
            for row in owned.row0..owned.row_end() {
                for col in owned.col0..owned.col_end() {
                    prop_assert_eq!(piece.get(row, col), value(row, col));
                }
            }
        }
    }

    /// Pack/unpack of any owned sub-rectangle is lossless and touches nothing
    /// outside the rectangle.
    #[test]
    fn pack_unpack_subrect(
        rows in 1usize..12,
        cols in 1usize..12,
        sub_row in 0usize..12,
        sub_col in 0usize..12,
        sub_rows in 1usize..12,
        sub_cols in 1usize..12,
    ) {
        use couplink_layout::Rect;
        let owned = Rect::new(0, 0, rows, cols);
        let sub_row = sub_row % rows;
        let sub_col = sub_col % cols;
        let sub = Rect::new(
            sub_row,
            sub_col,
            sub_rows.min(rows - sub_row),
            sub_cols.min(cols - sub_col),
        );
        let src = LocalArray::from_fn(owned, |r, c| (r * cols + c) as f64);
        let packed = src.pack(&sub);
        prop_assert_eq!(packed.len(), sub.cells());
        let mut dst = LocalArray::zeros(owned);
        dst.unpack(&sub, &packed);
        for r in 0..rows {
            for c in 0..cols {
                let expect = if sub.contains(r, c) { (r * cols + c) as f64 } else { 0.0 };
                prop_assert_eq!(dst.get(r, c), expect);
            }
        }
    }
}
