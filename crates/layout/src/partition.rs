//! Irregular partitions: arbitrary rectangle-per-rank ownership.
//!
//! The regular [`crate::Decomposition`]s cover the paper's benchmark, but an
//! InterComm-style substrate must accept whatever ownership an application
//! declares — e.g. a load-balanced split with unequal rectangles. A
//! [`Partition`] is a validated list of rectangles, one per rank, that
//! exactly tiles the global grid; [`crate::RedistPlan`] accepts any pair of
//! partitions.

use crate::decomp::Decomposition;
use crate::rect::{Extent2, Rect};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error validating a [`Partition`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// No rectangles given.
    Empty,
    /// A rectangle covers no cells.
    EmptyRect {
        /// The offending rank.
        rank: usize,
    },
    /// A rectangle sticks out of the grid.
    OutOfBounds {
        /// The offending rank.
        rank: usize,
        /// Its rectangle.
        rect: Rect,
    },
    /// Two rectangles overlap.
    Overlap {
        /// First overlapping rank.
        a: usize,
        /// Second overlapping rank.
        b: usize,
    },
    /// The rectangles are disjoint and in-bounds but do not cover the grid.
    Incomplete {
        /// Cells covered.
        covered: usize,
        /// Cells in the grid.
        total: usize,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::Empty => write!(f, "a partition needs at least one rectangle"),
            PartitionError::EmptyRect { rank } => write!(f, "rank {rank} owns no cells"),
            PartitionError::OutOfBounds { rank, rect } => {
                write!(f, "rank {rank}'s rectangle {rect} exceeds the grid")
            }
            PartitionError::Overlap { a, b } => {
                write!(f, "ranks {a} and {b} own overlapping rectangles")
            }
            PartitionError::Incomplete { covered, total } => {
                write!(f, "partition covers {covered} of {total} cells")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// A validated, possibly irregular tiling of a global grid: rank `r` owns
/// `rects[r]`; the rectangles are pairwise disjoint and cover every cell.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    extent: Extent2,
    rects: Vec<Rect>,
}

impl Partition {
    /// Validates and builds a partition.
    ///
    /// Disjointness plus total-area equality plus in-bounds implies exact
    /// cover, so validation is `O(n²)` in the rank count, independent of the
    /// grid size.
    pub fn new(extent: Extent2, rects: Vec<Rect>) -> Result<Self, PartitionError> {
        if rects.is_empty() {
            return Err(PartitionError::Empty);
        }
        let mut covered = 0usize;
        for (rank, r) in rects.iter().enumerate() {
            if r.is_empty() {
                return Err(PartitionError::EmptyRect { rank });
            }
            if !r.fits(extent) {
                return Err(PartitionError::OutOfBounds { rank, rect: *r });
            }
            covered += r.cells();
        }
        for (a, ra) in rects.iter().enumerate() {
            for (b, rb) in rects.iter().enumerate().skip(a + 1) {
                if !ra.intersect(rb).is_empty() {
                    return Err(PartitionError::Overlap { a, b });
                }
            }
        }
        if covered != extent.cells() {
            return Err(PartitionError::Incomplete {
                covered,
                total: extent.cells(),
            });
        }
        Ok(Partition { extent, rects })
    }

    /// The partition induced by a regular decomposition.
    pub fn from_decomposition(d: &Decomposition) -> Self {
        Partition {
            extent: d.extent(),
            rects: (0..d.procs()).map(|r| d.owned(r)).collect(),
        }
    }

    /// The grid shape.
    pub fn extent(&self) -> Extent2 {
        self.extent
    }

    /// Number of ranks.
    pub fn procs(&self) -> usize {
        self.rects.len()
    }

    /// The rectangle owned by `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn owned(&self, rank: usize) -> Rect {
        self.rects[rank]
    }

    /// All owned rectangles, rank order.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// The rank owning global cell `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the cell is outside the grid.
    pub fn rank_of(&self, row: usize, col: usize) -> usize {
        assert!(
            row < self.extent.rows && col < self.extent.cols,
            "cell ({row},{col}) outside {}",
            self.extent
        );
        self.rects
            .iter()
            .position(|r| r.contains(row, col))
            .expect("a partition covers every cell")
    }
}

impl From<Decomposition> for Partition {
    fn from(d: Decomposition) -> Self {
        Partition::from_decomposition(&d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An L-shaped three-rank tiling of a 4x4 grid.
    fn l_shape() -> Partition {
        Partition::new(
            Extent2::new(4, 4),
            vec![
                Rect::new(0, 0, 2, 4), // top half
                Rect::new(2, 0, 2, 1), // bottom-left column
                Rect::new(2, 1, 2, 3), // bottom-right block
            ],
        )
        .unwrap()
    }

    #[test]
    fn irregular_partition_validates() {
        let p = l_shape();
        assert_eq!(p.procs(), 3);
        assert_eq!(p.rank_of(0, 3), 0);
        assert_eq!(p.rank_of(3, 0), 1);
        assert_eq!(p.rank_of(3, 3), 2);
    }

    #[test]
    fn from_regular_decomposition() {
        let d = Decomposition::block_2d(Extent2::new(8, 8), 2, 2).unwrap();
        let p = Partition::from_decomposition(&d);
        assert_eq!(p.procs(), 4);
        for rank in 0..4 {
            assert_eq!(p.owned(rank), d.owned(rank));
        }
        for row in 0..8 {
            for col in 0..8 {
                assert_eq!(p.rank_of(row, col), d.rank_of(row, col));
            }
        }
    }

    #[test]
    fn rejects_overlap() {
        let err = Partition::new(
            Extent2::new(2, 2),
            vec![Rect::new(0, 0, 2, 2), Rect::new(1, 1, 1, 1)],
        )
        .unwrap_err();
        assert_eq!(err, PartitionError::Overlap { a: 0, b: 1 });
    }

    #[test]
    fn rejects_gap() {
        let err = Partition::new(
            Extent2::new(2, 2),
            vec![Rect::new(0, 0, 1, 2), Rect::new(1, 0, 1, 1)],
        )
        .unwrap_err();
        assert_eq!(
            err,
            PartitionError::Incomplete {
                covered: 3,
                total: 4
            }
        );
    }

    #[test]
    fn rejects_out_of_bounds_and_empty() {
        assert_eq!(
            Partition::new(Extent2::new(2, 2), vec![]).unwrap_err(),
            PartitionError::Empty
        );
        assert_eq!(
            Partition::new(Extent2::new(2, 2), vec![Rect::new(0, 0, 2, 3)]).unwrap_err(),
            PartitionError::OutOfBounds {
                rank: 0,
                rect: Rect::new(0, 0, 2, 3)
            }
        );
        assert_eq!(
            Partition::new(Extent2::new(2, 2), vec![Rect::new(0, 0, 2, 2), Rect::EMPTY])
                .unwrap_err(),
            PartitionError::EmptyRect { rank: 1 }
        );
    }
}
