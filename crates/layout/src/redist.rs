//! M×N redistribution schedules between two decompositions of one grid.

use crate::array::LocalArray;
use crate::decomp::Decomposition;
use crate::partition::Partition;
use crate::rect::Rect;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One message of a redistribution schedule: source rank `src` sends the
/// global rectangle `rect` (the intersection of its owned piece with
/// destination rank `dst`'s owned piece).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transfer {
    /// Sending rank in the source program.
    pub src: usize,
    /// Receiving rank in the destination program.
    pub dst: usize,
    /// The global rectangle carried by this message.
    pub rect: Rect,
}

/// Error computing a [`RedistPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RedistError {
    /// Source and destination grids have different shapes.
    ExtentMismatch {
        /// Source grid shape.
        src: crate::rect::Extent2,
        /// Destination grid shape.
        dst: crate::rect::Extent2,
    },
}

impl fmt::Display for RedistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RedistError::ExtentMismatch { src, dst } => {
                write!(f, "cannot redistribute {src} grid into {dst} grid")
            }
        }
    }
}

impl std::error::Error for RedistError {}

/// The full message schedule for moving a distributed array from a source
/// decomposition (the exporting program) to a destination decomposition (the
/// importing program).
///
/// The plan is computed once per connection at initialization — this is the
/// "define regions once, transfer many times" pattern of the paper's §3 —
/// and reused for every matched data transfer.
///
/// # Example
///
/// ```
/// use couplink_layout::{Decomposition, Extent2, RedistPlan};
///
/// let grid = Extent2::new(1024, 1024);
/// let f = Decomposition::block_2d(grid, 2, 2)?;     // exporter quadrants
/// let u = Decomposition::row_block(grid, 16)?;      // importer row blocks
/// let plan = RedistPlan::build(f, u)?;
/// assert_eq!(plan.total_cells(), 1024 * 1024);      // every cell moves once
/// // Quadrant 0 (rows 0..512) feeds importer ranks 0..8 (64 rows each).
/// assert_eq!(plan.sends_from(0).count(), 8);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RedistPlan {
    src: Partition,
    dst: Partition,
    transfers: Vec<Transfer>,
}

impl RedistPlan {
    /// Computes the schedule between two regular decompositions.
    pub fn build(src: Decomposition, dst: Decomposition) -> Result<Self, RedistError> {
        Self::between(
            Partition::from_decomposition(&src),
            Partition::from_decomposition(&dst),
        )
    }

    /// Computes the schedule between two (possibly irregular) partitions:
    /// all non-empty pairwise intersections of source and destination owned
    /// rectangles.
    pub fn between(src: Partition, dst: Partition) -> Result<Self, RedistError> {
        if src.extent() != dst.extent() {
            return Err(RedistError::ExtentMismatch {
                src: src.extent(),
                dst: dst.extent(),
            });
        }
        let mut transfers = Vec::new();
        for s in 0..src.procs() {
            let srect = src.owned(s);
            for d in 0..dst.procs() {
                let rect = srect.intersect(&dst.owned(d));
                if !rect.is_empty() {
                    transfers.push(Transfer {
                        src: s,
                        dst: d,
                        rect,
                    });
                }
            }
        }
        Ok(RedistPlan {
            src,
            dst,
            transfers,
        })
    }

    /// The source partition.
    pub fn src(&self) -> &Partition {
        &self.src
    }

    /// The destination partition.
    pub fn dst(&self) -> &Partition {
        &self.dst
    }

    /// All transfers in the schedule.
    pub fn transfers(&self) -> &[Transfer] {
        &self.transfers
    }

    /// The transfers sent by source rank `src_rank`.
    pub fn sends_from(&self, src_rank: usize) -> impl Iterator<Item = &Transfer> {
        self.transfers.iter().filter(move |t| t.src == src_rank)
    }

    /// The transfers received by destination rank `dst_rank`.
    pub fn recvs_to(&self, dst_rank: usize) -> impl Iterator<Item = &Transfer> {
        self.transfers.iter().filter(move |t| t.dst == dst_rank)
    }

    /// Total number of cells moved (equals the grid size for a full
    /// redistribution, since owned rectangles partition the grid).
    pub fn total_cells(&self) -> usize {
        self.transfers.iter().map(|t| t.rect.cells()).sum()
    }

    /// Executes the plan in-memory: packs every transfer out of the source
    /// pieces and unpacks into the destination pieces. This is the
    /// single-address-space equivalent of the cross-program data exchange
    /// (runtimes split the same pack/unpack across their message fabric).
    ///
    /// # Panics
    ///
    /// Panics if the pieces do not match the plan's decompositions.
    pub fn execute(&self, src_pieces: &[LocalArray], dst_pieces: &mut [LocalArray]) {
        assert_eq!(src_pieces.len(), self.src.procs(), "source piece count");
        assert_eq!(
            dst_pieces.len(),
            self.dst.procs(),
            "destination piece count"
        );
        for t in &self.transfers {
            let packed = src_pieces[t.src].pack(&t.rect);
            dst_pieces[t.dst].unpack(&t.rect, &packed);
        }
    }
}

impl fmt::Display for RedistPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RedistPlan {} procs -> {} procs, {} transfers, {} cells",
            self.src.procs(),
            self.dst.procs(),
            self.transfers.len(),
            self.total_cells()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect::Extent2;

    fn pieces(d: &Decomposition, f: impl Fn(usize, usize) -> f64 + Copy) -> Vec<LocalArray> {
        (0..d.procs())
            .map(|r| LocalArray::from_fn(d.owned(r), f))
            .collect()
    }

    #[test]
    fn quadrants_to_row_blocks_schedule() {
        // The paper's transfer: F (2x2 quadrants) -> U (4 row blocks).
        let e = Extent2::new(8, 8);
        let src = Decomposition::block_2d(e, 2, 2).unwrap();
        let dst = Decomposition::row_block(e, 4).unwrap();
        let plan = RedistPlan::build(src, dst).unwrap();
        // Each quadrant (4 rows tall) overlaps two row blocks (2 rows each),
        // so 4 quadrants x 2 = 8 transfers.
        assert_eq!(plan.transfers().len(), 8);
        assert_eq!(plan.total_cells(), 64);
    }

    #[test]
    fn schedule_covers_grid_exactly_once() {
        let e = Extent2::new(12, 10);
        let src = Decomposition::block_2d(e, 3, 2).unwrap();
        let dst = Decomposition::col_block(e, 5).unwrap();
        let plan = RedistPlan::build(src, dst).unwrap();
        let mut cover = vec![0u8; e.cells()];
        for t in plan.transfers() {
            for row in t.rect.row0..t.rect.row_end() {
                for col in t.rect.col0..t.rect.col_end() {
                    cover[row * e.cols + col] += 1;
                }
            }
        }
        assert!(
            cover.iter().all(|&c| c == 1),
            "every cell moved exactly once"
        );
    }

    #[test]
    fn execute_preserves_values() {
        let e = Extent2::new(16, 16);
        let src = Decomposition::block_2d(e, 2, 2).unwrap();
        let dst = Decomposition::row_block(e, 3).unwrap();
        let plan = RedistPlan::build(src, dst).unwrap();
        let value = |r: usize, c: usize| (r * 31 + c) as f64 * 0.25;
        let src_pieces = pieces(&src, value);
        let mut dst_pieces = pieces(&dst, |_, _| -1.0);
        plan.execute(&src_pieces, &mut dst_pieces);
        for (rank, piece) in dst_pieces.iter().enumerate() {
            let r = dst.owned(rank);
            for row in r.row0..r.row_end() {
                for col in r.col0..r.col_end() {
                    assert_eq!(piece.get(row, col), value(row, col));
                }
            }
        }
    }

    #[test]
    fn same_decomposition_is_identity_schedule() {
        let e = Extent2::new(8, 8);
        let d = Decomposition::row_block(e, 4).unwrap();
        let plan = RedistPlan::build(d, d).unwrap();
        assert_eq!(plan.transfers().len(), 4);
        for t in plan.transfers() {
            assert_eq!(t.src, t.dst);
            assert_eq!(t.rect, d.owned(t.src));
        }
    }

    #[test]
    fn irregular_to_regular_redistribution() {
        let e = Extent2::new(4, 4);
        let irregular = Partition::new(
            e,
            vec![
                Rect::new(0, 0, 2, 4),
                Rect::new(2, 0, 2, 1),
                Rect::new(2, 1, 2, 3),
            ],
        )
        .unwrap();
        let regular = Partition::from_decomposition(&Decomposition::col_block(e, 2).unwrap());
        let plan = RedistPlan::between(irregular.clone(), regular.clone()).unwrap();
        assert_eq!(plan.total_cells(), 16);
        let value = |r: usize, c: usize| (r * 10 + c) as f64;
        let src_pieces: Vec<LocalArray> = irregular
            .rects()
            .iter()
            .map(|r| LocalArray::from_fn(*r, value))
            .collect();
        let mut dst_pieces: Vec<LocalArray> = regular
            .rects()
            .iter()
            .map(|r| LocalArray::zeros(*r))
            .collect();
        plan.execute(&src_pieces, &mut dst_pieces);
        for (rank, piece) in dst_pieces.iter().enumerate() {
            let owned = regular.owned(rank);
            for row in owned.row0..owned.row_end() {
                for col in owned.col0..owned.col_end() {
                    assert_eq!(piece.get(row, col), value(row, col));
                }
            }
        }
    }

    #[test]
    fn extent_mismatch_rejected() {
        let a = Decomposition::row_block(Extent2::new(8, 8), 2).unwrap();
        let b = Decomposition::row_block(Extent2::new(8, 9), 2).unwrap();
        assert!(RedistPlan::build(a, b).is_err());
    }

    #[test]
    fn sends_and_recvs_filters() {
        let e = Extent2::new(8, 8);
        let src = Decomposition::block_2d(e, 2, 2).unwrap();
        let dst = Decomposition::row_block(e, 4).unwrap();
        let plan = RedistPlan::build(src, dst).unwrap();
        // Quadrant 0 (rows 0..4, cols 0..4) overlaps row blocks 0 and 1.
        let sends: Vec<_> = plan.sends_from(0).collect();
        assert_eq!(sends.len(), 2);
        assert!(sends.iter().all(|t| t.rect.col0 == 0 && t.rect.cols == 4));
        // Row block 0 (rows 0..2) receives from quadrants 0 and 1.
        let recvs: Vec<_> = plan.recvs_to(0).collect();
        assert_eq!(recvs.len(), 2);
        assert!(recvs.iter().all(|t| t.rect.row0 == 0 && t.rect.rows == 2));
    }
}
