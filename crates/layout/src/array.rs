//! Process-local storage for a rectangular piece of a global 2-D array.

use crate::rect::Rect;
use std::fmt;
use std::sync::Arc;

/// The piece of a global `f64` array owned by one process: a dense, row-major
/// buffer covering the global rectangle `owned`.
///
/// All indexing is in *global* coordinates; the array translates to local
/// offsets internally. Sub-rectangle pack/unpack are the primitives the
/// redistribution plan (and the framework's buffering memcpys) are built on.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalArray {
    owned: Rect,
    data: Vec<f64>,
}

impl LocalArray {
    /// Creates a zero-filled local array covering `owned`.
    pub fn zeros(owned: Rect) -> Self {
        LocalArray {
            owned,
            data: vec![0.0; owned.cells()],
        }
    }

    /// Creates a local array covering `owned` filled by `f(row, col)` in
    /// global coordinates.
    pub fn from_fn(owned: Rect, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(owned.cells());
        for row in owned.row0..owned.row_end() {
            for col in owned.col0..owned.col_end() {
                data.push(f(row, col));
            }
        }
        LocalArray { owned, data }
    }

    /// The global rectangle this piece covers.
    #[inline]
    pub fn owned(&self) -> Rect {
        self.owned
    }

    /// The raw row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Number of locally stored cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the piece is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    fn offset(&self, row: usize, col: usize) -> usize {
        debug_assert!(self.owned.contains(row, col), "({row},{col}) not owned");
        (row - self.owned.row0) * self.owned.cols + (col - self.owned.col0)
    }

    /// Reads the value at global cell `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds via `debug_assert`, in release via slice
    /// bounds) if the cell is not owned.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.data[self.offset(row, col)]
    }

    /// Writes the value at global cell `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        let off = self.offset(row, col);
        self.data[off] = value;
    }

    /// Copies the sub-rectangle `rect` (global coordinates, must be owned)
    /// into a fresh contiguous row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `rect` is not fully contained in the owned rectangle.
    pub fn pack(&self, rect: &Rect) -> Vec<f64> {
        assert!(
            self.owned.contains_rect(rect),
            "pack rect {rect} not within owned {}",
            self.owned
        );
        let mut out = Vec::with_capacity(rect.cells());
        for row in rect.row0..rect.row_end() {
            let start = self.offset(row, rect.col0);
            out.extend_from_slice(&self.data[start..start + rect.cols]);
        }
        out
    }

    /// Copies a contiguous row-major buffer produced by [`LocalArray::pack`]
    /// into the sub-rectangle `rect` (global coordinates, must be owned).
    ///
    /// # Panics
    ///
    /// Panics if `rect` is not owned or `src` has the wrong length.
    pub fn unpack(&mut self, rect: &Rect, src: &[f64]) {
        assert!(
            self.owned.contains_rect(rect),
            "unpack rect {rect} not within owned {}",
            self.owned
        );
        assert_eq!(src.len(), rect.cells(), "unpack buffer length mismatch");
        for (i, row) in (rect.row0..rect.row_end()).enumerate() {
            let dst = self.offset(row, rect.col0);
            self.data[dst..dst + rect.cols]
                .copy_from_slice(&src[i * rect.cols..(i + 1) * rect.cols]);
        }
    }

    /// Sum of all locally stored values (useful for conservation checks).
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }
}

impl fmt::Display for LocalArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LocalArray{} ({} cells)", self.owned, self.len())
    }
}

/// An immutable, reference-counted piece of a global 2-D array: the
/// zero-copy payload of the threaded fabric's data plane.
///
/// A framework buffer is written once (the paper's buffering memcpy, see
/// [`SharedArray::copy_from`]) and then *shared* — across every connection
/// of the exporting region, every piece sent to an importer rank, every
/// buddy-help answer and every retransmit. Cloning a `SharedArray` clones
/// an [`Arc`], never the cells, so one exported object costs exactly one
/// allocation no matter how many consumers it fans out to. Consumers read
/// sub-rectangles straight out of the shared buffer with
/// [`SharedArray::copy_into`].
#[derive(Debug, Clone, PartialEq)]
pub struct SharedArray {
    owned: Rect,
    data: Arc<[f64]>,
}

impl SharedArray {
    /// Buffers a local piece: the one physical memcpy an export pays.
    pub fn copy_from(src: &LocalArray) -> Self {
        SharedArray {
            owned: src.owned(),
            data: Arc::from(src.as_slice()),
        }
    }

    /// Rebuilds a piece from its rectangle and row-major values — the
    /// receive side of a wire transfer. Returns `None` if the value count
    /// does not cover the rectangle.
    pub fn from_parts(owned: Rect, data: Vec<f64>) -> Option<Self> {
        if data.len() != owned.rows * owned.cols {
            return None;
        }
        Some(SharedArray {
            owned,
            data: Arc::from(data),
        })
    }

    /// The global rectangle this piece covers.
    #[inline]
    pub fn owned(&self) -> Rect {
        self.owned
    }

    /// The raw row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Number of stored cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the piece is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Whether two handles share one underlying buffer (payload-sharing
    /// tests assert this across connections and retransmits).
    #[inline]
    pub fn ptr_eq(a: &SharedArray, b: &SharedArray) -> bool {
        Arc::ptr_eq(&a.data, &b.data)
    }

    /// Number of live handles on the underlying buffer.
    #[inline]
    pub fn strong_count(&self) -> usize {
        Arc::strong_count(&self.data)
    }

    /// Copies the sub-rectangle `rect` (global coordinates, must be
    /// covered by this piece *and* owned by `dest`) into `dest` — the
    /// importer-side half of a redistribution transfer, reading straight
    /// from the shared buffer with no intermediate packing.
    ///
    /// # Panics
    ///
    /// Panics if `rect` is not contained in both rectangles.
    pub fn copy_into(&self, rect: &Rect, dest: &mut LocalArray) {
        assert!(
            self.owned.contains_rect(rect),
            "copy rect {rect} not within shared piece {}",
            self.owned
        );
        let dest_owned = dest.owned();
        assert!(
            dest_owned.contains_rect(rect),
            "copy rect {rect} not within destination {dest_owned}"
        );
        for row in rect.row0..rect.row_end() {
            let src = (row - self.owned.row0) * self.owned.cols + (rect.col0 - self.owned.col0);
            let dst = (row - dest_owned.row0) * dest_owned.cols + (rect.col0 - dest_owned.col0);
            dest.as_mut_slice()[dst..dst + rect.cols]
                .copy_from_slice(&self.data[src..src + rect.cols]);
        }
    }
}

impl fmt::Display for SharedArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SharedArray{} ({} cells)", self.owned, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_get() {
        let a = LocalArray::from_fn(Rect::new(2, 3, 2, 2), |r, c| (r * 10 + c) as f64);
        assert_eq!(a.get(2, 3), 23.0);
        assert_eq!(a.get(2, 4), 24.0);
        assert_eq!(a.get(3, 3), 33.0);
        assert_eq!(a.get(3, 4), 34.0);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn set_then_get() {
        let mut a = LocalArray::zeros(Rect::new(0, 0, 3, 3));
        a.set(1, 2, 7.5);
        assert_eq!(a.get(1, 2), 7.5);
        assert_eq!(a.get(2, 1), 0.0);
    }

    #[test]
    fn pack_extracts_row_major_subrect() {
        let a = LocalArray::from_fn(Rect::new(0, 0, 4, 4), |r, c| (r * 4 + c) as f64);
        let packed = a.pack(&Rect::new(1, 1, 2, 3));
        assert_eq!(packed, vec![5.0, 6.0, 7.0, 9.0, 10.0, 11.0]);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let src = LocalArray::from_fn(Rect::new(4, 8, 6, 5), |r, c| (r as f64) * 0.5 + c as f64);
        let sub = Rect::new(5, 9, 3, 3);
        let packed = src.pack(&sub);
        let mut dst = LocalArray::zeros(Rect::new(4, 8, 6, 5));
        dst.unpack(&sub, &packed);
        for row in sub.row0..sub.row_end() {
            for col in sub.col0..sub.col_end() {
                assert_eq!(dst.get(row, col), src.get(row, col));
            }
        }
        // Outside the sub-rect, dst is untouched.
        assert_eq!(dst.get(4, 8), 0.0);
    }

    #[test]
    #[should_panic(expected = "not within owned")]
    fn pack_outside_owned_panics() {
        let a = LocalArray::zeros(Rect::new(0, 0, 2, 2));
        a.pack(&Rect::new(1, 1, 2, 2));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn unpack_wrong_length_panics() {
        let mut a = LocalArray::zeros(Rect::new(0, 0, 2, 2));
        a.unpack(&Rect::new(0, 0, 2, 2), &[1.0, 2.0]);
    }

    #[test]
    fn sum_over_cells() {
        let a = LocalArray::from_fn(Rect::new(0, 0, 2, 2), |_, _| 1.25);
        assert_eq!(a.sum(), 5.0);
    }

    #[test]
    fn empty_rect_array() {
        let a = LocalArray::zeros(Rect::EMPTY);
        assert!(a.is_empty());
        assert_eq!(a.pack(&Rect::EMPTY), Vec::<f64>::new());
    }

    #[test]
    fn shared_clone_is_one_buffer() {
        let local = LocalArray::from_fn(Rect::new(0, 0, 4, 4), |r, c| (r * 4 + c) as f64);
        let shared = SharedArray::copy_from(&local);
        let a = shared.clone();
        let b = shared.clone();
        assert!(SharedArray::ptr_eq(&a, &b));
        assert!(SharedArray::ptr_eq(&a, &shared));
        assert_eq!(shared.strong_count(), 3);
        drop(a);
        assert_eq!(shared.strong_count(), 2);
    }

    #[test]
    fn shared_copy_into_matches_pack_unpack() {
        let src = LocalArray::from_fn(Rect::new(4, 8, 6, 5), |r, c| (r as f64) * 0.5 + c as f64);
        let shared = SharedArray::copy_from(&src);
        let sub = Rect::new(5, 9, 3, 3);
        // Destination covers a different (larger) rectangle than the source.
        let mut via_shared = LocalArray::zeros(Rect::new(4, 8, 6, 5));
        shared.copy_into(&sub, &mut via_shared);
        let mut via_pack = LocalArray::zeros(Rect::new(4, 8, 6, 5));
        via_pack.unpack(&sub, &src.pack(&sub));
        assert_eq!(via_shared, via_pack);
        // Outside the sub-rect, the destination is untouched.
        assert_eq!(via_shared.get(4, 8), 0.0);
    }

    #[test]
    fn shared_copy_into_offset_destination() {
        let src = LocalArray::from_fn(Rect::new(0, 0, 4, 8), |r, c| (r * 8 + c) as f64);
        let shared = SharedArray::copy_from(&src);
        let sub = Rect::new(2, 2, 2, 3);
        let mut dest = LocalArray::zeros(Rect::new(2, 0, 2, 8));
        shared.copy_into(&sub, &mut dest);
        for row in sub.row0..sub.row_end() {
            for col in sub.col0..sub.col_end() {
                assert_eq!(dest.get(row, col), src.get(row, col));
            }
        }
        assert_eq!(dest.get(2, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "not within shared piece")]
    fn shared_copy_outside_source_panics() {
        let shared = SharedArray::copy_from(&LocalArray::zeros(Rect::new(0, 0, 2, 2)));
        let mut dest = LocalArray::zeros(Rect::new(0, 0, 4, 4));
        shared.copy_into(&Rect::new(1, 1, 2, 2), &mut dest);
    }
}
