//! Process-local storage for a rectangular piece of a global 2-D array.

use crate::rect::Rect;
use std::fmt;

/// The piece of a global `f64` array owned by one process: a dense, row-major
/// buffer covering the global rectangle `owned`.
///
/// All indexing is in *global* coordinates; the array translates to local
/// offsets internally. Sub-rectangle pack/unpack are the primitives the
/// redistribution plan (and the framework's buffering memcpys) are built on.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalArray {
    owned: Rect,
    data: Vec<f64>,
}

impl LocalArray {
    /// Creates a zero-filled local array covering `owned`.
    pub fn zeros(owned: Rect) -> Self {
        LocalArray {
            owned,
            data: vec![0.0; owned.cells()],
        }
    }

    /// Creates a local array covering `owned` filled by `f(row, col)` in
    /// global coordinates.
    pub fn from_fn(owned: Rect, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(owned.cells());
        for row in owned.row0..owned.row_end() {
            for col in owned.col0..owned.col_end() {
                data.push(f(row, col));
            }
        }
        LocalArray { owned, data }
    }

    /// The global rectangle this piece covers.
    #[inline]
    pub fn owned(&self) -> Rect {
        self.owned
    }

    /// The raw row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Number of locally stored cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the piece is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    fn offset(&self, row: usize, col: usize) -> usize {
        debug_assert!(self.owned.contains(row, col), "({row},{col}) not owned");
        (row - self.owned.row0) * self.owned.cols + (col - self.owned.col0)
    }

    /// Reads the value at global cell `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds via `debug_assert`, in release via slice
    /// bounds) if the cell is not owned.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.data[self.offset(row, col)]
    }

    /// Writes the value at global cell `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        let off = self.offset(row, col);
        self.data[off] = value;
    }

    /// Copies the sub-rectangle `rect` (global coordinates, must be owned)
    /// into a fresh contiguous row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `rect` is not fully contained in the owned rectangle.
    pub fn pack(&self, rect: &Rect) -> Vec<f64> {
        assert!(
            self.owned.contains_rect(rect),
            "pack rect {rect} not within owned {}",
            self.owned
        );
        let mut out = Vec::with_capacity(rect.cells());
        for row in rect.row0..rect.row_end() {
            let start = self.offset(row, rect.col0);
            out.extend_from_slice(&self.data[start..start + rect.cols]);
        }
        out
    }

    /// Copies a contiguous row-major buffer produced by [`LocalArray::pack`]
    /// into the sub-rectangle `rect` (global coordinates, must be owned).
    ///
    /// # Panics
    ///
    /// Panics if `rect` is not owned or `src` has the wrong length.
    pub fn unpack(&mut self, rect: &Rect, src: &[f64]) {
        assert!(
            self.owned.contains_rect(rect),
            "unpack rect {rect} not within owned {}",
            self.owned
        );
        assert_eq!(src.len(), rect.cells(), "unpack buffer length mismatch");
        for (i, row) in (rect.row0..rect.row_end()).enumerate() {
            let dst = self.offset(row, rect.col0);
            self.data[dst..dst + rect.cols]
                .copy_from_slice(&src[i * rect.cols..(i + 1) * rect.cols]);
        }
    }

    /// Sum of all locally stored values (useful for conservation checks).
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }
}

impl fmt::Display for LocalArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LocalArray{} ({} cells)", self.owned, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_get() {
        let a = LocalArray::from_fn(Rect::new(2, 3, 2, 2), |r, c| (r * 10 + c) as f64);
        assert_eq!(a.get(2, 3), 23.0);
        assert_eq!(a.get(2, 4), 24.0);
        assert_eq!(a.get(3, 3), 33.0);
        assert_eq!(a.get(3, 4), 34.0);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn set_then_get() {
        let mut a = LocalArray::zeros(Rect::new(0, 0, 3, 3));
        a.set(1, 2, 7.5);
        assert_eq!(a.get(1, 2), 7.5);
        assert_eq!(a.get(2, 1), 0.0);
    }

    #[test]
    fn pack_extracts_row_major_subrect() {
        let a = LocalArray::from_fn(Rect::new(0, 0, 4, 4), |r, c| (r * 4 + c) as f64);
        let packed = a.pack(&Rect::new(1, 1, 2, 3));
        assert_eq!(packed, vec![5.0, 6.0, 7.0, 9.0, 10.0, 11.0]);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let src = LocalArray::from_fn(Rect::new(4, 8, 6, 5), |r, c| (r as f64) * 0.5 + c as f64);
        let sub = Rect::new(5, 9, 3, 3);
        let packed = src.pack(&sub);
        let mut dst = LocalArray::zeros(Rect::new(4, 8, 6, 5));
        dst.unpack(&sub, &packed);
        for row in sub.row0..sub.row_end() {
            for col in sub.col0..sub.col_end() {
                assert_eq!(dst.get(row, col), src.get(row, col));
            }
        }
        // Outside the sub-rect, dst is untouched.
        assert_eq!(dst.get(4, 8), 0.0);
    }

    #[test]
    #[should_panic(expected = "not within owned")]
    fn pack_outside_owned_panics() {
        let a = LocalArray::zeros(Rect::new(0, 0, 2, 2));
        a.pack(&Rect::new(1, 1, 2, 2));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn unpack_wrong_length_panics() {
        let mut a = LocalArray::zeros(Rect::new(0, 0, 2, 2));
        a.unpack(&Rect::new(0, 0, 2, 2), &[1.0, 2.0]);
    }

    #[test]
    fn sum_over_cells() {
        let a = LocalArray::from_fn(Rect::new(0, 0, 2, 2), |_, _| 1.25);
        assert_eq!(a.sum(), 5.0);
    }

    #[test]
    fn empty_rect_array() {
        let a = LocalArray::zeros(Rect::EMPTY);
        assert!(a.is_empty());
        assert_eq!(a.pack(&Rect::EMPTY), Vec::<f64>::new());
    }
}
