//! Distributed-array layout: block decompositions, rectangular region
//! intersection and M×N redistribution schedules.
//!
//! The coupling framework moves a logically global 2-D array between two
//! parallel programs whose processes own different pieces of it (e.g. the
//! paper's program `F` — four 512×512 quadrants — exporting to program `U` —
//! `n` row blocks of a 1024×1024 grid). This crate computes *who sends what
//! to whom*: for a source and destination [`Decomposition`], the
//! [`RedistPlan`] lists, per (source rank, destination rank) pair, the
//! rectangular intersection of their owned pieces, along with packers that
//! copy those rectangles into and out of contiguous message buffers.
//!
//! This is the InterComm-style substrate the paper's framework builds on; it
//! is independent of timestamps and matching.

#![warn(missing_docs)]

pub mod array;
pub mod decomp;
pub mod partition;
pub mod rect;
pub mod redist;

pub use array::{LocalArray, SharedArray};
pub use decomp::{DecompError, Decomposition};
pub use partition::{Partition, PartitionError};
pub use rect::{Extent2, Rect};
pub use redist::{RedistPlan, Transfer};
