//! Rectangular index regions of a global 2-D grid.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The extent (shape) of a 2-D grid: `rows × cols`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Extent2 {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl Extent2 {
    /// Creates an extent.
    pub const fn new(rows: usize, cols: usize) -> Self {
        Extent2 { rows, cols }
    }

    /// Total number of cells.
    #[inline]
    pub const fn cells(self) -> usize {
        self.rows * self.cols
    }

    /// The rectangle covering the whole grid.
    pub const fn full_rect(self) -> Rect {
        Rect {
            row0: 0,
            col0: 0,
            rows: self.rows,
            cols: self.cols,
        }
    }
}

impl fmt::Display for Extent2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// A (possibly empty) axis-aligned rectangle of global indices:
/// rows `row0 .. row0+rows`, columns `col0 .. col0+cols`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    /// First row (inclusive).
    pub row0: usize,
    /// First column (inclusive).
    pub col0: usize,
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl Rect {
    /// Creates a rectangle.
    pub const fn new(row0: usize, col0: usize, rows: usize, cols: usize) -> Self {
        Rect {
            row0,
            col0,
            rows,
            cols,
        }
    }

    /// An empty rectangle.
    pub const EMPTY: Rect = Rect::new(0, 0, 0, 0);

    /// Number of cells covered.
    #[inline]
    pub const fn cells(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether the rectangle covers no cells.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// One-past-the-last row.
    #[inline]
    pub const fn row_end(&self) -> usize {
        self.row0 + self.rows
    }

    /// One-past-the-last column.
    #[inline]
    pub const fn col_end(&self) -> usize {
        self.col0 + self.cols
    }

    /// Whether the global cell `(row, col)` lies inside.
    #[inline]
    pub const fn contains(&self, row: usize, col: usize) -> bool {
        row >= self.row0 && row < self.row_end() && col >= self.col0 && col < self.col_end()
    }

    /// The intersection with `other` (empty rect if disjoint).
    pub fn intersect(&self, other: &Rect) -> Rect {
        let row0 = self.row0.max(other.row0);
        let col0 = self.col0.max(other.col0);
        let row_end = self.row_end().min(other.row_end());
        let col_end = self.col_end().min(other.col_end());
        if row0 < row_end && col0 < col_end {
            Rect::new(row0, col0, row_end - row0, col_end - col0)
        } else {
            Rect::EMPTY
        }
    }

    /// Whether `other` is fully contained in `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.is_empty()
            || (other.row0 >= self.row0
                && other.row_end() <= self.row_end()
                && other.col0 >= self.col0
                && other.col_end() <= self.col_end())
    }

    /// Whether the rectangle fits inside a grid of the given extent.
    pub fn fits(&self, extent: Extent2) -> bool {
        self.row_end() <= extent.rows && self.col_end() <= extent.cols
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}..{}, {}..{}]",
            self.row0,
            self.row_end(),
            self.col0,
            self.col_end()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extent_cells() {
        assert_eq!(Extent2::new(1024, 1024).cells(), 1024 * 1024);
        assert_eq!(Extent2::new(0, 7).cells(), 0);
    }

    #[test]
    fn full_rect_covers_grid() {
        let e = Extent2::new(4, 6);
        let r = e.full_rect();
        assert_eq!(r.cells(), 24);
        assert!(r.contains(0, 0));
        assert!(r.contains(3, 5));
        assert!(!r.contains(4, 0));
    }

    #[test]
    fn intersect_overlapping() {
        let a = Rect::new(0, 0, 4, 4);
        let b = Rect::new(2, 2, 4, 4);
        let i = a.intersect(&b);
        assert_eq!(i, Rect::new(2, 2, 2, 2));
        assert_eq!(b.intersect(&a), i);
    }

    #[test]
    fn intersect_disjoint_is_empty() {
        let a = Rect::new(0, 0, 2, 2);
        let b = Rect::new(2, 0, 2, 2); // touching edge, not overlapping
        assert!(a.intersect(&b).is_empty());
        let c = Rect::new(10, 10, 3, 3);
        assert!(a.intersect(&c).is_empty());
    }

    #[test]
    fn intersect_nested() {
        let outer = Rect::new(0, 0, 10, 10);
        let inner = Rect::new(3, 4, 2, 2);
        assert_eq!(outer.intersect(&inner), inner);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
    }

    #[test]
    fn empty_rect_properties() {
        assert!(Rect::EMPTY.is_empty());
        assert_eq!(Rect::EMPTY.cells(), 0);
        let a = Rect::new(0, 0, 5, 5);
        assert!(a.contains_rect(&Rect::EMPTY));
    }

    #[test]
    fn fits_extent() {
        let e = Extent2::new(8, 8);
        assert!(Rect::new(0, 0, 8, 8).fits(e));
        assert!(Rect::new(4, 4, 4, 4).fits(e));
        assert!(!Rect::new(4, 4, 5, 4).fits(e));
    }
}
