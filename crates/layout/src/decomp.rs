//! Block decompositions of a global 2-D grid over the ranks of a program.

use crate::rect::{Extent2, Rect};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error constructing a [`Decomposition`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecompError {
    /// The process count was zero.
    ZeroProcesses,
    /// A 2-D process grid does not match the requested rank count.
    BadProcessGrid {
        /// Rows of the process grid.
        proc_rows: usize,
        /// Columns of the process grid.
        proc_cols: usize,
    },
    /// More processes than rows/columns to distribute.
    TooManyProcesses {
        /// The axis length being split.
        extent: usize,
        /// The number of processes requested along it.
        procs: usize,
    },
}

impl fmt::Display for DecompError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompError::ZeroProcesses => write!(f, "decomposition needs at least one process"),
            DecompError::BadProcessGrid {
                proc_rows,
                proc_cols,
            } => write!(f, "process grid {proc_rows}x{proc_cols} is empty"),
            DecompError::TooManyProcesses { extent, procs } => write!(
                f,
                "cannot split an axis of length {extent} over {procs} processes"
            ),
        }
    }
}

impl std::error::Error for DecompError {}

/// How a global 2-D grid is partitioned over the `n` processes of a program.
///
/// All variants produce a *partition*: every global cell is owned by exactly
/// one rank (tested by property tests). Blocks are as even as possible, with
/// the first `extent % procs` blocks one element larger — the standard block
/// distribution rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decomposition {
    /// Contiguous row blocks, rank `r` owning the `r`-th block.
    RowBlock {
        /// Global grid shape.
        extent: Extent2,
        /// Number of processes.
        procs: usize,
    },
    /// Contiguous column blocks.
    ColBlock {
        /// Global grid shape.
        extent: Extent2,
        /// Number of processes.
        procs: usize,
    },
    /// A 2-D process grid of `proc_rows × proc_cols` blocks, rank
    /// `pr * proc_cols + pc` owning block `(pr, pc)` (row-major ranks).
    Block2D {
        /// Global grid shape.
        extent: Extent2,
        /// Rows of the process grid.
        proc_rows: usize,
        /// Columns of the process grid.
        proc_cols: usize,
    },
}

/// Splits `extent` into `procs` near-even contiguous blocks and returns the
/// `(start, len)` of block `idx`.
fn block_bounds(extent: usize, procs: usize, idx: usize) -> (usize, usize) {
    debug_assert!(idx < procs);
    let base = extent / procs;
    let extra = extent % procs;
    if idx < extra {
        (idx * (base + 1), base + 1)
    } else {
        (extra * (base + 1) + (idx - extra) * base, base)
    }
}

impl Decomposition {
    /// Row-block decomposition over `procs` processes.
    pub fn row_block(extent: Extent2, procs: usize) -> Result<Self, DecompError> {
        if procs == 0 {
            return Err(DecompError::ZeroProcesses);
        }
        if procs > extent.rows {
            return Err(DecompError::TooManyProcesses {
                extent: extent.rows,
                procs,
            });
        }
        Ok(Decomposition::RowBlock { extent, procs })
    }

    /// Column-block decomposition over `procs` processes.
    pub fn col_block(extent: Extent2, procs: usize) -> Result<Self, DecompError> {
        if procs == 0 {
            return Err(DecompError::ZeroProcesses);
        }
        if procs > extent.cols {
            return Err(DecompError::TooManyProcesses {
                extent: extent.cols,
                procs,
            });
        }
        Ok(Decomposition::ColBlock { extent, procs })
    }

    /// 2-D block decomposition over a `proc_rows × proc_cols` process grid.
    pub fn block_2d(
        extent: Extent2,
        proc_rows: usize,
        proc_cols: usize,
    ) -> Result<Self, DecompError> {
        if proc_rows == 0 || proc_cols == 0 {
            return Err(DecompError::BadProcessGrid {
                proc_rows,
                proc_cols,
            });
        }
        if proc_rows > extent.rows {
            return Err(DecompError::TooManyProcesses {
                extent: extent.rows,
                procs: proc_rows,
            });
        }
        if proc_cols > extent.cols {
            return Err(DecompError::TooManyProcesses {
                extent: extent.cols,
                procs: proc_cols,
            });
        }
        Ok(Decomposition::Block2D {
            extent,
            proc_rows,
            proc_cols,
        })
    }

    /// The global grid shape.
    pub fn extent(&self) -> Extent2 {
        match *self {
            Decomposition::RowBlock { extent, .. }
            | Decomposition::ColBlock { extent, .. }
            | Decomposition::Block2D { extent, .. } => extent,
        }
    }

    /// Number of processes (ranks) in the decomposition.
    pub fn procs(&self) -> usize {
        match *self {
            Decomposition::RowBlock { procs, .. } | Decomposition::ColBlock { procs, .. } => procs,
            Decomposition::Block2D {
                proc_rows,
                proc_cols,
                ..
            } => proc_rows * proc_cols,
        }
    }

    /// The rectangle of global cells owned by `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= self.procs()`.
    pub fn owned(&self, rank: usize) -> Rect {
        assert!(rank < self.procs(), "rank {rank} out of range");
        match *self {
            Decomposition::RowBlock { extent, procs } => {
                let (row0, rows) = block_bounds(extent.rows, procs, rank);
                Rect::new(row0, 0, rows, extent.cols)
            }
            Decomposition::ColBlock { extent, procs } => {
                let (col0, cols) = block_bounds(extent.cols, procs, rank);
                Rect::new(0, col0, extent.rows, cols)
            }
            Decomposition::Block2D {
                extent,
                proc_rows,
                proc_cols,
            } => {
                let pr = rank / proc_cols;
                let pc = rank % proc_cols;
                let (row0, rows) = block_bounds(extent.rows, proc_rows, pr);
                let (col0, cols) = block_bounds(extent.cols, proc_cols, pc);
                Rect::new(row0, col0, rows, cols)
            }
        }
    }

    /// The rank owning global cell `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the cell is outside the global extent.
    pub fn rank_of(&self, row: usize, col: usize) -> usize {
        let e = self.extent();
        assert!(
            row < e.rows && col < e.cols,
            "cell ({row},{col}) outside {e}"
        );
        match *self {
            Decomposition::RowBlock { extent, procs } => block_index(extent.rows, procs, row),
            Decomposition::ColBlock { extent, procs } => block_index(extent.cols, procs, col),
            Decomposition::Block2D {
                extent,
                proc_rows,
                proc_cols,
            } => {
                let pr = block_index(extent.rows, proc_rows, row);
                let pc = block_index(extent.cols, proc_cols, col);
                pr * proc_cols + pc
            }
        }
    }
}

/// The block index owning position `i` of an axis of length `extent` split
/// into `procs` near-even blocks (inverse of [`block_bounds`]).
fn block_index(extent: usize, procs: usize, i: usize) -> usize {
    let base = extent / procs;
    let extra = extent % procs;
    let big = (base + 1) * extra; // cells covered by the larger blocks
    if i < big {
        i / (base + 1)
    } else {
        extra + (i - big) / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_block_even_split() {
        let d = Decomposition::row_block(Extent2::new(1024, 1024), 4).unwrap();
        assert_eq!(d.procs(), 4);
        assert_eq!(d.owned(0), Rect::new(0, 0, 256, 1024));
        assert_eq!(d.owned(3), Rect::new(768, 0, 256, 1024));
    }

    #[test]
    fn row_block_uneven_split() {
        let d = Decomposition::row_block(Extent2::new(10, 4), 3).unwrap();
        // 10 = 4 + 3 + 3
        assert_eq!(d.owned(0), Rect::new(0, 0, 4, 4));
        assert_eq!(d.owned(1), Rect::new(4, 0, 3, 4));
        assert_eq!(d.owned(2), Rect::new(7, 0, 3, 4));
    }

    #[test]
    fn block2d_quadrants() {
        // The paper's program F: 1024x1024 over a 2x2 process grid.
        let d = Decomposition::block_2d(Extent2::new(1024, 1024), 2, 2).unwrap();
        assert_eq!(d.procs(), 4);
        assert_eq!(d.owned(0), Rect::new(0, 0, 512, 512));
        assert_eq!(d.owned(1), Rect::new(0, 512, 512, 512));
        assert_eq!(d.owned(2), Rect::new(512, 0, 512, 512));
        assert_eq!(d.owned(3), Rect::new(512, 512, 512, 512));
    }

    #[test]
    fn rank_of_inverts_owned() {
        for d in [
            Decomposition::row_block(Extent2::new(13, 7), 5).unwrap(),
            Decomposition::col_block(Extent2::new(7, 13), 5).unwrap(),
            Decomposition::block_2d(Extent2::new(9, 11), 3, 2).unwrap(),
        ] {
            for rank in 0..d.procs() {
                let r = d.owned(rank);
                for row in r.row0..r.row_end() {
                    for col in r.col0..r.col_end() {
                        assert_eq!(d.rank_of(row, col), rank, "{d:?} cell ({row},{col})");
                    }
                }
            }
        }
    }

    #[test]
    fn owned_rects_partition_grid() {
        let d = Decomposition::block_2d(Extent2::new(10, 10), 3, 3).unwrap();
        let mut count = [0u8; 100];
        for rank in 0..d.procs() {
            let r = d.owned(rank);
            for row in r.row0..r.row_end() {
                for col in r.col0..r.col_end() {
                    count[row * 10 + col] += 1;
                }
            }
        }
        assert!(count.iter().all(|&c| c == 1));
    }

    #[test]
    fn construction_errors() {
        let e = Extent2::new(4, 4);
        assert_eq!(
            Decomposition::row_block(e, 0),
            Err(DecompError::ZeroProcesses)
        );
        assert!(Decomposition::row_block(e, 5).is_err());
        assert!(Decomposition::col_block(e, 5).is_err());
        assert!(Decomposition::block_2d(e, 0, 2).is_err());
        assert!(Decomposition::block_2d(e, 5, 1).is_err());
        assert!(Decomposition::block_2d(e, 1, 5).is_err());
    }

    #[test]
    #[should_panic(expected = "rank 4 out of range")]
    fn owned_panics_on_bad_rank() {
        let d = Decomposition::row_block(Extent2::new(8, 8), 4).unwrap();
        d.owned(4);
    }
}
