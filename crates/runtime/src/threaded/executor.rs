//! The event-driven session executor behind the threaded fabric.
//!
//! Instead of one OS thread per rep and per agent, a fixed **worker pool**
//! polls node tasks pulled from **sharded run queues**. Each rep, agent,
//! importer and retransmit pump is a state machine implementing [`Task`];
//! a mailbox push (or an expired timer) marks the task runnable and a
//! worker drains it. Timers — rep heartbeats, crash-restart sleeps, the
//! retransmit pump's next deadline — unify into one per-shard timer heap
//! driven by the same condvar next-deadline machinery the PR 5 pump used.
//!
//! The scheduling core is a per-task atomic state machine:
//!
//! ```text
//!   Idle --schedule--> Queued --pop--> Running --poll done--> Idle
//!                         ^               | schedule while running
//!                         +-- RunningDirty <-+   (re-queued after poll)
//! ```
//!
//! The CAS transitions guarantee two invariants the rest of the fabric
//! leans on: a task is **never polled concurrently** (only the worker that
//! moved it `Queued → Running` may poll it), and a task sits in a run
//! queue **at most once** — which bounds the `runq_depth` high-water mark
//! by the live task count no matter how many messages land in mailboxes.
//!
//! Fairness: each shard keeps one FIFO per *session* and round-robins
//! across sessions, so one chatty session cannot starve its siblings on a
//! shared pool. The deliberately `unfair` knob (always poll the
//! lowest-numbered session) exists solely for the negative starvation test
//! in `bench scale --sessions --mutate`.
//!
//! Workers own one shard each and steal from the others when their own
//! runs dry (metered as `worker_steal`). A panicking poll is contained
//! with `catch_unwind`, reported through the task's panic sink (the
//! fabric surfaces it as `ThreadedError::ProcessCrash`), and the task is
//! retired — exactly the containment the per-thread loops had.

use couplink_metrics::EngineMetrics;
use parking_lot::{Condvar, Mutex};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Index of a session multiplexed on one executor.
pub(crate) type SessionId = usize;

// Task states (the atomic state machine above).
const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const RUNNING_DIRTY: u8 = 3;
const DEAD: u8 = 4;

/// How to size and schedule the worker pool.
#[derive(Debug, Clone, Default)]
pub struct ExecutorOptions {
    /// Worker (and run-queue shard) count; `None` uses
    /// [`std::thread::available_parallelism`].
    pub workers: Option<usize>,
    /// Deliberately unfair scheduling: always poll the lowest-numbered
    /// session with queued tasks instead of round-robining. Exists only so
    /// the starvation gate in `bench scale --sessions --mutate` has a
    /// broken scheduler to catch; never enable it otherwise.
    pub unfair: bool,
}

/// What one task poll did and when it wants to run again.
pub(crate) struct Poll {
    /// Messages the poll drained (observed into the `poll_batch`
    /// histogram).
    pub msgs: u64,
    /// The task finished; never poll it again.
    pub done: bool,
    /// Replaces the task's timer: poll again at this instant (`None`
    /// cancels any pending timer).
    pub deadline: Option<Instant>,
    /// The task knows it left work behind (e.g. a capped mailbox drain):
    /// re-queue immediately instead of going idle.
    pub more: bool,
}

impl Poll {
    /// A quiescent outcome: nothing drained, no timer, not done.
    pub fn idle() -> Self {
        Poll {
            msgs: 0,
            done: false,
            deadline: None,
            more: false,
        }
    }
}

/// A polled state machine (rep, agent, importer, retransmit pump).
pub(crate) trait Task: Send {
    /// Drains whatever is runnable right now. `now` is the poll instant —
    /// tasks compare their own deadlines (heartbeat due, crash restart)
    /// against it rather than re-reading the clock.
    fn poll(&mut self, now: Instant) -> Poll;
}

/// Where a contained task panic is reported (the fabric's error slot).
pub(crate) type PanicSink = Arc<dyn Fn(String) + Send + Sync>;

struct TaskEntry {
    state: AtomicU8,
    /// Timer generation: a heap entry is live only while its generation
    /// matches, so re-arming or cancelling is one `fetch_add`.
    timer_gen: AtomicU64,
    session: SessionId,
    /// Home shard (timers live here; the owning worker polls it first).
    shard: usize,
    metrics: Arc<EngineMetrics>,
    panic_sink: PanicSink,
    task: Mutex<Box<dyn Task>>,
}

/// A handle for scheduling one spawned task (what mailboxes hold).
#[derive(Clone)]
pub(crate) struct TaskHandle {
    exec: Arc<ExecInner>,
    entry: Arc<TaskEntry>,
}

impl TaskHandle {
    /// Marks the task runnable (no-op if already queued, dirty or done).
    pub fn schedule(&self) {
        self.exec.schedule(&self.entry);
    }

    /// Whether the task has finished (or was retired by a panic).
    pub fn is_done(&self) -> bool {
        self.entry.state.load(Ordering::Acquire) == DEAD
    }
}

struct TimerEntry {
    at: Instant,
    gen: u64,
    /// Global tie-breaker so the heap order is total.
    seq: u64,
    task: Arc<TaskEntry>,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// One worker's slice of the run queues plus its timer heap.
struct ShardQueues {
    /// One FIFO per session (grown by `add_session`); round-robin cursor
    /// below picks the next session to serve.
    sessions: Vec<VecDeque<Arc<TaskEntry>>>,
    queued: usize,
    cursor: usize,
    timers: BinaryHeap<Reverse<TimerEntry>>,
}

struct Shard {
    q: Mutex<ShardQueues>,
    cv: Condvar,
}

struct ExecInner {
    shards: Vec<Shard>,
    unfair: bool,
    stop: AtomicBool,
    timer_seq: AtomicU64,
    /// Task counter feeding home-shard assignment (round-robin).
    next_task: AtomicU64,
    done_lock: Mutex<()>,
    done_cv: Condvar,
}

impl ExecInner {
    fn schedule(self: &Arc<Self>, entry: &Arc<TaskEntry>) {
        loop {
            let cur = entry.state.load(Ordering::Acquire);
            match cur {
                IDLE => {
                    if entry
                        .state
                        .compare_exchange_weak(IDLE, QUEUED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        self.push(entry.clone());
                        return;
                    }
                }
                RUNNING => {
                    if entry
                        .state
                        .compare_exchange_weak(
                            RUNNING,
                            RUNNING_DIRTY,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        return;
                    }
                }
                // Already queued / dirty / retired: nothing to do.
                _ => return,
            }
        }
    }

    /// Pushes an already-`Queued` task onto its home shard.
    fn push(&self, entry: Arc<TaskEntry>) {
        let shard = &self.shards[entry.shard];
        entry.metrics.runq_depth.add(1);
        let mut q = shard.q.lock();
        q.sessions[entry.session].push_back(entry);
        q.queued += 1;
        drop(q);
        shard.cv.notify_one();
    }

    /// Replaces a task's timer (generation bump invalidates older heap
    /// entries lazily).
    fn set_timer(&self, entry: &Arc<TaskEntry>, at: Instant) {
        let gen = entry.timer_gen.fetch_add(1, Ordering::AcqRel) + 1;
        let seq = self.timer_seq.fetch_add(1, Ordering::Relaxed);
        let shard = &self.shards[entry.shard];
        let mut q = shard.q.lock();
        q.timers.push(Reverse(TimerEntry {
            at,
            gen,
            seq,
            task: entry.clone(),
        }));
        drop(q);
        // The home worker may be sleeping toward a later deadline.
        shard.cv.notify_one();
    }

    fn cancel_timer(&self, entry: &TaskEntry) {
        entry.timer_gen.fetch_add(1, Ordering::AcqRel);
    }

    /// Pops the next runnable task honoring session fairness; transitions
    /// it `Queued → Running`.
    fn pop_from(&self, q: &mut ShardQueues) -> Option<Arc<TaskEntry>> {
        if q.queued == 0 {
            return None;
        }
        let n = q.sessions.len();
        for i in 0..n {
            let s = if self.unfair { i } else { (q.cursor + i) % n };
            if let Some(entry) = q.sessions[s].pop_front() {
                if !self.unfair {
                    q.cursor = (s + 1) % n;
                }
                q.queued -= 1;
                entry.metrics.runq_depth.sub(1);
                entry.state.store(RUNNING, Ordering::Release);
                return Some(entry);
            }
        }
        None
    }

    /// Fires every due (and still-live) timer on one shard, marking their
    /// tasks runnable.
    fn fire_timers(self: &Arc<Self>, shard: usize, now: Instant) {
        let due: Vec<Arc<TaskEntry>> = {
            let mut q = self.shards[shard].q.lock();
            let mut out = Vec::new();
            while let Some(Reverse(top)) = q.timers.peek() {
                if top.at > now {
                    break;
                }
                let Reverse(t) = q.timers.pop().expect("peeked entry");
                if t.gen == t.task.timer_gen.load(Ordering::Acquire)
                    && t.task.state.load(Ordering::Acquire) != DEAD
                {
                    out.push(t.task);
                }
            }
            out
        };
        for entry in due {
            self.schedule(&entry);
        }
    }

    /// Polls one task and applies its outcome to the state machine.
    fn run(self: &Arc<Self>, entry: Arc<TaskEntry>) {
        entry.metrics.tasks_polled.inc();
        let now = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| entry.task.lock().poll(now)));
        match outcome {
            Err(p) => {
                (entry.panic_sink)(panic_detail(p));
                self.cancel_timer(&entry);
                entry.state.store(DEAD, Ordering::Release);
                self.notify_done();
            }
            Ok(poll) => {
                entry.metrics.poll_batch.observe(poll.msgs);
                if poll.done {
                    self.cancel_timer(&entry);
                    entry.state.store(DEAD, Ordering::Release);
                    self.notify_done();
                    return;
                }
                match poll.deadline {
                    Some(at) => self.set_timer(&entry, at),
                    None => self.cancel_timer(&entry),
                }
                if poll.more {
                    entry.state.store(QUEUED, Ordering::Release);
                    self.push(entry);
                } else if entry
                    .state
                    .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    // A schedule landed mid-poll (RunningDirty): re-queue so
                    // the message that raced with the drain is seen.
                    entry.state.store(QUEUED, Ordering::Release);
                    self.push(entry);
                }
            }
        }
    }

    fn notify_done(&self) {
        let _g = self.done_lock.lock();
        self.done_cv.notify_all();
    }
}

/// Best-effort text of a caught panic payload.
fn panic_detail(p: Box<dyn std::any::Any + Send>) -> String {
    p.downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| p.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".into())
}

fn worker_loop(inner: Arc<ExecInner>, me: usize) {
    loop {
        if inner.stop.load(Ordering::Acquire) {
            return;
        }
        inner.fire_timers(me, Instant::now());
        let local = {
            let mut q = inner.shards[me].q.lock();
            inner.pop_from(&mut q)
        };
        if let Some(entry) = local {
            inner.run(entry);
            continue;
        }
        // Own shard dry: steal one task from a sibling before sleeping.
        let mut stolen = None;
        for other in (0..inner.shards.len()).filter(|&s| s != me) {
            let mut q = inner.shards[other].q.lock();
            if let Some(entry) = inner.pop_from(&mut q) {
                drop(q);
                entry.metrics.worker_steal.inc();
                stolen = Some(entry);
                break;
            }
        }
        if let Some(entry) = stolen {
            inner.run(entry);
            continue;
        }
        // Nothing runnable anywhere: sleep until this shard's next timer
        // (or until a push/timer/stop notifies). Checked under the shard
        // lock so a concurrent push cannot slip between check and wait.
        let shard = &inner.shards[me];
        let mut q = shard.q.lock();
        if q.queued > 0 || inner.stop.load(Ordering::Acquire) {
            continue;
        }
        match q.timers.peek().map(|Reverse(t)| t.at) {
            Some(at) => {
                shard.cv.wait_until(&mut q, at);
            }
            None => shard.cv.wait(&mut q),
        }
    }
}

/// The worker pool plus its sharded run queues. One per [`SessionSet`]
/// (and therefore per single-session `Fabric`).
///
/// [`SessionSet`]: crate::threaded::SessionSet
pub(crate) struct Executor {
    inner: Arc<ExecInner>,
    workers: Vec<JoinHandle<()>>,
}

impl Executor {
    pub fn new(opts: &ExecutorOptions) -> Self {
        let workers = opts
            .workers
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .max(1);
        let inner = Arc::new(ExecInner {
            shards: (0..workers)
                .map(|_| Shard {
                    q: Mutex::new(ShardQueues {
                        sessions: Vec::new(),
                        queued: 0,
                        cursor: 0,
                        timers: BinaryHeap::new(),
                    }),
                    cv: Condvar::new(),
                })
                .collect(),
            unfair: opts.unfair,
            stop: AtomicBool::new(false),
            timer_seq: AtomicU64::new(0),
            next_task: AtomicU64::new(0),
            done_lock: Mutex::new(()),
            done_cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|w| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("couplink-worker-{w}"))
                    .spawn(move || worker_loop(inner, w))
                    .expect("spawning pool worker")
            })
            .collect();
        Executor {
            inner,
            workers: handles,
        }
    }

    /// Worker (== shard) count.
    pub fn workers(&self) -> usize {
        self.inner.shards.len()
    }

    /// Registers one more session's fairness queue on every shard.
    pub fn add_session(&self) -> SessionId {
        let mut id = 0;
        for shard in &self.inner.shards {
            let mut q = shard.q.lock();
            q.sessions.push(VecDeque::new());
            id = q.sessions.len() - 1;
        }
        id
    }

    /// Spawns a task (home shard assigned round-robin) and schedules its
    /// first poll so it can arm initial timers.
    pub fn spawn(
        &self,
        session: SessionId,
        metrics: Arc<EngineMetrics>,
        panic_sink: PanicSink,
        task: Box<dyn Task>,
    ) -> TaskHandle {
        let shard =
            self.inner.next_task.fetch_add(1, Ordering::Relaxed) as usize % self.inner.shards.len();
        let entry = Arc::new(TaskEntry {
            state: AtomicU8::new(IDLE),
            timer_gen: AtomicU64::new(0),
            session,
            shard,
            metrics,
            panic_sink,
            task: Mutex::new(task),
        });
        let handle = TaskHandle {
            exec: self.inner.clone(),
            entry,
        };
        handle.schedule();
        handle
    }

    /// Blocks until every listed task has finished.
    pub fn wait_done(&self, tasks: &[TaskHandle]) {
        let mut g = self.inner.done_lock.lock();
        while !tasks.iter().all(TaskHandle::is_done) {
            // Timed as a belt against a missed notify; correctness comes
            // from the DEAD check, not the wakeup.
            self.inner
                .done_cv
                .wait_for(&mut g, Duration::from_millis(50));
        }
    }

    /// Stops and joins the pool. Queued-but-unpolled tasks are abandoned —
    /// callers drain their sessions first.
    pub fn shutdown(&mut self) {
        self.inner.stop.store(true, Ordering::Release);
        for shard in &self.inner.shards {
            let _g = shard.q.lock();
            shard.cv.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn sink() -> PanicSink {
        Arc::new(|_| {})
    }

    struct CountTask {
        polls: Arc<AtomicUsize>,
        done_after: usize,
        sleep: Duration,
    }

    impl Task for CountTask {
        fn poll(&mut self, _now: Instant) -> Poll {
            if !self.sleep.is_zero() {
                std::thread::sleep(self.sleep);
            }
            let n = self.polls.fetch_add(1, Ordering::SeqCst) + 1;
            Poll {
                msgs: 1,
                done: n >= self.done_after,
                deadline: None,
                more: false,
            }
        }
    }

    /// A task is queued at most once no matter how many schedules race:
    /// the run-queue depth HWM stays bounded by the task count.
    #[test]
    fn runq_depth_hwm_bounded_by_task_count() {
        let exec = Executor::new(&ExecutorOptions {
            workers: Some(2),
            unfair: false,
        });
        let session = exec.add_session();
        let metrics = Arc::new(EngineMetrics::new());
        let polls = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<TaskHandle> = (0..4)
            .map(|_| {
                exec.spawn(
                    session,
                    metrics.clone(),
                    sink(),
                    Box::new(CountTask {
                        polls: polls.clone(),
                        done_after: usize::MAX,
                        sleep: Duration::ZERO,
                    }),
                )
            })
            .collect();
        let mut schedulers = Vec::new();
        for t in &tasks {
            for _ in 0..3 {
                let t = t.clone();
                schedulers.push(std::thread::spawn(move || {
                    for _ in 0..500 {
                        t.schedule();
                    }
                }));
            }
        }
        for s in schedulers {
            s.join().unwrap();
        }
        assert!(
            metrics.runq_depth.high_water_mark() <= tasks.len() as u64,
            "HWM {} exceeds task count {}",
            metrics.runq_depth.high_water_mark(),
            tasks.len()
        );
        assert!(metrics.tasks_polled.get() > 0);
    }

    /// A finished task is never polled again and `wait_done` observes it.
    #[test]
    fn done_task_is_retired() {
        let exec = Executor::new(&ExecutorOptions {
            workers: Some(1),
            unfair: false,
        });
        let session = exec.add_session();
        let metrics = Arc::new(EngineMetrics::new());
        let polls = Arc::new(AtomicUsize::new(0));
        let t = exec.spawn(
            session,
            metrics,
            sink(),
            Box::new(CountTask {
                polls: polls.clone(),
                done_after: 1,
                sleep: Duration::ZERO,
            }),
        );
        exec.wait_done(std::slice::from_ref(&t));
        let after = polls.load(Ordering::SeqCst);
        assert_eq!(after, 1);
        for _ in 0..10 {
            t.schedule();
        }
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(polls.load(Ordering::SeqCst), after, "retired task polled");
    }

    struct TimerTask {
        polls: Arc<AtomicUsize>,
        interval: Duration,
    }

    impl Task for TimerTask {
        fn poll(&mut self, now: Instant) -> Poll {
            self.polls.fetch_add(1, Ordering::SeqCst);
            Poll {
                msgs: 0,
                done: false,
                deadline: Some(now + self.interval),
                more: false,
            }
        }
    }

    /// A task that only arms timers is re-polled by the timer wheel with
    /// no external schedules.
    #[test]
    fn timer_wheel_repolls_without_schedules() {
        let exec = Executor::new(&ExecutorOptions {
            workers: Some(1),
            unfair: false,
        });
        let session = exec.add_session();
        let metrics = Arc::new(EngineMetrics::new());
        let polls = Arc::new(AtomicUsize::new(0));
        let _t = exec.spawn(
            session,
            metrics,
            sink(),
            Box::new(TimerTask {
                polls: polls.clone(),
                interval: Duration::from_millis(10),
            }),
        );
        std::thread::sleep(Duration::from_millis(120));
        let n = polls.load(Ordering::SeqCst);
        assert!(n >= 4, "timer should have fired repeatedly, saw {n} polls");
    }

    /// An idle worker steals queued tasks from a busy sibling's shard.
    #[test]
    fn idle_worker_steals_from_busy_shard() {
        let exec = Executor::new(&ExecutorOptions {
            workers: Some(2),
            unfair: false,
        });
        let session = exec.add_session();
        let metrics = Arc::new(EngineMetrics::new());
        let polls = Arc::new(AtomicUsize::new(0));
        // Home shards alternate 0,1,0,1: the long sleeper occupies one
        // worker while short tasks homed behind it wait — the other worker
        // must steal them.
        let mut tasks = Vec::new();
        for i in 0..6 {
            let sleep = if i == 0 {
                Duration::from_millis(150)
            } else {
                Duration::ZERO
            };
            tasks.push(exec.spawn(
                session,
                metrics.clone(),
                sink(),
                Box::new(CountTask {
                    polls: polls.clone(),
                    done_after: 1,
                    sleep,
                }),
            ));
        }
        exec.wait_done(&tasks);
        assert_eq!(polls.load(Ordering::SeqCst), 6);
        assert!(
            metrics.worker_steal.get() >= 1,
            "expected at least one steal, saw {}",
            metrics.worker_steal.get()
        );
    }

    /// A panicking poll is contained: reported to the sink, task retired,
    /// pool still serves other tasks.
    #[test]
    fn panicking_task_is_contained() {
        struct PanicTask;
        impl Task for PanicTask {
            fn poll(&mut self, _now: Instant) -> Poll {
                panic!("injected poll panic");
            }
        }
        let exec = Executor::new(&ExecutorOptions {
            workers: Some(1),
            unfair: false,
        });
        let session = exec.add_session();
        let metrics = Arc::new(EngineMetrics::new());
        let caught = Arc::new(Mutex::new(None));
        let sink: PanicSink = {
            let caught = caught.clone();
            Arc::new(move |detail| {
                *caught.lock() = Some(detail);
            })
        };
        let bad = exec.spawn(session, metrics.clone(), sink, Box::new(PanicTask));
        exec.wait_done(std::slice::from_ref(&bad));
        assert_eq!(caught.lock().as_deref(), Some("injected poll panic"));
        let polls = Arc::new(AtomicUsize::new(0));
        let ok = exec.spawn(
            session,
            metrics,
            Arc::new(|_| {}),
            Box::new(CountTask {
                polls: polls.clone(),
                done_after: 1,
                sleep: Duration::ZERO,
            }),
        );
        exec.wait_done(std::slice::from_ref(&ok));
        assert_eq!(polls.load(Ordering::SeqCst), 1);
    }
}
