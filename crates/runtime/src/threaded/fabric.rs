//! The general multi-program threaded fabric, multiplexed on the session
//! executor.
//!
//! A [`Fabric`] instantiates the engine's nodes for an arbitrary
//! [`Topology`] — N programs, each with M coupled processes plus one rep —
//! and moves their messages between **polled state machines** scheduled on
//! the [`executor`](super::executor)'s shared worker pool:
//!
//! - one **rep task** per program touching a connection, owning the
//!   program's [`RepNode`];
//! - one **agent task** per exporting process, answering forwarded
//!   requests and consuming buddy-help while the application thread
//!   computes (the paper's asynchronous framework engine);
//! - one **importer task** per (connection, rank), feeding answers and
//!   pieces into the import node while the application thread blocks on a
//!   condvar;
//! - one **pump task** per session when the reliability layer is armed,
//!   woken by the per-shard timer wheel at the earliest retry deadline.
//!
//! Per-process [`ExportAccess`]/[`ImportAccess`] handles are unchanged:
//! application threads drive them exactly like an SPMD rank calling the
//! framework library. A [`SessionSet`] multiplexes N independent
//! topologies — each with its own [`EngineMetrics`] — on one pool with
//! round-robin fairness across sessions.
//!
//! Buffering is a real `memcpy`: the fabric clones the process's
//! [`LocalArray`] piece into the region's shared store, so `export()`
//! latency measured by the benches reflects genuine copy costs, and skipped
//! buffering is a genuine saving. The store is shared across all
//! connections of a region (Figure 2's one-region-many-importers case):
//! one copy serves every importer, and an object is dropped only when no
//! connection can still need it.

use crate::engine::chaos::{commutes, ChaosConfig, CrashFault, CrashTarget};
use crate::engine::reliable::expendable;
use crate::engine::{
    ctrl_class, deliver_all, tree, Clock, Endpoint, EngineError, Expiry, ExportFx, ExportNode,
    ImportNode, MemWal, Outgoing, Reliability, RepNode, RetryPolicy, Topology, Transport, Wal,
    WalRecord, WireMeta,
};
use crate::threaded::executor::{
    Executor, ExecutorOptions, PanicSink, Poll, SessionId, Task, TaskHandle,
};
use crate::threaded::{ExportOutcome, ThreadedError};
use couplink_layout::{LocalArray, Rect, SharedArray};
use couplink_metrics::{CtrlClass, EngineMetrics, MetricsSnapshot, Phase};
use couplink_proto::{
    ConnectionId, CtrlMsg, ExportStats, ImportState, RepAnswer, RequestId, Trace,
};
use couplink_time::Timestamp;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Wall-clock heartbeat period of a live rep (emitted only while the
/// reliability layer is armed, so fault-free fabrics carry no extra
/// traffic). On the executor this is a periodic per-task timer rather than
/// a mailbox idle timeout: a busy rep still heartbeats on schedule.
const HB_INTERVAL: Duration = Duration::from_millis(25);

/// Wall-clock detection latency of the heartbeat-failover path: how long
/// after a rep's death its members conclude it is gone and the successor
/// takes over.
const HB_TIMEOUT: Duration = Duration::from_millis(150);

/// Hard cap on the shutdown drain: after this long the drain gives up on
/// still-pending messages (a crashed task's mailbox never acks).
const DRAIN_CAP: Duration = Duration::from_secs(30);

/// Number of reliability shards the control plane is split across. Links
/// (directed endpoint pairs) hash onto shards, so two reps' traffic — or
/// one rep's traffic to two members — contend only when they collide here.
const REL_SHARDS: usize = 16;

/// Sequence-counter jump applied to every send link when a restarted
/// process leaves journal replay: far larger than any session's per-link
/// message count, so a post-restart send can never reuse a sequence
/// number the previous incarnation already burned (one restart per
/// session — the bootstrap kills a node at most once).
const RESTART_SEQ_GAP: u64 = 1 << 32;

/// Most mailbox messages a rep (or agent, or importer) folds into one poll:
/// the coalescing bound and the executor's per-poll work cap, so one
/// flooded mailbox cannot hold a worker indefinitely.
const REP_BATCH: usize = 64;

/// Wall-clock seconds since the fabric started — the threaded runtime's
/// [`Clock`].
#[derive(Debug, Clone)]
pub struct WallClock(Instant);

impl WallClock {
    /// A clock starting now.
    pub fn start() -> Self {
        WallClock(Instant::now())
    }
}

impl Clock for WallClock {
    fn now(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

/// Shared handle to a session's write-ahead journal: the pluggable
/// [`Wal`] backend behind one mutex, cloned into the routing table, the
/// rep tasks and (in the socket runtime) the link layer, which syncs it
/// before a sequenced frame or ack escapes the process.
#[derive(Clone)]
pub struct WalHandle(Arc<Mutex<Box<dyn Wal>>>);

impl WalHandle {
    /// Wraps a journal backend.
    pub fn new(wal: impl Wal + 'static) -> Self {
        WalHandle(Arc::new(Mutex::new(Box::new(wal))))
    }

    /// An in-memory journal (the DES/threaded default when reliability is
    /// armed without an explicit backend).
    fn mem() -> Self {
        Self::new(MemWal::new())
    }

    fn append(&self, rec: &WalRecord) {
        self.0.lock().append(rec);
    }

    /// Makes every appended record durable (no-op for [`MemWal`]).
    pub fn sync(&self) {
        self.0.lock().sync();
    }

    /// One endpoint's delivered-message journal, in delivery order.
    pub fn delivered(&self, ep: Endpoint) -> Vec<(WireMeta, CtrlMsg)> {
        self.0.lock().delivered(ep)
    }

    /// Discards journal history no longer needed for replay (clean
    /// shutdown only).
    pub fn prune(&self) {
        self.0.lock().prune();
    }
}

impl fmt::Debug for WalHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("WalHandle(..)")
    }
}

/// Options for building a [`Fabric`] (or one session of a [`SessionSet`]).
#[derive(Debug, Clone)]
pub struct FabricOptions {
    /// Whether the reps send buddy-help (default: enabled).
    pub buddy_help: bool,
    /// How long `import` (and a stalled bounded `export`) waits before
    /// giving up.
    pub import_timeout: Duration,
    /// Per-connection framework buffer bound in objects (`None` =
    /// unbounded). With a bound, `export` blocks while the buffer is full
    /// and resumes when control traffic frees space.
    pub buffer_capacity: Option<usize>,
    /// Connections to trace, as `(program, rank, connection)`: the named
    /// exporter process records a Figure 5-style event stream for that
    /// connection, returned by [`Fabric::shutdown`].
    pub traces: Vec<(usize, usize, ConnectionId)>,
    /// Seeded fault injection on *commutative* control messages (`Response`,
    /// `BuddyHelp`, `Answer`, `AnswerBcast`): per-message delay, duplication
    /// and drop-with-retry, routed through a relay thread. FIFO-class
    /// messages (`ImportCall`, `ImportRequest`, `ForwardRequest`) are never
    /// perturbed here — unlike the simulator, the fabric has no global
    /// event queue on which to re-order them safely, and the protocol
    /// forbids reordering them anyway.
    ///
    /// When the configuration carries *permanent* faults (`loss_prob > 0`
    /// or a [`CrashFault`]) the fabric additionally arms its reliability
    /// layer: every eligible message is sequenced and acknowledged, a pump
    /// task retransmits on wall-clock timeouts, and a crashed rep is
    /// rebuilt from its delivery journal.
    pub chaos: Option<ChaosConfig>,
    /// Degradation knob: buddy-help announcements are sent but never
    /// arrive, so each one exhausts its expendable retry budget and is
    /// abandoned (metered as `degraded_buffers`). Arms the reliability
    /// layer even without chaos. The run must degrade to conservative
    /// buffering, never misbehave.
    pub drop_buddy_help: bool,
    /// Hierarchical collective distribution: the rep sends forwards and
    /// coalesced answers only to the roots of the deterministic
    /// [`tree`](crate::engine::tree), and every rank relays to its own
    /// subtree. Per-rep fan-out drops from O(N) to O(k); relay hops are
    /// metered as `ctrl_relay` instead of per-class origin traffic.
    pub hierarchical: bool,
    /// Write-ahead journal backend for the session's delivered messages
    /// and export schedule. `None` (the default) falls back to [`MemWal`]
    /// when the reliability layer is armed — exactly the in-memory journal
    /// the in-process failover has always replayed. The socket runtime
    /// plugs in a file-backed handle here so a SIGKILLed node can replay
    /// its half of the session on restart. Providing a backend arms the
    /// reliability layer.
    pub wal: Option<WalHandle>,
}

impl Default for FabricOptions {
    fn default() -> Self {
        FabricOptions {
            buddy_help: true,
            import_timeout: Duration::from_secs(30),
            buffer_capacity: None,
            traces: Vec::new(),
            chaos: None,
            drop_buddy_help: false,
            hierarchical: false,
            wal: None,
        }
    }
}

/// What [`Fabric::shutdown`] returns.
#[derive(Debug)]
pub struct FabricReport {
    /// Exporter statistics, indexed `[connection][rank]` like the
    /// topology's connection list.
    pub stats: Vec<Vec<ExportStats>>,
    /// Recorded event traces, one per requested `(program, rank,
    /// connection)`.
    pub traces: Vec<(usize, usize, ConnectionId, Trace)>,
    /// End-of-run engine instrumentation. Counter values depend on thread
    /// interleaving (unlike the simulator's) — conservation laws hold, exact
    /// values need not repeat.
    pub metrics: MetricsSnapshot,
}

// --- mailboxes ---

/// A task's inbox: a queue whose push marks the owning task runnable.
///
/// Construction happens in two phases — every session builds all its
/// mailboxes before spawning any task, then [`bind`](Mailbox::bind)s each
/// mailbox to its task handle. A push before the bind just queues (the
/// bind schedules the task if anything is already waiting), so no message
/// can be lost to the construction race.
struct Mailbox<T> {
    q: Mutex<VecDeque<T>>,
    task: OnceLock<TaskHandle>,
}

impl<T> Mailbox<T> {
    fn new() -> Self {
        Mailbox {
            q: Mutex::new(VecDeque::new()),
            task: OnceLock::new(),
        }
    }

    /// Enqueues and schedules the bound task. Returns `false` — dropping
    /// the message — once the task has finished, mirroring a send on a
    /// disconnected channel (shutdown or a recorded error; the caller
    /// surfaces those separately).
    fn push(&self, msg: T) -> bool {
        if self.task.get().is_some_and(TaskHandle::is_done) {
            return false;
        }
        self.q.lock().push_back(msg);
        if let Some(h) = self.task.get() {
            h.schedule();
        }
        true
    }

    /// Binds the owning task, scheduling it if pushes already queued.
    fn bind(&self, h: TaskHandle) {
        let already = !self.q.lock().is_empty();
        let h2 = h.clone();
        assert!(self.task.set(h).is_ok(), "mailbox bound once");
        if already {
            h2.schedule();
        }
    }

    fn pop(&self) -> Option<T> {
        self.q.lock().pop_front()
    }

    fn is_empty(&self) -> bool {
        self.q.lock().is_empty()
    }
}

// --- internal messages ---

enum AgentMsg {
    Ctrl(Option<WireMeta>, CtrlMsg),
    /// A coalesced rep flush: several control messages for this agent,
    /// pushed as one mailbox entry (per-link FIFO order preserved).
    Batch(Vec<(Option<WireMeta>, CtrlMsg)>),
    Shutdown,
}

enum RepMsg {
    Ctrl(Option<WireMeta>, CtrlMsg),
    /// A coalesced rep-to-rep flush (see [`AgentMsg::Batch`]).
    Batch(Vec<(Option<WireMeta>, CtrlMsg)>),
    Shutdown,
}

enum ImpMsg {
    Answer {
        meta: Option<WireMeta>,
        req: RequestId,
        answer: RepAnswer,
    },
    /// A coalesced answer broadcast travelling the distribution tree: the
    /// importer applies it like an [`ImpMsg::Answer`] *and* relays it to
    /// its tree children (the mailbox's conn disambiguates the wire form).
    Coalesced {
        meta: Option<WireMeta>,
        req: RequestId,
        answer: RepAnswer,
    },
    /// A coalesced answer-broadcast flush for this importer rank.
    AnswerBatch(Vec<(Option<WireMeta>, RequestId, RepAnswer)>),
    Piece {
        req: RequestId,
        /// The sub-rectangle of `payload` this piece delivers.
        rect: Rect,
        /// The exporter's buffered object, shared — not copied — into
        /// every piece, connection and retransmit it serves.
        payload: SharedArray,
    },
    Shutdown,
}

/// Message to the chaos relay thread: hold `msg` until `due`, then route it.
enum RelayMsg {
    Deliver {
        due: Instant,
        to: Endpoint,
        meta: Option<WireMeta>,
        msg: CtrlMsg,
    },
    Shutdown,
}

/// Fault-injection state shared through [`Net`].
struct NetChaos {
    cfg: ChaosConfig,
    /// Per-message counter feeding the seeded decisions.
    counter: AtomicU64,
    relay: Sender<RelayMsg>,
}

/// Times a mutex acquisition into the run's `lock_wait_ns` counter. The
/// uncontended fast path is a bare `try_lock` — no clock read, no counter
/// touch; only genuine waiting is measured.
fn timed_lock<'a, T>(m: &'a Mutex<T>, metrics: &EngineMetrics) -> MutexGuard<'a, T> {
    if let Some(g) = m.try_lock() {
        return g;
    }
    let t0 = Instant::now();
    let g = m.lock();
    metrics.lock_wait_ns.add(t0.elapsed().as_nanos() as u64);
    g
}

/// A stable 64-bit code per endpoint, feeding the shard hash.
fn endpoint_code(e: Endpoint) -> u64 {
    match e {
        Endpoint::Proc { prog, rank } => (1 << 62) | ((prog as u64) << 24) | rank as u64,
        Endpoint::Rep { prog } => (2 << 62) | prog as u64,
    }
}

/// The shard a directed link hashes onto (splitmix64 finalizer — the
/// sequential codes above would otherwise collide every link of one
/// program onto one shard).
fn link_shard(from: Endpoint, to: Endpoint) -> usize {
    let mut z = endpoint_code(from)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(endpoint_code(to));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) as usize % REL_SHARDS
}

/// The fabric's reliability layer, armed only when the configured faults
/// require it (permanent loss, a crash fault, or forced buddy-help loss).
/// Fault-free fabrics carry `None` here and run the exact pre-reliability
/// message flow — zero protocol overhead, bit-identical outputs.
///
/// The layer is **sharded** per directed link: each (from, to) endpoint
/// pair hashes onto one of [`REL_SHARDS`] independent [`Reliability`]
/// instances, so the send, receive and ack paths of unrelated links never
/// contend on one global lock. Sharding is sound because every layer
/// operation keys on the link — `register(from, to, …)`,
/// `receive((meta.from), to, …)` and `on_ack(meta.from, to, …)` all
/// address the same pair — while the endpoint-wide operations
/// (`crash_endpoint`, `due`, `pending_len`) simply visit every shard.
struct NetRel {
    shards: Vec<Mutex<Reliability>>,
    /// Monotone per-attempt nonce feeding the seeded permanent-loss draws:
    /// every attempt (first send or retransmit) draws independently, so a
    /// retried message is eventually delivered with probability one.
    nonce: AtomicU64,
    clock: Arc<WallClock>,
    /// See [`FabricOptions::drop_buddy_help`].
    drop_buddy_help: bool,
    /// First retransmit interval of the retry policy (for pump wakeups:
    /// a fresh registration's deadline is `now + base_timeout`).
    base_timeout: f64,
    /// Bit pattern of the `f64` clock instant the pump task's timer is
    /// armed toward (`f64::INFINITY` while it sleeps unbounded). Senders
    /// compare their new deadline against this to decide whether the pump
    /// must be re-scheduled early.
    pump_until: AtomicU64,
    /// `true` once shutdown has asked the pump task to stop (guarded state
    /// of `pump_cv` during the drain).
    pump_stop: Mutex<bool>,
    /// The shutdown drain's timer: signalled (while draining) on every
    /// fresh ack so the drain unblocks the moment pending traffic empties.
    pump_cv: Condvar,
    /// Whether the shutdown drain is running (acks then signal `pump_cv`).
    draining: AtomicBool,
    /// The pump task, once spawned. Senders re-schedule it when they
    /// register a deadline earlier than `pump_until`; scheduling a running
    /// task marks it dirty, so the wakeup can never be lost in the gap
    /// between the pump's deadline scan and its timer re-arm.
    pump_task: OnceLock<TaskHandle>,
}

impl NetRel {
    fn new(
        policy: RetryPolicy,
        metrics: &Arc<EngineMetrics>,
        clock: Arc<WallClock>,
        drop_buddy_help: bool,
    ) -> Self {
        let base_timeout = policy.base_timeout;
        NetRel {
            shards: (0..REL_SHARDS)
                .map(|_| Mutex::new(Reliability::new(policy, Arc::clone(metrics))))
                .collect(),
            nonce: AtomicU64::new(0),
            clock,
            drop_buddy_help,
            base_timeout,
            pump_until: AtomicU64::new(f64::INFINITY.to_bits()),
            pump_stop: Mutex::new(false),
            pump_cv: Condvar::new(),
            draining: AtomicBool::new(false),
            pump_task: OnceLock::new(),
        }
    }

    /// The shard owning the directed link `from → to`.
    fn shard(&self, from: Endpoint, to: Endpoint) -> &Mutex<Reliability> {
        &self.shards[link_shard(from, to)]
    }

    /// Earliest retry deadline across all shards (clock seconds).
    fn next_deadline(&self) -> Option<f64> {
        self.shards
            .iter()
            .filter_map(|s| s.lock().next_deadline())
            .min_by(f64::total_cmp)
    }

    /// Unacked sequenced messages across all shards.
    fn pending_total(&self) -> usize {
        self.shards.iter().map(|s| s.lock().pending_len()).sum()
    }

    /// Drops every shard's receive state for a crashed endpoint.
    fn crash_endpoint(&self, ep: Endpoint) {
        for s in &self.shards {
            s.lock().crash_endpoint(ep);
        }
    }

    /// Restores delivered-journal receive state, routing each entry to the
    /// shard owning its link.
    fn restore_delivered(&self, ep: Endpoint, journal: &[WireMeta]) {
        let mut per_shard: Vec<Vec<WireMeta>> = vec![Vec::new(); REL_SHARDS];
        for &m in journal {
            per_shard[link_shard(m.from, ep)].push(m);
        }
        for (shard, metas) in self.shards.iter().zip(per_shard) {
            if !metas.is_empty() {
                shard.lock().restore_delivered(ep, &metas);
            }
        }
    }

    /// Re-schedules the pump task if `deadline` is earlier than the
    /// instant its timer is armed toward. Scheduling is idempotent and
    /// dirty-marks a running pump, so at worst the pump polls once
    /// spuriously and recomputes; a genuinely earlier deadline is always
    /// observed by the re-poll.
    fn wake_pump_before(&self, deadline: f64) {
        if deadline < f64::from_bits(self.pump_until.load(Ordering::Acquire)) {
            if let Some(h) = self.pump_task.get() {
                h.schedule();
            }
        }
    }
}

/// First failure anywhere in the fabric: a protocol error reported by a
/// node (`crash: false`) or a caught control-task panic (`crash: true`).
#[derive(Debug, Clone)]
struct FabricErr {
    crash: bool,
    detail: String,
}

impl FabricErr {
    fn to_error(&self) -> ThreadedError {
        if self.crash {
            ThreadedError::ProcessCrash(self.detail.clone())
        } else {
            ThreadedError::RepFailed(self.detail.clone())
        }
    }
}

type ErrSlot = Arc<Mutex<Option<FabricErr>>>;

/// Outbound half of a multi-process session: how the fabric forwards
/// traffic whose destination endpoint lives in another OS process. The
/// socket runtime (`crate::net`) implements this over its peer
/// connections; a single-process session has no links and treats every
/// endpoint as local.
pub(crate) trait RemoteLinks: Send + Sync {
    /// Forwards one routed control message. The sending process has
    /// already metered it and, when the reliability layer is armed,
    /// registered it as pending — the receiver injects it via
    /// [`Net::deliver_remote_ctrl`].
    fn send_ctrl(&self, to: Endpoint, meta: Option<WireMeta>, msg: CtrlMsg);

    /// Carries an ack for the directed link `sender → acker` back to the
    /// sender's process, where [`Net::apply_remote_ack`] applies it to the
    /// pending state.
    fn send_ack(&self, sender: Endpoint, acker: Endpoint, seq: u64);

    /// Ships one payload piece to importer rank `dst` of `conn`'s
    /// importing program. The implementation serializes straight out of
    /// the shared buffer (send-side zero-copy).
    fn send_piece(
        &self,
        conn: ConnectionId,
        dst: usize,
        req: RequestId,
        rect: Rect,
        payload: &SharedArray,
    );
}

/// Whether `prog`'s tasks live in this process (`local: None` means the
/// single-process fabric, which hosts every program).
fn hosts(local: Option<usize>, prog: usize) -> bool {
    local.is_none_or(|p| p == prog)
}

/// One exporting process's engine state: the node plus one object store per
/// exported region (keyed by timestamp; the real buffered copies, shared —
/// not re-copied — into every piece, connection and retransmit they serve).
struct ExpState {
    node: ExportNode,
    stores: Vec<BTreeMap<Timestamp, SharedArray>>,
    /// Hierarchical mode: highest forwarded request id seen per connection.
    /// Coalesced help for a request at or below the watermark is applied;
    /// help that overtook its forward (chaos delays, retransmit reordering)
    /// is stashed until the forward arrives — the port cannot distinguish
    /// "not yet forwarded" from "resolved and pruned" on its own.
    fwd_seen: HashMap<ConnectionId, u64>,
    /// Coalesced help waiting for its forward (see `fwd_seen`).
    help_stash: Vec<(ConnectionId, RequestId, RepAnswer)>,
}

/// Shared between an application thread and its agent task. The condvar
/// signals freed buffer space to a stalled bounded `export`.
struct ExpCell {
    state: Mutex<ExpState>,
    freed: Condvar,
}

/// Shared between an importing application thread and the rank's importer
/// tasks: the import node under one lock, and a condvar the tasks signal
/// whenever the node's state may have advanced (answer or piece landed).
struct ImpCell {
    node: Mutex<ImportNode>,
    cv: Condvar,
}

/// Per-request piece accumulator shared between an [`ImportAccess`] and
/// its importer task (the task writes pieces strictly before the node can
/// observe `Done`, so a woken importer always sees a complete set).
type PieceMap = Arc<Mutex<HashMap<RequestId, Vec<(Rect, SharedArray)>>>>;

/// The fabric's routing table: where every endpoint's mailbox is.
pub(crate) struct Net {
    topo: Arc<Topology>,
    /// Per-program rep mailbox (`None` if the program has no connections).
    to_rep: Vec<Option<Arc<Mailbox<RepMsg>>>>,
    /// Per-process agent mailbox (`None` for non-exporting processes).
    to_agent: Vec<Vec<Option<Arc<Mailbox<AgentMsg>>>>>,
    /// Per-connection importer mailboxes, indexed by importer rank.
    to_imp: Vec<Vec<Arc<Mailbox<ImpMsg>>>>,
    /// First protocol error anywhere in the fabric.
    err: ErrSlot,
    /// Fault injection for commutative control messages, if enabled.
    chaos: Option<NetChaos>,
    /// Reliability layer, armed only when the faults require it.
    rel: Option<NetRel>,
    /// Which program this process hosts (`None` = all of them, the
    /// single-process fabric).
    local: Option<usize>,
    /// Outbound links to the peer processes hosting the other programs
    /// (`None` in a single-process session).
    links: Option<Arc<dyn RemoteLinks>>,
    /// Whether ranks relay collectives along the distribution tree.
    hierarchical: bool,
    /// The session's write-ahead journal (`Some` exactly when the
    /// reliability layer is armed): every admitted sequenced delivery and
    /// every application export lands here before its acks or dependent
    /// frames can escape the process.
    wal: Option<WalHandle>,
    /// `true` while a restarted process replays its journal: regenerated
    /// sequenced traffic is registered (rebuilding sequence counters and
    /// pending state) but not routed — deliveries come exclusively from
    /// the journal injection, and anything never delivered is retransmitted
    /// by the pump once replay ends.
    replaying: AtomicBool,
    /// `false` while replaying: re-admitting a journaled delivery must not
    /// journal it again (replay stays idempotent if the process dies
    /// mid-replay).
    wal_active: AtomicBool,
    /// Per-session instrumentation shared with every node and handle.
    metrics: Arc<EngineMetrics>,
}

impl Net {
    /// Whether `ep`'s tasks live in this process.
    fn is_local(&self, ep: Endpoint) -> bool {
        let (Endpoint::Rep { prog } | Endpoint::Proc { prog, .. }) = ep;
        hosts(self.local, prog)
    }

    /// Injects a control message that arrived over a socket link, exactly
    /// as if a local task had routed it. Not metered — the sending process
    /// already counted it, and the parent sums counters across processes.
    pub(crate) fn deliver_remote_ctrl(&self, to: Endpoint, meta: Option<WireMeta>, msg: CtrlMsg) {
        self.route(to, meta, msg);
    }

    /// Enters journal-replay mode: regenerated sequenced traffic is
    /// registered but not routed, and re-admitted deliveries are not
    /// re-journaled. See [`Net::replaying`] / [`Net::wal_active`].
    pub(crate) fn begin_replay(&self) {
        self.replaying.store(true, Ordering::Release);
        self.wal_active.store(false, Ordering::Release);
    }

    /// Leaves journal-replay mode: routing and journaling resume; the pump
    /// retransmits whatever replay left pending. Before any fresh send can
    /// slip through, every send link's sequence counter is fast-forwarded
    /// past the previous incarnation's range — regeneration is not
    /// count-exact (see [`Reliability::fast_forward_seqs`]), and a fresh
    /// send must never collide with a sequence number a peer already saw.
    pub(crate) fn end_replay(&self) {
        if let Some(rel) = &self.rel {
            for shard in &rel.shards {
                timed_lock(shard, &self.metrics).fast_forward_seqs(RESTART_SEQ_GAP);
            }
        }
        self.replaying.store(false, Ordering::Release);
        self.wal_active.store(true, Ordering::Release);
    }

    /// Whether every task mailbox of this session is currently empty — the
    /// replay driver's quiescence probe before it leaves replay mode.
    /// Best-effort (a task may still be processing its last pop); the
    /// receive-side dedup makes the residual race harmless.
    pub(crate) fn mailboxes_empty(&self) -> bool {
        self.to_rep.iter().flatten().all(|mb| mb.is_empty())
            && self
                .to_agent
                .iter()
                .flatten()
                .flatten()
                .all(|mb| mb.is_empty())
            && self.to_imp.iter().flatten().all(|mb| mb.is_empty())
    }

    /// Applies an ack that arrived over a socket link to the local pending
    /// state — the cross-process counterpart of the in-place `on_ack` in
    /// [`Net::admit`]. Metered (as `Ack` traffic) at the generating
    /// process, not here.
    pub(crate) fn apply_remote_ack(&self, sender: Endpoint, acker: Endpoint, seq: u64) {
        let Some(rel) = &self.rel else { return };
        let fresh = timed_lock(rel.shard(sender, acker), &self.metrics).on_ack(sender, acker, seq);
        if fresh && rel.draining.load(Ordering::Acquire) {
            let _guard = rel.pump_stop.lock();
            rel.pump_cv.notify_one();
        }
    }

    /// Injects a payload piece that arrived over a socket link into the
    /// destination rank's importer mailbox (transfer bytes were metered at
    /// the sending process).
    pub(crate) fn deliver_remote_piece(
        &self,
        conn: ConnectionId,
        dst: usize,
        req: RequestId,
        rect: Rect,
        payload: SharedArray,
    ) {
        let _ = self.to_imp[conn.0 as usize][dst].push(ImpMsg::Piece { req, rect, payload });
    }

    /// Moves one control message toward its endpoint. With the reliability
    /// layer armed the message is first registered (sequenced, pending
    /// until acked) and may be permanently lost on this attempt — the pump
    /// task retransmits it. With chaos enabled, commutative messages
    /// detour through the relay thread, which delivers each seeded copy at
    /// its planned instant; everything else (and every message once the
    /// relay has drained at shutdown) routes directly.
    fn ctrl(&self, from: Endpoint, to: Endpoint, msg: CtrlMsg) {
        self.metrics.ctrl(ctrl_class(&msg)).inc();
        if matches!(msg, CtrlMsg::Coalesced { .. }) {
            self.metrics.ctrl_coalesced.inc();
        }
        self.send(from, to, msg);
    }

    /// Moves one *relayed* control message — a hop a rank forwards down
    /// its subtree rather than traffic it originated. Metered as
    /// `ctrl_relay` instead of per-class origin traffic, so the scaling
    /// oracles can bound the rep's O(k) origin fan-out separately from the
    /// O(N) total tree traffic. Same reliability/chaos path as [`Net::ctrl`].
    fn relay(&self, from: Endpoint, to: Endpoint, msg: CtrlMsg) {
        self.metrics.ctrl_relay.inc();
        if matches!(msg, CtrlMsg::Coalesced { .. }) {
            self.metrics.ctrl_coalesced.inc();
        }
        self.send(from, to, msg);
    }

    fn send(&self, from: Endpoint, to: Endpoint, msg: CtrlMsg) {
        let mut meta = None;
        if let Some(rel) = &self.rel {
            let now = rel.clock.now();
            meta = timed_lock(rel.shard(from, to), &self.metrics).register(from, to, &msg, now);
            if meta.is_some() {
                rel.wake_pump_before(now + rel.base_timeout);
            }
            if rel.drop_buddy_help && expendable(&msg) {
                // Degradation knob: the announcement was sent (and is
                // pending) but never arrives; its expendable retry budget
                // runs out and the abandonment is metered.
                return;
            }
            if meta.is_some() && self.replaying.load(Ordering::Acquire) {
                // Journal replay: the registration above rebuilt the
                // sequence counter and pending entry, but the delivery (if
                // it happened) comes from the journal injection — routing
                // the regenerated copy would race it. Anything never
                // delivered stays pending for the pump to retransmit once
                // replay ends.
                return;
            }
            if let Some(chaos) = &self.chaos {
                let n = rel.nonce.fetch_add(1, Ordering::Relaxed);
                if chaos.cfg.lost(n, to, &msg) {
                    return; // lost on the wire; the pump retransmits
                }
            }
        }
        if let Some(chaos) = &self.chaos {
            if commutes(&msg) {
                let n = chaos.counter.fetch_add(1, Ordering::Relaxed);
                let now = Instant::now();
                let mut relayed = false;
                for d in chaos.cfg.extra_delays(n, to, &msg) {
                    relayed |= chaos
                        .relay
                        .send(RelayMsg::Deliver {
                            due: now + Duration::from_secs_f64(d),
                            to,
                            meta,
                            msg,
                        })
                        .is_ok();
                }
                if relayed {
                    return;
                }
                // Relay already gone (shutdown drained it): fall through to
                // one direct delivery so nothing is ever lost.
            }
        }
        self.route(to, meta, msg);
    }

    /// Retransmits an expired pending message: metered, subject to the same
    /// permanent-loss draws, routed directly. No re-registration (the
    /// pending entry already exists) and no chaos detour — retransmission
    /// is the recovery path; jittering it again only slows convergence.
    fn resend(&self, to: Endpoint, meta: WireMeta, msg: CtrlMsg) {
        let Some(rel) = &self.rel else { return };
        if self.replaying.load(Ordering::Acquire) {
            // A retransmit that lands mid-replay would deliver (and ack) a
            // message while journaling is off, breaking the journal =
            // delivered invariant. The entry stays pending; the pump
            // retries after replay ends.
            return;
        }
        self.metrics.ctrl(ctrl_class(&msg)).inc();
        if matches!(msg, CtrlMsg::Coalesced { .. }) {
            self.metrics.ctrl_coalesced.inc();
        }
        if rel.drop_buddy_help && expendable(&msg) {
            return;
        }
        if let Some(chaos) = &self.chaos {
            let n = rel.nonce.fetch_add(1, Ordering::Relaxed);
            if chaos.cfg.lost(n, to, &msg) {
                return;
            }
        }
        self.route(to, Some(meta), msg);
    }

    /// Runs one arriving message through the reliability layer: dedup,
    /// FIFO hold-back, ack generation. When the sender is in this process
    /// its acks are applied to its pending state in place — the shared
    /// layer plays the role of an instantaneous ack channel (still metered
    /// as `Ack` control traffic); the DES models the ack's network latency
    /// explicitly. When the sender lives in another process the acks
    /// travel back over its socket link instead and land via
    /// [`Net::apply_remote_ack`]. Unsequenced messages (and everything
    /// when the layer is unarmed) pass through.
    fn admit(
        &self,
        to: Endpoint,
        meta: Option<WireMeta>,
        msg: CtrlMsg,
    ) -> Vec<(Option<WireMeta>, CtrlMsg)> {
        let (Some(rel), Some(meta)) = (&self.rel, meta) else {
            return vec![(None, msg)];
        };
        let mut fresh_acks = false;
        let mut wire_acks = Vec::new();
        let remote_sender = !self.is_local(meta.from);
        let received = {
            let mut layer = timed_lock(rel.shard(meta.from, to), &self.metrics);
            let received = layer.receive(meta, to, msg);
            for seq in &received.acks {
                self.metrics.ctrl(CtrlClass::Ack).inc();
                if remote_sender {
                    wire_acks.push(*seq);
                } else {
                    fresh_acks |= layer.on_ack(meta.from, to, *seq);
                }
            }
            received
        };
        // Journal every accepted delivery *before* its ack can escape the
        // process: an acked message must survive a crash (the sender will
        // never retransmit it), so the append — and, at the link layer, the
        // sync — strictly precedes `send_ack`. Skipped during replay: the
        // records being re-admitted are already on disk.
        if let Some(wal) = &self.wal {
            if self.wal_active.load(Ordering::Acquire) {
                for &(m, msg) in &received.deliver {
                    wal.append(&WalRecord::Delivered {
                        ep: to,
                        meta: m,
                        msg,
                    });
                }
            }
        }
        if let (Some(links), false) = (&self.links, wire_acks.is_empty()) {
            for seq in wire_acks {
                links.send_ack(meta.from, to, seq);
            }
        }
        if fresh_acks && rel.draining.load(Ordering::Acquire) {
            // The drain blocks until pending traffic empties; every fresh
            // ack may be the one that empties it.
            let _guard = rel.pump_stop.lock();
            rel.pump_cv.notify_one();
        }
        received
            .deliver
            .into_iter()
            .map(|(m, msg)| (Some(m), msg))
            .collect()
    }

    /// Coalesced rep fan-out: delivers a whole engine step's (or mailbox
    /// drain's) control messages with one shard-lock acquisition and one
    /// mailbox push per *destination*, instead of one of each per message.
    /// Messages to one destination keep their emission order (per-link
    /// FIFO is what the protocol relies on; cross-destination order was
    /// never guaranteed by the mailboxes anyway). Only used when chaos is
    /// off — fault injection needs per-packet delivery decisions — so the
    /// permanent-loss draw never applies here; `drop_buddy_help` (which
    /// arms reliability without chaos) is honored per message.
    fn ctrl_flush(&self, from: Endpoint, msgs: Vec<(Endpoint, CtrlMsg)>) {
        debug_assert!(self.chaos.is_none(), "coalesced flush bypasses chaos");
        // Group by destination, preserving per-destination order.
        let mut groups: Vec<(Endpoint, Vec<CtrlMsg>)> = Vec::new();
        for (to, msg) in msgs {
            match groups.iter_mut().find(|(t, _)| *t == to) {
                Some((_, g)) => g.push(msg),
                None => groups.push((to, vec![msg])),
            }
        }
        for (to, group) in groups {
            let mut batch: Vec<(Option<WireMeta>, CtrlMsg)> = Vec::with_capacity(group.len());
            if let Some(rel) = &self.rel {
                let now = rel.clock.now();
                let mut registered = false;
                {
                    let mut layer = timed_lock(rel.shard(from, to), &self.metrics);
                    for msg in group {
                        self.metrics.ctrl(ctrl_class(&msg)).inc();
                        if matches!(msg, CtrlMsg::Coalesced { .. }) {
                            self.metrics.ctrl_coalesced.inc();
                        }
                        let meta = layer.register(from, to, &msg, now);
                        registered |= meta.is_some();
                        if rel.drop_buddy_help && expendable(&msg) {
                            // Sent-but-never-arrives: stays pending until
                            // its expendable budget is abandoned.
                            continue;
                        }
                        if meta.is_some() && self.replaying.load(Ordering::Acquire) {
                            // Replay suppression, as in `send`.
                            continue;
                        }
                        batch.push((meta, msg));
                    }
                }
                if registered {
                    rel.wake_pump_before(now + rel.base_timeout);
                }
            } else {
                for msg in group {
                    self.metrics.ctrl(ctrl_class(&msg)).inc();
                    if matches!(msg, CtrlMsg::Coalesced { .. }) {
                        self.metrics.ctrl_coalesced.inc();
                    }
                    batch.push((None, msg));
                }
            }
            self.route_batch(to, batch);
        }
    }

    /// Pushes one destination's coalesced batch: one mailbox push per
    /// *mailbox* touched. A process endpoint splits into its agent mailbox
    /// (forwarded requests, buddy-help) and per-connection import
    /// mailboxes (answer broadcasts) — the same split [`Net::route`]
    /// applies per message, so per-mailbox FIFO order is preserved.
    fn route_batch(&self, to: Endpoint, mut batch: Vec<(Option<WireMeta>, CtrlMsg)>) {
        if !self.is_local(to) {
            if let Some(links) = &self.links {
                for (meta, msg) in batch {
                    links.send_ctrl(to, meta, msg);
                }
            }
            return;
        }
        if batch.len() == 1 {
            let (meta, msg) = batch.pop().expect("len checked");
            return self.route(to, meta, msg);
        }
        match to {
            Endpoint::Rep { prog } => {
                if batch.is_empty() {
                    return;
                }
                self.metrics.ctrl_batches.inc();
                if let Some(mb) = &self.to_rep[prog] {
                    if mb.push(RepMsg::Batch(batch)) {
                        self.metrics.queue_depth.add(1);
                    }
                }
            }
            Endpoint::Proc { prog, rank } => {
                let mut agent_run: Vec<(Option<WireMeta>, CtrlMsg)> = Vec::new();
                // Per-connection answer runs (an importer rank has one
                // mailbox per imported region).
                let mut answer_runs: Vec<(ConnectionId, Vec<_>)> = Vec::new();
                for (meta, msg) in batch {
                    match msg {
                        CtrlMsg::AnswerBcast { conn, req, answer } => {
                            match answer_runs.iter_mut().find(|(c, _)| *c == conn) {
                                Some((_, run)) => run.push((meta, req, answer)),
                                None => answer_runs.push((conn, vec![(meta, req, answer)])),
                            }
                        }
                        CtrlMsg::Coalesced {
                            conn,
                            req,
                            answer,
                            bcast: true,
                            help: false,
                        } => {
                            // Not folded into the per-conn answer run: the
                            // importer task must see the coalesced form to
                            // take up its relay duty.
                            let _ = self.to_imp[conn.0 as usize][rank].push(ImpMsg::Coalesced {
                                meta,
                                req,
                                answer,
                            });
                        }
                        m @ (CtrlMsg::ForwardRequest { .. }
                        | CtrlMsg::BuddyHelp { .. }
                        | CtrlMsg::Coalesced {
                            bcast: false,
                            help: true,
                            ..
                        }
                        | CtrlMsg::Heartbeat { .. }) => agent_run.push((meta, m)),
                        _ => record_err(&self.err, "unroutable process message"),
                    }
                }
                if agent_run.len() >= 2 {
                    self.metrics.ctrl_batches.inc();
                }
                match agent_run.len() {
                    0 => {}
                    1 => {
                        let (meta, msg) = agent_run.pop().expect("len checked");
                        self.route(to, meta, msg);
                    }
                    _ => {
                        if let Some(mb) = &self.to_agent[prog][rank] {
                            if mb.push(AgentMsg::Batch(agent_run)) {
                                self.metrics.queue_depth.add(1);
                            }
                        }
                    }
                }
                for (conn, mut run) in answer_runs {
                    let mb = &self.to_imp[conn.0 as usize][rank];
                    if run.len() == 1 {
                        let (meta, req, answer) = run.pop().expect("len checked");
                        let _ = mb.push(ImpMsg::Answer { meta, req, answer });
                    } else {
                        self.metrics.ctrl_batches.inc();
                        let _ = mb.push(ImpMsg::AnswerBatch(run));
                    }
                }
            }
        }
    }

    /// Routes one control message. Pushes are best-effort: a retired
    /// mailbox means its task already finished (shutdown or a recorded
    /// error), which the caller surfaces separately. A destination hosted
    /// by another process is handed to its socket link instead.
    fn route(&self, to: Endpoint, meta: Option<WireMeta>, msg: CtrlMsg) {
        if !self.is_local(to) {
            if let Some(links) = &self.links {
                links.send_ctrl(to, meta, msg);
            }
            return;
        }
        match to {
            Endpoint::Rep { prog } => {
                if let Some(mb) = &self.to_rep[prog] {
                    if mb.push(RepMsg::Ctrl(meta, msg)) {
                        self.metrics.queue_depth.add(1);
                    }
                }
            }
            Endpoint::Proc { prog, rank } => match msg {
                CtrlMsg::AnswerBcast { conn, req, answer } => {
                    let _ = self.to_imp[conn.0 as usize][rank].push(ImpMsg::Answer {
                        meta,
                        req,
                        answer,
                    });
                }
                CtrlMsg::Coalesced {
                    conn,
                    req,
                    answer,
                    bcast: true,
                    help: false,
                } => {
                    let _ = self.to_imp[conn.0 as usize][rank].push(ImpMsg::Coalesced {
                        meta,
                        req,
                        answer,
                    });
                }
                m @ (CtrlMsg::ForwardRequest { .. }
                | CtrlMsg::BuddyHelp { .. }
                | CtrlMsg::Coalesced {
                    bcast: false,
                    help: true,
                    ..
                }
                | CtrlMsg::Heartbeat { .. }) => {
                    if let Some(mb) = &self.to_agent[prog][rank] {
                        if mb.push(AgentMsg::Ctrl(meta, m)) {
                            self.metrics.queue_depth.add(1);
                        }
                    }
                }
                _ => record_err(&self.err, "unroutable process message"),
            },
        }
    }
}

/// Transport for messages emitted by an exporting process: control goes
/// through the routing table; a transfer packs the matched object from the
/// region's shared store into per-destination pieces.
struct ProcTransport<'a> {
    net: &'a Net,
    from: Endpoint,
    node: &'a ExportNode,
    stores: &'a [BTreeMap<Timestamp, SharedArray>],
}

impl Transport for ProcTransport<'_> {
    type Error = ThreadedError;

    fn ctrl(&mut self, to: Endpoint, msg: CtrlMsg) -> Result<(), ThreadedError> {
        self.net.ctrl(self.from, to, msg);
        Ok(())
    }

    fn transfer(
        &mut self,
        from: Endpoint,
        conn: ConnectionId,
        req: RequestId,
        m: Timestamp,
    ) -> Result<(), ThreadedError> {
        let Endpoint::Proc { rank, .. } = from else {
            return Err(ThreadedError::Config("rep emitted a data transfer".into()));
        };
        let region = self
            .node
            .region_of(conn)
            .ok_or_else(|| ThreadedError::Config("transfer on a foreign connection".into()))?;
        let obj = match self.stores[region].get(&m) {
            Some(o) => o,
            // The object must be buffered when a send is requested; a
            // missing object would already have been reported as a
            // collective violation by the port.
            None => return Ok(()),
        };
        self.net.metrics.transfers.inc();
        let _span = self.net.metrics.phases.wall_span(Phase::Transfer);
        let ct = self.net.topo.conn(conn);
        for t in ct.plan.sends_from(rank) {
            self.net
                .metrics
                .bytes_transferred
                .add((t.rect.cells() * std::mem::size_of::<f64>()) as u64);
            let dst = Endpoint::Proc {
                prog: ct.importer_prog,
                rank: t.dst,
            };
            if !self.net.is_local(dst) {
                if let Some(links) = &self.net.links {
                    links.send_piece(conn, t.dst, req, t.rect, obj);
                }
                continue;
            }
            // Zero-copy: the piece shares the buffered object (an `Arc`
            // clone); the importer reads its sub-rectangle straight out of
            // the shared buffer. Best-effort: the importer may already be
            // shutting down.
            let _ = self.net.to_imp[conn.0 as usize][t.dst].push(ImpMsg::Piece {
                req,
                rect: t.rect,
                payload: obj.clone(),
            });
        }
        Ok(())
    }
}

/// Transport for rep tasks: control only.
struct RepTransport<'a> {
    net: &'a Net,
    from: Endpoint,
}

impl Transport for RepTransport<'_> {
    type Error = ThreadedError;

    fn ctrl(&mut self, to: Endpoint, msg: CtrlMsg) -> Result<(), ThreadedError> {
        self.net.ctrl(self.from, to, msg);
        Ok(())
    }

    fn transfer(
        &mut self,
        _from: Endpoint,
        _conn: ConnectionId,
        _req: RequestId,
        _m: Timestamp,
    ) -> Result<(), ThreadedError> {
        Err(ThreadedError::Config("rep emitted a data transfer".into()))
    }
}

fn record_err(slot: &ErrSlot, e: impl fmt::Display) {
    let mut guard = slot.lock();
    if guard.is_none() {
        *guard = Some(FabricErr {
            crash: false,
            detail: e.to_string(),
        });
    }
}

fn record_crash(slot: &ErrSlot, detail: String) {
    let mut guard = slot.lock();
    if guard.is_none() {
        *guard = Some(FabricErr {
            crash: true,
            detail,
        });
    }
}

/// Panic sink for one named control task: a contained poll panic surfaces
/// as `ProcessCrash` exactly like the per-thread loops' `catch_unwind`
/// wrappers did.
fn crash_sink(err: &ErrSlot, who: String) -> PanicSink {
    let err = err.clone();
    Arc::new(move |detail| record_crash(&err, format!("{who} panicked: {detail}")))
}

/// Delivers one engine step's messages (sends strictly before frees, per
/// the [`ExportFx`] contract) and applies the freed timestamps to the
/// stepped region's store.
fn apply_fx(
    net: &Net,
    from: Endpoint,
    state: &mut ExpState,
    region: usize,
    fx: ExportFx,
) -> Result<(), ThreadedError> {
    let ExpState { node, stores, .. } = state;
    let mut tp = ProcTransport {
        net,
        from,
        node,
        stores,
    };
    deliver_all(&mut tp, from, fx.msgs)?;
    for t in &fx.freed {
        stores[region].remove(t);
    }
    Ok(())
}

/// The per-process export API of the framework: one handle per exported
/// region, driving every connection the region feeds.
pub struct ExportAccess {
    prog: usize,
    rank: usize,
    region: usize,
    conns: Vec<ConnectionId>,
    cell: Arc<ExpCell>,
    net: Arc<Net>,
    clock: Arc<WallClock>,
    block_timeout: Duration,
}

impl ExportAccess {
    /// This process's rank within its program.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of connections this region feeds.
    pub fn connections(&self) -> usize {
        self.conns.len()
    }

    /// Exports the process's piece of the region at simulation time `ts` on
    /// every connection, returning one outcome per connection (in the
    /// region's connection order). The framework buffers (clones) the piece
    /// at most once unless every connection proves the object will never be
    /// needed. With a bounded buffer the call blocks while any connection's
    /// buffer is full, resuming when control traffic frees space; it gives
    /// up with [`ThreadedError::Timeout`] after the import timeout.
    pub fn export(
        &mut self,
        ts: Timestamp,
        data: &LocalArray,
    ) -> Result<Vec<ExportOutcome>, ThreadedError> {
        self.check_err()?;
        let _span = self.net.metrics.phases.wall_span(Phase::Export);
        let t0 = self.clock.now();
        let deadline = Instant::now() + self.block_timeout;
        let mut state = timed_lock(&self.cell.state, &self.net.metrics);
        let mut fx = loop {
            match state.node.on_export(self.region, ts) {
                Err(EngineError::Port(couplink_proto::PortError::BufferFull { .. })) => {
                    // Finite buffer: stall until the agent's control traffic
                    // frees space, then retry the same export.
                    if self.cell.freed.wait_until(&mut state, deadline).timed_out() {
                        return Err(ThreadedError::Timeout);
                    }
                }
                other => break other.map_err(ThreadedError::from)?,
            }
        };
        // Journal the schedule position *before* any of this export's
        // messages can escape the process: a restarted node replays its
        // `AppExport` records (regenerating the deterministic payloads) to
        // put the engine back exactly where the application's schedule was.
        // Skipped during replay — these records are what is being replayed.
        if let Some(wal) = &self.net.wal {
            if self.net.wal_active.load(Ordering::Acquire) {
                wal.append(&WalRecord::AppExport {
                    ep: Endpoint::Proc {
                        prog: self.prog,
                        rank: self.rank,
                    },
                    region: self.region as u32,
                    ts,
                });
            }
        }
        if fx.copy {
            // The real buffering memcpy the paper is about — one shared
            // allocation no matter how many connections, pieces or
            // retransmits the object ends up serving.
            self.net.metrics.payload_allocs.inc();
            state.stores[self.region].insert(ts, SharedArray::copy_from(data));
        }
        let actions = std::mem::take(&mut fx.actions);
        apply_fx(
            &self.net,
            Endpoint::Proc {
                prog: self.prog,
                rank: self.rank,
            },
            &mut state,
            self.region,
            fx,
        )?;
        drop(state);
        let elapsed = Duration::from_secs_f64((self.clock.now() - t0).max(0.0));
        Ok(actions
            .into_iter()
            .map(|(_, action)| ExportOutcome {
                action: action.into(),
                elapsed,
            })
            .collect())
    }

    /// Statistics per connection, in the region's connection order.
    pub fn stats(&self) -> Vec<ExportStats> {
        let state = self.cell.state.lock();
        self.conns
            .iter()
            .map(|&c| state.node.port_stats(c).clone())
            .collect()
    }

    /// Objects currently buffered, summed over the region's connections (an
    /// object needed by two connections counts twice; the shared store
    /// holds it once).
    pub fn buffered_len(&self) -> usize {
        let state = self.cell.state.lock();
        self.conns
            .iter()
            .map(|&c| state.node.conn_buffered_len(c))
            .sum()
    }

    fn check_err(&self) -> Result<(), ThreadedError> {
        if let Some(e) = self.net.err.lock().clone() {
            return Err(e.to_error());
        }
        Ok(())
    }
}

/// The per-process import API of the framework: one handle per imported
/// region (exactly one connection).
///
/// Unlike the pre-executor fabric the application thread no longer owns
/// the importer's mailbox — the importer *task* feeds answers and pieces
/// into the shared [`ImpCell`]; `import()` just waits on its condvar for
/// the node to reach `Done`.
pub struct ImportAccess {
    prog: usize,
    rank: usize,
    conn: ConnectionId,
    cell: Arc<ImpCell>,
    pieces: PieceMap,
    net: Arc<Net>,
    timeout: Duration,
}

impl ImportAccess {
    /// This process's rank within its program.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Collectively imports the data matched to `ts` into `dest` (this
    /// process's piece). Blocks until the framework answers. Returns the
    /// matched timestamp, or `None` if the request had no match (in which
    /// case `dest` is untouched).
    pub fn import(
        &mut self,
        ts: Timestamp,
        dest: &mut LocalArray,
    ) -> Result<Option<Timestamp>, ThreadedError> {
        let _span = self.net.metrics.phases.wall_span(Phase::Import);
        let (req, call) = self.cell.node.lock().begin_import(self.conn, ts)?;
        let me = Endpoint::Proc {
            prog: self.prog,
            rank: self.rank,
        };
        match call {
            Outgoing::Ctrl { to, msg } => self.net.ctrl(me, to, msg),
            Outgoing::Transfer { .. } => {
                return Err(ThreadedError::Config("import emitted a transfer".into()))
            }
        }
        let deadline = Instant::now() + self.timeout;
        let mut node = self.cell.node.lock();
        loop {
            if let Some(ImportState::Done { answer, .. }) = node.state(self.conn) {
                node.finish(self.conn);
                drop(node);
                return match answer {
                    RepAnswer::NoMatch => {
                        self.pieces.lock().remove(&req);
                        Ok(None)
                    }
                    RepAnswer::Match(m) => {
                        for (rect, payload) in self.pieces.lock().remove(&req).unwrap_or_default() {
                            // The one importer-side copy: sub-rectangle
                            // read straight out of the shared buffer.
                            payload.copy_into(&rect, dest);
                        }
                        Ok(Some(m))
                    }
                };
            }
            // Fail fast on a recorded fabric error (a crashed task or, in
            // the socket runtime, a dead peer) instead of sitting out the
            // full timeout — `fail_fast` wakes this condvar on purpose.
            if let Some(e) = self.net.err.lock().clone() {
                return Err(e.to_error());
            }
            if self.cell.cv.wait_until(&mut node, deadline).timed_out() {
                drop(node);
                if let Some(e) = self.net.err.lock().clone() {
                    return Err(e.to_error());
                }
                return Err(ThreadedError::Timeout);
            }
        }
    }
}

fn agent_step(
    net: &Net,
    cell: &ExpCell,
    prog: usize,
    rank: usize,
    msg: CtrlMsg,
) -> Result<(), ThreadedError> {
    let mut state = timed_lock(&cell.state, &net.metrics);
    let me = Endpoint::Proc { prog, rank };
    let procs = net.topo.programs[prog].procs;
    match msg {
        CtrlMsg::ForwardRequest { conn, req, ts } => {
            let fx = state.node.on_request(conn, req, ts)?;
            apply_conn_fx(net, me, &mut state, conn, fx)?;
            if net.hierarchical {
                // Advance the watermark, apply any help that overtook this
                // forward, then relay the forward down the subtree.
                let seen = state.fwd_seen.entry(conn).or_insert(req.0);
                *seen = (*seen).max(req.0);
                let (ready, later): (Vec<_>, Vec<_>) = std::mem::take(&mut state.help_stash)
                    .into_iter()
                    .partition(|&(c, r, _)| c == conn && r == req);
                state.help_stash = later;
                for (c, r, a) in ready {
                    let fx = state.node.on_buddy_help(c, r, a)?;
                    apply_conn_fx(net, me, &mut state, c, fx)?;
                }
                for child in tree::children(rank, procs) {
                    net.relay(
                        me,
                        Endpoint::Proc { prog, rank: child },
                        CtrlMsg::ForwardRequest { conn, req, ts },
                    );
                }
            }
        }
        CtrlMsg::BuddyHelp { conn, req, answer } => {
            let fx = state.node.on_buddy_help(conn, req, answer)?;
            apply_conn_fx(net, me, &mut state, conn, fx)?;
        }
        CtrlMsg::Coalesced {
            conn,
            req,
            answer,
            bcast: false,
            help: true,
        } => {
            // Apply only once the matching forward has been seen — the
            // export port cannot tell "not yet forwarded" from "resolved
            // and pruned", so help that overtakes its forward is stashed.
            if state.fwd_seen.get(&conn).is_some_and(|&m| m >= req.0) {
                let fx = state.node.on_buddy_help(conn, req, answer)?;
                apply_conn_fx(net, me, &mut state, conn, fx)?;
            } else {
                state.help_stash.push((conn, req, answer));
            }
            for child in tree::children(rank, procs) {
                net.relay(
                    me,
                    Endpoint::Proc { prog, rank: child },
                    CtrlMsg::Coalesced {
                        conn,
                        req,
                        answer,
                        bcast: false,
                        help: true,
                    },
                );
            }
        }
        _ => return Err(ThreadedError::Config("unexpected agent message".into())),
    }
    drop(state);
    // Buffer space may have been freed: wake a stalled exporter thread.
    cell.freed.notify_all();
    Ok(())
}

/// Applies an engine effect set for `conn`'s region (shared by every
/// message kind [`agent_step`] consumes).
fn apply_conn_fx(
    net: &Net,
    me: Endpoint,
    state: &mut ExpState,
    conn: ConnectionId,
    fx: ExportFx,
) -> Result<(), ThreadedError> {
    let region = state
        .node
        .region_of(conn)
        .ok_or_else(|| ThreadedError::Config("agent message on a foreign connection".into()))?;
    apply_fx(net, me, state, region, fx)
}

// --- executor tasks ---

/// The agent state machine: one per exporting process. Each poll drains a
/// bounded burst of forwarded requests and buddy-help; an injected agent
/// crash (`CrashTarget::Agent`) is a real panic, contained by the executor
/// and surfaced through the panic sink as `ProcessCrash` — the arriving
/// packet dies with the task, unacked.
struct AgentTask {
    net: Arc<Net>,
    cell: Arc<ExpCell>,
    prog: usize,
    rank: usize,
    crash_after: Option<u64>,
    mbox: Arc<Mailbox<AgentMsg>>,
    consumed: u64,
}

impl Task for AgentTask {
    fn poll(&mut self, _now: Instant) -> Poll {
        let mut msgs = 0u64;
        for _ in 0..REP_BATCH {
            let batch = match self.mbox.pop() {
                None => break,
                Some(AgentMsg::Shutdown) => {
                    return Poll {
                        msgs,
                        done: true,
                        deadline: None,
                        more: false,
                    }
                }
                Some(AgentMsg::Ctrl(meta, m)) => {
                    self.net.metrics.queue_depth.sub(1);
                    msgs += 1;
                    vec![(meta, m)]
                }
                Some(AgentMsg::Batch(ms)) => {
                    self.net.metrics.queue_depth.sub(1);
                    msgs += 1;
                    ms
                }
            };
            for (meta, m) in batch {
                if matches!(m, CtrlMsg::Heartbeat { .. }) {
                    // Members just observe rep liveness; recovery itself is
                    // modeled in the rep task below.
                    continue;
                }
                if self.crash_after.is_some_and(|k| self.consumed >= k) {
                    // Injected process crash (`CrashTarget::Agent`): a real
                    // panic, caught by the executor. The arriving packet
                    // dies with the task, unacked.
                    panic!("injected agent crash after {} messages", self.consumed);
                }
                let me = Endpoint::Proc {
                    prog: self.prog,
                    rank: self.rank,
                };
                for (_, m) in self.net.admit(me, meta, m) {
                    self.consumed += 1;
                    if let Err(e) = agent_step(&self.net, &self.cell, self.prog, self.rank, m) {
                        record_err(&self.net.err, e);
                        return Poll {
                            msgs,
                            done: true,
                            deadline: None,
                            more: false,
                        };
                    }
                }
            }
        }
        Poll {
            msgs,
            done: false,
            deadline: None,
            more: !self.mbox.is_empty(),
        }
    }
}

/// The rep state machine: consumes control messages through the
/// reliability layer (when armed), journals every delivery, heartbeats its
/// members on a periodic timer, and — if targeted by a crash fault — dies
/// and recovers in place across polls.
///
/// The crash is packet-granular, matching the simulator: once the rep has
/// consumed `after_msgs` messages, the *next arriving packet* kills it and
/// is itself lost unacked. While dead the rep discards its mailbox on
/// every poll (everything unacked — senders keep retransmitting) and its
/// timer is armed at the restart instant. Recovery — after `restart_after`
/// wall seconds, or after members notice `HB_TIMEOUT` of heartbeat silence
/// and promote the deterministic successor — rebuilds the aggregation
/// state by replaying the delivery journal, then restores the reliability
/// layer's receive state so retransmits of already-consumed messages dedup
/// and held-back messages re-deliver in order. The successor inherits the
/// journal because journal replay is deterministic: any member that
/// recorded the same deliveries rebuilds the same state.
///
/// The crash-while-queued case the pooled executor introduces — the fatal
/// packet is sitting in the mailbox while the task waits for a worker —
/// behaves identically: the crash triggers at *consumption*, whenever the
/// poll happens, and the dead window starts from that poll's `now`.
struct RepTask {
    net: Arc<Net>,
    topo: Arc<Topology>,
    prog: usize,
    buddy_help: bool,
    hierarchical: bool,
    fault: Option<CrashFault>,
    mbox: Arc<Mailbox<RepMsg>>,
    node: RepNode,
    consumed: u64,
    crash_armed: bool,
    beat: u64,
    next_beat: Option<Instant>,
    /// While `Some`, the rep is dead and restarts at this instant.
    dead_until: Option<Instant>,
    crashed_at: Option<Instant>,
    /// Members that can receive heartbeats (exporting processes have agent
    /// tasks; importing application threads are only reachable mid-import
    /// and watch the rep through the error slot instead).
    members: Vec<usize>,
    /// When this rep last sent protocol traffic to each member, for
    /// heartbeat piggybacking: a standalone heartbeat is suppressed (and
    /// metered as `hb_suppressed`) when real traffic already proved the
    /// link alive within the heartbeat window.
    last_send: HashMap<usize, Instant>,
    /// Coalesced fan-out needs per-packet fault decisions to be off; with
    /// chaos armed the rep falls back to per-message polls (and the crash
    /// fault keeps its packet-granular semantics).
    batching: bool,
}

impl RepTask {
    /// Discards everything queued while the rep is dead (unacked — the
    /// senders keep retransmitting). A shutdown marker still terminates.
    fn discard_mailbox(&self) -> bool {
        while let Some(m) = self.mbox.pop() {
            match m {
                RepMsg::Shutdown => return true,
                RepMsg::Ctrl(..) | RepMsg::Batch(..) => self.net.metrics.queue_depth.sub(1),
            }
        }
        false
    }
}

impl Task for RepTask {
    fn poll(&mut self, now: Instant) -> Poll {
        let ep = Endpoint::Rep { prog: self.prog };
        if let Some(du) = self.dead_until {
            if now < du {
                // Still dead: everything arriving dies unacked.
                if self.discard_mailbox() {
                    return Poll {
                        msgs: 0,
                        done: true,
                        deadline: None,
                        more: false,
                    };
                }
                return Poll {
                    msgs: 0,
                    done: false,
                    deadline: Some(du),
                    more: false,
                };
            }
            // Restart: rebuild the aggregation state from the session's
            // delivery journal (the WAL's per-endpoint log — in-memory for
            // the in-process failover, file-backed in the socket runtime).
            self.dead_until = None;
            self.node = RepNode::new(&self.topo, self.prog, self.buddy_help, self.hierarchical);
            let journal = self
                .net
                .wal
                .as_ref()
                .map(|w| w.delivered(ep))
                .unwrap_or_default();
            let msgs: Vec<CtrlMsg> = journal.iter().map(|&(_, m)| m).collect();
            if let Err(e) = self.node.replay(&self.topo, &msgs) {
                record_err(&self.net.err, ThreadedError::from(e));
                return Poll {
                    msgs: 0,
                    done: true,
                    deadline: None,
                    more: false,
                };
            }
            if let Some(rel) = &self.net.rel {
                let metas: Vec<WireMeta> = journal.iter().map(|&(mm, _)| mm).collect();
                rel.restore_delivered(ep, &metas);
            }
            self.net.metrics.failovers.inc();
            if let Some(t0) = self.crashed_at.take() {
                self.net
                    .metrics
                    .recovery_ms
                    .observe(t0.elapsed().as_millis() as u64);
            }
        }
        // Periodic heartbeat while the reliability layer is armed.
        if self.net.rel.is_some() {
            match self.next_beat {
                None => self.next_beat = Some(now + HB_INTERVAL),
                Some(nb) if now >= nb => {
                    self.beat += 1;
                    for &r in &self.members {
                        // Piggybacking: real protocol traffic within the
                        // heartbeat window already proved this link alive,
                        // so the standalone beat is suppressed. Failover
                        // stays intact — a stalled link carries no traffic,
                        // so its beats keep flowing.
                        if self
                            .last_send
                            .get(&r)
                            .is_some_and(|&t| now.duration_since(t) < HB_INTERVAL)
                        {
                            self.net.metrics.hb_suppressed.inc();
                            continue;
                        }
                        self.net.ctrl(
                            ep,
                            Endpoint::Proc {
                                prog: self.prog,
                                rank: r,
                            },
                            CtrlMsg::Heartbeat { beat: self.beat },
                        );
                    }
                    self.next_beat = Some(now + HB_INTERVAL);
                }
                Some(_) => {}
            }
        }
        // Drain the mailbox burst: everything already queued (up to the
        // coalescing bound) is folded into one engine pass whose fan-out
        // flushes coalesced. A shutdown marker found mid-drain still
        // processes everything received before it.
        let cap = if self.batching { REP_BATCH } else { 1 };
        let mut burst: Vec<(Option<WireMeta>, CtrlMsg)> = Vec::new();
        let mut shutdown = false;
        let mut msgs = 0u64;
        while burst.len() < cap {
            match self.mbox.pop() {
                None => break,
                Some(RepMsg::Shutdown) => {
                    shutdown = true;
                    break;
                }
                Some(RepMsg::Ctrl(meta, m)) => {
                    self.net.metrics.queue_depth.sub(1);
                    msgs += 1;
                    burst.push((meta, m));
                }
                Some(RepMsg::Batch(ms)) => {
                    self.net.metrics.queue_depth.sub(1);
                    msgs += 1;
                    burst.extend(ms);
                }
            }
        }
        let mut outgoing: Vec<(Endpoint, CtrlMsg)> = Vec::new();
        for (meta, m) in burst {
            if self.crash_armed {
                // Chaos (and therefore a crash fault) implies per-message
                // bursts, so the fatal packet is always the whole burst.
                let f = self.fault.expect("crash_armed implies a fault");
                if matches!(f.target, CrashTarget::Rep(p) if p == self.prog)
                    && self.consumed >= f.after_msgs
                {
                    self.crash_armed = false;
                    let crashed_at = Instant::now();
                    if let Some(rel) = &self.net.rel {
                        rel.crash_endpoint(ep);
                    }
                    // The fatal packet and everything arriving while dead
                    // die unacked; the pump keeps retransmitting them.
                    let du =
                        crashed_at + f.restart_after.map_or(HB_TIMEOUT, Duration::from_secs_f64);
                    self.crashed_at = Some(crashed_at);
                    self.dead_until = Some(du);
                    if self.discard_mailbox() {
                        return Poll {
                            msgs,
                            done: true,
                            deadline: None,
                            more: false,
                        };
                    }
                    return Poll {
                        msgs,
                        done: false,
                        deadline: Some(du),
                        more: false,
                    };
                }
            }
            for (_dm, m) in self.net.admit(ep, meta, m) {
                self.consumed += 1;
                let step = self
                    .node
                    .on_msg(&self.topo, m)
                    .map_err(ThreadedError::from)
                    .and_then(|outs| -> Result<(), ThreadedError> {
                        if self.batching {
                            for o in outs {
                                match o {
                                    Outgoing::Ctrl { to, msg } => outgoing.push((to, msg)),
                                    Outgoing::Transfer { .. } => {
                                        return Err(ThreadedError::Config(
                                            "rep emitted a data transfer".into(),
                                        ))
                                    }
                                }
                            }
                            Ok(())
                        } else {
                            for o in &outs {
                                if let Outgoing::Ctrl {
                                    to: Endpoint::Proc { rank, .. },
                                    ..
                                } = o
                                {
                                    self.last_send.insert(*rank, now);
                                }
                            }
                            let mut tp = RepTransport {
                                net: &self.net,
                                from: ep,
                            };
                            deliver_all(&mut tp, ep, outs)
                        }
                    });
                if let Err(e) = step {
                    record_err(&self.net.err, e);
                    return Poll {
                        msgs,
                        done: true,
                        deadline: None,
                        more: false,
                    };
                }
            }
        }
        if !outgoing.is_empty() {
            for &(to, _) in &outgoing {
                if let Endpoint::Proc { rank, .. } = to {
                    self.last_send.insert(rank, now);
                }
            }
            self.net.ctrl_flush(ep, outgoing);
        }
        Poll {
            msgs,
            done: shutdown,
            deadline: self.dead_until.or(self.next_beat),
            more: !shutdown && !self.mbox.is_empty(),
        }
    }
}

/// The importer-side state machine: one per (connection, importing rank).
/// Feeds answer broadcasts and data pieces into the rank's shared
/// [`ImpCell`] and wakes the blocked application thread. Pieces land in
/// the shared piece map *before* the node observes them, so a woken
/// importer that sees `Done` always sees the complete piece set.
struct ImpTask {
    net: Arc<Net>,
    prog: usize,
    rank: usize,
    conn: ConnectionId,
    mbox: Arc<Mailbox<ImpMsg>>,
    cell: Arc<ImpCell>,
    pieces: PieceMap,
    /// Pieces already accepted, keyed `(request, rectangle)`. Pieces are
    /// not sequenced by the reliability layer, so a replaying exporter (or
    /// a link replaying its unacked backlog after a reconnect) may resend
    /// pieces this rank already holds; accepting a duplicate would
    /// double-count `on_piece` and corrupt the import's piece arithmetic.
    seen_pieces: HashSet<(RequestId, Rect)>,
}

impl ImpTask {
    /// Runs one received answer through the reliability layer (dedup of
    /// retransmitted broadcasts) and into the import node.
    fn on_answer_msg(
        &self,
        me: Endpoint,
        meta: Option<WireMeta>,
        req: RequestId,
        answer: RepAnswer,
    ) -> Result<(), ThreadedError> {
        // Re-wrap into wire form so the reliability layer can dedup
        // retransmitted answers before delivery.
        let wire = CtrlMsg::AnswerBcast {
            conn: self.conn,
            req,
            answer,
        };
        for (_, m) in self.net.admit(me, meta, wire) {
            if let CtrlMsg::AnswerBcast { req, answer, .. } = m {
                self.cell.node.lock().on_answer(self.conn, req, answer)?;
            }
        }
        Ok(())
    }

    /// Runs a coalesced tree-broadcast answer through the reliability layer,
    /// applies it to the import node, and relays it to this rank's subtree.
    /// The relay happens once per *accepted* delivery (dedup upstream), and
    /// each hop is independently registered, so a lost relay is healed by
    /// this rank's retransmits rather than the rep's.
    fn on_coalesced_msg(
        &self,
        me: Endpoint,
        meta: Option<WireMeta>,
        req: RequestId,
        answer: RepAnswer,
    ) -> Result<(), ThreadedError> {
        let wire = CtrlMsg::Coalesced {
            conn: self.conn,
            req,
            answer,
            bcast: true,
            help: false,
        };
        for (_, m) in self.net.admit(me, meta, wire) {
            if let CtrlMsg::Coalesced { req, answer, .. } = m {
                self.cell.node.lock().on_answer(self.conn, req, answer)?;
                let procs = self.net.topo.programs[self.prog].procs;
                for child in tree::children(self.rank, procs) {
                    self.net.relay(
                        me,
                        Endpoint::Proc {
                            prog: self.prog,
                            rank: child,
                        },
                        CtrlMsg::Coalesced {
                            conn: self.conn,
                            req,
                            answer,
                            bcast: true,
                            help: false,
                        },
                    );
                }
            }
        }
        Ok(())
    }
}

impl Task for ImpTask {
    fn poll(&mut self, _now: Instant) -> Poll {
        let me = Endpoint::Proc {
            prog: self.prog,
            rank: self.rank,
        };
        let mut msgs = 0u64;
        let mut done = false;
        let mut failed: Option<ThreadedError> = None;
        for _ in 0..REP_BATCH {
            match self.mbox.pop() {
                None => break,
                Some(ImpMsg::Shutdown) => {
                    done = true;
                    break;
                }
                Some(ImpMsg::Answer { meta, req, answer }) => {
                    msgs += 1;
                    if let Err(e) = self.on_answer_msg(me, meta, req, answer) {
                        failed = Some(e);
                        break;
                    }
                }
                Some(ImpMsg::Coalesced { meta, req, answer }) => {
                    msgs += 1;
                    if let Err(e) = self.on_coalesced_msg(me, meta, req, answer) {
                        failed = Some(e);
                        break;
                    }
                }
                Some(ImpMsg::AnswerBatch(answers)) => {
                    msgs += 1;
                    for (meta, req, answer) in answers {
                        if let Err(e) = self.on_answer_msg(me, meta, req, answer) {
                            failed = Some(e);
                            break;
                        }
                    }
                    if failed.is_some() {
                        break;
                    }
                }
                Some(ImpMsg::Piece { req, rect, payload }) => {
                    msgs += 1;
                    if !self.seen_pieces.insert((req, rect)) {
                        // Duplicate (exporter replay or link reconnect
                        // resend): already held, drop it.
                        continue;
                    }
                    // Piece strictly before the node can flip to `Done`:
                    // a waiter woken by the condvar must see every piece.
                    self.pieces
                        .lock()
                        .entry(req)
                        .or_default()
                        .push((rect, payload));
                    if let Err(e) = self
                        .cell
                        .node
                        .lock()
                        .on_piece(self.conn, req)
                        .map_err(ThreadedError::from)
                    {
                        failed = Some(e);
                        break;
                    }
                }
            }
        }
        if let Some(e) = failed {
            record_err(&self.net.err, e);
            done = true;
        }
        // The node's state may have advanced: wake the blocked importer.
        self.cell.cv.notify_all();
        Poll {
            msgs,
            done,
            deadline: None,
            more: !done && !self.mbox.is_empty(),
        }
    }
}

/// One pump tick: resend everything the retry policy says is due, shard by
/// shard (each shard's lock is held only while its due list is collected).
fn pump_tick(net: &Net, rel: &NetRel) {
    let now = rel.clock.now();
    for shard in &rel.shards {
        let due = shard.lock().due(now);
        for e in due {
            match e {
                Expiry::Resend { to, meta, msg } => net.resend(to, meta, msg),
                // Abandoned traffic (expendable buddy-help, or the
                // max-attempts backstop) is already metered by the layer;
                // nothing to send.
                Expiry::Abandon { .. } => {}
            }
        }
    }
}

/// The retransmit pump as a timer-wheel task: each poll resends what is
/// due and re-arms its deadline at the earliest pending retry across the
/// shards. With nothing pending it parks with no timer (an idle session
/// burns no CPU); a registration with an earlier deadline re-schedules it
/// through [`NetRel::wake_pump_before`].
///
/// The idle-arm race — a sender registering between this task's deadline
/// scan and its `pump_until` store — is closed by scanning *again* after
/// publishing the infinite sleep: the second scan and the registration
/// both take the link's shard lock, so either the scan observes the
/// registration or the sender observes the published `INFINITY` and
/// re-schedules this task.
struct PumpTask {
    net: Arc<Net>,
}

impl Task for PumpTask {
    fn poll(&mut self, now: Instant) -> Poll {
        let Some(rel) = &self.net.rel else {
            return Poll {
                msgs: 0,
                done: true,
                deadline: None,
                more: false,
            };
        };
        if *rel.pump_stop.lock() {
            // Shutdown drains pending traffic on the caller's thread
            // (`Session::shutdown`), not here.
            return Poll {
                msgs: 0,
                done: true,
                deadline: None,
                more: false,
            };
        }
        pump_tick(&self.net, rel);
        let mut next = rel.next_deadline();
        if next.is_none() {
            rel.pump_until
                .store(f64::INFINITY.to_bits(), Ordering::Release);
            // Close the lost-wakeup window (see the type doc).
            next = rel.next_deadline();
        }
        match next {
            Some(d) => {
                rel.pump_until.store(d.to_bits(), Ordering::Release);
                let wait = (d - rel.clock.now()).max(0.0);
                Poll {
                    msgs: 0,
                    done: false,
                    deadline: Some(now + Duration::from_secs_f64(wait)),
                    more: false,
                }
            }
            None => Poll::idle(),
        }
    }
}

/// The chaos relay: holds each delayed message copy until its due instant,
/// then routes it. On shutdown (marker or disconnect) every still-pending
/// message is delivered immediately — chaos delays messages, it never
/// loses them, which is what keeps the liveness oracle valid. This stays a
/// dedicated thread (not a task): it exists only under chaos, and its
/// seeded delivery instants should not depend on worker-pool load.
fn relay_loop(net: Arc<Net>, rx: Receiver<RelayMsg>) {
    let mut pending: Vec<(Instant, Endpoint, Option<WireMeta>, CtrlMsg)> = Vec::new();
    loop {
        // Deliver everything already due, then wait for the next deadline.
        let now = Instant::now();
        let mut i = 0;
        while i < pending.len() {
            if pending[i].0 <= now {
                let (_, to, meta, msg) = pending.swap_remove(i);
                net.route(to, meta, msg);
            } else {
                i += 1;
            }
        }
        let received = match pending.iter().map(|p| p.0).min() {
            Some(due) => match rx.recv_timeout(due.saturating_duration_since(Instant::now())) {
                Ok(m) => Some(m),
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => None,
            },
            None => rx.recv().ok(),
        };
        match received {
            Some(RelayMsg::Deliver { due, to, meta, msg }) => pending.push((due, to, meta, msg)),
            Some(RelayMsg::Shutdown) | None => {
                pending.sort_by_key(|p| p.0);
                for (_, to, meta, msg) in pending {
                    net.route(to, meta, msg);
                }
                return;
            }
        }
    }
}

/// How many executor tasks one session of `topo` under `opts` spawns: one
/// rep per coupled program, one agent per exporting process, one importer
/// task per (connection, importer rank), plus the retransmit pump when the
/// reliability layer is armed. The executor's at-most-once-queued
/// invariant bounds the session's `runq_depth` high-water mark by exactly
/// this number — the bound `simtest --stress` asserts.
pub fn session_task_count(topo: &Topology, opts: &FabricOptions) -> usize {
    let needs_rel = opts.drop_buddy_help
        || opts.wal.is_some()
        || opts.chaos.is_some_and(|c| c.needs_reliability());
    let mut n = usize::from(needs_rel);
    for p in &topo.programs {
        if !p.exports.is_empty() || !p.imports.is_empty() {
            n += 1; // rep task
        }
        if !p.exports.is_empty() {
            n += p.procs; // agent tasks
        }
    }
    for ct in &topo.conns {
        n += topo.programs[ct.importer_prog].procs; // importer tasks
    }
    n
}

// --- sessions ---

/// One running topology's state on the shared executor: its nodes, task
/// handles, mailboxes and per-session metrics.
struct Session {
    topo: Arc<Topology>,
    /// `[prog][rank]`, `Some` for exporting processes.
    cells: Vec<Vec<Option<Arc<ExpCell>>>>,
    /// `[prog][rank][region]`, taken once each.
    exports: Vec<Vec<Vec<Option<ExportAccess>>>>,
    /// `[prog][rank][imported region]`, taken once each.
    imports: Vec<Vec<Vec<Option<ImportAccess>>>>,
    reps: Vec<(Arc<Mailbox<RepMsg>>, TaskHandle)>,
    agents: Vec<(Arc<Mailbox<AgentMsg>>, TaskHandle)>,
    imps: Vec<(Arc<Mailbox<ImpMsg>>, TaskHandle)>,
    pump: Option<TaskHandle>,
    relay: Option<(Sender<RelayMsg>, JoinHandle<()>)>,
    net: Arc<Net>,
    err: ErrSlot,
    traces: Vec<(usize, usize, ConnectionId)>,
    /// Which program this process hosts (`None` = all of them).
    local: Option<usize>,
    /// Every local import cell, for [`Session::fail_fast`] wake-ups.
    imp_cells: Vec<Arc<ImpCell>>,
    metrics: Arc<EngineMetrics>,
}

impl Session {
    /// Builds one session's nodes and spawns its tasks on `exec` under
    /// session id `sid`. Mailboxes are created first (the routing table
    /// must exist before any task runs), then bound to their tasks in
    /// dependency order: pump, agents, reps, importers — a rep's first
    /// poll may heartbeat into agent mailboxes, which are already bound.
    fn new(topo: Topology, opts: FabricOptions, exec: &Executor, sid: SessionId) -> Self {
        Session::new_partial(topo, opts, exec, sid, None, None, None)
    }

    /// Like [`Session::new`], but hosting only program `local` when given
    /// (the socket runtime's shape: one OS process per program). Tasks,
    /// engine cells and application handles are built only for the hosted
    /// program; traffic for every other endpoint is handed to `links`.
    /// `metrics` lets the caller supply pre-made instrumentation — the
    /// socket node opens its durable journal (which meters replay) before
    /// the session exists.
    fn new_partial(
        topo: Topology,
        opts: FabricOptions,
        exec: &Executor,
        sid: SessionId,
        local: Option<usize>,
        links: Option<Arc<dyn RemoteLinks>>,
        metrics: Option<Arc<EngineMetrics>>,
    ) -> Self {
        let topo = Arc::new(topo);
        let err: ErrSlot = Arc::new(Mutex::new(None));
        let clock = Arc::new(WallClock::start());
        let metrics = metrics.unwrap_or_else(|| Arc::new(EngineMetrics::new()));
        let crash = opts.chaos.and_then(|c| c.crash);
        // Reliability is armed only when the faults require it — see
        // `NetRel`. Wall-clock retry timescales: first retransmit after
        // 50 ms, backing off to 400 ms.
        let needs_rel = opts.drop_buddy_help
            || opts.wal.is_some()
            || opts.chaos.is_some_and(|c| c.needs_reliability());
        let rel = needs_rel.then(|| {
            NetRel::new(
                RetryPolicy {
                    base_timeout: 0.05,
                    backoff: 2.0,
                    max_timeout: 0.4,
                    ..RetryPolicy::default()
                },
                &metrics,
                clock.clone(),
                opts.drop_buddy_help,
            )
        });

        // Mailboxes first (the routing table must exist before any task).
        // In a partial session only the hosted program's endpoints get
        // mailboxes: foreign destinations are forwarded by `Net::route`
        // before any mailbox lookup, so the holes are never touched.
        let mut rep_boxes: Vec<Option<Arc<Mailbox<RepMsg>>>> = Vec::new();
        let mut agent_boxes: Vec<Vec<Option<Arc<Mailbox<AgentMsg>>>>> = Vec::new();
        for (pi, p) in topo.programs.iter().enumerate() {
            let coupled = (!p.exports.is_empty() || !p.imports.is_empty()) && hosts(local, pi);
            rep_boxes.push(coupled.then(|| Arc::new(Mailbox::new())));
            let exporting = !p.exports.is_empty() && hosts(local, pi);
            agent_boxes.push(
                (0..p.procs)
                    .map(|_| exporting.then(|| Arc::new(Mailbox::new())))
                    .collect(),
            );
        }
        let mut imp_boxes: Vec<Vec<Arc<Mailbox<ImpMsg>>>> = Vec::new();
        for ct in &topo.conns {
            let procs = topo.programs[ct.importer_prog].procs;
            imp_boxes.push((0..procs).map(|_| Arc::new(Mailbox::new())).collect());
        }
        let relay_channel = opts.chaos.map(|cfg| {
            let (tx, rx) = unbounded::<RelayMsg>();
            (cfg, tx, rx)
        });
        let net = Arc::new(Net {
            topo: topo.clone(),
            to_rep: rep_boxes.clone(),
            to_agent: agent_boxes.clone(),
            to_imp: imp_boxes.clone(),
            err: err.clone(),
            chaos: relay_channel.as_ref().map(|(cfg, tx, _)| NetChaos {
                cfg: *cfg,
                counter: AtomicU64::new(0),
                relay: tx.clone(),
            }),
            rel,
            local,
            links,
            hierarchical: opts.hierarchical,
            // Armed reliability always journals (the rep failover replays
            // it); without an explicit backend the journal is in-memory.
            wal: needs_rel.then(|| opts.wal.clone().unwrap_or_else(WalHandle::mem)),
            replaying: AtomicBool::new(false),
            wal_active: AtomicBool::new(true),
            metrics: Arc::clone(&metrics),
        });
        if opts.hierarchical {
            let depth = topo
                .programs
                .iter()
                .map(|p| tree::depth(p.procs))
                .max()
                .unwrap_or(0);
            metrics.tree_depth.set(depth as u64);
        }
        // The chaos relay stays a dedicated thread; see `relay_loop`.
        let relay = relay_channel.map(|(_, tx, rx)| {
            let net = net.clone();
            let handle = std::thread::Builder::new()
                .name("couplink-chaos-relay".into())
                .spawn(move || relay_loop(net, rx))
                .expect("spawning chaos relay thread");
            (tx, handle)
        });
        let pump = net.rel.is_some().then(|| {
            let h = exec.spawn(
                sid,
                metrics.clone(),
                crash_sink(&err, "retry pump".into()),
                Box::new(PumpTask { net: net.clone() }),
            );
            if let Some(rel) = &net.rel {
                let _ = rel.pump_task.set(h.clone());
            }
            h
        });

        // Exporting processes: engine state + agent tasks.
        let mut cells: Vec<Vec<Option<Arc<ExpCell>>>> = Vec::new();
        let mut agents = Vec::new();
        for (pi, p) in topo.programs.iter().enumerate() {
            let mut prog_cells = Vec::new();
            for (rank, agent_box) in agent_boxes[pi].iter().enumerate() {
                let Some(mbox) = agent_box.clone() else {
                    prog_cells.push(None);
                    continue;
                };
                let mut node = ExportNode::new(&topo, pi, rank, opts.buffer_capacity);
                node.set_metrics(Arc::clone(&metrics));
                for &(tp, tr, tc) in &opts.traces {
                    if tp == pi && tr == rank {
                        node.enable_trace(tc);
                    }
                }
                let stores = (0..p.exports.len()).map(|_| BTreeMap::new()).collect();
                let cell = Arc::new(ExpCell {
                    state: Mutex::new(ExpState {
                        node,
                        stores,
                        fwd_seen: HashMap::new(),
                        help_stash: Vec::new(),
                    }),
                    freed: Condvar::new(),
                });
                let crash_after = crash.and_then(|f| match f.target {
                    CrashTarget::Agent { prog, rank: r } if prog == pi && r == rank => {
                        Some(f.after_msgs)
                    }
                    _ => None,
                });
                let handle = exec.spawn(
                    sid,
                    metrics.clone(),
                    crash_sink(&err, format!("agent {pi}.{rank}")),
                    Box::new(AgentTask {
                        net: net.clone(),
                        cell: cell.clone(),
                        prog: pi,
                        rank,
                        crash_after,
                        mbox: mbox.clone(),
                        consumed: 0,
                    }),
                );
                mbox.bind(handle.clone());
                agents.push((mbox, handle));
                prog_cells.push(Some(cell));
            }
            cells.push(prog_cells);
        }

        // Rep tasks.
        let mut reps = Vec::new();
        for (pi, rep_box) in rep_boxes.iter().enumerate() {
            let Some(mbox) = rep_box.clone() else {
                continue;
            };
            let fault = crash.filter(|f| matches!(f.target, CrashTarget::Rep(p) if p == pi));
            let members: Vec<usize> = (0..topo.programs[pi].procs)
                .filter(|&r| agent_boxes[pi][r].is_some())
                .collect();
            let handle = exec.spawn(
                sid,
                metrics.clone(),
                crash_sink(&err, format!("rep {pi}")),
                Box::new(RepTask {
                    net: net.clone(),
                    topo: topo.clone(),
                    prog: pi,
                    buddy_help: opts.buddy_help,
                    hierarchical: opts.hierarchical,
                    fault,
                    mbox: mbox.clone(),
                    node: RepNode::new(&topo, pi, opts.buddy_help, opts.hierarchical),
                    consumed: 0,
                    crash_armed: fault.is_some(),
                    beat: 0,
                    next_beat: None,
                    dead_until: None,
                    crashed_at: None,
                    members,
                    last_send: HashMap::new(),
                    batching: opts.chaos.is_none(),
                }),
            );
            mbox.bind(handle.clone());
            reps.push((mbox, handle));
        }

        // Application-side handles + importer tasks.
        let mut exports: Vec<Vec<Vec<Option<ExportAccess>>>> = Vec::new();
        let mut imports: Vec<Vec<Vec<Option<ImportAccess>>>> = Vec::new();
        let mut imps = Vec::new();
        let mut imp_cells: Vec<Arc<ImpCell>> = Vec::new();
        for (pi, p) in topo.programs.iter().enumerate() {
            if !hosts(local, pi) {
                // A foreign program's handles and importer tasks live in
                // the process hosting it.
                exports.push((0..p.procs).map(|_| Vec::new()).collect());
                imports.push((0..p.procs).map(|_| Vec::new()).collect());
                continue;
            }
            let mut prog_exports = Vec::new();
            let mut prog_imports = Vec::new();
            for rank in 0..p.procs {
                prog_exports.push(
                    p.exports
                        .iter()
                        .enumerate()
                        .map(|(ri, region)| {
                            Some(ExportAccess {
                                prog: pi,
                                rank,
                                region: ri,
                                conns: region.conns.clone(),
                                cell: cells[pi][rank].clone().expect("exporting process"),
                                net: net.clone(),
                                clock: clock.clone(),
                                block_timeout: opts.import_timeout,
                            })
                        })
                        .collect(),
                );
                let imp_cell = (!p.imports.is_empty()).then(|| {
                    let mut node = ImportNode::new(&topo, pi, rank);
                    node.set_metrics(Arc::clone(&metrics));
                    let cell = Arc::new(ImpCell {
                        node: Mutex::new(node),
                        cv: Condvar::new(),
                    });
                    imp_cells.push(cell.clone());
                    cell
                });
                prog_imports.push(
                    p.imports
                        .iter()
                        .map(|region| {
                            let cell = imp_cell.clone().expect("importing process");
                            let mbox = imp_boxes[region.conn.0 as usize][rank].clone();
                            let pieces: PieceMap = Arc::new(Mutex::new(HashMap::new()));
                            let handle = exec.spawn(
                                sid,
                                metrics.clone(),
                                crash_sink(&err, format!("importer {pi}.{rank}")),
                                Box::new(ImpTask {
                                    net: net.clone(),
                                    prog: pi,
                                    rank,
                                    conn: region.conn,
                                    mbox: mbox.clone(),
                                    cell: cell.clone(),
                                    pieces: pieces.clone(),
                                    seen_pieces: HashSet::new(),
                                }),
                            );
                            mbox.bind(handle.clone());
                            imps.push((mbox, handle));
                            Some(ImportAccess {
                                prog: pi,
                                rank,
                                conn: region.conn,
                                cell,
                                pieces,
                                net: net.clone(),
                                timeout: opts.import_timeout,
                            })
                        })
                        .collect(),
                );
            }
            exports.push(prog_exports);
            imports.push(prog_imports);
        }

        Session {
            topo,
            cells,
            exports,
            imports,
            reps,
            agents,
            imps,
            pump,
            relay,
            net,
            err,
            traces: opts.traces,
            local,
            imp_cells,
            metrics,
        }
    }

    /// Records a fatal error and wakes every blocked application call
    /// (stalled bounded exports, waiting imports) so they observe it now
    /// instead of after their full timeout. Used by the socket runtime
    /// when a peer process dies mid-run.
    fn fail_fast(&self, detail: String) {
        record_crash(&self.err, detail);
        for cell in self.cells.iter().flatten().flatten() {
            cell.freed.notify_all();
        }
        for cell in &self.imp_cells {
            cell.cv.notify_all();
        }
    }

    /// Stops this session's tasks and returns per-connection statistics
    /// and the recorded traces. Call after the application threads have
    /// finished and dropped their handles.
    ///
    /// # Shutdown ordering
    ///
    /// Stages matter here. An importer's `import()` returns as soon as its
    /// rep broadcasts the answer, but the *exporter's* rep sends its
    /// buddy-help notifications **after** the answer — so at the instant
    /// the application decides to shut down, a rep task may still be
    /// about to send buddy-help to agent mailboxes. If the agents' shutdown
    /// markers were enqueued first, that late buddy-help would land behind
    /// the marker and be silently dropped, losing the memcpy savings and —
    /// with a NO MATCH answer — leaving the request open forever on the
    /// helped rank. Therefore: first drain pending reliable traffic and
    /// retire the pump (no retransmission can land behind a marker), then
    /// the chaos relay (its delayed copies must reach the reps), then the
    /// reps (everything they owed is now in the agent mailboxes), then the
    /// agents, then the importer tasks — per-mailbox FIFO guarantees each
    /// consumes every pending message before seeing its marker.
    fn shutdown(mut self, exec: &Executor) -> Result<FabricReport, ThreadedError> {
        // Drain on the caller's thread: an import can complete while a
        // sequenced message is still owed to some rank (the rep answers as
        // soon as the collective decision is available; lagging ranks are
        // told via buddy-help), so the session may not stop while reliable
        // messages are pending unacked — stopping early would make a lost
        // `ForwardRequest` permanent and break collective order. Fresh
        // acks signal `pump_cv`, so the drain unblocks the instant pending
        // traffic empties; it terminates because loss draws are
        // independent per attempt and the retry policy's `max_attempts`
        // backstop abandons anything undeliverable (e.g. a crashed task's
        // mailbox). A recorded fabric error or `DRAIN_CAP` cuts it short —
        // the run is already failed or wedged.
        if let Some(rel) = &self.net.rel {
            rel.draining.store(true, Ordering::Release);
            let cap = Instant::now() + DRAIN_CAP;
            loop {
                pump_tick(&self.net, rel);
                if self.err.lock().is_some() || Instant::now() >= cap {
                    break;
                }
                let mut stop = rel.pump_stop.lock();
                // Checked under `pump_stop`: the ack that empties pending
                // traffic notifies while holding this lock, so it either
                // lands before this check or wakes the wait below.
                if rel.pending_total() == 0 {
                    break;
                }
                let wait = match rel.next_deadline() {
                    Some(d) => Duration::from_secs_f64((d - rel.clock.now()).max(0.0)),
                    // Pending but no deadline can only be a transient
                    // between a registration's bookkeeping steps.
                    None => Duration::from_millis(10),
                };
                let _ = rel.pump_cv.wait_for(
                    &mut stop,
                    wait.min(cap.saturating_duration_since(Instant::now())),
                );
            }
            *rel.pump_stop.lock() = true;
        }
        if let Some(h) = self.pump.take() {
            h.schedule();
            exec.wait_done(std::slice::from_ref(&h));
        }
        if let Some((tx, h)) = self.relay.take() {
            let _ = tx.send(RelayMsg::Shutdown);
            let _ = h.join();
        }
        for (mb, _) in &self.reps {
            let _ = mb.push(RepMsg::Shutdown);
        }
        let rep_handles: Vec<TaskHandle> = self.reps.iter().map(|(_, h)| h.clone()).collect();
        exec.wait_done(&rep_handles);
        for (mb, _) in &self.agents {
            let _ = mb.push(AgentMsg::Shutdown);
        }
        let agent_handles: Vec<TaskHandle> = self.agents.iter().map(|(_, h)| h.clone()).collect();
        exec.wait_done(&agent_handles);
        for (mb, _) in &self.imps {
            let _ = mb.push(ImpMsg::Shutdown);
        }
        let imp_handles: Vec<TaskHandle> = self.imps.iter().map(|(_, h)| h.clone()).collect();
        exec.wait_done(&imp_handles);
        if let Some(e) = self.err.lock().clone() {
            return Err(e.to_error());
        }
        let stats = self
            .topo
            .conns
            .iter()
            .map(|ct| {
                if !hosts(self.local, ct.exporter_prog) {
                    // A partial session reports only its own exporters;
                    // the orchestrator merges the per-process reports.
                    return Vec::new();
                }
                (0..self.topo.programs[ct.exporter_prog].procs)
                    .map(|rank| {
                        let cell = self.cells[ct.exporter_prog][rank]
                            .as_ref()
                            .expect("exporting process");
                        cell.state.lock().node.port_stats(ct.id).clone()
                    })
                    .collect()
            })
            .collect();
        let traces = self
            .traces
            .iter()
            .filter_map(|&(prog, rank, conn)| {
                let cell = self.cells[prog][rank].as_ref()?;
                let trace = cell.state.lock().node.take_trace(conn)?;
                Some((prog, rank, conn, trace))
            })
            .collect();
        Ok(FabricReport {
            stats,
            traces,
            metrics: self.metrics.snapshot(),
        })
    }
}

/// N independent [`Topology`] instances multiplexed on one worker pool,
/// each with its own [`EngineMetrics`] and fair (round-robin) scheduling
/// against its siblings. This is the many-programs-multiplexed-on-few-
/// workers shape: thousands of coupling sessions no longer cost two OS
/// threads per program.
pub struct SessionSet {
    exec: Executor,
    sessions: Vec<Option<Session>>,
}

impl SessionSet {
    /// Creates the worker pool (no sessions yet).
    pub fn new(opts: &ExecutorOptions) -> Self {
        SessionSet {
            exec: Executor::new(opts),
            sessions: Vec::new(),
        }
    }

    /// Worker (and run-queue shard) count of the shared pool.
    pub fn workers(&self) -> usize {
        self.exec.workers()
    }

    /// Adds one session for a validated topology, spawning its tasks on
    /// the shared pool. Returns the session's index.
    pub fn add_session(&mut self, topo: Topology, opts: FabricOptions) -> usize {
        let sid = self.exec.add_session();
        debug_assert_eq!(sid, self.sessions.len(), "session ids are dense");
        let session = Session::new(topo, opts, &self.exec, sid);
        self.sessions.push(Some(session));
        sid
    }

    /// Adds a partial session hosting only program `local`, with `links`
    /// carrying foreign-endpoint traffic — the socket runtime's entry
    /// point. `metrics` supplies pre-made instrumentation (the node's
    /// journal meters into it before the session exists); `None` creates a
    /// fresh set. Returns the session's index.
    pub(crate) fn add_partial_session(
        &mut self,
        topo: Topology,
        opts: FabricOptions,
        local: usize,
        links: Arc<dyn RemoteLinks>,
        metrics: Option<Arc<EngineMetrics>>,
    ) -> usize {
        let sid = self.exec.add_session();
        debug_assert_eq!(sid, self.sessions.len(), "session ids are dense");
        let session = Session::new_partial(
            topo,
            opts,
            &self.exec,
            sid,
            Some(local),
            Some(links),
            metrics,
        );
        self.sessions.push(Some(session));
        sid
    }

    /// One session's routing table, for injecting traffic that arrived
    /// over a socket link.
    pub(crate) fn session_net(&self, session: usize) -> Arc<Net> {
        Arc::clone(&self.session(session).net)
    }

    /// Records a fatal error on one session and wakes its blocked
    /// application calls (see `Session::fail_fast`).
    pub(crate) fn fail_session(&self, session: usize, detail: String) {
        if let Some(Some(s)) = self.sessions.get(session) {
            s.fail_fast(detail);
        }
    }

    fn session(&self, session: usize) -> &Session {
        self.sessions[session]
            .as_ref()
            .expect("session already shut down")
    }

    /// The topology one session runs.
    pub fn topology(&self, session: usize) -> &Topology {
        &self.session(session).topo
    }

    /// One session's instrumentation (shared by every node and handle of
    /// that session). Clone it out before `shutdown_session` if you need
    /// the counters afterwards.
    pub fn session_metrics(&self, session: usize) -> Arc<EngineMetrics> {
        Arc::clone(&self.session(session).metrics)
    }

    /// Takes the export handle for region `region` of process `rank` of
    /// program `prog` of session `session` (once).
    ///
    /// # Panics
    ///
    /// Panics if taken twice, or if the process exports no such region.
    pub fn take_export(
        &mut self,
        session: usize,
        prog: usize,
        rank: usize,
        region: usize,
    ) -> ExportAccess {
        self.sessions[session]
            .as_mut()
            .expect("session already shut down")
            .exports[prog][rank][region]
            .take()
            .expect("export handle already taken")
    }

    /// Takes the import handle for imported region `region` of process
    /// `rank` of program `prog` of session `session` (once).
    ///
    /// # Panics
    ///
    /// Panics if taken twice, or if the process imports no such region.
    pub fn take_import(
        &mut self,
        session: usize,
        prog: usize,
        rank: usize,
        region: usize,
    ) -> ImportAccess {
        self.sessions[session]
            .as_mut()
            .expect("session already shut down")
            .imports[prog][rank][region]
            .take()
            .expect("import handle already taken")
    }

    /// Drains and retires one session, releasing its runnables without
    /// touching its siblings (their tasks keep being scheduled throughout
    /// — the pool itself stays up). Returns the session's report.
    ///
    /// # Panics
    ///
    /// Panics if the session was already shut down.
    pub fn shutdown_session(&mut self, session: usize) -> Result<FabricReport, ThreadedError> {
        self.sessions[session]
            .take()
            .expect("session already shut down")
            .shutdown(&self.exec)
    }

    /// Drains every remaining session, then stops and joins the pool.
    /// The first session error (in index order) is returned; later
    /// sessions are still drained.
    pub fn shutdown(mut self) -> Result<(), ThreadedError> {
        let mut first_err = None;
        for s in 0..self.sessions.len() {
            if self.sessions[s].is_some() {
                if let Err(e) = self.shutdown_session(s) {
                    first_err.get_or_insert(e);
                }
            }
        }
        self.exec.shutdown();
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// A running multi-program fabric: the engine's nodes for one
/// [`Topology`], multiplexed on a private worker pool. A thin wrapper
/// around a single-session [`SessionSet`] — the pre-executor API,
/// unchanged.
pub struct Fabric {
    set: SessionSet,
}

impl Fabric {
    /// Builds the fabric for a validated topology and spawns its control
    /// tasks on a default-sized worker pool.
    pub fn new(topo: Topology, opts: FabricOptions) -> Self {
        let mut set = SessionSet::new(&ExecutorOptions::default());
        set.add_session(topo, opts);
        Fabric { set }
    }

    /// The topology this fabric runs.
    pub fn topology(&self) -> &Topology {
        self.set.topology(0)
    }

    /// The run-wide instrumentation shared by every node and handle.
    pub fn metrics(&self) -> Arc<EngineMetrics> {
        self.set.session_metrics(0)
    }

    /// Takes the export handle for region `region` of process `rank` of
    /// program `prog` (once).
    ///
    /// # Panics
    ///
    /// Panics if taken twice, or if the process exports no such region.
    pub fn take_export(&mut self, prog: usize, rank: usize, region: usize) -> ExportAccess {
        self.set.take_export(0, prog, rank, region)
    }

    /// Takes the import handle for imported region `region` of process
    /// `rank` of program `prog` (once).
    ///
    /// # Panics
    ///
    /// Panics if taken twice, or if the process imports no such region.
    pub fn take_import(&mut self, prog: usize, rank: usize, region: usize) -> ImportAccess {
        self.set.take_import(0, prog, rank, region)
    }

    /// Stops all control tasks and returns per-connection statistics and
    /// the recorded traces. Call after the application threads have
    /// finished and dropped their handles. See [`Session`]-level shutdown
    /// ordering notes on `SessionSet::shutdown_session`.
    pub fn shutdown(mut self) -> Result<FabricReport, ThreadedError> {
        self.set.shutdown_session(0)
    }

    /// Test hook: the exporting process's shared engine cell.
    #[cfg(test)]
    fn cell(&self, prog: usize, rank: usize) -> Arc<ExpCell> {
        self.set.session(0).cells[prog][rank]
            .clone()
            .expect("exporting process")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ConnTopo, ExportRegionTopo, ImportRegionTopo, ProgramTopo};
    use couplink_layout::{Decomposition, Extent2, LocalArray, RedistPlan};
    use couplink_time::{ts, MatchPolicy, Tolerance};

    /// One exported region (single rank) feeding two overlapping REGL
    /// connections: importer program A (two ranks) and importer program B
    /// (one rank). Three pieces leave the exporter for one buffered
    /// object; the zero-copy data plane must serve all of them from the
    /// single allocation made at the buffering decision.
    fn fanout_topology() -> (Topology, Decomposition, Decomposition, Decomposition) {
        let extent = Extent2::new(8, 8);
        let exp_d = Decomposition::row_block(extent, 1).expect("exporter decomp");
        let imp_a = Decomposition::row_block(extent, 2).expect("importer A decomp");
        let imp_b = Decomposition::row_block(extent, 1).expect("importer B decomp");
        let tol = Tolerance::new(1.5).expect("tolerance");
        let topo = Topology {
            programs: vec![
                ProgramTopo {
                    name: "E".into(),
                    procs: 1,
                    exports: vec![ExportRegionTopo {
                        name: "r".into(),
                        decomp: exp_d,
                        conns: vec![ConnectionId(0), ConnectionId(1)],
                    }],
                    imports: Vec::new(),
                },
                ProgramTopo {
                    name: "A".into(),
                    procs: 2,
                    exports: Vec::new(),
                    imports: vec![ImportRegionTopo {
                        name: "ma".into(),
                        decomp: imp_a,
                        conn: ConnectionId(0),
                    }],
                },
                ProgramTopo {
                    name: "B".into(),
                    procs: 1,
                    exports: Vec::new(),
                    imports: vec![ImportRegionTopo {
                        name: "mb".into(),
                        decomp: imp_b,
                        conn: ConnectionId(1),
                    }],
                },
            ],
            conns: vec![
                ConnTopo {
                    id: ConnectionId(0),
                    exporter_prog: 0,
                    exporter_region: 0,
                    importer_prog: 1,
                    importer_region: 0,
                    policy: MatchPolicy::RegL,
                    tolerance: tol,
                    plan: Arc::new(RedistPlan::build(exp_d, imp_a).expect("plan A")),
                },
                ConnTopo {
                    id: ConnectionId(1),
                    exporter_prog: 0,
                    exporter_region: 0,
                    importer_prog: 2,
                    importer_region: 0,
                    policy: MatchPolicy::RegL,
                    tolerance: tol,
                    plan: Arc::new(RedistPlan::build(exp_d, imp_b).expect("plan B")),
                },
            ],
        };
        (topo, exp_d, imp_a, imp_b)
    }

    /// The zero-copy sharing proof: one export buffered once
    /// (`payload_allocs == memcpy_paid == 1` for the served object) is
    /// delivered over three transfers (two ranks of A, one of B) without
    /// any further allocation, and the buffered object the store holds
    /// after serving is pointer-identical to the one captured at the
    /// buffering decision.
    #[test]
    fn one_buffered_object_serves_overlapping_connections_without_copies() {
        let (topo, exp_d, imp_a, imp_b) = fanout_topology();
        let mut fabric = Fabric::new(topo, FabricOptions::default());
        let metrics = fabric.metrics();
        let cell = fabric.cell(0, 0);

        let mut exp = fabric.take_export(0, 0, 0);
        let data = LocalArray::from_fn(exp_d.owned(0), |r, c| (r * 8 + c) as f64 + 0.25);
        exp.export(ts(1.0), &data).unwrap();
        // Captured at the buffering decision: the one allocation.
        let handle = cell.state.lock().stores[0]
            .get(&ts(1.0))
            .cloned()
            .expect("export buffered");
        assert_eq!(SharedArray::strong_count(&handle), 2, "store + our capture");
        assert_eq!(metrics.payload_allocs.get(), 1);
        // A second export past the request region makes REGL's match at
        // 1.0 definitive (region for import 2.0 at tol 1.5 is [0.5, 2.0]).
        exp.export(ts(5.0), &data).unwrap();

        let mut threads = Vec::new();
        for (prog, rank, decomp) in [(1usize, 0usize, imp_a), (1, 1, imp_a), (2, 0, imp_b)] {
            let mut imp = fabric.take_import(prog, rank, 0);
            let owned = decomp.owned(rank);
            threads.push(std::thread::spawn(move || {
                let mut dest = LocalArray::zeros(owned);
                let m = imp.import(ts(2.0), &mut dest).unwrap();
                assert_eq!(m, Some(ts(1.0)));
                for r in owned.row0..owned.row_end() {
                    for c in owned.col0..owned.col_end() {
                        assert_eq!(dest.get(r, c), (r * 8 + c) as f64 + 0.25);
                    }
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }

        let snap = metrics.snapshot();
        // One matched object per connection (2 transfers) fanned out as
        // three pieces — 4×8 and 4×8 to A's ranks plus 8×8 to B, 1024
        // bytes — while both exports were buffered exactly once each and
        // nothing else allocated payload memory.
        assert_eq!(snap.counters.transfers, 2, "{snap:?}");
        assert_eq!(snap.counters.bytes_transferred, 1024, "{snap:?}");
        assert_eq!(snap.counters.memcpy_paid, 2, "{snap:?}");
        assert_eq!(snap.counters.memcpy_skipped, 0, "{snap:?}");
        assert_eq!(
            snap.counters.payload_allocs, snap.counters.memcpy_paid,
            "{snap:?}"
        );
        // The store still holds the exact buffer captured before serving:
        // serving three transfers did not replace or re-copy it.
        if let Some(now) = cell.state.lock().stores[0].get(&ts(1.0)) {
            assert!(SharedArray::ptr_eq(&handle, now));
        }
        fabric.shutdown().unwrap();
    }

    /// The coalesced fan-out path is live on a fault-free fabric: the
    /// collective answer to a multi-rank importer goes out as at least one
    /// multi-message batch, and batching stays invisible to the protocol
    /// (the imports above already asserted values; here we pin the
    /// counter). Batching needs the scheduler to catch a rep with a
    /// multi-message mailbox backlog — likely but interleaving-dependent,
    /// so the run retries on a fresh fabric before declaring the path
    /// dead.
    #[test]
    fn rep_fanout_batches_on_fault_free_fabric() {
        let mut last = None;
        for _attempt in 0..4 {
            let (topo, exp_d, imp_a, imp_b) = fanout_topology();
            let mut fabric = Fabric::new(topo, FabricOptions::default());
            let metrics = fabric.metrics();
            let mut exp = fabric.take_export(0, 0, 0);
            let data = LocalArray::from_fn(exp_d.owned(0), |r, c| (r + c) as f64);
            let mut threads = Vec::new();
            for (prog, rank, decomp) in [(1usize, 0usize, imp_a), (1, 1, imp_a), (2, 0, imp_b)] {
                let mut imp = fabric.take_import(prog, rank, 0);
                let owned = decomp.owned(rank);
                threads.push(std::thread::spawn(move || {
                    let mut dest = LocalArray::zeros(owned);
                    for j in 1..=24 {
                        let m = imp.import(ts(j as f64), &mut dest).unwrap();
                        assert_eq!(m, Some(ts(j as f64)));
                    }
                }));
            }
            for j in 1..=24 {
                exp.export(ts(j as f64), &data).unwrap();
            }
            for t in threads {
                t.join().unwrap();
            }
            let snap = metrics.snapshot();
            fabric.shutdown().unwrap();
            if snap.counters.ctrl_batches > 0 {
                return;
            }
            last = Some(snap);
        }
        panic!("expected coalesced rep fan-out on a fault-free fabric in 4 runs: {last:?}");
    }

    /// Executor edge case: a rep crash armed on message count fires while
    /// the rep's messages sit queued in its mailbox (the crash check runs
    /// per-message inside a single poll burst, so by construction some of
    /// the fatal burst was "queued but not running" when the fault
    /// tripped). Journal-replay failover must still recover the session:
    /// every import completes and `failovers` records the restart.
    #[test]
    fn rep_crash_while_messages_queued_triggers_failover() {
        let (topo, exp_d, imp_a, imp_b) = fanout_topology();
        let opts = FabricOptions {
            import_timeout: Duration::from_secs(20),
            chaos: Some(ChaosConfig {
                seed: 11,
                max_delay: 0.0,
                duplicate_prob: 0.0,
                drop_prob: 0.0,
                retry_delay: 0.05,
                loss_prob: 0.0,
                crash: Some(CrashFault {
                    // Program 1's rep sees 2 ranks × 4 iterations of
                    // ImportCall traffic; dying after 3 leaves the rest
                    // of the burst pending in the mailbox.
                    target: CrashTarget::Rep(1),
                    after_msgs: 3,
                    restart_after: Some(0.05),
                }),
            }),
            ..FabricOptions::default()
        };
        let mut fabric = Fabric::new(topo, opts);
        let metrics = fabric.metrics();
        let mut exp = fabric.take_export(0, 0, 0);
        let data = LocalArray::from_fn(exp_d.owned(0), |r, c| (r * 3 + c) as f64);
        let mut threads = Vec::new();
        for (prog, rank, decomp) in [(1usize, 0usize, imp_a), (1, 1, imp_a), (2, 0, imp_b)] {
            let mut imp = fabric.take_import(prog, rank, 0);
            let owned = decomp.owned(rank);
            threads.push(std::thread::spawn(move || {
                let mut dest = LocalArray::zeros(owned);
                for j in 1..=4 {
                    let m = imp.import(ts(j as f64), &mut dest).unwrap();
                    assert_eq!(m, Some(ts(j as f64)));
                }
            }));
        }
        for j in 1..=4 {
            exp.export(ts(j as f64), &data).unwrap();
        }
        for t in threads {
            t.join().unwrap();
        }
        assert!(
            metrics.failovers.get() >= 1,
            "rep crash must be recovered by journal replay"
        );
        fabric.shutdown().unwrap();
    }

    /// Heartbeat piggybacking: with the reliability layer armed (a crash
    /// fault that never fires) and protocol traffic flowing continuously,
    /// every periodic beat finds its link freshly proven alive — zero
    /// standalone heartbeats go out, and each suppression is metered.
    /// Whether a beat tick lands inside the traffic window is
    /// interleaving-dependent, so the run retries on a fresh fabric.
    #[test]
    fn heartbeats_piggyback_on_protocol_traffic() {
        let mut last = None;
        for _attempt in 0..4 {
            let (topo, exp_d, imp_a, imp_b) = fanout_topology();
            let opts = FabricOptions {
                chaos: Some(ChaosConfig {
                    seed: 3,
                    max_delay: 0.0,
                    duplicate_prob: 0.0,
                    drop_prob: 0.0,
                    retry_delay: 0.05,
                    loss_prob: 0.0,
                    // Arms the reliability layer (and with it the
                    // heartbeat timer) without ever firing: the rep
                    // would need a million messages to die.
                    crash: Some(CrashFault {
                        target: CrashTarget::Rep(0),
                        after_msgs: 1_000_000,
                        restart_after: None,
                    }),
                }),
                ..FabricOptions::default()
            };
            let mut fabric = Fabric::new(topo, opts);
            let metrics = fabric.metrics();
            let mut exp = fabric.take_export(0, 0, 0);
            let data = LocalArray::from_fn(exp_d.owned(0), |r, c| (r + c) as f64);
            for j in 1..=24 {
                exp.export(ts(j as f64), &data).unwrap();
            }
            let mut threads = Vec::new();
            for (prog, rank, decomp) in [(1usize, 0usize, imp_a), (1, 1, imp_a), (2, 0, imp_b)] {
                let mut imp = fabric.take_import(prog, rank, 0);
                let owned = decomp.owned(rank);
                threads.push(std::thread::spawn(move || {
                    let mut dest = LocalArray::zeros(owned);
                    for j in 1..=24 {
                        // Pace the imports so the run spans several
                        // heartbeat periods with traffic on every link
                        // well inside each window.
                        std::thread::sleep(Duration::from_millis(5));
                        let m = imp.import(ts(j as f64), &mut dest).unwrap();
                        assert_eq!(m, Some(ts(j as f64)));
                    }
                }));
            }
            for t in threads {
                t.join().unwrap();
            }
            let snap = metrics.snapshot();
            fabric.shutdown().unwrap();
            assert_eq!(snap.counters.failovers, 0, "the armed crash must not fire");
            if snap.counters.ctrl(CtrlClass::Heartbeat) == 0 && snap.counters.hb_suppressed > 0 {
                return;
            }
            last = Some(snap);
        }
        panic!("expected fully piggybacked liveness (0 standalone heartbeats, >0 suppressed) in 4 runs: {last:?}");
    }

    /// Suppression must not cost failover: a rep that dies *without* a
    /// restart plan — the stalled-link case, silence on every member link
    /// — is still taken over after `HB_TIMEOUT`, every import completes,
    /// and the measured recovery stays within a ~1 s budget (recovery_ms
    /// histogram bucket 10 = 1024 ms).
    #[test]
    fn stalled_rep_fails_over_within_recovery_budget() {
        let (topo, exp_d, imp_a, imp_b) = fanout_topology();
        let opts = FabricOptions {
            import_timeout: Duration::from_secs(20),
            chaos: Some(ChaosConfig {
                seed: 5,
                max_delay: 0.0,
                duplicate_prob: 0.0,
                drop_prob: 0.0,
                retry_delay: 0.05,
                loss_prob: 0.0,
                crash: Some(CrashFault {
                    // The exporter program's rep — the hub whose member
                    // links the piggybacking quiets — goes silent after 3
                    // messages and never restarts on its own.
                    target: CrashTarget::Rep(0),
                    after_msgs: 3,
                    restart_after: None,
                }),
            }),
            ..FabricOptions::default()
        };
        let mut fabric = Fabric::new(topo, opts);
        let metrics = fabric.metrics();
        let mut exp = fabric.take_export(0, 0, 0);
        let data = LocalArray::from_fn(exp_d.owned(0), |r, c| (r * 2 + c) as f64);
        let mut threads = Vec::new();
        for (prog, rank, decomp) in [(1usize, 0usize, imp_a), (1, 1, imp_a), (2, 0, imp_b)] {
            let mut imp = fabric.take_import(prog, rank, 0);
            let owned = decomp.owned(rank);
            threads.push(std::thread::spawn(move || {
                let mut dest = LocalArray::zeros(owned);
                for j in 1..=4 {
                    let m = imp.import(ts(j as f64), &mut dest).unwrap();
                    assert_eq!(m, Some(ts(j as f64)));
                }
            }));
        }
        for j in 1..=4 {
            exp.export(ts(j as f64), &data).unwrap();
        }
        for t in threads {
            t.join().unwrap();
        }
        let snap = metrics.snapshot();
        fabric.shutdown().unwrap();
        assert!(
            snap.counters.failovers >= 1,
            "the silent rep must be taken over: {snap:?}"
        );
        let recoveries: u64 = snap.counters.recovery_ms.iter().sum();
        assert!(recoveries >= 1, "recovery time must be observed: {snap:?}");
        let over_budget: u64 = snap.counters.recovery_ms[11..].iter().sum();
        assert_eq!(
            over_budget, 0,
            "recovery exceeded the 1024 ms budget: {snap:?}"
        );
    }

    /// Minimal 1-exporter-rank / 1-importer-rank topology for multi-
    /// session tests.
    fn pair_topology() -> (Topology, Decomposition, Decomposition) {
        let extent = Extent2::new(4, 4);
        let exp_d = Decomposition::row_block(extent, 1).expect("exporter decomp");
        let imp_d = Decomposition::row_block(extent, 1).expect("importer decomp");
        let tol = Tolerance::new(0.25).expect("tolerance");
        let topo = Topology {
            programs: vec![
                ProgramTopo {
                    name: "E".into(),
                    procs: 1,
                    exports: vec![ExportRegionTopo {
                        name: "r".into(),
                        decomp: exp_d,
                        conns: vec![ConnectionId(0)],
                    }],
                    imports: Vec::new(),
                },
                ProgramTopo {
                    name: "I".into(),
                    procs: 1,
                    exports: Vec::new(),
                    imports: vec![ImportRegionTopo {
                        name: "m".into(),
                        decomp: imp_d,
                        conn: ConnectionId(0),
                    }],
                },
            ],
            conns: vec![ConnTopo {
                id: ConnectionId(0),
                exporter_prog: 0,
                exporter_region: 0,
                importer_prog: 1,
                importer_region: 0,
                policy: MatchPolicy::RegL,
                tolerance: tol,
                plan: Arc::new(RedistPlan::build(exp_d, imp_d).expect("plan")),
            }],
        };
        (topo, exp_d, imp_d)
    }

    /// Executor edge case + shutdown-ordering oracle for the pool: a
    /// session that finishes early releases its runnables without starving
    /// its sibling (the sibling completes a longer run afterwards on the
    /// same two workers), per-session counters stay isolated (each
    /// session's `sends` reflects only its own imports), the run-queue
    /// depth HWM never exceeds the session's task count, and no task of a
    /// drained session is polled after `shutdown_session` returns.
    #[test]
    fn session_set_isolates_sessions_and_stops_polling_after_shutdown() {
        let mut set = SessionSet::new(&ExecutorOptions {
            workers: Some(2),
            ..ExecutorOptions::default()
        });
        let (t0, exp_d, imp_d) = pair_topology();
        let (t1, _, _) = pair_topology();
        let s0 = set.add_session(t0, FabricOptions::default());
        let s1 = set.add_session(t1, FabricOptions::default());

        let drive = |set: &mut SessionSet, sid: usize, iters: usize| {
            let mut exp = set.take_export(sid, 0, 0, 0);
            let mut imp = set.take_import(sid, 1, 0, 0);
            let owned = imp_d.owned(0);
            let importer = std::thread::spawn(move || {
                let mut dest = LocalArray::zeros(owned);
                for j in 1..=iters {
                    let m = imp.import(ts(j as f64), &mut dest).unwrap();
                    assert_eq!(m, Some(ts(j as f64)));
                }
            });
            let data = LocalArray::from_fn(exp_d.owned(0), |r, c| (r + c) as f64);
            for j in 1..=iters {
                exp.export(ts(j as f64), &data).unwrap();
            }
            importer.join().unwrap();
        };

        // Session 1 finishes early...
        drive(&mut set, s1, 3);
        let m1 = set.session_metrics(s1);
        let task_budget = session_task_count(set.topology(s1), &FabricOptions::default());
        let r1 = set.shutdown_session(s1).unwrap();
        assert_eq!(r1.stats[0][0].sends, 3, "session 1 served its own imports");
        assert!(
            r1.metrics.counters.runq_depth_hwm <= task_budget as u64,
            "runq HWM {} must be bounded by the session's {} tasks",
            r1.metrics.counters.runq_depth_hwm,
            task_budget
        );
        let frozen = m1.tasks_polled.get();
        assert!(frozen > 0, "session 1's tasks ran at all");

        // ...and its sibling keeps the (released) pool to itself.
        drive(&mut set, s0, 8);
        let r0 = set.shutdown_session(s0).unwrap();
        assert_eq!(r0.stats[0][0].sends, 8, "session 0 unaffected by sibling");

        // No task of the drained session was polled after its shutdown.
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(
            m1.tasks_polled.get(),
            frozen,
            "session 1 polled after shutdown_session drained it"
        );
        set.shutdown().unwrap();
    }
}
