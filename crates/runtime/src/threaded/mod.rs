//! The threaded in-process runtime: real threads, real channels, real
//! memcpys.
//!
//! Each simulated *program* is a set of OS threads. User code (an example, a
//! bench, a test) drives one [`ExporterHandle`] or [`ImporterHandle`] per
//! process from its own thread — exactly like an SPMD rank calling the
//! framework library. Per program there is one *rep* thread (the paper's
//! low-overhead control gateway), and per exporter process a small *agent*
//! thread standing in for the framework's asynchronous progress engine: it
//! answers forwarded requests and consumes buddy-help while the application
//! thread is busy computing.
//!
//! Buffering is a real `memcpy`: the framework clones the process's
//! `LocalArray` piece into its buffer, so `export()` latency measured by the
//! benches reflects genuine copy costs, and skipped buffering is a genuine
//! saving.

use couplink_layout::{LocalArray, Rect, RedistPlan};
use couplink_proto::export_port::{ExportAction, ExportPort, PortError};
use couplink_proto::import_port::{ImportError, ImportPort, ImportState};
use couplink_proto::rep::{ExporterRep, ImporterRep};
use couplink_proto::{ConnectionId, ProcResponse, Rank, RepAnswer, RequestId};
use couplink_time::{MatchPolicy, Timestamp, Tolerance};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Error from the threaded runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum ThreadedError {
    /// A protocol machine rejected an event.
    Port(PortError),
    /// An importer port rejected an event.
    Import(ImportError),
    /// A rep thread died on a protocol violation; the message describes it.
    RepFailed(String),
    /// A channel was disconnected (a peer thread exited early).
    Disconnected,
    /// `import` timed out waiting for an answer or data.
    Timeout,
    /// Bad configuration.
    Config(String),
}

impl fmt::Display for ThreadedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThreadedError::Port(e) => write!(f, "export port: {e}"),
            ThreadedError::Import(e) => write!(f, "import port: {e}"),
            ThreadedError::RepFailed(s) => write!(f, "rep failed: {s}"),
            ThreadedError::Disconnected => write!(f, "peer thread disconnected"),
            ThreadedError::Timeout => write!(f, "import timed out"),
            ThreadedError::Config(s) => write!(f, "bad configuration: {s}"),
        }
    }
}

impl std::error::Error for ThreadedError {}

impl From<PortError> for ThreadedError {
    fn from(e: PortError) -> Self {
        ThreadedError::Port(e)
    }
}
impl From<ImportError> for ThreadedError {
    fn from(e: ImportError) -> Self {
        ThreadedError::Import(e)
    }
}

/// Configuration of a threaded coupled pair (one connection).
#[derive(Debug, Clone)]
pub struct PairConfig {
    /// Decomposition of the array over the exporting program.
    pub exporter_decomp: couplink_layout::Decomposition,
    /// Decomposition of the same array over the importing program.
    pub importer_decomp: couplink_layout::Decomposition,
    /// Match policy.
    pub policy: MatchPolicy,
    /// Tolerance.
    pub tolerance: f64,
    /// Whether buddy-help is enabled.
    pub buddy_help: bool,
    /// How long an `import` waits before giving up.
    pub import_timeout: Duration,
    /// Per-process framework buffer capacity in objects (`None` =
    /// unbounded). With a bound, `export` blocks while the buffer is full
    /// and resumes when control traffic frees space (§6's finite-buffer
    /// scenario); it gives up with [`ThreadedError::Timeout`] after the
    /// import timeout.
    pub buffer_capacity: Option<usize>,
}

impl PairConfig {
    /// A sensible default timeout.
    pub fn new(
        exporter_decomp: couplink_layout::Decomposition,
        importer_decomp: couplink_layout::Decomposition,
        policy: MatchPolicy,
        tolerance: f64,
        buddy_help: bool,
    ) -> Self {
        PairConfig {
            exporter_decomp,
            importer_decomp,
            policy,
            tolerance,
            buddy_help,
            import_timeout: Duration::from_secs(30),
            buffer_capacity: None,
        }
    }
}

// --- message types ---

enum ExpRepMsg {
    ImportRequest { req: RequestId, ts: Timestamp },
    Response { rank: Rank, req: RequestId, resp: ProcResponse },
    Shutdown,
}

enum ImpRepMsg {
    Call { rank: Rank, ts: Timestamp },
    Answer { req: RequestId, answer: RepAnswer },
    Shutdown,
}

enum AgentMsg {
    Forward { req: RequestId, ts: Timestamp },
    BuddyHelp { req: RequestId, answer: RepAnswer },
    Shutdown,
}

enum ImpMsg {
    Answer { req: RequestId, answer: RepAnswer },
    Piece { req: RequestId, rect: Rect, payload: Vec<f64> },
}

struct ExpShared {
    port: ExportPort,
    store: BTreeMap<Timestamp, LocalArray>,
}

/// One exporter process's shared state plus its buffer-freed condvar
/// (parking_lot condvars are bound to a single mutex, so each rank pairs
/// its own).
struct ExpCell {
    state: Mutex<ExpShared>,
    freed: Condvar,
}

/// What one `export` call did, with its measured duration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExportOutcome {
    /// Whether the object was copied, copied-and-sent, or skipped.
    pub action: crate::des::coupled::ActionKind,
    /// Wall-clock duration of the export call (the Figure 4 measurement).
    pub elapsed: Duration,
}

/// The per-process exporter API of the framework.
pub struct ExporterHandle {
    rank: usize,
    shared: Arc<ExpCell>,
    plan: Arc<RedistPlan>,
    to_rep: Sender<ExpRepMsg>,
    to_imps: Vec<Sender<ImpMsg>>,
    block_timeout: Duration,
    err: Arc<Mutex<Option<String>>>,
}

impl ExporterHandle {
    /// This process's rank in the exporting program.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Exports the process's piece of the distributed array at simulation
    /// time `ts`. The framework buffers (clones) the piece unless it can
    /// prove the object will never be needed.
    pub fn export(&mut self, ts: Timestamp, data: &LocalArray) -> Result<ExportOutcome, ThreadedError> {
        self.check_rep()?;
        let start = Instant::now();
        let deadline = start + self.block_timeout;
        let mut shared = self.shared.state.lock();
        let fx = loop {
            match shared.port.on_export(ts) {
                Err(PortError::BufferFull { .. }) => {
                    // Finite buffer: stall until the agent's control traffic
                    // frees space, then retry the same export.
                    if self
                        .shared
                        .freed
                        .wait_until(&mut shared, deadline)
                        .timed_out()
                    {
                        return Err(ThreadedError::Timeout);
                    }
                }
                other => break other?,
            }
        };
        let action = fx.action.expect("on_export always decides");
        if action.copies() {
            // The real buffering memcpy the paper is about.
            shared.store.insert(ts, data.clone());
        }
        // Sends must be executed before frees: the port may free a matched
        // object in the very step that requests its transfer (the next
        // request's region bound already passed it).
        if let ExportAction::BufferAndSend { request } = action {
            send_pieces(&self.plan, self.rank, request, ts, &shared.store, &self.to_imps);
        }
        for r in &fx.resolutions {
            if let Some(m) = r.send {
                send_pieces(&self.plan, self.rank, r.request, m, &shared.store, &self.to_imps);
            }
            let resp = match r.answer {
                RepAnswer::Match(m) => ProcResponse::Match(m),
                RepAnswer::NoMatch => ProcResponse::NoMatch,
            };
            self.to_rep
                .send(ExpRepMsg::Response {
                    rank: Rank(self.rank as u32),
                    req: r.request,
                    resp,
                })
                .map_err(|_| ThreadedError::Disconnected)?;
        }
        for t in &fx.freed {
            shared.store.remove(t);
        }
        drop(shared);
        let elapsed = start.elapsed();
        Ok(ExportOutcome {
            action: action.into(),
            elapsed,
        })
    }

    /// A snapshot of this process's export statistics.
    pub fn stats(&self) -> couplink_proto::ExportStats {
        self.shared.state.lock().port.stats().clone()
    }

    /// Number of objects currently buffered by the framework for this
    /// process.
    pub fn buffered_len(&self) -> usize {
        self.shared.state.lock().port.buffered_len()
    }

    fn check_rep(&self) -> Result<(), ThreadedError> {
        if let Some(e) = self.err.lock().clone() {
            return Err(ThreadedError::RepFailed(e));
        }
        Ok(())
    }
}

/// The per-process importer API of the framework.
pub struct ImporterHandle {
    rank: usize,
    port: ImportPort,
    from_fabric: Receiver<ImpMsg>,
    to_rep: Sender<ImpRepMsg>,
    pieces: HashMap<RequestId, Vec<(Rect, Vec<f64>)>>,
    timeout: Duration,
    err: Arc<Mutex<Option<String>>>,
}

impl ImporterHandle {
    /// This process's rank in the importing program.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Collectively imports the data matched to `ts` into `dest` (this
    /// process's piece). Blocks until the framework answers. Returns the
    /// matched timestamp, or `None` if the request had no match (in which
    /// case `dest` is untouched).
    pub fn import(
        &mut self,
        ts: Timestamp,
        dest: &mut LocalArray,
    ) -> Result<Option<Timestamp>, ThreadedError> {
        let req = self.port.begin_import(ts)?;
        self.to_rep
            .send(ImpRepMsg::Call {
                rank: Rank(self.rank as u32),
                ts,
            })
            .map_err(|_| ThreadedError::Disconnected)?;
        let deadline = Instant::now() + self.timeout;
        loop {
            if let ImportState::Done { answer, .. } = self.port.state() {
                self.port.finish();
                return match answer {
                    RepAnswer::NoMatch => {
                        self.pieces.remove(&req);
                        Ok(None)
                    }
                    RepAnswer::Match(m) => {
                        for (rect, payload) in self.pieces.remove(&req).unwrap_or_default() {
                            dest.unpack(&rect, &payload);
                        }
                        Ok(Some(m))
                    }
                };
            }
            let remaining = deadline
                .checked_duration_since(Instant::now())
                .ok_or(ThreadedError::Timeout)?;
            match self.from_fabric.recv_timeout(remaining) {
                Ok(ImpMsg::Answer { req, answer }) => self.port.on_answer(req, answer)?,
                Ok(ImpMsg::Piece { req, rect, payload }) => {
                    self.port.on_piece(req)?;
                    self.pieces.entry(req).or_default().push((rect, payload));
                }
                Err(RecvTimeoutError::Timeout) => {
                    if let Some(e) = self.err.lock().clone() {
                        return Err(ThreadedError::RepFailed(e));
                    }
                    return Err(ThreadedError::Timeout);
                }
                Err(RecvTimeoutError::Disconnected) => {
                    if let Some(e) = self.err.lock().clone() {
                        return Err(ThreadedError::RepFailed(e));
                    }
                    return Err(ThreadedError::Disconnected);
                }
            }
        }
    }
}

/// Packs and sends rank `rank`'s share of the matched object `m`.
fn send_pieces(
    plan: &RedistPlan,
    rank: usize,
    req: RequestId,
    m: Timestamp,
    store: &BTreeMap<Timestamp, LocalArray>,
    to_imps: &[Sender<ImpMsg>],
) {
    let obj = match store.get(&m) {
        Some(o) => o,
        // The object must be buffered when a send is requested; a missing
        // object would already have been reported as a collective violation
        // by the port, so this is unreachable in practice.
        None => return,
    };
    for t in plan.sends_from(rank) {
        let payload = obj.pack(&t.rect);
        // Ignore disconnects: the importer may already be shutting down.
        let _ = to_imps[t.dst].send(ImpMsg::Piece {
            req,
            rect: t.rect,
            payload,
        });
    }
}

/// A running coupled pair: one exporting and one importing program connected
/// by one region connection, with rep and agent threads live.
pub struct CoupledPair {
    exporters: Vec<Option<ExporterHandle>>,
    importers: Vec<Option<ImporterHandle>>,
    shared: Vec<Arc<ExpCell>>,
    agents: Vec<(Sender<AgentMsg>, JoinHandle<()>)>,
    exp_rep: Option<(Sender<ExpRepMsg>, JoinHandle<()>)>,
    imp_rep: Option<(Sender<ImpRepMsg>, JoinHandle<()>)>,
    err: Arc<Mutex<Option<String>>>,
}

impl CoupledPair {
    /// Builds the pair and spawns its control threads.
    pub fn new(cfg: PairConfig) -> Result<Self, ThreadedError> {
        let ne = cfg.exporter_decomp.procs();
        let ni = cfg.importer_decomp.procs();
        let plan = Arc::new(
            RedistPlan::build(cfg.exporter_decomp, cfg.importer_decomp)
                .map_err(|e| ThreadedError::Config(e.to_string()))?,
        );
        let tol = Tolerance::new(cfg.tolerance)
            .map_err(|e| ThreadedError::Config(e.to_string()))?;
        let err = Arc::new(Mutex::new(None::<String>));
        let conn = ConnectionId(0);

        let (to_exp_rep, exp_rep_rx) = unbounded::<ExpRepMsg>();
        let (to_imp_rep, imp_rep_rx) = unbounded::<ImpRepMsg>();
        let imp_channels: Vec<(Sender<ImpMsg>, Receiver<ImpMsg>)> =
            (0..ni).map(|_| unbounded()).collect();
        let to_imps: Vec<Sender<ImpMsg>> = imp_channels.iter().map(|(s, _)| s.clone()).collect();

        // Exporter process state + agent threads.
        let mut shared_ports = Vec::with_capacity(ne);
        let mut agents = Vec::with_capacity(ne);
        let mut agent_senders = Vec::with_capacity(ne);
        for rank in 0..ne {
            let shared = Arc::new(ExpCell {
                state: Mutex::new(ExpShared {
                    port: match cfg.buffer_capacity {
                        Some(cap) => ExportPort::with_capacity(conn, cfg.policy, tol, cap),
                        None => ExportPort::new(conn, cfg.policy, tol),
                    },
                    store: BTreeMap::new(),
                }),
                freed: Condvar::new(),
            });
            shared_ports.push(shared.clone());
            let (tx, rx) = unbounded::<AgentMsg>();
            agent_senders.push(tx.clone());
            let plan = plan.clone();
            let to_rep = to_exp_rep.clone();
            let to_imps = to_imps.clone();
            let err = err.clone();
            let handle = std::thread::Builder::new()
                .name(format!("couplink-agent-{rank}"))
                .spawn(move || {
                    agent_loop(rank, shared, rx, plan, to_rep, to_imps, err);
                })
                .expect("spawning agent thread");
            agents.push((tx, handle));
        }

        // Exporter rep thread.
        let exp_rep_handle = {
            let agent_senders = agent_senders.clone();
            let to_imp_rep = to_imp_rep.clone();
            let err = err.clone();
            let buddy = cfg.buddy_help;
            std::thread::Builder::new()
                .name("couplink-exp-rep".into())
                .spawn(move || {
                    exp_rep_loop(ne, buddy, exp_rep_rx, agent_senders, to_imp_rep, err);
                })
                .expect("spawning exporter rep thread")
        };

        // Importer rep thread.
        let imp_rep_handle = {
            let to_exp_rep = to_exp_rep.clone();
            let to_imps = to_imps.clone();
            let err = err.clone();
            std::thread::Builder::new()
                .name("couplink-imp-rep".into())
                .spawn(move || {
                    imp_rep_loop(ni, imp_rep_rx, to_exp_rep, to_imps, err);
                })
                .expect("spawning importer rep thread")
        };

        let exporters = (0..ne)
            .map(|rank| {
                Some(ExporterHandle {
                    rank,
                    shared: shared_ports[rank].clone(),
                    plan: plan.clone(),
                    to_rep: to_exp_rep.clone(),
                    to_imps: to_imps.clone(),
                    block_timeout: cfg.import_timeout,
                    err: err.clone(),
                })
            })
            .collect();
        let importers = imp_channels
            .into_iter()
            .enumerate()
            .map(|(rank, (_, rx))| {
                Some(ImporterHandle {
                    rank,
                    port: ImportPort::new(plan.recvs_to(rank).count()),
                    from_fabric: rx,
                    to_rep: to_imp_rep.clone(),
                    pieces: HashMap::new(),
                    timeout: cfg.import_timeout,
                    err: err.clone(),
                })
            })
            .collect();

        Ok(CoupledPair {
            exporters,
            importers,
            shared: shared_ports,
            agents,
            exp_rep: Some((to_exp_rep, exp_rep_handle)),
            imp_rep: Some((to_imp_rep, imp_rep_handle)),
            err,
        })
    }

    /// Takes the handle for exporter process `rank` (once).
    pub fn take_exporter(&mut self, rank: usize) -> ExporterHandle {
        self.exporters[rank].take().expect("exporter handle already taken")
    }

    /// Takes the handle for importer process `rank` (once).
    pub fn take_importer(&mut self, rank: usize) -> ImporterHandle {
        self.importers[rank].take().expect("importer handle already taken")
    }

    /// Stops all control threads and returns per-exporter-rank statistics.
    /// Call after the application threads have finished and dropped their
    /// handles.
    pub fn shutdown(mut self) -> Result<Vec<couplink_proto::ExportStats>, ThreadedError> {
        for (tx, _) in &self.agents {
            let _ = tx.send(AgentMsg::Shutdown);
        }
        if let Some((tx, h)) = self.exp_rep.take() {
            let _ = tx.send(ExpRepMsg::Shutdown);
            let _ = h.join();
        }
        if let Some((tx, h)) = self.imp_rep.take() {
            let _ = tx.send(ImpRepMsg::Shutdown);
            let _ = h.join();
        }
        for (_, h) in self.agents.drain(..) {
            let _ = h.join();
        }
        if let Some(e) = self.err.lock().clone() {
            return Err(ThreadedError::RepFailed(e));
        }
        Ok(self
            .shared
            .iter()
            .map(|s| s.state.lock().port.stats().clone())
            .collect())
    }
}

fn record_err(slot: &Arc<Mutex<Option<String>>>, e: impl fmt::Display) {
    let mut guard = slot.lock();
    if guard.is_none() {
        *guard = Some(e.to_string());
    }
}

fn agent_loop(
    rank: usize,
    shared: Arc<ExpCell>,
    rx: Receiver<AgentMsg>,
    plan: Arc<RedistPlan>,
    to_rep: Sender<ExpRepMsg>,
    to_imps: Vec<Sender<ImpMsg>>,
    err: Arc<Mutex<Option<String>>>,
) {
    while let Ok(msg) = rx.recv() {
        match msg {
            AgentMsg::Shutdown => break,
            AgentMsg::Forward { req, ts } => {
                let mut guard = shared.state.lock();
                match guard.port.on_request(req, ts) {
                    Ok(fx) => {
                        if let Some(m) = fx.send {
                            send_pieces(&plan, rank, req, m, &guard.store, &to_imps);
                        }
                        for t in &fx.freed {
                            guard.store.remove(t);
                        }
                        let resp = fx.response;
                        drop(guard);
                        // Buffer space may have been freed: wake a stalled
                        // exporter thread.
                        shared.freed.notify_all();
                        let _ = to_rep.send(ExpRepMsg::Response {
                            rank: Rank(rank as u32),
                            req,
                            resp,
                        });
                    }
                    Err(e) => {
                        record_err(&err, e);
                        break;
                    }
                }
            }
            AgentMsg::BuddyHelp { req, answer } => {
                let mut guard = shared.state.lock();
                match guard.port.on_buddy_help(req, answer) {
                    Ok(fx) => {
                        if let Some(m) = fx.send {
                            send_pieces(&plan, rank, req, m, &guard.store, &to_imps);
                        }
                        for t in &fx.freed {
                            guard.store.remove(t);
                        }
                        drop(guard);
                        shared.freed.notify_all();
                    }
                    Err(e) => {
                        record_err(&err, e);
                        break;
                    }
                }
            }
        }
    }
}

fn exp_rep_loop(
    n_procs: usize,
    buddy_help: bool,
    rx: Receiver<ExpRepMsg>,
    agents: Vec<Sender<AgentMsg>>,
    to_imp_rep: Sender<ImpRepMsg>,
    err: Arc<Mutex<Option<String>>>,
) {
    let mut rep = ExporterRep::new(n_procs, buddy_help);
    while let Ok(msg) = rx.recv() {
        let fx = match msg {
            ExpRepMsg::Shutdown => break,
            ExpRepMsg::ImportRequest { req, ts } => rep.on_import_request(req, ts),
            ExpRepMsg::Response { rank, req, resp } => rep.on_response(rank, req, resp),
        };
        match fx {
            Ok(fx) => {
                if let Some((req, ts)) = fx.forward {
                    for a in &agents {
                        let _ = a.send(AgentMsg::Forward { req, ts });
                    }
                }
                if let Some((req, answer)) = fx.answer {
                    let _ = to_imp_rep.send(ImpRepMsg::Answer { req, answer });
                }
                for (rank, req, answer) in fx.buddy_help {
                    let _ = agents[rank.0 as usize].send(AgentMsg::BuddyHelp { req, answer });
                }
            }
            Err(e) => {
                record_err(&err, e);
                break;
            }
        }
    }
}

fn imp_rep_loop(
    n_procs: usize,
    rx: Receiver<ImpRepMsg>,
    to_exp_rep: Sender<ExpRepMsg>,
    to_imps: Vec<Sender<ImpMsg>>,
    err: Arc<Mutex<Option<String>>>,
) {
    let mut rep = ImporterRep::new(n_procs);
    while let Ok(msg) = rx.recv() {
        let fx = match msg {
            ImpRepMsg::Shutdown => break,
            ImpRepMsg::Call { rank, ts } => rep.on_import_call(rank, ts),
            ImpRepMsg::Answer { req, answer } => rep.on_answer(req, answer),
        };
        match fx {
            Ok(fx) => {
                if let Some((req, ts)) = fx.request {
                    let _ = to_exp_rep.send(ExpRepMsg::ImportRequest { req, ts });
                }
                for (rank, req, answer) in fx.deliver {
                    let _ = to_imps[rank.0 as usize].send(ImpMsg::Answer { req, answer });
                }
            }
            Err(e) => {
                record_err(&err, e);
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use couplink_layout::{Decomposition, Extent2};
    use couplink_time::ts;

    fn pair(buddy: bool) -> (CoupledPair, Decomposition, Decomposition) {
        let e = Extent2::new(32, 32);
        let exp = Decomposition::block_2d(e, 2, 2).unwrap();
        let imp = Decomposition::row_block(e, 2).unwrap();
        let cfg = PairConfig::new(exp, imp, MatchPolicy::RegL, 2.5, buddy);
        (CoupledPair::new(cfg).unwrap(), exp, imp)
    }

    /// Full end-to-end coupled run on real threads: 4 exporter threads, 2
    /// importer threads, 60 exports, 3 imports, values verified.
    #[test]
    fn end_to_end_transfer() {
        let (mut pair, exp_d, imp_d) = pair(true);
        let mut exp_threads = Vec::new();
        for rank in 0..4 {
            let mut h = pair.take_exporter(rank);
            let owned = exp_d.owned(rank);
            exp_threads.push(std::thread::spawn(move || {
                for i in 0..60 {
                    let t = 1.6 + i as f64;
                    // Cell value encodes (timestamp, position) so the importer
                    // can verify which version it received.
                    let data =
                        LocalArray::from_fn(owned, |r, c| t * 1e6 + (r * 32 + c) as f64);
                    h.export(ts(t), &data).unwrap();
                }
            }));
        }
        let mut imp_threads = Vec::new();
        for rank in 0..2 {
            let mut h = pair.take_importer(rank);
            let owned = imp_d.owned(rank);
            imp_threads.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                for j in 1..=3 {
                    let x = 20.0 * j as f64;
                    let mut dest = LocalArray::zeros(owned);
                    let m = h.import(ts(x), &mut dest).unwrap();
                    got.push((m, dest));
                }
                got
            }));
        }
        for t in exp_threads {
            t.join().unwrap();
        }
        for t in imp_threads {
            let results = t.join().unwrap();
            for (j, (m, dest)) in results.iter().enumerate() {
                let x = 20.0 * (j + 1) as f64;
                // REGL tol 2.5 over exports at i+0.6: match is x - 0.4.
                let expect = x - 0.4;
                assert_eq!(*m, Some(ts(expect)));
                let owned = dest.owned();
                for r in owned.row0..owned.row_end() {
                    for c in owned.col0..owned.col_end() {
                        assert_eq!(dest.get(r, c), expect * 1e6 + (r * 32 + c) as f64);
                    }
                }
            }
        }
        // Stats are read after every import completed: each exporter rank
        // transferred exactly its share of the 3 matched objects.
        let stats = pair.shutdown().unwrap();
        for s in &stats {
            assert_eq!(s.sends, 3, "{s:?}");
            assert_eq!(s.exports, 60);
        }
    }

    /// Buddy-help must not change what is transferred, only how much is
    /// buffered.
    #[test]
    fn buddy_help_transfers_identical_data() {
        let run = |buddy: bool| {
            let (mut pair, exp_d, imp_d) = pair(buddy);
            let mut threads = Vec::new();
            for rank in 0..4 {
                let mut h = pair.take_exporter(rank);
                let owned = exp_d.owned(rank);
                threads.push(std::thread::spawn(move || {
                    for i in 0..50 {
                        let t = 1.6 + i as f64;
                        let data = LocalArray::from_fn(owned, |r, c| {
                            t + ((r * 37 + c * 11) % 97) as f64
                        });
                        // Slow the last rank so buddy-help has someone to help.
                        if rank == 3 {
                            std::thread::sleep(Duration::from_micros(300));
                        }
                        h.export(ts(t), &data).unwrap();
                    }
                }));
            }
            let mut imp = pair.take_importer(0);
            let owned = imp_d.owned(0);
            let mut sums = Vec::new();
            for j in 1..=2 {
                let mut dest = LocalArray::zeros(owned);
                let m = imp.import(ts(20.0 * j as f64), &mut dest).unwrap();
                sums.push((m, dest.sum()));
            }
            let mut imp1 = pair.take_importer(1);
            let owned1 = imp_d.owned(1);
            for j in 1..=2 {
                let mut dest = LocalArray::zeros(owned1);
                imp1.import(ts(20.0 * j as f64), &mut dest).unwrap();
            }
            for t in threads {
                t.join().unwrap();
            }
            drop(imp);
            drop(imp1);
            pair.shutdown().unwrap();
            sums
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn no_match_import_returns_none() {
        let (mut pair, exp_d, imp_d) = pair(true);
        let mut exp_threads = Vec::new();
        for rank in 0..4 {
            let mut h = pair.take_exporter(rank);
            let owned = exp_d.owned(rank);
            exp_threads.push(std::thread::spawn(move || {
                // Exports jump straight over [17.5, 20].
                for t in [1.0, 10.0, 17.0, 21.0, 30.0] {
                    let data = LocalArray::zeros(owned);
                    h.export(ts(t), &data).unwrap();
                }
            }));
        }
        let mut imp_threads = Vec::new();
        for rank in 0..2 {
            let mut h = pair.take_importer(rank);
            let owned = imp_d.owned(rank);
            imp_threads.push(std::thread::spawn(move || {
                let mut dest = LocalArray::zeros(owned);
                h.import(ts(20.0), &mut dest).unwrap()
            }));
        }
        for t in exp_threads {
            t.join().unwrap();
        }
        for t in imp_threads {
            assert_eq!(t.join().unwrap(), None);
        }
        pair.shutdown().unwrap();
    }

    #[test]
    fn stats_reflect_skips_with_slow_exporter() {
        let (mut pair, exp_d, imp_d) = pair(true);
        // Importer requests first, then the exporter (slowly) produces: with
        // buddy-help the non-matching exports in flight should skip.
        let mut imp_threads = Vec::new();
        for rank in 0..2 {
            let mut h = pair.take_importer(rank);
            let owned = imp_d.owned(rank);
            imp_threads.push(std::thread::spawn(move || {
                let mut dest = LocalArray::zeros(owned);
                h.import(ts(20.0), &mut dest).unwrap()
            }));
        }
        std::thread::sleep(Duration::from_millis(50));
        let mut exp_threads = Vec::new();
        for rank in 0..4 {
            let mut h = pair.take_exporter(rank);
            let owned = exp_d.owned(rank);
            exp_threads.push(std::thread::spawn(move || {
                let mut skips = 0;
                for i in 0..25 {
                    let t = 1.6 + i as f64;
                    let data = LocalArray::zeros(owned);
                    let out = h.export(ts(t), &data).unwrap();
                    if out.action == crate::des::coupled::ActionKind::Skip {
                        skips += 1;
                    }
                }
                skips
            }));
        }
        let mut total_skips = 0;
        for t in exp_threads {
            total_skips += t.join().unwrap();
        }
        for t in imp_threads {
            assert_eq!(t.join().unwrap(), Some(ts(19.6)));
        }
        // The request (region [17.5, 20]) was known before any export, so
        // exports 1.6 .. 16.6 skip on every rank.
        assert!(total_skips >= 4 * 16, "skips = {total_skips}");
        pair.shutdown().unwrap();
    }

    #[test]
    fn bounded_buffer_blocks_export_until_request_frees_space() {
        let e = Extent2::new(8, 8);
        let exp = Decomposition::row_block(e, 1).unwrap();
        let imp = Decomposition::row_block(e, 1).unwrap();
        let mut cfg = PairConfig::new(exp, imp, MatchPolicy::RegL, 2.5, true);
        cfg.buffer_capacity = Some(5);
        cfg.import_timeout = Duration::from_secs(10);
        let mut pair = CoupledPair::new(cfg).unwrap();
        let mut exporter = pair.take_exporter(0);
        let mut importer = pair.take_importer(0);
        let owned = exp.owned(0);
        let exporter_thread = std::thread::spawn(move || {
            let data = LocalArray::zeros(owned);
            let start = Instant::now();
            // The sixth export must block until the importer's request frees
            // the first five buffered objects. (Exports stop at 21.6: with a
            // single request, anything buffered beyond it stays buffered, so
            // running further would legitimately fill the buffer again.)
            for i in 1..=20 {
                exporter.export(ts(1.6 + i as f64), &data).unwrap();
            }
            (exporter.stats(), start.elapsed())
        });
        std::thread::sleep(Duration::from_millis(200));
        let mut dest = LocalArray::zeros(imp.owned(0));
        let m = importer.import(ts(20.0), &mut dest).unwrap();
        assert_eq!(m, Some(ts(19.6)));
        let (stats, elapsed) = exporter_thread.join().unwrap();
        assert!(stats.buffer_full_stalls > 0, "{stats:?}");
        assert!(stats.buffered_hwm <= 5);
        assert!(
            elapsed >= Duration::from_millis(150),
            "exporter should have blocked: {elapsed:?}"
        );
        drop(importer);
        pair.shutdown().unwrap();
    }

    #[test]
    fn import_timeout_fires() {
        let e = Extent2::new(8, 8);
        let exp = Decomposition::row_block(e, 1).unwrap();
        let imp = Decomposition::row_block(e, 1).unwrap();
        let mut cfg = PairConfig::new(exp, imp, MatchPolicy::RegL, 1.0, true);
        cfg.import_timeout = Duration::from_millis(100);
        let mut pair = CoupledPair::new(cfg).unwrap();
        let mut h = pair.take_importer(0);
        let mut dest = LocalArray::zeros(imp.owned(0));
        // Nobody ever exports: the import must time out, not hang.
        assert_eq!(h.import(ts(5.0), &mut dest), Err(ThreadedError::Timeout));
        drop(h);
        pair.shutdown().unwrap();
    }

    #[test]
    fn collective_violation_surfaces_at_shutdown() {
        let e = Extent2::new(8, 8);
        let exp = Decomposition::row_block(e, 2).unwrap();
        let imp = Decomposition::row_block(e, 1).unwrap();
        let mut cfg = PairConfig::new(exp, imp, MatchPolicy::RegL, 1.0, true);
        cfg.import_timeout = Duration::from_millis(500);
        let mut pair = CoupledPair::new(cfg).unwrap();
        let mut e0 = pair.take_exporter(0);
        let mut e1 = pair.take_exporter(1);
        let d0 = LocalArray::zeros(exp.owned(0));
        let d1 = LocalArray::zeros(exp.owned(1));
        // Rank 0 and rank 1 export different timestamp sequences — a direct
        // Property 1 violation. Both export past the request's region so each
        // reaches a *definitive* (and conflicting) local answer.
        e0.export(ts(4.5), &d0).unwrap();
        e1.export(ts(4.8), &d1).unwrap();
        let imp_h = pair.take_importer(0);
        let owned = imp.owned(0);
        let import_result = std::thread::spawn(move || {
            let mut imp_h = imp_h;
            let mut dest = LocalArray::zeros(owned);
            imp_h.import(ts(5.0), &mut dest).map(|m| m.map(|t| t.value()))
        });
        std::thread::sleep(Duration::from_millis(50));
        e0.export(ts(6.0), &d0).unwrap();
        e1.export(ts(6.5), &d1).unwrap();
        let _ = import_result.join().unwrap();
        drop(e0);
        drop(e1);
        let res = pair.shutdown();
        assert!(
            matches!(res, Err(ThreadedError::RepFailed(_))),
            "expected a rep failure, got {res:?}"
        );
    }
}
