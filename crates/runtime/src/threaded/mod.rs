//! The threaded in-process runtime: real concurrency, real memcpys, few
//! threads.
//!
//! User code (an example, a bench, a test) drives one
//! [`ExportAccess`]/[`ImportAccess`] per simulated process from its own
//! thread — exactly like an SPMD rank calling the framework library. The
//! control plane behind those handles — per program one *rep* (the paper's
//! low-overhead control gateway), per exporter process a small *agent*
//! standing in for the framework's asynchronous progress engine, per
//! importer process an answer/piece consumer — is **not** thread-per-node:
//! every rep, agent, and importer is a polled state machine scheduled on a
//! fixed worker pool by the event-driven [`executor`], and N independent
//! topologies can multiplex on one pool as a [`SessionSet`].
//!
//! The protocol itself lives in [`crate::engine`]; this module is the thin
//! driver moving the engine's messages between task mailboxes ([`fabric`]).
//! The classic single-pair API ([`CoupledPair`]) is a wrapper over a
//! two-program topology.

pub mod executor;
pub mod fabric;

pub use executor::ExecutorOptions;
pub use fabric::{
    session_task_count, ExportAccess, Fabric, FabricOptions, FabricReport, ImportAccess,
    SessionSet, WalHandle, WallClock,
};

use crate::engine::{EngineError, Topology};
use couplink_layout::LocalArray;
use couplink_proto::export_port::PortError;
use couplink_proto::import_port::ImportError;
use couplink_time::{MatchPolicy, Timestamp, Tolerance};
use std::fmt;
use std::time::Duration;

/// Error from the threaded runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum ThreadedError {
    /// A protocol machine rejected an event.
    Port(PortError),
    /// An importer port rejected an event.
    Import(ImportError),
    /// A rep thread died on a protocol violation; the message describes it.
    RepFailed(String),
    /// A channel was disconnected (a peer thread exited early).
    Disconnected,
    /// `import` timed out waiting for an answer or data.
    Timeout,
    /// A fabric control thread (rep or agent) panicked; the panic was
    /// caught and surfaced here instead of hanging shutdown.
    ProcessCrash(String),
    /// Bad configuration.
    Config(String),
}

impl fmt::Display for ThreadedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThreadedError::Port(e) => write!(f, "export port: {e}"),
            ThreadedError::Import(e) => write!(f, "import port: {e}"),
            ThreadedError::RepFailed(s) => write!(f, "rep failed: {s}"),
            ThreadedError::Disconnected => write!(f, "peer thread disconnected"),
            ThreadedError::Timeout => write!(f, "import timed out"),
            ThreadedError::ProcessCrash(s) => write!(f, "process crashed: {s}"),
            ThreadedError::Config(s) => write!(f, "bad configuration: {s}"),
        }
    }
}

impl std::error::Error for ThreadedError {}

impl From<PortError> for ThreadedError {
    fn from(e: PortError) -> Self {
        ThreadedError::Port(e)
    }
}
impl From<ImportError> for ThreadedError {
    fn from(e: ImportError) -> Self {
        ThreadedError::Import(e)
    }
}
impl From<EngineError> for ThreadedError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::Port(p) => ThreadedError::Port(p),
            EngineError::Import(i) => ThreadedError::Import(i),
            EngineError::Rep(r) => ThreadedError::RepFailed(r.to_string()),
            EngineError::UnexpectedMessage(m) => ThreadedError::Config(m.into()),
        }
    }
}

/// Configuration of a threaded coupled pair (one connection).
#[derive(Debug, Clone)]
pub struct PairConfig {
    /// Decomposition of the array over the exporting program.
    pub exporter_decomp: couplink_layout::Decomposition,
    /// Decomposition of the same array over the importing program.
    pub importer_decomp: couplink_layout::Decomposition,
    /// Match policy.
    pub policy: MatchPolicy,
    /// Tolerance.
    pub tolerance: f64,
    /// Whether buddy-help is enabled.
    pub buddy_help: bool,
    /// How long an `import` waits before giving up.
    pub import_timeout: Duration,
    /// Per-process framework buffer capacity in objects (`None` =
    /// unbounded). With a bound, `export` blocks while the buffer is full
    /// and resumes when control traffic frees space (§6's finite-buffer
    /// scenario); it gives up with [`ThreadedError::Timeout`] after the
    /// import timeout.
    pub buffer_capacity: Option<usize>,
}

impl PairConfig {
    /// A sensible default timeout.
    pub fn new(
        exporter_decomp: couplink_layout::Decomposition,
        importer_decomp: couplink_layout::Decomposition,
        policy: MatchPolicy,
        tolerance: f64,
        buddy_help: bool,
    ) -> Self {
        PairConfig {
            exporter_decomp,
            importer_decomp,
            policy,
            tolerance,
            buddy_help,
            import_timeout: Duration::from_secs(30),
            buffer_capacity: None,
        }
    }
}

/// What one `export` call did, with its measured duration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExportOutcome {
    /// Whether the object was copied, copied-and-sent, or skipped.
    pub action: crate::des::coupled::ActionKind,
    /// Wall-clock duration of the export call (the Figure 4 measurement).
    pub elapsed: Duration,
}

/// The per-process exporter API of a coupled pair.
pub struct ExporterHandle {
    access: ExportAccess,
}

impl ExporterHandle {
    /// This process's rank in the exporting program.
    pub fn rank(&self) -> usize {
        self.access.rank()
    }

    /// Exports the process's piece of the distributed array at simulation
    /// time `ts`. The framework buffers (clones) the piece unless it can
    /// prove the object will never be needed.
    pub fn export(
        &mut self,
        ts: Timestamp,
        data: &LocalArray,
    ) -> Result<ExportOutcome, ThreadedError> {
        let mut outcomes = self.access.export(ts, data)?;
        Ok(outcomes.remove(0))
    }

    /// A snapshot of this process's export statistics.
    pub fn stats(&self) -> couplink_proto::ExportStats {
        self.access.stats().remove(0)
    }

    /// Number of objects currently buffered by the framework for this
    /// process.
    pub fn buffered_len(&self) -> usize {
        self.access.buffered_len()
    }
}

/// The per-process importer API of a coupled pair.
pub struct ImporterHandle {
    access: ImportAccess,
}

impl ImporterHandle {
    /// This process's rank in the importing program.
    pub fn rank(&self) -> usize {
        self.access.rank()
    }

    /// Collectively imports the data matched to `ts` into `dest` (this
    /// process's piece). Blocks until the framework answers. Returns the
    /// matched timestamp, or `None` if the request had no match (in which
    /// case `dest` is untouched).
    pub fn import(
        &mut self,
        ts: Timestamp,
        dest: &mut LocalArray,
    ) -> Result<Option<Timestamp>, ThreadedError> {
        self.access.import(ts, dest)
    }
}

/// A running coupled pair: one exporting and one importing program connected
/// by one region connection — a two-program [`Fabric`].
pub struct CoupledPair {
    fabric: Fabric,
    exporters: Vec<Option<ExporterHandle>>,
    importers: Vec<Option<ImporterHandle>>,
}

impl CoupledPair {
    /// Builds the pair and spawns its control threads.
    pub fn new(cfg: PairConfig) -> Result<Self, ThreadedError> {
        let tol =
            Tolerance::new(cfg.tolerance).map_err(|e| ThreadedError::Config(e.to_string()))?;
        let topo = Topology::pair(cfg.exporter_decomp, cfg.importer_decomp, cfg.policy, tol)
            .map_err(|e| ThreadedError::Config(e.to_string()))?;
        let ne = topo.programs[0].procs;
        let ni = topo.programs[1].procs;
        let mut fabric = Fabric::new(
            topo,
            FabricOptions {
                buddy_help: cfg.buddy_help,
                import_timeout: cfg.import_timeout,
                buffer_capacity: cfg.buffer_capacity,
                traces: Vec::new(),
                chaos: None,
                drop_buddy_help: false,
                hierarchical: false,
                wal: None,
            },
        );
        let exporters = (0..ne)
            .map(|rank| {
                Some(ExporterHandle {
                    access: fabric.take_export(0, rank, 0),
                })
            })
            .collect();
        let importers = (0..ni)
            .map(|rank| {
                Some(ImporterHandle {
                    access: fabric.take_import(1, rank, 0),
                })
            })
            .collect();
        Ok(CoupledPair {
            fabric,
            exporters,
            importers,
        })
    }

    /// Takes the handle for exporter process `rank` (once).
    pub fn take_exporter(&mut self, rank: usize) -> ExporterHandle {
        self.exporters[rank]
            .take()
            .expect("exporter handle already taken")
    }

    /// Takes the handle for importer process `rank` (once).
    pub fn take_importer(&mut self, rank: usize) -> ImporterHandle {
        self.importers[rank]
            .take()
            .expect("importer handle already taken")
    }

    /// Stops all control threads and returns per-exporter-rank statistics.
    /// Call after the application threads have finished and dropped their
    /// handles.
    pub fn shutdown(self) -> Result<Vec<couplink_proto::ExportStats>, ThreadedError> {
        let mut report = self.fabric.shutdown()?;
        Ok(report.stats.remove(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use couplink_layout::{Decomposition, Extent2};
    use couplink_time::ts;
    use std::time::Instant;

    fn pair(buddy: bool) -> (CoupledPair, Decomposition, Decomposition) {
        let e = Extent2::new(32, 32);
        let exp = Decomposition::block_2d(e, 2, 2).unwrap();
        let imp = Decomposition::row_block(e, 2).unwrap();
        let cfg = PairConfig::new(exp, imp, MatchPolicy::RegL, 2.5, buddy);
        (CoupledPair::new(cfg).unwrap(), exp, imp)
    }

    /// Full end-to-end coupled run on real threads: 4 exporter threads, 2
    /// importer threads, 60 exports, 3 imports, values verified.
    #[test]
    fn end_to_end_transfer() {
        let (mut pair, exp_d, imp_d) = pair(true);
        let mut exp_threads = Vec::new();
        for rank in 0..4 {
            let mut h = pair.take_exporter(rank);
            let owned = exp_d.owned(rank);
            exp_threads.push(std::thread::spawn(move || {
                for i in 0..60 {
                    let t = 1.6 + i as f64;
                    // Cell value encodes (timestamp, position) so the importer
                    // can verify which version it received.
                    let data = LocalArray::from_fn(owned, |r, c| t * 1e6 + (r * 32 + c) as f64);
                    h.export(ts(t), &data).unwrap();
                }
            }));
        }
        let mut imp_threads = Vec::new();
        for rank in 0..2 {
            let mut h = pair.take_importer(rank);
            let owned = imp_d.owned(rank);
            imp_threads.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                for j in 1..=3 {
                    let x = 20.0 * j as f64;
                    let mut dest = LocalArray::zeros(owned);
                    let m = h.import(ts(x), &mut dest).unwrap();
                    got.push((m, dest));
                }
                got
            }));
        }
        for t in exp_threads {
            t.join().unwrap();
        }
        for t in imp_threads {
            let results = t.join().unwrap();
            for (j, (m, dest)) in results.iter().enumerate() {
                let x = 20.0 * (j + 1) as f64;
                // REGL tol 2.5 over exports at i+0.6: match is x - 0.4.
                let expect = x - 0.4;
                assert_eq!(*m, Some(ts(expect)));
                let owned = dest.owned();
                for r in owned.row0..owned.row_end() {
                    for c in owned.col0..owned.col_end() {
                        assert_eq!(dest.get(r, c), expect * 1e6 + (r * 32 + c) as f64);
                    }
                }
            }
        }
        // Stats are read after every import completed: each exporter rank
        // transferred exactly its share of the 3 matched objects.
        let stats = pair.shutdown().unwrap();
        for s in &stats {
            assert_eq!(s.sends, 3, "{s:?}");
            assert_eq!(s.exports, 60);
        }
    }

    /// Buddy-help must not change what is transferred, only how much is
    /// buffered.
    #[test]
    fn buddy_help_transfers_identical_data() {
        let run = |buddy: bool| {
            let (mut pair, exp_d, imp_d) = pair(buddy);
            let mut threads = Vec::new();
            for rank in 0..4 {
                let mut h = pair.take_exporter(rank);
                let owned = exp_d.owned(rank);
                threads.push(std::thread::spawn(move || {
                    for i in 0..50 {
                        let t = 1.6 + i as f64;
                        let data =
                            LocalArray::from_fn(owned, |r, c| t + ((r * 37 + c * 11) % 97) as f64);
                        // Slow the last rank so buddy-help has someone to help.
                        if rank == 3 {
                            std::thread::sleep(Duration::from_micros(300));
                        }
                        h.export(ts(t), &data).unwrap();
                    }
                }));
            }
            let mut imp = pair.take_importer(0);
            let owned = imp_d.owned(0);
            let mut sums = Vec::new();
            for j in 1..=2 {
                let mut dest = LocalArray::zeros(owned);
                let m = imp.import(ts(20.0 * j as f64), &mut dest).unwrap();
                sums.push((m, dest.sum()));
            }
            let mut imp1 = pair.take_importer(1);
            let owned1 = imp_d.owned(1);
            for j in 1..=2 {
                let mut dest = LocalArray::zeros(owned1);
                imp1.import(ts(20.0 * j as f64), &mut dest).unwrap();
            }
            for t in threads {
                t.join().unwrap();
            }
            drop(imp);
            drop(imp1);
            pair.shutdown().unwrap();
            sums
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn no_match_import_returns_none() {
        let (mut pair, exp_d, imp_d) = pair(true);
        let mut exp_threads = Vec::new();
        for rank in 0..4 {
            let mut h = pair.take_exporter(rank);
            let owned = exp_d.owned(rank);
            exp_threads.push(std::thread::spawn(move || {
                // Exports jump straight over [17.5, 20].
                for t in [1.0, 10.0, 17.0, 21.0, 30.0] {
                    let data = LocalArray::zeros(owned);
                    h.export(ts(t), &data).unwrap();
                }
            }));
        }
        let mut imp_threads = Vec::new();
        for rank in 0..2 {
            let mut h = pair.take_importer(rank);
            let owned = imp_d.owned(rank);
            imp_threads.push(std::thread::spawn(move || {
                let mut dest = LocalArray::zeros(owned);
                h.import(ts(20.0), &mut dest).unwrap()
            }));
        }
        for t in exp_threads {
            t.join().unwrap();
        }
        for t in imp_threads {
            assert_eq!(t.join().unwrap(), None);
        }
        pair.shutdown().unwrap();
    }

    #[test]
    fn stats_reflect_skips_with_slow_exporter() {
        let (mut pair, exp_d, imp_d) = pair(true);
        // Importer requests first, then the exporter (slowly) produces: with
        // buddy-help the non-matching exports in flight should skip.
        let mut imp_threads = Vec::new();
        for rank in 0..2 {
            let mut h = pair.take_importer(rank);
            let owned = imp_d.owned(rank);
            imp_threads.push(std::thread::spawn(move || {
                let mut dest = LocalArray::zeros(owned);
                h.import(ts(20.0), &mut dest).unwrap()
            }));
        }
        std::thread::sleep(Duration::from_millis(50));
        let mut exp_threads = Vec::new();
        for rank in 0..4 {
            let mut h = pair.take_exporter(rank);
            let owned = exp_d.owned(rank);
            exp_threads.push(std::thread::spawn(move || {
                let mut skips = 0;
                for i in 0..25 {
                    let t = 1.6 + i as f64;
                    let data = LocalArray::zeros(owned);
                    let out = h.export(ts(t), &data).unwrap();
                    if out.action == crate::des::coupled::ActionKind::Skip {
                        skips += 1;
                    }
                }
                skips
            }));
        }
        let mut total_skips = 0;
        for t in exp_threads {
            total_skips += t.join().unwrap();
        }
        for t in imp_threads {
            assert_eq!(t.join().unwrap(), Some(ts(19.6)));
        }
        // The request (region [17.5, 20]) was known before any export, so
        // exports 1.6 .. 16.6 skip on every rank.
        assert!(total_skips >= 4 * 16, "skips = {total_skips}");
        pair.shutdown().unwrap();
    }

    #[test]
    fn bounded_buffer_blocks_export_until_request_frees_space() {
        let e = Extent2::new(8, 8);
        let exp = Decomposition::row_block(e, 1).unwrap();
        let imp = Decomposition::row_block(e, 1).unwrap();
        let mut cfg = PairConfig::new(exp, imp, MatchPolicy::RegL, 2.5, true);
        cfg.buffer_capacity = Some(5);
        cfg.import_timeout = Duration::from_secs(10);
        let mut pair = CoupledPair::new(cfg).unwrap();
        let mut exporter = pair.take_exporter(0);
        let mut importer = pair.take_importer(0);
        let owned = exp.owned(0);
        let exporter_thread = std::thread::spawn(move || {
            let data = LocalArray::zeros(owned);
            let start = Instant::now();
            // The sixth export must block until the importer's request frees
            // the first five buffered objects. (Exports stop at 21.6: with a
            // single request, anything buffered beyond it stays buffered, so
            // running further would legitimately fill the buffer again.)
            for i in 1..=20 {
                exporter.export(ts(1.6 + i as f64), &data).unwrap();
            }
            (exporter.stats(), start.elapsed())
        });
        std::thread::sleep(Duration::from_millis(200));
        let mut dest = LocalArray::zeros(imp.owned(0));
        let m = importer.import(ts(20.0), &mut dest).unwrap();
        assert_eq!(m, Some(ts(19.6)));
        let (stats, elapsed) = exporter_thread.join().unwrap();
        assert!(stats.buffer_full_stalls > 0, "{stats:?}");
        assert!(stats.buffered_hwm <= 5);
        assert!(
            elapsed >= Duration::from_millis(150),
            "exporter should have blocked: {elapsed:?}"
        );
        drop(importer);
        pair.shutdown().unwrap();
    }

    #[test]
    fn import_timeout_fires() {
        let e = Extent2::new(8, 8);
        let exp = Decomposition::row_block(e, 1).unwrap();
        let imp = Decomposition::row_block(e, 1).unwrap();
        let mut cfg = PairConfig::new(exp, imp, MatchPolicy::RegL, 1.0, true);
        cfg.import_timeout = Duration::from_millis(100);
        let mut pair = CoupledPair::new(cfg).unwrap();
        let mut h = pair.take_importer(0);
        let mut dest = LocalArray::zeros(imp.owned(0));
        // Nobody ever exports: the import must time out, not hang.
        assert_eq!(h.import(ts(5.0), &mut dest), Err(ThreadedError::Timeout));
        drop(h);
        pair.shutdown().unwrap();
    }

    #[test]
    fn collective_violation_surfaces_at_shutdown() {
        let e = Extent2::new(8, 8);
        let exp = Decomposition::row_block(e, 2).unwrap();
        let imp = Decomposition::row_block(e, 1).unwrap();
        let mut cfg = PairConfig::new(exp, imp, MatchPolicy::RegL, 1.0, true);
        cfg.import_timeout = Duration::from_millis(500);
        let mut pair = CoupledPair::new(cfg).unwrap();
        let mut e0 = pair.take_exporter(0);
        let mut e1 = pair.take_exporter(1);
        let d0 = LocalArray::zeros(exp.owned(0));
        let d1 = LocalArray::zeros(exp.owned(1));
        // Rank 0 and rank 1 export different timestamp sequences — a direct
        // Property 1 violation. Both export past the request's region so each
        // reaches a *definitive* (and conflicting) local answer.
        e0.export(ts(4.5), &d0).unwrap();
        e1.export(ts(4.8), &d1).unwrap();
        let imp_h = pair.take_importer(0);
        let owned = imp.owned(0);
        let import_result = std::thread::spawn(move || {
            let mut imp_h = imp_h;
            let mut dest = LocalArray::zeros(owned);
            imp_h
                .import(ts(5.0), &mut dest)
                .map(|m| m.map(|t| t.value()))
        });
        std::thread::sleep(Duration::from_millis(50));
        // The rep may already have recorded the violation by now, in which
        // case these exports surface it early as `RepFailed` — the shutdown
        // assertion below is what this test pins, so don't unwrap here.
        let _ = e0.export(ts(6.0), &d0);
        let _ = e1.export(ts(6.5), &d1);
        let _ = import_result.join().unwrap();
        drop(e0);
        drop(e1);
        let res = pair.shutdown();
        assert!(
            matches!(res, Err(ThreadedError::RepFailed(_))),
            "expected a rep failure, got {res:?}"
        );
    }

    /// Regression test for the shutdown race documented on
    /// [`Fabric::shutdown`]: buddy-help the rep sends *after* answering the
    /// importer must still reach the agents before they exit.
    ///
    /// Construction: two exporter ranks, REGL tol 0.5, importer asks for
    /// 3.0 (region [2.5, 3.0]). Rank 0 exports 1.0 then 5.0 — its history
    /// jumps the region, so it answers the forwarded request NO MATCH
    /// definitively. Rank 1 exports only 1.0 and answers PENDING, leaving
    /// its request open. The rep's collective answer is NO MATCH; the
    /// importer returns `None` immediately and we shut down. The only thing
    /// closing rank 1's open request is the buddy-help notification the rep
    /// sends *after* the answer — exactly the message the old
    /// agents-first shutdown ordering could drop. With the fixed ordering
    /// rank 1's `buddy_helps` stat is 1 on every run.
    #[test]
    fn shutdown_drains_pending_buddy_help() {
        for _ in 0..20 {
            let e = Extent2::new(8, 8);
            let exp = Decomposition::row_block(e, 2).unwrap();
            let imp = Decomposition::row_block(e, 1).unwrap();
            let cfg = PairConfig::new(exp, imp, MatchPolicy::RegL, 0.5, true);
            let mut pair = CoupledPair::new(cfg).unwrap();
            let mut e0 = pair.take_exporter(0);
            let mut e1 = pair.take_exporter(1);
            let d0 = LocalArray::zeros(exp.owned(0));
            let d1 = LocalArray::zeros(exp.owned(1));
            e0.export(ts(1.0), &d0).unwrap();
            e1.export(ts(1.0), &d1).unwrap();
            let mut imp_h = pair.take_importer(0);
            let owned = imp.owned(0);
            let importer = std::thread::spawn(move || {
                let mut dest = LocalArray::zeros(owned);
                let m = imp_h.import(ts(3.0), &mut dest).unwrap();
                assert_eq!(m, None);
            });
            // Rank 0 jumps over the region, making the collective answer
            // NO MATCH while rank 1's request stays open awaiting help.
            e0.export(ts(5.0), &d0).unwrap();
            importer.join().unwrap();
            drop(e0);
            drop(e1);
            // Shut down immediately: the rep may not have sent rank 1's
            // buddy-help yet. The fixed ordering must deliver it anyway.
            let stats = pair.shutdown().unwrap();
            assert_eq!(
                stats[1].buddy_helps, 1,
                "rank 1's buddy-help was dropped at shutdown: {stats:?}"
            );
        }
    }

    /// A general three-program topology through the fabric directly: one
    /// exported region feeding two importers with different policies —
    /// Figure 2 in miniature, impossible with the old pair-only runtime.
    #[test]
    fn fanout_topology_runs_end_to_end() {
        use couplink_config::{parse, RegionRef};
        use std::collections::HashMap;

        let config = parse(
            "P0 c0 /bin/p0 2\nP1 c0 /bin/p1 1\nP2 c1 /bin/p2 1\n#\n\
             P0.r1 P1.r1 REGL 2.5\nP0.r1 P2.r3 REGU 2.5\n",
        )
        .unwrap();
        let grid = Extent2::new(8, 8);
        let d2 = Decomposition::row_block(grid, 2).unwrap();
        let d1 = Decomposition::row_block(grid, 1).unwrap();
        let mut bindings = HashMap::new();
        bindings.insert(RegionRef::new("P0", "r1"), d2);
        bindings.insert(RegionRef::new("P1", "r1"), d1);
        bindings.insert(RegionRef::new("P2", "r3"), d1);
        let topo = Topology::from_config(&config, &bindings).unwrap();
        let mut fabric = Fabric::new(topo, FabricOptions::default());

        let mut threads = Vec::new();
        for rank in 0..2 {
            let mut h = fabric.take_export(0, rank, 0);
            let owned = d2.owned(rank);
            threads.push(std::thread::spawn(move || {
                assert_eq!(h.connections(), 2);
                for i in 0..30 {
                    let t = 1.6 + i as f64;
                    let data = LocalArray::from_fn(owned, |_, _| t);
                    let outcomes = h.export(ts(t), &data).unwrap();
                    assert_eq!(outcomes.len(), 2);
                }
            }));
        }
        let mut h1 = fabric.take_import(1, 0, 0);
        let owned1 = d1.owned(0);
        threads.push(std::thread::spawn(move || {
            let mut dest = LocalArray::zeros(owned1);
            // REGL: acceptable region [17.5, 20] → 19.6.
            assert_eq!(h1.import(ts(20.0), &mut dest).unwrap(), Some(ts(19.6)));
            assert_eq!(dest.get(0, 0), 19.6);
        }));
        let mut h2 = fabric.take_import(2, 0, 0);
        let owned2 = d1.owned(0);
        threads.push(std::thread::spawn(move || {
            let mut dest = LocalArray::zeros(owned2);
            // REGU: acceptable region [20, 22.5] → 20.6.
            assert_eq!(h2.import(ts(20.0), &mut dest).unwrap(), Some(ts(20.6)));
            assert_eq!(dest.get(0, 0), 20.6);
        }));
        for t in threads {
            t.join().unwrap();
        }
        let report = fabric.shutdown().unwrap();
        assert_eq!(report.stats.len(), 2);
        for conn_stats in &report.stats {
            assert_eq!(conn_stats.len(), 2);
            for s in conn_stats {
                assert_eq!(s.sends, 1, "{s:?}");
            }
        }
    }
}
