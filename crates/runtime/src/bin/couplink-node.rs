//! One coupled program as an OS process. Spawned by the socket
//! bootstrap (`couplink_runtime::net::bootstrap`); not meant to be run by
//! hand — it immediately dials the parent given on the command line.

use std::process::ExitCode;

use couplink_runtime::net::{node_main, NodeArgs};

const USAGE: &str = "usage: couplink-node --connect <addr> --prog <i> --token <t> [--claim <i>]";

fn parse_args() -> Result<NodeArgs, String> {
    let mut connect = None;
    let mut prog = None;
    let mut token = None;
    let mut claim = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |what: &str| it.next().ok_or(format!("{what} needs a value"));
        match arg.as_str() {
            "--connect" => connect = Some(value("--connect")?),
            "--prog" => {
                prog = Some(
                    value("--prog")?
                        .parse::<usize>()
                        .map_err(|e| format!("--prog: {e}"))?,
                )
            }
            "--token" => token = Some(value("--token")?),
            "--claim" => {
                claim = Some(
                    value("--claim")?
                        .parse::<usize>()
                        .map_err(|e| format!("--claim: {e}"))?,
                )
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(NodeArgs {
        connect: connect.ok_or("--connect is required")?,
        prog: prog.ok_or("--prog is required")?,
        token: token.ok_or("--token is required")?,
        claim,
    })
}

fn main() -> ExitCode {
    match parse_args() {
        Ok(args) => ExitCode::from(node_main(args) as u8),
        Err(e) => {
            eprintln!("couplink-node: {e}\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
