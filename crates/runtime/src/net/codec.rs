//! Runtime envelopes on top of the proto wire codec.
//!
//! `couplink-proto` defines the frame container (header, checksum,
//! [`CtrlMsg`] bodies, payload pieces). This module defines the frames the
//! *socket runtime* itself speaks: the bootstrap handshake between the
//! orchestrating parent and its `couplink-node` children, the mesh
//! handshake between peer nodes, the routed-control / ack envelopes that
//! carry fabric traffic across processes, and the end-of-run report a node
//! sends home. All kinds live at [`wire::KIND_RUNTIME_BASE`] and above so
//! they can never collide with the proto layer's own frames.
//!
//! Everything here is hand-rolled little-endian on [`BodyWriter`] /
//! [`BodyReader`] — decoding is bounds-checked and returns typed
//! [`WireError`]s, never panics, exactly like the layer below.

use std::collections::HashMap;

use couplink_config::parse;
use couplink_layout::{Decomposition, Extent2, Rect};
use couplink_metrics::CounterSnapshot;
use couplink_proto::wire::{self as wire, BodyReader, BodyWriter, WireError, WireRect};
use couplink_proto::{CtrlMsg, ExportStats, ProcResponse, RepAnswer, Trace, TraceEvent};
use couplink_time::ts;

use crate::engine::{ChaosConfig, CrashFault, CrashTarget, Endpoint, Topology, WireMeta};

/// Version of the runtime envelope protocol (checked in both handshakes,
/// independently of the frame-container version below it).
pub const RT_VERSION: u32 = 1;

const BASE: u8 = wire::KIND_RUNTIME_BASE;
/// Child → parent: first frame on the bootstrap link.
pub const KIND_HELLO: u8 = BASE;
/// Either direction: fatal protocol error, the connection is dead.
pub const KIND_FATAL: u8 = BASE + 1;
/// Parent → child: the session plan.
pub const KIND_PLAN: u8 = BASE + 2;
/// Child → parent: the child's mesh listener address.
pub const KIND_LISTENING: u8 = BASE + 3;
/// Parent → child: every child's mesh address, indexed by program.
pub const KIND_PEERS: u8 = BASE + 4;
/// Child → parent: mesh formed, session built, ready to run.
pub const KIND_READY: u8 = BASE + 5;
/// Parent → child: start the application threads.
pub const KIND_GO: u8 = BASE + 6;
/// Node → node: first frame on a mesh link.
pub const KIND_MESH_HELLO: u8 = BASE + 7;
/// Node → node: a routed fabric control message.
pub const KIND_CTRL: u8 = BASE + 8;
/// Node → node: a reliability ack travelling back to the original sender.
pub const KIND_ACK: u8 = BASE + 9;
/// Child → parent: application threads finished (fabric still serving).
pub const KIND_APP_DONE: u8 = BASE + 10;
/// Parent → child: every program's app is done, drain and shut down.
pub const KIND_DRAIN: u8 = BASE + 11;
/// Child → parent: the final [`NodeReport`].
pub const KIND_REPORT: u8 = BASE + 12;

// --- plan ---

/// One exported region's application schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ExportSpec {
    /// Exporting program name (as in the configuration text).
    pub program: String,
    /// Region index within the program's exports.
    pub region: usize,
    /// First export timestamp.
    pub t0: f64,
    /// Timestamp step.
    pub dt: f64,
    /// Number of exports.
    pub count: usize,
    /// Per-rank inter-export compute time (seconds, pre-scaling).
    pub compute: Vec<f64>,
}

/// One imported region's application schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ImportSpec {
    /// Importing program name.
    pub program: String,
    /// Region index within the program's imports.
    pub region: usize,
    /// First import timestamp.
    pub t0: f64,
    /// Timestamp step.
    pub dt: f64,
    /// Number of imports.
    pub count: usize,
    /// Inter-import compute time (seconds, pre-scaling).
    pub compute: f64,
    /// Startup delay before the first import (seconds, pre-scaling).
    pub startup: f64,
}

/// A deliberate malfunction a node injects into itself — the negative
/// transport tests are driven by these, not by hacking the node binary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeFault {
    /// The named rank calls `std::process::exit` immediately after its
    /// `after`-th successful export: a peer dying mid-run, sockets cut.
    AbortAfterExports {
        /// Program index.
        prog: usize,
        /// Rank within the program.
        rank: usize,
        /// Exports completed before the abort.
        after: usize,
    },
    /// The program's mesh reader threads park forever: its sockets stay
    /// open but inbound traffic is never processed (a stalled peer).
    StallMeshReader {
        /// Program index.
        prog: usize,
    },
    /// The program's inbound codec silently discards collective-answer
    /// frames on this connection — the "drop the collective answer"
    /// mutation; the liveness oracle must catch the wedged imports.
    DropAnswers {
        /// Connection index.
        conn: u32,
    },
    /// The program drains and exits right after its app threads finish,
    /// without waiting for the parent's coordinated `DRAIN` — its mesh
    /// sockets close while peers are still running. Peers must tolerate
    /// the early EOF during their own drain (the shutdown-order
    /// regression).
    DrainEarly {
        /// Program index.
        prog: usize,
    },
    /// The program severs its outbound mesh link to `peer` after `after_tx`
    /// frames have been written on it (a half-close: FIN flushes the bytes
    /// already sent, then the peer reads EOF mid-run). Both sides must
    /// re-dial / re-accept and replay unacked traffic from the reliability
    /// journal — this is the fault behind the `net_reconnects` metric.
    SeverLink {
        /// Program index that performs the sever (the writer side).
        prog: usize,
        /// Peer program whose link is severed.
        peer: usize,
        /// Outbound frames written on the link before the sever.
        after_tx: u64,
    },
}

/// Everything a `couplink-node` child needs to run its share of a session:
/// the configuration text (re-parsed and re-validated in-process), the
/// grid shape that fixes every region's decomposition, the application
/// schedules, and the knobs the in-process runtimes take programmatically.
#[derive(Debug, Clone, PartialEq)]
pub struct NodePlan {
    /// Configuration text in the deployer format (Figure 2 of the paper).
    pub config_text: String,
    /// Global grid `(rows, cols)`; every region is bound to a row-block
    /// decomposition of this grid over its program's processes.
    pub grid: (usize, usize),
    /// Export schedules, one per exported region.
    pub exports: Vec<ExportSpec>,
    /// Import schedules, one per imported region.
    pub imports: Vec<ImportSpec>,
    /// Whether reps send buddy-help.
    pub buddy_help: bool,
    /// Import timeout in seconds.
    pub import_timeout_s: f64,
    /// Multiplier applied to every schedule sleep.
    pub time_scale: f64,
    /// Whether importers verify transferred cell values against the
    /// exporter's deterministic fill.
    pub verify_values: bool,
    /// Connections to trace, as `(program, rank, connection)`; each node
    /// arms only the entries for its own program.
    pub traces: Vec<(usize, usize, u32)>,
    /// Chaos plan, armed identically in every node (loss is drawn at the
    /// sender, crash targets fire only where hosted).
    pub chaos: Option<ChaosConfig>,
    /// At most one injected malfunction.
    pub fault: Option<NodeFault>,
    /// Hierarchical collective distribution: reps fan out to the tree
    /// roots and every rank relays to its subtree (must agree across the
    /// mesh — every node derives the same deterministic tree).
    pub hierarchical: bool,
    /// Directory for this node's file-backed write-ahead journal; `None`
    /// keeps the in-memory journal (the default — no durability, no I/O).
    pub wal_dir: Option<String>,
    /// This node is a restarted incarnation: replay delivered state from
    /// the journal in `wal_dir` before joining the mesh, and expect a
    /// stale mesh socket path to need unlinking.
    pub restart: bool,
}

impl NodePlan {
    /// Rebuilds the validated topology every process must agree on:
    /// parse the configuration text, bind a row-block decomposition of
    /// [`grid`](NodePlan::grid) to every referenced region, validate.
    /// Parent and children all derive the topology through this one path,
    /// so they can never disagree about shapes or connection ids.
    pub fn topology(&self) -> Result<Topology, String> {
        let config = parse(&self.config_text).map_err(|e| format!("plan config: {e}"))?;
        let grid = Extent2::new(self.grid.0, self.grid.1);
        let mut bindings = HashMap::new();
        for conn in &config.connections {
            for region in [&conn.exporter, &conn.importer] {
                let procs = config
                    .program(&region.program)
                    .ok_or_else(|| format!("plan config: unknown program {}", region.program))?
                    .procs;
                let d = Decomposition::row_block(grid, procs)
                    .map_err(|e| format!("plan decomposition: {e}"))?;
                bindings.insert(region.clone(), d);
            }
        }
        Topology::from_config(&config, &bindings).map_err(|e| format!("plan topology: {e}"))
    }
}

/// What one node reports home after draining: its exporters' statistics
/// and traces, its importers' outcomes, and its counter snapshot. The
/// orchestrator merges these into the session-wide view.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeReport {
    /// The reporting program's index.
    pub prog: usize,
    /// Per-connection exporter statistics, `(connection, per-rank stats)`;
    /// connections this program does not export carry an empty vector.
    pub stats: Vec<(u32, Vec<ExportStats>)>,
    /// Recorded traces, `(program, rank, connection, trace)`.
    pub traces: Vec<(usize, usize, u32, Trace)>,
    /// Rank-0 import outcomes per imported connection, `(connection,
    /// matched timestamp per import)`.
    pub matches: Vec<(u32, Vec<Option<f64>>)>,
    /// Per-importer-rank completion: `(prog, rank, imports done, error)`.
    pub imports_done: Vec<(usize, usize, u64, Option<String>)>,
    /// Exporter-thread failures: `(prog, rank, error)`.
    pub export_errors: Vec<(usize, usize, String)>,
    /// The fabric shutdown error, if draining failed.
    pub shutdown_error: Option<String>,
    /// This process's counter snapshot.
    pub counters: CounterSnapshot,
}

// --- small frames ---

/// Encodes the bootstrap (or, with [`KIND_MESH_HELLO`], mesh) hello.
pub fn encode_hello(kind: u8, token: &str, prog: usize) -> Vec<u8> {
    let mut w = BodyWriter::with_capacity(16 + token.len());
    w.u32(RT_VERSION);
    w.str(token);
    w.u32(prog as u32);
    wire::encode_frame(kind, &w.into_body())
}

/// Decodes a hello body into `(version, token, claimed program)`.
pub fn decode_hello(body: &[u8]) -> Result<(u32, String, usize), WireError> {
    let mut r = BodyReader::new(body);
    let version = r.u32()?;
    let token = r.str()?.to_string();
    let prog = r.u32()? as usize;
    r.finish()?;
    Ok((version, token, prog))
}

/// Encodes a fatal-error frame.
pub fn encode_fatal(reason: &str) -> Vec<u8> {
    let mut w = BodyWriter::with_capacity(4 + reason.len());
    w.str(reason);
    wire::encode_frame(KIND_FATAL, &w.into_body())
}

/// Decodes a fatal-error body.
pub fn decode_fatal(body: &[u8]) -> Result<String, WireError> {
    let mut r = BodyReader::new(body);
    let reason = r.str()?.to_string();
    r.finish()?;
    Ok(reason)
}

/// Encodes a single-string frame (used by [`KIND_LISTENING`]).
pub fn encode_listening(addr: &str) -> Vec<u8> {
    let mut w = BodyWriter::with_capacity(4 + addr.len());
    w.str(addr);
    wire::encode_frame(KIND_LISTENING, &w.into_body())
}

/// Decodes a [`KIND_LISTENING`] body.
pub fn decode_listening(body: &[u8]) -> Result<String, WireError> {
    let mut r = BodyReader::new(body);
    let addr = r.str()?.to_string();
    r.finish()?;
    Ok(addr)
}

/// Encodes the peer address table, indexed by program.
pub fn encode_peers(addrs: &[String]) -> Vec<u8> {
    let mut w = BodyWriter::new();
    w.u32(addrs.len() as u32);
    for a in addrs {
        w.str(a);
    }
    wire::encode_frame(KIND_PEERS, &w.into_body())
}

/// Decodes a [`KIND_PEERS`] body.
pub fn decode_peers(body: &[u8]) -> Result<Vec<String>, WireError> {
    let mut r = BodyReader::new(body);
    let n = r.u32()? as usize;
    let mut addrs = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        addrs.push(r.str()?.to_string());
    }
    r.finish()?;
    Ok(addrs)
}

/// Encodes a body-less frame ([`KIND_READY`], [`KIND_GO`],
/// [`KIND_APP_DONE`], [`KIND_DRAIN`]).
pub fn encode_bare(kind: u8) -> Vec<u8> {
    wire::encode_frame(kind, &[])
}

// --- fabric traffic envelopes ---

pub(crate) fn take_endpoint(r: &mut BodyReader) -> Result<Endpoint, WireError> {
    let tag = r.u8()?;
    let prog = r.u32()? as usize;
    let rank = r.u32()? as usize;
    match tag {
        0 => Ok(Endpoint::Rep { prog }),
        1 => Ok(Endpoint::Proc { prog, rank }),
        t => Err(WireError::BadTag {
            what: "endpoint",
            tag: t,
        }),
    }
}

pub(crate) fn put_endpoint_frame(w: &mut wire::FrameWriter, ep: Endpoint) {
    match ep {
        Endpoint::Rep { prog } => {
            w.u8(0);
            w.u32(prog as u32);
            w.u32(0);
        }
        Endpoint::Proc { prog, rank } => {
            w.u8(1);
            w.u32(prog as u32);
            w.u32(rank as u32);
        }
    }
}

/// Encodes a routed control message for the wire: destination endpoint,
/// optional reliability metadata, then the proto-layer `CtrlMsg` body —
/// envelope and frame header built in one buffer, no concat copy.
pub fn encode_ctrl_env(to: Endpoint, meta: Option<&WireMeta>, msg: &CtrlMsg) -> Vec<u8> {
    let ctrl = wire::encode_ctrl(msg);
    let mut w = wire::FrameWriter::with_capacity(KIND_CTRL, 32 + ctrl.len());
    put_endpoint_frame(&mut w, to);
    match meta {
        None => w.u8(0),
        Some(m) => {
            w.u8(1);
            put_endpoint_frame(&mut w, m.from);
            w.u64(m.seq);
            match m.ord {
                None => w.u8(0),
                Some(ord) => {
                    w.u8(1);
                    w.u64(ord);
                }
            }
        }
    }
    w.bytes(&ctrl);
    w.finish()
}

/// Decodes a [`KIND_CTRL`] body.
pub fn decode_ctrl_env(body: &[u8]) -> Result<(Endpoint, Option<WireMeta>, CtrlMsg), WireError> {
    let mut r = BodyReader::new(body);
    let to = take_endpoint(&mut r)?;
    let meta = match r.u8()? {
        0 => None,
        1 => {
            let from = take_endpoint(&mut r)?;
            let seq = r.u64()?;
            let ord = match r.u8()? {
                0 => None,
                1 => Some(r.u64()?),
                t => {
                    return Err(WireError::BadTag {
                        what: "wire-meta ord",
                        tag: t,
                    })
                }
            };
            Some(WireMeta { from, seq, ord })
        }
        t => {
            return Err(WireError::BadTag {
                what: "wire-meta presence",
                tag: t,
            })
        }
    };
    let n = r.remaining();
    let msg = wire::decode_ctrl(r.raw(n)?)?;
    Ok((to, meta, msg))
}

/// Encodes a reliability ack for the directed link `sender → acker`.
pub fn encode_ack_env(sender: Endpoint, acker: Endpoint, seq: u64) -> Vec<u8> {
    let mut w = wire::FrameWriter::with_capacity(KIND_ACK, 32);
    put_endpoint_frame(&mut w, sender);
    put_endpoint_frame(&mut w, acker);
    w.u64(seq);
    w.finish()
}

/// Decodes a [`KIND_ACK`] body into `(sender, acker, seq)`.
pub fn decode_ack_env(body: &[u8]) -> Result<(Endpoint, Endpoint, u64), WireError> {
    let mut r = BodyReader::new(body);
    let sender = take_endpoint(&mut r)?;
    let acker = take_endpoint(&mut r)?;
    let seq = r.u64()?;
    r.finish()?;
    Ok((sender, acker, seq))
}

/// Converts a layout rectangle to its wire form.
pub fn wire_rect(r: Rect) -> WireRect {
    WireRect {
        row0: r.row0 as u64,
        col0: r.col0 as u64,
        rows: r.rows as u64,
        cols: r.cols as u64,
    }
}

/// Converts a wire rectangle back to the layout form.
pub fn rect_from(r: WireRect) -> Rect {
    Rect::new(
        r.row0 as usize,
        r.col0 as usize,
        r.rows as usize,
        r.cols as usize,
    )
}

// --- plan encoding ---

fn put_chaos(w: &mut BodyWriter, c: &ChaosConfig) {
    w.u64(c.seed);
    w.f64(c.max_delay);
    w.f64(c.duplicate_prob);
    w.f64(c.drop_prob);
    w.f64(c.retry_delay);
    w.f64(c.loss_prob);
    match c.crash {
        None => w.u8(0),
        Some(f) => {
            w.u8(1);
            match f.target {
                CrashTarget::Rep(prog) => {
                    w.u8(0);
                    w.u32(prog as u32);
                    w.u32(0);
                }
                CrashTarget::Agent { prog, rank } => {
                    w.u8(1);
                    w.u32(prog as u32);
                    w.u32(rank as u32);
                }
            }
            w.u64(f.after_msgs);
            match f.restart_after {
                None => w.u8(0),
                Some(s) => {
                    w.u8(1);
                    w.f64(s);
                }
            }
        }
    }
}

fn take_chaos(r: &mut BodyReader) -> Result<ChaosConfig, WireError> {
    let seed = r.u64()?;
    let max_delay = r.f64()?;
    let duplicate_prob = r.f64()?;
    let drop_prob = r.f64()?;
    let retry_delay = r.f64()?;
    let loss_prob = r.f64()?;
    let crash = match r.u8()? {
        0 => None,
        1 => {
            let tag = r.u8()?;
            let prog = r.u32()? as usize;
            let rank = r.u32()? as usize;
            let target = match tag {
                0 => CrashTarget::Rep(prog),
                1 => CrashTarget::Agent { prog, rank },
                t => {
                    return Err(WireError::BadTag {
                        what: "crash target",
                        tag: t,
                    })
                }
            };
            let after_msgs = r.u64()?;
            let restart_after = match r.u8()? {
                0 => None,
                1 => Some(r.f64()?),
                t => {
                    return Err(WireError::BadTag {
                        what: "crash restart",
                        tag: t,
                    })
                }
            };
            Some(CrashFault {
                target,
                after_msgs,
                restart_after,
            })
        }
        t => {
            return Err(WireError::BadTag {
                what: "chaos presence",
                tag: t,
            })
        }
    };
    Ok(ChaosConfig {
        seed,
        max_delay,
        duplicate_prob,
        drop_prob,
        retry_delay,
        loss_prob,
        crash,
    })
}

fn put_fault(w: &mut BodyWriter, f: &NodeFault) {
    match *f {
        NodeFault::AbortAfterExports { prog, rank, after } => {
            w.u8(1);
            w.u32(prog as u32);
            w.u32(rank as u32);
            w.u64(after as u64);
        }
        NodeFault::StallMeshReader { prog } => {
            w.u8(2);
            w.u32(prog as u32);
        }
        NodeFault::DropAnswers { conn } => {
            w.u8(3);
            w.u32(conn);
        }
        NodeFault::DrainEarly { prog } => {
            w.u8(4);
            w.u32(prog as u32);
        }
        NodeFault::SeverLink {
            prog,
            peer,
            after_tx,
        } => {
            w.u8(5);
            w.u32(prog as u32);
            w.u32(peer as u32);
            w.u64(after_tx);
        }
    }
}

fn take_fault(r: &mut BodyReader) -> Result<NodeFault, WireError> {
    match r.u8()? {
        1 => Ok(NodeFault::AbortAfterExports {
            prog: r.u32()? as usize,
            rank: r.u32()? as usize,
            after: r.u64()? as usize,
        }),
        2 => Ok(NodeFault::StallMeshReader {
            prog: r.u32()? as usize,
        }),
        3 => Ok(NodeFault::DropAnswers { conn: r.u32()? }),
        4 => Ok(NodeFault::DrainEarly {
            prog: r.u32()? as usize,
        }),
        5 => Ok(NodeFault::SeverLink {
            prog: r.u32()? as usize,
            peer: r.u32()? as usize,
            after_tx: r.u64()?,
        }),
        t => Err(WireError::BadTag {
            what: "node fault",
            tag: t,
        }),
    }
}

/// Encodes a [`KIND_PLAN`] frame.
pub fn encode_plan(plan: &NodePlan) -> Vec<u8> {
    let mut w = BodyWriter::with_capacity(256 + plan.config_text.len());
    w.str(&plan.config_text);
    w.u32(plan.grid.0 as u32);
    w.u32(plan.grid.1 as u32);
    w.u32(plan.exports.len() as u32);
    for e in &plan.exports {
        w.str(&e.program);
        w.u32(e.region as u32);
        w.f64(e.t0);
        w.f64(e.dt);
        w.u64(e.count as u64);
        w.u32(e.compute.len() as u32);
        for &c in &e.compute {
            w.f64(c);
        }
    }
    w.u32(plan.imports.len() as u32);
    for i in &plan.imports {
        w.str(&i.program);
        w.u32(i.region as u32);
        w.f64(i.t0);
        w.f64(i.dt);
        w.u64(i.count as u64);
        w.f64(i.compute);
        w.f64(i.startup);
    }
    w.u8(plan.buddy_help as u8);
    w.f64(plan.import_timeout_s);
    w.f64(plan.time_scale);
    w.u8(plan.verify_values as u8);
    w.u32(plan.traces.len() as u32);
    for &(p, r, c) in &plan.traces {
        w.u32(p as u32);
        w.u32(r as u32);
        w.u32(c);
    }
    match &plan.chaos {
        None => w.u8(0),
        Some(c) => {
            w.u8(1);
            put_chaos(&mut w, c);
        }
    }
    match &plan.fault {
        None => w.u8(0),
        Some(f) => {
            w.u8(1);
            put_fault(&mut w, f);
        }
    }
    w.u8(plan.hierarchical as u8);
    match &plan.wal_dir {
        None => w.u8(0),
        Some(d) => {
            w.u8(1);
            w.str(d);
        }
    }
    w.u8(plan.restart as u8);
    wire::encode_frame(KIND_PLAN, &w.into_body())
}

fn take_bool(r: &mut BodyReader, what: &'static str) -> Result<bool, WireError> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        t => Err(WireError::BadTag { what, tag: t }),
    }
}

/// Decodes a [`KIND_PLAN`] body.
pub fn decode_plan(body: &[u8]) -> Result<NodePlan, WireError> {
    let mut r = BodyReader::new(body);
    let config_text = r.str()?.to_string();
    let grid = (r.u32()? as usize, r.u32()? as usize);
    let n_exp = r.u32()? as usize;
    let mut exports = Vec::with_capacity(n_exp.min(1024));
    for _ in 0..n_exp {
        let program = r.str()?.to_string();
        let region = r.u32()? as usize;
        let t0 = r.f64()?;
        let dt = r.f64()?;
        let count = r.u64()? as usize;
        let n_c = r.u32()? as usize;
        let mut compute = Vec::with_capacity(n_c.min(1024));
        for _ in 0..n_c {
            compute.push(r.f64()?);
        }
        exports.push(ExportSpec {
            program,
            region,
            t0,
            dt,
            count,
            compute,
        });
    }
    let n_imp = r.u32()? as usize;
    let mut imports = Vec::with_capacity(n_imp.min(1024));
    for _ in 0..n_imp {
        imports.push(ImportSpec {
            program: r.str()?.to_string(),
            region: r.u32()? as usize,
            t0: r.f64()?,
            dt: r.f64()?,
            count: r.u64()? as usize,
            compute: r.f64()?,
            startup: r.f64()?,
        });
    }
    let buddy_help = take_bool(&mut r, "plan buddy-help")?;
    let import_timeout_s = r.f64()?;
    let time_scale = r.f64()?;
    let verify_values = take_bool(&mut r, "plan verify")?;
    let n_tr = r.u32()? as usize;
    let mut traces = Vec::with_capacity(n_tr.min(4096));
    for _ in 0..n_tr {
        traces.push((r.u32()? as usize, r.u32()? as usize, r.u32()?));
    }
    let chaos = match r.u8()? {
        0 => None,
        1 => Some(take_chaos(&mut r)?),
        t => {
            return Err(WireError::BadTag {
                what: "plan chaos",
                tag: t,
            })
        }
    };
    let fault = match r.u8()? {
        0 => None,
        1 => Some(take_fault(&mut r)?),
        t => {
            return Err(WireError::BadTag {
                what: "plan fault",
                tag: t,
            })
        }
    };
    let hierarchical = take_bool(&mut r, "plan hierarchical")?;
    let wal_dir = match r.u8()? {
        0 => None,
        1 => Some(r.str()?.to_string()),
        t => {
            return Err(WireError::BadTag {
                what: "plan wal-dir",
                tag: t,
            })
        }
    };
    let restart = take_bool(&mut r, "plan restart")?;
    r.finish()?;
    Ok(NodePlan {
        config_text,
        grid,
        exports,
        imports,
        buddy_help,
        import_timeout_s,
        time_scale,
        verify_values,
        traces,
        chaos,
        fault,
        hierarchical,
        wal_dir,
        restart,
    })
}

// --- report encoding ---

fn put_stats(w: &mut BodyWriter, s: &ExportStats) {
    w.u64(s.requests);
    w.u64(s.exports);
    w.u64(s.memcpys);
    w.u64(s.skips);
    w.u64(s.sends);
    w.u64(s.freed_sent);
    w.u64(s.freed_unsent);
    w.u64(s.buddy_helps);
    w.u64(s.buffered_hwm as u64);
    w.u64(s.buffer_full_stalls);
    w.u32(s.unnecessary_by_request.len() as u32);
    for &u in &s.unnecessary_by_request {
        w.u64(u);
    }
    w.u64(s.unnecessary_inter_region);
}

fn take_stats(r: &mut BodyReader) -> Result<ExportStats, WireError> {
    let requests = r.u64()?;
    let exports = r.u64()?;
    let memcpys = r.u64()?;
    let skips = r.u64()?;
    let sends = r.u64()?;
    let freed_sent = r.u64()?;
    let freed_unsent = r.u64()?;
    let buddy_helps = r.u64()?;
    let buffered_hwm = r.u64()? as usize;
    let buffer_full_stalls = r.u64()?;
    let n = r.u32()? as usize;
    let mut unnecessary_by_request = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        unnecessary_by_request.push(r.u64()?);
    }
    let unnecessary_inter_region = r.u64()?;
    Ok(ExportStats {
        requests,
        exports,
        memcpys,
        skips,
        sends,
        freed_sent,
        freed_unsent,
        buddy_helps,
        buffered_hwm,
        buffer_full_stalls,
        unnecessary_by_request,
        unnecessary_inter_region,
    })
}

fn put_trace(w: &mut BodyWriter, trace: &Trace) {
    let events = trace.events();
    w.u32(events.len() as u32);
    for ev in events {
        match ev {
            TraceEvent::Export { t, copied } => {
                w.u8(1);
                w.f64(t.value());
                w.u8(*copied as u8);
            }
            TraceEvent::Request { x, reply } => {
                w.u8(2);
                w.f64(x.value());
                match reply {
                    ProcResponse::Match(m) => {
                        w.u8(1);
                        w.f64(m.value());
                    }
                    ProcResponse::NoMatch => w.u8(2),
                    ProcResponse::Pending { latest: None } => w.u8(3),
                    ProcResponse::Pending { latest: Some(l) } => {
                        w.u8(4);
                        w.f64(l.value());
                    }
                }
            }
            TraceEvent::BuddyHelp { x, answer } => {
                w.u8(3);
                w.f64(x.value());
                match answer {
                    RepAnswer::Match(m) => {
                        w.u8(1);
                        w.f64(m.value());
                    }
                    RepAnswer::NoMatch => w.u8(2),
                }
            }
            TraceEvent::Remove { freed } => {
                w.u8(4);
                w.u32(freed.len() as u32);
                for t in freed {
                    w.f64(t.value());
                }
            }
            TraceEvent::Send { m } => {
                w.u8(5);
                w.f64(m.value());
            }
        }
    }
}

fn take_trace(r: &mut BodyReader) -> Result<Trace, WireError> {
    let n = r.u32()? as usize;
    let mut events = Vec::with_capacity(n.min(65536));
    for _ in 0..n {
        let ev = match r.u8()? {
            1 => TraceEvent::Export {
                t: ts(r.f64()?),
                copied: take_bool(r, "trace export copied")?,
            },
            2 => {
                let x = ts(r.f64()?);
                let reply = match r.u8()? {
                    1 => ProcResponse::Match(ts(r.f64()?)),
                    2 => ProcResponse::NoMatch,
                    3 => ProcResponse::Pending { latest: None },
                    4 => ProcResponse::Pending {
                        latest: Some(ts(r.f64()?)),
                    },
                    t => {
                        return Err(WireError::BadTag {
                            what: "trace reply",
                            tag: t,
                        })
                    }
                };
                TraceEvent::Request { x, reply }
            }
            3 => {
                let x = ts(r.f64()?);
                let answer = match r.u8()? {
                    1 => RepAnswer::Match(ts(r.f64()?)),
                    2 => RepAnswer::NoMatch,
                    t => {
                        return Err(WireError::BadTag {
                            what: "trace answer",
                            tag: t,
                        })
                    }
                };
                TraceEvent::BuddyHelp { x, answer }
            }
            4 => {
                let k = r.u32()? as usize;
                let mut freed = Vec::with_capacity(k.min(65536));
                for _ in 0..k {
                    freed.push(ts(r.f64()?));
                }
                TraceEvent::Remove { freed }
            }
            5 => TraceEvent::Send { m: ts(r.f64()?) },
            t => {
                return Err(WireError::BadTag {
                    what: "trace event",
                    tag: t,
                })
            }
        };
        events.push(ev);
    }
    Ok(Trace::from_events(events))
}

// Counters travel as their canonical JSON encoding: `to_json`/`from_json`
// already enumerate every field (including the histogram arrays) and are
// exercised by the bench report round-trip, so the wire can never drift
// from the snapshot definition.
fn put_counters(w: &mut BodyWriter, c: &CounterSnapshot) {
    w.str(&couplink_metrics::json::emit(&c.to_json()));
}

fn take_counters(r: &mut BodyReader) -> Result<CounterSnapshot, WireError> {
    let text = r.str()?;
    let value = couplink_metrics::json::parse(text).map_err(|_| WireError::Malformed {
        what: "counter snapshot json",
    })?;
    CounterSnapshot::from_json(&value).map_err(|_| WireError::Malformed {
        what: "counter snapshot fields",
    })
}

fn put_opt_str(w: &mut BodyWriter, s: Option<&str>) {
    match s {
        None => w.u8(0),
        Some(s) => {
            w.u8(1);
            w.str(s);
        }
    }
}

fn take_opt_str(r: &mut BodyReader) -> Result<Option<String>, WireError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.str()?.to_string())),
        t => Err(WireError::BadTag {
            what: "optional string",
            tag: t,
        }),
    }
}

/// Encodes a [`KIND_REPORT`] frame.
pub fn encode_report(rep: &NodeReport) -> Vec<u8> {
    let mut w = BodyWriter::with_capacity(1024);
    w.u32(rep.prog as u32);
    w.u32(rep.stats.len() as u32);
    for (conn, per_rank) in &rep.stats {
        w.u32(*conn);
        w.u32(per_rank.len() as u32);
        for s in per_rank {
            put_stats(&mut w, s);
        }
    }
    w.u32(rep.traces.len() as u32);
    for (prog, rank, conn, trace) in &rep.traces {
        w.u32(*prog as u32);
        w.u32(*rank as u32);
        w.u32(*conn);
        put_trace(&mut w, trace);
    }
    w.u32(rep.matches.len() as u32);
    for (conn, got) in &rep.matches {
        w.u32(*conn);
        w.u32(got.len() as u32);
        for m in got {
            match m {
                None => w.u8(0),
                Some(v) => {
                    w.u8(1);
                    w.f64(*v);
                }
            }
        }
    }
    w.u32(rep.imports_done.len() as u32);
    for (prog, rank, done, err) in &rep.imports_done {
        w.u32(*prog as u32);
        w.u32(*rank as u32);
        w.u64(*done);
        put_opt_str(&mut w, err.as_deref());
    }
    w.u32(rep.export_errors.len() as u32);
    for (prog, rank, err) in &rep.export_errors {
        w.u32(*prog as u32);
        w.u32(*rank as u32);
        w.str(err);
    }
    put_opt_str(&mut w, rep.shutdown_error.as_deref());
    put_counters(&mut w, &rep.counters);
    wire::encode_frame(KIND_REPORT, &w.into_body())
}

/// Decodes a [`KIND_REPORT`] body.
pub fn decode_report(body: &[u8]) -> Result<NodeReport, WireError> {
    let mut r = BodyReader::new(body);
    let prog = r.u32()? as usize;
    let n_stats = r.u32()? as usize;
    let mut stats = Vec::with_capacity(n_stats.min(4096));
    for _ in 0..n_stats {
        let conn = r.u32()?;
        let n_ranks = r.u32()? as usize;
        let mut per_rank = Vec::with_capacity(n_ranks.min(4096));
        for _ in 0..n_ranks {
            per_rank.push(take_stats(&mut r)?);
        }
        stats.push((conn, per_rank));
    }
    let n_traces = r.u32()? as usize;
    let mut traces = Vec::with_capacity(n_traces.min(4096));
    for _ in 0..n_traces {
        let prog = r.u32()? as usize;
        let rank = r.u32()? as usize;
        let conn = r.u32()?;
        traces.push((prog, rank, conn, take_trace(&mut r)?));
    }
    let n_matches = r.u32()? as usize;
    let mut matches = Vec::with_capacity(n_matches.min(4096));
    for _ in 0..n_matches {
        let conn = r.u32()?;
        let n_got = r.u32()? as usize;
        let mut got = Vec::with_capacity(n_got.min(65536));
        for _ in 0..n_got {
            got.push(match r.u8()? {
                0 => None,
                1 => Some(r.f64()?),
                t => {
                    return Err(WireError::BadTag {
                        what: "match presence",
                        tag: t,
                    })
                }
            });
        }
        matches.push((conn, got));
    }
    let n_done = r.u32()? as usize;
    let mut imports_done = Vec::with_capacity(n_done.min(4096));
    for _ in 0..n_done {
        imports_done.push((
            r.u32()? as usize,
            r.u32()? as usize,
            r.u64()?,
            take_opt_str(&mut r)?,
        ));
    }
    let n_eerr = r.u32()? as usize;
    let mut export_errors = Vec::with_capacity(n_eerr.min(4096));
    for _ in 0..n_eerr {
        export_errors.push((r.u32()? as usize, r.u32()? as usize, r.str()?.to_string()));
    }
    let shutdown_error = take_opt_str(&mut r)?;
    let counters = take_counters(&mut r)?;
    r.finish()?;
    Ok(NodeReport {
        prog,
        stats,
        traces,
        matches,
        imports_done,
        export_errors,
        shutdown_error,
        counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use couplink_proto::wire::FrameDecoder;
    use couplink_proto::{ConnectionId, RequestId};

    fn one_frame(bytes: &[u8]) -> (u8, Vec<u8>) {
        let mut dec = FrameDecoder::new();
        dec.extend(bytes);
        let f = dec.next_frame().unwrap().expect("complete frame");
        assert!(dec.next_frame().unwrap().is_none(), "single frame");
        (f.kind, f.body)
    }

    #[test]
    fn hello_roundtrip() {
        let (kind, body) = one_frame(&encode_hello(KIND_HELLO, "tok-1", 3));
        assert_eq!(kind, KIND_HELLO);
        assert_eq!(
            decode_hello(&body).unwrap(),
            (RT_VERSION, "tok-1".into(), 3)
        );
    }

    #[test]
    fn ctrl_envelope_roundtrip() {
        let msg = CtrlMsg::Answer {
            conn: ConnectionId(2),
            req: RequestId(7),
            answer: RepAnswer::Match(ts(4.5)),
        };
        let meta = WireMeta {
            from: Endpoint::Rep { prog: 1 },
            seq: 42,
            ord: Some(3),
        };
        let to = Endpoint::Proc { prog: 0, rank: 5 };
        let (kind, body) = one_frame(&encode_ctrl_env(to, Some(&meta), &msg));
        assert_eq!(kind, KIND_CTRL);
        let (to2, meta2, msg2) = decode_ctrl_env(&body).unwrap();
        assert_eq!(to2, to);
        assert_eq!(meta2, Some(meta));
        assert_eq!(msg2, msg);
    }

    #[test]
    fn ack_envelope_roundtrip() {
        let s = Endpoint::Proc { prog: 2, rank: 1 };
        let a = Endpoint::Rep { prog: 0 };
        let (kind, body) = one_frame(&encode_ack_env(s, a, 99));
        assert_eq!(kind, KIND_ACK);
        assert_eq!(decode_ack_env(&body).unwrap(), (s, a, 99));
    }

    #[test]
    fn plan_roundtrip_with_chaos_and_fault() {
        let plan = NodePlan {
            config_text: "E0 c0 /bin/e0 2\nI0 c0 /bin/i0 2\n#\nE0.r I0.m REG 0.25\n".into(),
            grid: (8, 8),
            exports: vec![ExportSpec {
                program: "E0".into(),
                region: 0,
                t0: 0.5,
                dt: 0.25,
                count: 12,
                compute: vec![0.01, 0.02],
            }],
            imports: vec![ImportSpec {
                program: "I0".into(),
                region: 0,
                t0: 1.0,
                dt: 0.5,
                count: 4,
                compute: 0.05,
                startup: 0.1,
            }],
            buddy_help: true,
            import_timeout_s: 5.0,
            time_scale: 0.2,
            verify_values: true,
            traces: vec![(0, 0, 0), (0, 1, 0)],
            chaos: Some(ChaosConfig {
                seed: 17,
                max_delay: 0.01,
                duplicate_prob: 0.2,
                drop_prob: 0.1,
                retry_delay: 0.05,
                loss_prob: 0.2,
                crash: Some(CrashFault {
                    target: CrashTarget::Rep(1),
                    after_msgs: 5,
                    restart_after: Some(0.6),
                }),
            }),
            fault: Some(NodeFault::SeverLink {
                prog: 0,
                peer: 1,
                after_tx: 3,
            }),
            hierarchical: true,
            wal_dir: Some("/tmp/wal-x".into()),
            restart: true,
        };
        let (kind, body) = one_frame(&encode_plan(&plan));
        assert_eq!(kind, KIND_PLAN);
        assert_eq!(decode_plan(&body).unwrap(), plan);
        // The embedded config round-trips into a buildable topology.
        let topo = plan.topology().unwrap();
        assert_eq!(topo.programs.len(), 2);
        assert_eq!(topo.conns.len(), 1);
    }

    #[test]
    fn report_roundtrip() {
        let mut counters = couplink_metrics::EngineMetrics::default()
            .snapshot()
            .counters;
        counters.net_frames = 7;
        counters.ctrl_sent[1] = 3;
        counters.occupancy[2] = 5;
        let rep = NodeReport {
            prog: 1,
            stats: vec![
                (
                    0,
                    vec![ExportStats {
                        requests: 4,
                        exports: 12,
                        memcpys: 3,
                        skips: 9,
                        sends: 4,
                        freed_sent: 4,
                        freed_unsent: 2,
                        buddy_helps: 1,
                        buffered_hwm: 2,
                        buffer_full_stalls: 0,
                        unnecessary_by_request: vec![0, 1, 0, 2],
                        unnecessary_inter_region: 1,
                    }],
                ),
                (1, Vec::new()),
            ],
            traces: vec![(
                0,
                0,
                0,
                Trace::from_events(vec![
                    TraceEvent::Export {
                        t: ts(1.5),
                        copied: true,
                    },
                    TraceEvent::Request {
                        x: ts(2.0),
                        reply: ProcResponse::Pending {
                            latest: Some(ts(1.5)),
                        },
                    },
                    TraceEvent::BuddyHelp {
                        x: ts(2.0),
                        answer: RepAnswer::NoMatch,
                    },
                    TraceEvent::Remove {
                        freed: vec![ts(1.5), ts(1.75)],
                    },
                    TraceEvent::Send { m: ts(2.25) },
                ]),
            )],
            matches: vec![(0, vec![Some(1.5), None, Some(2.25)])],
            imports_done: vec![(1, 0, 4, None), (1, 1, 2, Some("import timed out".into()))],
            export_errors: vec![(0, 1, "process crashed: boom".into())],
            shutdown_error: Some("rep failed: x".into()),
            counters,
        };
        let (kind, body) = one_frame(&encode_report(&rep));
        assert_eq!(kind, KIND_REPORT);
        assert_eq!(decode_report(&body).unwrap(), rep);
    }

    #[test]
    fn truncated_plan_is_a_typed_error() {
        let mut dec = FrameDecoder::new();
        let frame = encode_plan(&NodePlan {
            config_text: "E0 c0 /bin/e0 1\nI0 c0 /bin/i0 1\n#\nE0.r I0.m CLOSEST 0.1\n".into(),
            grid: (8, 8),
            exports: Vec::new(),
            imports: Vec::new(),
            buddy_help: false,
            import_timeout_s: 1.0,
            time_scale: 1.0,
            verify_values: false,
            traces: Vec::new(),
            chaos: None,
            fault: None,
            hierarchical: false,
            wal_dir: None,
            restart: false,
        });
        dec.extend(&frame);
        let f = dec.next_frame().unwrap().unwrap();
        let cut = f.body.len() - 3;
        assert!(matches!(
            decode_plan(&f.body[..cut]),
            Err(WireError::Truncated)
        ));
    }
}
