//! Socket plumbing shared by the orchestrator and the node binary: address
//! parsing, the UDS/TCP listener and stream pair, a writer thread that
//! drains a frame queue into a socket, and a framing reader that feeds a
//! [`FrameDecoder`] and skips checksum-corrupt frames (metering them)
//! while treating structural corruption as fatal.
//!
//! Both backends speak exactly the same bytes — the backend choice is
//! invisible above this module.

use std::fmt;
use std::io::{self, IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as AtomicOrdering};
use std::sync::{mpsc, Arc, OnceLock};
use std::time::Duration;

use couplink_metrics::EngineMetrics;
use couplink_proto::wire::{Frame, FrameDecoder, FrameSlot, WireError};
use parking_lot::Mutex;

/// Whether the legacy (pre-vectored, per-frame) data plane was requested
/// via `COUPLINK_NET_LEGACY=1`. The bench `--mutate` negative sets this to
/// measure the old per-frame-`write` path with the same binary; the codec
/// half of the switch is mirrored into
/// [`couplink_proto::wire::set_legacy_codec`] by the node entry point.
pub fn net_legacy() -> bool {
    static LEGACY: OnceLock<bool> = OnceLock::new();
    *LEGACY.get_or_init(|| {
        std::env::var("COUPLINK_NET_LEGACY")
            .map(|v| v == "1")
            .unwrap_or(false)
    })
}

/// Which OS transport carries the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketBackend {
    /// Unix-domain stream sockets (loopback-only, path-addressed).
    Uds,
    /// TCP on 127.0.0.1 (the cross-host shape, exercised on loopback).
    Tcp,
}

impl std::str::FromStr for SocketBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "uds" => Ok(SocketBackend::Uds),
            "tcp" => Ok(SocketBackend::Tcp),
            other => Err(format!("unknown socket backend {other:?} (uds|tcp)")),
        }
    }
}

/// A transport-tagged address, printed as `uds:<path>` or `tcp:<ip:port>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Addr {
    /// A Unix-domain socket path.
    Uds(PathBuf),
    /// A TCP host:port.
    Tcp(String),
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Addr::Uds(p) => write!(f, "uds:{}", p.display()),
            Addr::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

impl Addr {
    /// Parses the `uds:`/`tcp:` form produced by `Display`.
    pub fn parse(s: &str) -> Result<Addr, String> {
        if let Some(path) = s.strip_prefix("uds:") {
            Ok(Addr::Uds(PathBuf::from(path)))
        } else if let Some(hostport) = s.strip_prefix("tcp:") {
            Ok(Addr::Tcp(hostport.to_string()))
        } else {
            Err(format!("address {s:?} has no uds:/tcp: prefix"))
        }
    }
}

/// A bound listener on either backend.
pub enum Listener {
    /// Unix-domain, remembering its path for `addr()`.
    Uds(UnixListener, PathBuf),
    /// TCP on an ephemeral loopback port.
    Tcp(TcpListener),
}

impl Listener {
    /// Binds a listener: a `<name>.sock` under `dir` for UDS, an
    /// ephemeral `127.0.0.1` port for TCP.
    pub fn bind(backend: SocketBackend, dir: &Path, name: &str) -> io::Result<Listener> {
        match backend {
            SocketBackend::Uds => {
                let path = dir.join(format!("{name}.sock"));
                Ok(Listener::Uds(UnixListener::bind(&path)?, path))
            }
            SocketBackend::Tcp => Ok(Listener::Tcp(TcpListener::bind("127.0.0.1:0")?)),
        }
    }

    /// The dialable address of this listener.
    pub fn addr(&self) -> io::Result<Addr> {
        match self {
            Listener::Uds(_, path) => Ok(Addr::Uds(path.clone())),
            Listener::Tcp(l) => Ok(Addr::Tcp(l.local_addr()?.to_string())),
        }
    }

    /// Accepts one connection (blocking, honoring `set_nonblocking`).
    pub fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Uds(l, _) => {
                let (s, _) = l.accept()?;
                Ok(Conn::Uds(s))
            }
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true)?;
                Ok(Conn::Tcp(s))
            }
        }
    }

    /// Switches the listener between blocking and polling accepts.
    pub fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Listener::Uds(l, _) => l.set_nonblocking(nb),
            Listener::Tcp(l) => l.set_nonblocking(nb),
        }
    }
}

/// A connected stream on either backend.
pub enum Conn {
    /// Unix-domain stream.
    Uds(UnixStream),
    /// TCP stream (`TCP_NODELAY` set — control frames are tiny and
    /// latency-critical).
    Tcp(TcpStream),
}

impl Conn {
    /// One dial attempt, no retries.
    fn dial_once(addr: &Addr) -> io::Result<Conn> {
        match addr {
            Addr::Uds(path) => UnixStream::connect(path).map(Conn::Uds),
            Addr::Tcp(hostport) => TcpStream::connect(hostport.as_str()).and_then(|s| {
                s.set_nodelay(true)?;
                Ok(Conn::Tcp(s))
            }),
        }
    }

    /// Dials an address, retrying briefly — the bootstrap guarantees the
    /// target listener is bound before the address is handed out, so the
    /// retry only papers over scheduler skew, not missing peers.
    pub fn dial(addr: &Addr) -> io::Result<Conn> {
        Conn::dial_with_backoff(
            addr,
            50,
            Duration::from_millis(20),
            Duration::from_millis(20),
        )
    }

    /// Dials with exponential backoff: up to `attempts` tries, sleeping
    /// `first` after the first failure and doubling up to `cap`. This is
    /// the *reconnect* dial — unlike [`Conn::dial`] the peer may genuinely
    /// be down (mid-restart), so the schedule stretches into seconds
    /// instead of hammering a dead socket.
    pub fn dial_with_backoff(
        addr: &Addr,
        attempts: u32,
        first: Duration,
        cap: Duration,
    ) -> io::Result<Conn> {
        let mut delay = first;
        let mut last = None;
        for i in 0..attempts {
            match Conn::dial_once(addr) {
                Ok(c) => return Ok(c),
                Err(e) => last = Some(e),
            }
            if i + 1 < attempts {
                std::thread::sleep(delay);
                delay = (delay * 2).min(cap);
            }
        }
        Err(last.unwrap_or_else(|| io::Error::other("dial retries exhausted")))
    }

    /// Clones the descriptor so reads and writes can live on different
    /// threads.
    pub fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Uds(s) => s.try_clone().map(Conn::Uds),
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
        }
    }

    /// Bounds blocking reads (`None` blocks forever).
    pub fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Uds(s) => s.set_read_timeout(d),
            Conn::Tcp(s) => s.set_read_timeout(d),
        }
    }

    /// Shuts down both directions (best effort).
    pub fn shutdown(&self) {
        let _ = match self {
            Conn::Uds(s) => s.shutdown(std::net::Shutdown::Both),
            Conn::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }

    /// Half-closes the write side (best effort): bytes already written are
    /// flushed, then the peer reads EOF. Reads on this connection keep
    /// working — this is the link-sever fault shape, not a full teardown.
    pub fn shutdown_write(&self) {
        let _ = match self {
            Conn::Uds(s) => s.shutdown(std::net::Shutdown::Write),
            Conn::Tcp(s) => s.shutdown(std::net::Shutdown::Write),
        };
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Uds(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Uds(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
        match self {
            Conn::Uds(s) => s.write_vectored(bufs),
            Conn::Tcp(s) => s.write_vectored(bufs),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Uds(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

/// Upper bound on shelved buffers per size class — enough to cover a full
/// writer burst without letting a transient payload spike pin memory.
const POOL_PER_CLASS: usize = 32;
/// One shelf per power-of-two capacity class, `2^0 ..= 2^32`. Anything
/// larger is simply not shelved (`MAX_BODY` caps real frames far below).
const POOL_CLASSES: usize = 33;

/// A size-classed frame-buffer pool: the send path takes a buffer sized
/// for the frame it is about to encode, and the writer thread puts the
/// allocation back once the bytes are on the wire — steady-state traffic
/// stops allocating per frame.
///
/// Classes are powers of two. `put` shelves a buffer under
/// `floor(log2(capacity))`, `take(cap)` pops from `ceil(log2(cap))`, so a
/// recycled buffer is always large enough for the request it serves.
pub struct BufPool {
    shelves: Mutex<Vec<Vec<Vec<u8>>>>,
    metrics: Option<Arc<EngineMetrics>>,
}

impl BufPool {
    /// An empty pool; `metrics`, when present, meters
    /// `net_pool_hits`/`net_pool_misses` on every `take`.
    pub fn new(metrics: Option<Arc<EngineMetrics>>) -> Arc<BufPool> {
        Arc::new(BufPool {
            shelves: Mutex::new(vec![Vec::new(); POOL_CLASSES]),
            metrics,
        })
    }

    /// An empty buffer with capacity at least `cap`: recycled when the
    /// class has one shelved, freshly allocated otherwise.
    pub fn take(&self, cap: usize) -> Vec<u8> {
        let class = cap.max(1).next_power_of_two().trailing_zeros() as usize;
        let hit = if class < POOL_CLASSES {
            self.shelves.lock()[class].pop()
        } else {
            None
        };
        if let Some(m) = &self.metrics {
            if hit.is_some() {
                m.net_pool_hits.inc();
            } else {
                m.net_pool_misses.inc();
            }
        }
        hit.unwrap_or_else(|| Vec::with_capacity(cap))
    }

    /// Shelves an allocation for reuse (dropped when its class is full).
    pub fn put(&self, mut buf: Vec<u8>) {
        let cap = buf.capacity();
        if cap == 0 {
            return;
        }
        let class = (usize::BITS - 1 - cap.leading_zeros()) as usize;
        if class >= POOL_CLASSES {
            return;
        }
        let mut shelves = self.shelves.lock();
        if shelves[class].len() < POOL_PER_CLASS {
            buf.clear();
            shelves[class].push(buf);
        }
    }
}

/// The frame kind byte of an already-encoded frame (header offset 3), or
/// `None` if the buffer is impossibly short. Reconnect logic uses this to
/// decide which salvaged frames are worth replaying on the fresh link.
pub fn frame_kind(frame: &[u8]) -> Option<u8> {
    frame.get(3).copied()
}

/// The sending half of a link: encoded frames are queued on a channel and
/// drained by a dedicated writer thread, so fabric tasks never block on a
/// full socket buffer.
///
/// A write error stops the writer but does not lose its queue: the failed
/// frame and everything still enqueued are moved into a *salvage* buffer,
/// `is_dead` flips, and later sends land in the salvage directly. The
/// reconnect path calls [`LinkWriter::retire`] to collect the salvage and
/// replay what matters on the replacement writer; a run without reconnect
/// support just drops the handle (the peer's reader owns failure
/// reporting, exactly as before).
pub struct LinkWriter {
    tx: mpsc::Sender<Vec<u8>>,
    dead: Arc<AtomicBool>,
    salvage: Arc<Mutex<Vec<Vec<u8>>>>,
    /// Frames enqueued but not yet written or salvaged — zero means every
    /// accepted frame has reached the socket (and been metered).
    depth: Arc<AtomicU64>,
    /// A control clone of the socket, so teardown can half-close the link
    /// without joining a (possibly blocked) writer thread.
    ctl: Option<Conn>,
    thread: Option<std::thread::JoinHandle<()>>,
}

/// Writer burst caps: one `write_vectored` covers at most this many frames
/// / bytes. The caps bound syscall assembly cost and the latency of the
/// frame at the back of a burst; a queue that runs dry flushes immediately
/// regardless, so low-load latency is unchanged.
const BURST_FRAMES: usize = 64;
const BURST_BYTES: usize = 1 << 20;

/// Writes `frames` with as few syscalls as possible: one `write_vectored`
/// covering the remaining burst, re-issued after partial writes. Meters
/// `net_syscalls` per syscall and `net_frames`/`net_bytes` per frame as it
/// is fully written. On failure returns the count of frames fully written
/// — the next frame may have been *partially* written, which is fine: the
/// caller kills the link and salvages from that frame on.
fn write_batch(
    conn: &mut Conn,
    frames: &[Vec<u8>],
    metrics: Option<&EngineMetrics>,
) -> Result<(), usize> {
    let mut idx = 0;
    let mut off = 0;
    while idx < frames.len() {
        let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(frames.len() - idx);
        slices.push(IoSlice::new(&frames[idx][off..]));
        slices.extend(frames[idx + 1..].iter().map(|f| IoSlice::new(f)));
        let n = match conn.write_vectored(&slices) {
            Ok(0) => return Err(idx),
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(idx),
        };
        if let Some(m) = metrics {
            m.net_syscalls.inc();
        }
        let mut left = n;
        while left > 0 {
            let rem = frames[idx].len() - off;
            if left >= rem {
                left -= rem;
                off = 0;
                idx += 1;
                if let Some(m) = metrics {
                    m.net_frames.inc();
                    m.net_bytes.add(frames[idx - 1].len() as u64);
                }
            } else {
                off += left;
                left = 0;
            }
        }
    }
    if let Some(m) = metrics {
        if frames.len() > 1 {
            m.net_writev_frames.add(frames.len() as u64);
        }
    }
    Ok(())
}

impl LinkWriter {
    /// Spawns the writer thread over (a clone of) `conn`.
    pub fn spawn(conn: Conn, label: String) -> LinkWriter {
        LinkWriter::spawn_with(conn, label, None, None, None)
    }

    /// Like [`LinkWriter::spawn`], but after `sever_after` frames have
    /// been written the writer half-closes the socket and dies, salvaging
    /// its remaining queue — the deliberate mid-run link sever the
    /// reconnect tests inject.
    pub fn spawn_severing(conn: Conn, label: String, sever_after: Option<u64>) -> LinkWriter {
        LinkWriter::spawn_with(conn, label, sever_after, None, None)
    }

    /// Full-control spawn: optional sever fault, optional tx metering
    /// (`net_syscalls`/`net_writev_frames`/`net_frames`/`net_bytes`,
    /// counted when bytes actually reach the socket — not at enqueue),
    /// and an optional pool that written frame buffers are recycled into.
    pub fn spawn_with(
        mut conn: Conn,
        label: String,
        sever_after: Option<u64>,
        metrics: Option<Arc<EngineMetrics>>,
        pool: Option<Arc<BufPool>>,
    ) -> LinkWriter {
        let ctl = conn.try_clone().ok();
        let (tx, rx) = mpsc::channel::<Vec<u8>>();
        let dead = Arc::new(AtomicBool::new(false));
        let salvage = Arc::new(Mutex::new(Vec::new()));
        let depth = Arc::new(AtomicU64::new(0));
        let (t_dead, t_salvage, t_depth) =
            (Arc::clone(&dead), Arc::clone(&salvage), Arc::clone(&depth));
        // The legacy data plane coalesces nothing: every frame is its own
        // syscall, exactly like the old per-frame `write_all` loop.
        let burst_frames = if net_legacy() { 1 } else { BURST_FRAMES };
        let thread = std::thread::Builder::new()
            .name(format!("couplink-net-wr-{label}"))
            .spawn(move || {
                let mut written = 0u64;
                let mut batch: Vec<Vec<u8>> = Vec::new();
                while let Ok(first) = rx.recv() {
                    // Burst-drain: everything already queued goes into one
                    // vectored write. An empty queue flushes immediately.
                    let mut bytes = first.len();
                    batch.push(first);
                    while batch.len() < burst_frames && bytes < BURST_BYTES {
                        match rx.try_recv() {
                            Ok(f) => {
                                bytes += f.len();
                                batch.push(f);
                            }
                            Err(_) => break,
                        }
                    }
                    // Sever fault: exactly `sever_after` frames reach the
                    // wire, even when the limit lands mid-burst.
                    let allowed = match sever_after {
                        Some(s) => (s.saturating_sub(written)).min(batch.len() as u64) as usize,
                        None => batch.len(),
                    };
                    let severed = allowed < batch.len();
                    let (done, failed) =
                        match write_batch(&mut conn, &batch[..allowed], metrics.as_deref()) {
                            Ok(()) => (allowed, false),
                            Err(done) => (done, true),
                        };
                    written += done as u64;
                    t_depth.fetch_sub(done as u64, AtomicOrdering::Release);
                    let rest: Vec<Vec<u8>> = batch.split_off(done);
                    if let Some(p) = &pool {
                        for f in batch.drain(..) {
                            p.put(f);
                        }
                    } else {
                        batch.clear();
                    }
                    if failed || severed {
                        if severed && !failed {
                            // FIN flushes everything already written; the
                            // unsent frames go to the salvage like a
                            // failure.
                            conn.shutdown_write();
                        }
                        t_depth.fetch_sub(rest.len() as u64, AtomicOrdering::Release);
                        t_salvage.lock().extend(rest);
                        t_dead.store(true, AtomicOrdering::Release);
                        // Keep salvaging until every sender hangs up so
                        // nothing queued behind the failure is lost.
                        while let Ok(f) = rx.recv() {
                            t_depth.fetch_sub(1, AtomicOrdering::Release);
                            t_salvage.lock().push(f);
                        }
                        return;
                    }
                }
                let _ = conn.flush();
            })
            .expect("spawning writer thread");
        LinkWriter {
            tx,
            dead,
            salvage,
            depth,
            ctl,
            thread: Some(thread),
        }
    }

    /// Queues one already-encoded frame. Returns `false` if the writer is
    /// dead — the frame went to the salvage, not the socket.
    pub fn send(&self, frame: Vec<u8>) -> bool {
        if self.dead.load(AtomicOrdering::Acquire) {
            self.salvage.lock().push(frame);
            return false;
        }
        self.depth.fetch_add(1, AtomicOrdering::Release);
        if self.tx.send(frame).is_err() {
            self.depth.fetch_sub(1, AtomicOrdering::Release);
            return false;
        }
        true
    }

    /// Whether the writer thread has died on a write error or sever.
    pub fn is_dead(&self) -> bool {
        self.dead.load(AtomicOrdering::Acquire)
    }

    /// Whether every accepted frame has been written (and tx-metered) or
    /// salvaged — the teardown quiesce polls this before half-closing.
    pub fn idle(&self) -> bool {
        self.depth.load(AtomicOrdering::Acquire) == 0
    }

    /// Half-closes the link's write direction from outside the writer
    /// thread (which may be blocked on a peer that stopped reading): the
    /// peer observes EOF after everything already written.
    pub fn half_close(&self) {
        if let Some(c) = &self.ctl {
            c.shutdown_write();
        }
    }

    /// Tears the writer down and returns every unwritten frame in send
    /// order: hangs up the queue, joins the thread (so the salvage is
    /// complete), and drains the salvage buffer.
    pub fn retire(mut self) -> Vec<Vec<u8>> {
        drop(self.tx);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        std::mem::take(&mut *self.salvage.lock())
    }
}

/// A transport-layer failure above the frame codec.
#[derive(Debug)]
pub enum NetError {
    /// Socket I/O failed.
    Io(io::Error),
    /// The byte stream is structurally corrupt (bad magic/version/length)
    /// — the framing is unrecoverable, the link must be dropped.
    Wire(WireError),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket i/o: {e}"),
            NetError::Wire(e) => write!(f, "wire framing: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

/// How much a frame reader asks the socket for per `read` syscall.
const READ_CHUNK: usize = 64 * 1024;

/// The receiving half of a link: reads socket bytes straight into a
/// [`FrameDecoder`] (no intermediate stack buffer) and yields frames as
/// zero-copy slots over the decoder's compacting buffer.
pub struct FrameReader {
    conn: Conn,
    dec: FrameDecoder,
}

impl FrameReader {
    /// Wraps a connected stream.
    pub fn new(conn: Conn) -> FrameReader {
        FrameReader {
            conn,
            dec: FrameDecoder::new(),
        }
    }

    /// The underlying connection (for shutdown/timeout control).
    pub fn conn(&self) -> &Conn {
        &self.conn
    }

    /// Peak bytes the receive buffer ever held (the `net_rx_buf` gauge).
    pub fn buffered_hwm(&self) -> usize {
        self.dec.buffered_hwm()
    }

    /// Returns the next frame as a [`FrameSlot`] over the internal buffer
    /// (resolve it with [`FrameReader::body`] — no per-frame copy), or
    /// `Ok(None)` on a clean EOF. A frame whose checksum fails is
    /// *skipped* — `reject` is called once per skip (the caller meters
    /// `net_codec_rejects`) and reading continues, because a corrupt body
    /// leaves the stream framing intact. Structural errors (bad magic, bad
    /// version, oversized length) poison the decoder and surface as
    /// [`NetError::Wire`].
    pub fn next_slot(&mut self, reject: &mut dyn FnMut()) -> Result<Option<FrameSlot>, NetError> {
        loop {
            match self.dec.poll_frame() {
                Ok(Some(slot)) => return Ok(Some(slot)),
                Ok(None) => {}
                Err(WireError::BadChecksum) => {
                    reject();
                    continue;
                }
                Err(e) => return Err(NetError::Wire(e)),
            }
            match self.dec.read_from(&mut self.conn, READ_CHUNK) {
                Ok(0) => return Ok(None),
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(NetError::Io(e)),
            }
        }
    }

    /// The body bytes of a slot returned by [`FrameReader::next_slot`].
    pub fn body(&self, slot: &FrameSlot) -> &[u8] {
        self.dec.body(slot)
    }

    /// [`FrameReader::next_slot`] materialized into an owned [`Frame`] —
    /// the convenience API for bootstrap and replay paths.
    pub fn next(&mut self, reject: &mut dyn FnMut()) -> Result<Option<Frame>, NetError> {
        match self.next_slot(reject)? {
            Some(slot) => Ok(Some(Frame {
                kind: slot.kind,
                body: self.dec.body(&slot).to_vec(),
            })),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use couplink_proto::wire::{self as wire};

    #[test]
    fn reader_skips_checksum_corruption_and_keeps_framing() {
        let (a, b) = UnixStream::pair().unwrap();
        let mut w = a;
        let good1 = wire::encode_frame(wire::KIND_RUNTIME_BASE, b"first");
        let mut corrupt = wire::encode_frame(wire::KIND_RUNTIME_BASE, b"second");
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x40; // flip a body bit: checksum must catch it
        let good2 = wire::encode_frame(wire::KIND_RUNTIME_BASE, b"third");
        w.write_all(&good1).unwrap();
        w.write_all(&corrupt).unwrap();
        w.write_all(&good2).unwrap();
        drop(w);

        let mut rejects = 0usize;
        let mut r = FrameReader::new(Conn::Uds(b));
        let mut reject = || rejects += 1;
        let f1 = r.next(&mut reject).unwrap().unwrap();
        assert_eq!(f1.body, b"first");
        let f2 = r.next(&mut reject).unwrap().unwrap();
        assert_eq!(f2.body, b"third", "corrupt frame skipped, stream resynced");
        assert!(r.next(&mut reject).unwrap().is_none(), "clean EOF");
        assert_eq!(rejects, 1, "exactly one metered codec reject");
    }

    #[test]
    fn reader_reports_structural_corruption_as_fatal() {
        let (a, b) = UnixStream::pair().unwrap();
        let mut w = a;
        w.write_all(b"\xff\xff garbage that is not a frame header")
            .unwrap();
        drop(w);
        let mut r = FrameReader::new(Conn::Uds(b));
        let mut reject = || {};
        match r.next(&mut reject) {
            Err(NetError::Wire(WireError::BadMagic { .. })) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn severing_writer_flushes_then_salvages() {
        let (a, b) = UnixStream::pair().unwrap();
        let w = LinkWriter::spawn_severing(Conn::Uds(a), "sever-test".into(), Some(2));
        let f = |body: &[u8]| wire::encode_frame(wire::KIND_RUNTIME_BASE, body);
        w.send(f(b"one"));
        w.send(f(b"two"));
        w.send(f(b"three")); // the third write triggers the sever
        let mut r = FrameReader::new(Conn::Uds(b));
        let mut reject = || {};
        assert_eq!(r.next(&mut reject).unwrap().unwrap().body, b"one");
        assert_eq!(r.next(&mut reject).unwrap().unwrap().body, b"two");
        assert!(
            r.next(&mut reject).unwrap().is_none(),
            "half-close: pre-sever frames flushed, then EOF"
        );
        let salvage = w.retire();
        assert_eq!(salvage.len(), 1, "the unsent frame was salvaged");
        assert_eq!(frame_kind(&salvage[0]), Some(wire::KIND_RUNTIME_BASE));
    }

    #[test]
    fn dead_writer_sends_land_in_salvage() {
        let (a, b) = UnixStream::pair().unwrap();
        let w = LinkWriter::spawn_severing(Conn::Uds(a), "dead-test".into(), Some(0));
        let f = wire::encode_frame(wire::KIND_RUNTIME_BASE, b"x");
        w.send(f.clone()); // triggers the immediate sever
        let mut r = FrameReader::new(Conn::Uds(b));
        let mut reject = || {};
        assert!(r.next(&mut reject).unwrap().is_none());
        // Wait for the dead flag, then confirm post-death sends salvage.
        for _ in 0..200 {
            if w.is_dead() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(w.is_dead());
        assert!(!w.send(f.clone()), "send on a dead writer reports failure");
        assert_eq!(w.retire().len(), 2);
    }

    #[test]
    fn addr_roundtrip() {
        for text in ["uds:/tmp/x/boot.sock", "tcp:127.0.0.1:4510"] {
            assert_eq!(Addr::parse(text).unwrap().to_string(), text);
        }
        assert!(Addr::parse("ipc:nope").is_err());
    }
}
