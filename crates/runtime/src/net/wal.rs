//! The file-backed write-ahead journal behind `couplink-node`.
//!
//! [`FileWal`] implements [`Wal`] with records that survive SIGKILL: each
//! record is one `proto::wire` frame (magic, version, kind, length, CRC-32,
//! body) appended to a segment file, so the journal reuses the exact
//! framing discipline — and the exact corruption taxonomy — of the socket
//! transport. Appends are buffered by the OS and made durable in batches:
//! [`Wal::sync`] runs `fdatasync` once per escape point (a sequenced frame
//! or ack leaving the process), not once per record.
//!
//! # Crash anatomy on open
//!
//! A process killed mid-append leaves at most one *torn* record — a strict
//! prefix of a frame — at the very end of the newest segment, because
//! appends are sequential. [`FileWal::open`] therefore:
//!
//! * replays every complete, checksum-verified frame in file order;
//! * truncates a torn tail on the newest segment (metered as
//!   `wal_truncated`) — that record was never acknowledged to anyone, so
//!   dropping it is indistinguishable from the message never arriving;
//! * rejects everything else — a checksum mismatch mid-file, a torn frame
//!   in a sealed segment, an unknown record kind — as
//!   [`WalError::Corrupt`]. Corruption is not recoverable: replaying a
//!   journal with a hole would silently diverge from what was acked.
//!
//! # Segments and pruning
//!
//! The journal rotates to a fresh segment file every
//! [`FileWal::SEGMENT_BYTES`]; sealed segments are immutable.
//! [`FileWal::prune_sealed`] deletes them — but recovery replays the
//! *delivered* history to rebuild node state, so pruning is only safe once
//! that state no longer needs reconstructing: `couplink-node` prunes at
//! clean session shutdown (everything acked *and* drained), not on ack
//! alone. Mid-run compaction would need state snapshots, which this
//! journal deliberately does not implement.

use crate::engine::reliable::{Wal, WalRecord};
use crate::engine::{Endpoint, WireMeta};
use couplink_metrics::EngineMetrics;
use couplink_proto::wire::{self, BodyReader, FrameDecoder, WireError};
use couplink_proto::CtrlMsg;
use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Frame kind for a [`WalRecord::Delivered`] record. WAL kinds live far
/// above [`wire::KIND_RUNTIME_BASE`] so a journal file can never be
/// confused with captured socket traffic.
pub const KIND_WAL_DELIVERED: u8 = 64;

/// Frame kind for a [`WalRecord::AppExport`] record.
pub const KIND_WAL_EXPORT: u8 = 65;

/// Why a journal could not be opened or written.
#[derive(Debug)]
pub enum WalError {
    /// The filesystem failed underneath the journal.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A record failed checksum or structural validation somewhere other
    /// than a truncatable torn tail. The journal cannot be trusted.
    Corrupt {
        /// The segment containing the bad record.
        path: PathBuf,
        /// Byte offset at which the segment stopped parsing cleanly.
        offset: u64,
        /// The wire-level rejection.
        source: WireError,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io { path, source } => {
                write!(f, "WAL I/O error on {}: {source}", path.display())
            }
            WalError::Corrupt {
                path,
                offset,
                source,
            } => write!(
                f,
                "corrupt WAL record in {} at byte {offset}: {source}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for WalError {}

fn io_err(path: &Path, source: std::io::Error) -> WalError {
    WalError::Io {
        path: path.to_path_buf(),
        source,
    }
}

// ---------------------------------------------------------------------------
// Record codec: one wire frame per record.
// ---------------------------------------------------------------------------

fn put_meta(w: &mut wire::FrameWriter, meta: &WireMeta) {
    super::codec::put_endpoint_frame(w, meta.from);
    w.u64(meta.seq);
    match meta.ord {
        None => w.u8(0),
        Some(ord) => {
            w.u8(1);
            w.u64(ord);
        }
    }
}

fn take_meta(r: &mut BodyReader) -> Result<WireMeta, WireError> {
    let from = super::codec::take_endpoint(r)?;
    let seq = r.u64()?;
    let ord = match r.u8()? {
        0 => None,
        1 => Some(r.u64()?),
        tag => {
            return Err(WireError::BadTag {
                what: "wal ord option",
                tag,
            })
        }
    };
    Ok(WireMeta { from, seq, ord })
}

/// Encodes one record as a complete wire frame (header + CRC + body).
pub fn encode_record(rec: &WalRecord) -> Vec<u8> {
    match rec {
        WalRecord::Delivered { ep, meta, msg } => {
            let ctrl = wire::encode_ctrl(msg);
            let mut w = wire::FrameWriter::with_capacity(KIND_WAL_DELIVERED, 32 + ctrl.len());
            super::codec::put_endpoint_frame(&mut w, *ep);
            put_meta(&mut w, meta);
            w.bytes(&ctrl);
            w.finish()
        }
        WalRecord::AppExport { ep, region, ts } => {
            let mut w = wire::FrameWriter::with_capacity(KIND_WAL_EXPORT, 24);
            super::codec::put_endpoint_frame(&mut w, *ep);
            w.u32(*region);
            w.f64(ts.value());
            w.finish()
        }
    }
}

/// Decodes one record from a checksum-verified frame.
pub fn decode_record(kind: u8, body: &[u8]) -> Result<WalRecord, WireError> {
    let mut r = BodyReader::new(body);
    match kind {
        KIND_WAL_DELIVERED => {
            let ep = super::codec::take_endpoint(&mut r)?;
            let meta = take_meta(&mut r)?;
            let msg = wire::decode_ctrl(r.raw(r.remaining())?)?;
            r.finish()?;
            Ok(WalRecord::Delivered { ep, meta, msg })
        }
        KIND_WAL_EXPORT => {
            let ep = super::codec::take_endpoint(&mut r)?;
            let region = r.u32()?;
            let ts = r.timestamp()?;
            r.finish()?;
            Ok(WalRecord::AppExport { ep, region, ts })
        }
        tag => Err(WireError::BadTag {
            what: "wal record kind",
            tag,
        }),
    }
}

// ---------------------------------------------------------------------------
// The journal.
// ---------------------------------------------------------------------------

/// A durable [`Wal`] over numbered segment files `<name>.<k>.wal` in one
/// directory. See the module docs for the crash anatomy.
pub struct FileWal {
    dir: PathBuf,
    name: String,
    seg_index: u64,
    file: File,
    seg_bytes: u64,
    seg_limit: u64,
    sealed: Vec<PathBuf>,
    dirty: bool,
    metrics: Arc<EngineMetrics>,
    /// In-memory mirror of the delivered journal, so in-process failover
    /// replay ([`Wal::delivered`]) never re-reads the disk.
    delivered: BTreeMap<Endpoint, Vec<(WireMeta, CtrlMsg)>>,
}

impl fmt::Debug for FileWal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FileWal")
            .field("dir", &self.dir)
            .field("name", &self.name)
            .field("seg_index", &self.seg_index)
            .field("seg_bytes", &self.seg_bytes)
            .field("sealed", &self.sealed.len())
            .finish()
    }
}

impl FileWal {
    /// Default rotation threshold: a segment is sealed once it exceeds
    /// this many bytes.
    pub const SEGMENT_BYTES: u64 = 1 << 20;

    fn seg_path(dir: &Path, name: &str, k: u64) -> PathBuf {
        dir.join(format!("{name}.{k}.wal"))
    }

    /// Opens (creating if absent) the journal `<dir>/<name>.*.wal` and
    /// replays every durable record, in file order, into the returned
    /// `Vec`. An empty or missing journal is simply fresh. A torn tail on
    /// the newest segment is truncated (`wal_truncated`); any other
    /// malformation is [`WalError::Corrupt`]. Replayed records are metered
    /// as `wal_replayed`.
    pub fn open(
        dir: &Path,
        name: &str,
        seg_limit: u64,
        metrics: Arc<EngineMetrics>,
    ) -> Result<(FileWal, Vec<WalRecord>), WalError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let mut segs: Vec<(u64, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(dir).map_err(|e| io_err(dir, e))? {
            let entry = entry.map_err(|e| io_err(dir, e))?;
            let fname = entry.file_name();
            let Some(fname) = fname.to_str() else {
                continue;
            };
            let Some(mid) = fname
                .strip_prefix(&format!("{name}."))
                .and_then(|s| s.strip_suffix(".wal"))
            else {
                continue;
            };
            if let Ok(k) = mid.parse::<u64>() {
                segs.push((k, entry.path()));
            }
        }
        segs.sort();

        let mut records = Vec::new();
        let last = segs.len().saturating_sub(1);
        for (i, (_, path)) in segs.iter().enumerate() {
            Self::replay_segment(path, i == last, &mut records, &metrics)?;
        }
        metrics.wal_replayed.add(records.len() as u64);

        let (seg_index, cur_path) = match segs.last() {
            Some(&(k, ref p)) => (k, p.clone()),
            None => (0, Self::seg_path(dir, name, 0)),
        };
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&cur_path)
            .map_err(|e| io_err(&cur_path, e))?;
        let seg_bytes = file.metadata().map_err(|e| io_err(&cur_path, e))?.len();
        let sealed = segs
            .iter()
            .take(segs.len().saturating_sub(1))
            .map(|(_, p)| p.clone())
            .collect();

        let mut delivered: BTreeMap<Endpoint, Vec<(WireMeta, CtrlMsg)>> = BTreeMap::new();
        for rec in &records {
            if let WalRecord::Delivered { ep, meta, msg } = rec {
                delivered.entry(*ep).or_default().push((*meta, *msg));
            }
        }

        Ok((
            FileWal {
                dir: dir.to_path_buf(),
                name: name.to_string(),
                seg_index,
                file,
                seg_bytes,
                seg_limit: seg_limit.max(1),
                sealed,
                dirty: false,
                metrics,
                delivered,
            },
            records,
        ))
    }

    /// Replays one segment. Only the newest segment may carry a torn tail.
    fn replay_segment(
        path: &Path,
        newest: bool,
        records: &mut Vec<WalRecord>,
        metrics: &EngineMetrics,
    ) -> Result<(), WalError> {
        let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
        let mut dec = FrameDecoder::new();
        dec.extend(&bytes);
        loop {
            let consumed = bytes.len() - dec.buffered();
            match dec.next_frame() {
                Ok(Some(frame)) => {
                    let rec = decode_record(frame.kind, &frame.body).map_err(|source| {
                        WalError::Corrupt {
                            path: path.to_path_buf(),
                            offset: consumed as u64,
                            source,
                        }
                    })?;
                    records.push(rec);
                }
                Ok(None) => {
                    let leftover = dec.buffered();
                    if leftover == 0 {
                        return Ok(());
                    }
                    // A strict prefix of a frame. On the newest segment
                    // that is the signature of a crash mid-append; anywhere
                    // else the journal is damaged.
                    if !newest {
                        return Err(WalError::Corrupt {
                            path: path.to_path_buf(),
                            offset: (bytes.len() - leftover) as u64,
                            source: WireError::Truncated,
                        });
                    }
                    let keep = (bytes.len() - leftover) as u64;
                    let f = OpenOptions::new()
                        .write(true)
                        .open(path)
                        .map_err(|e| io_err(path, e))?;
                    f.set_len(keep).map_err(|e| io_err(path, e))?;
                    f.sync_all().map_err(|e| io_err(path, e))?;
                    metrics.wal_truncated.inc();
                    return Ok(());
                }
                Err(source) => {
                    return Err(WalError::Corrupt {
                        path: path.to_path_buf(),
                        offset: consumed as u64,
                        source,
                    })
                }
            }
        }
    }

    /// Deletes every sealed (non-current) segment. Only call once the
    /// session no longer needs replay — see the module docs.
    pub fn prune_sealed(&mut self) {
        for path in self.sealed.drain(..) {
            // Pruning is an optimization; a leftover segment is re-read
            // (harmlessly) on the next open, so failures are ignored.
            let _ = std::fs::remove_file(path);
        }
    }

    /// Number of sealed segments awaiting pruning (test hook).
    pub fn sealed_len(&self) -> usize {
        self.sealed.len()
    }

    fn current_path(&self) -> PathBuf {
        Self::seg_path(&self.dir, &self.name, self.seg_index)
    }

    fn rotate(&mut self) {
        let old = self.current_path();
        self.file.sync_data().unwrap_or_else(|e| {
            panic!("WAL sync on seal of {}: {e}", old.display());
        });
        self.sealed.push(old);
        self.seg_index += 1;
        let path = self.current_path();
        self.file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap_or_else(|e| panic!("WAL rotate to {}: {e}", path.display()));
        self.seg_bytes = 0;
    }
}

impl Wal for FileWal {
    fn append(&mut self, rec: &WalRecord) {
        if self.seg_bytes >= self.seg_limit {
            self.rotate();
        }
        let frame = encode_record(rec);
        self.file.write_all(&frame).unwrap_or_else(|e| {
            panic!("WAL append to {}: {e}", self.current_path().display());
        });
        self.seg_bytes += frame.len() as u64;
        self.dirty = true;
        self.metrics.wal_appends.inc();
        self.metrics.wal_bytes.add(frame.len() as u64);
        if let WalRecord::Delivered { ep, meta, msg } = rec {
            self.delivered.entry(*ep).or_default().push((*meta, *msg));
        }
    }

    fn sync(&mut self) {
        if !self.dirty {
            return;
        }
        self.file.sync_data().unwrap_or_else(|e| {
            panic!("WAL sync of {}: {e}", self.current_path().display());
        });
        self.dirty = false;
    }

    fn delivered(&self, ep: Endpoint) -> Vec<(WireMeta, CtrlMsg)> {
        self.delivered.get(&ep).cloned().unwrap_or_default()
    }

    fn prune(&mut self) {
        self.prune_sealed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use couplink_proto::{ConnectionId, RequestId};
    use couplink_time::ts;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("couplink-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("tmpdir");
        dir
    }

    fn rec(seq: u64) -> WalRecord {
        WalRecord::Delivered {
            ep: Endpoint::Rep { prog: 1 },
            meta: WireMeta {
                from: Endpoint::Rep { prog: 0 },
                seq,
                ord: Some(seq),
            },
            msg: CtrlMsg::ImportRequest {
                conn: ConnectionId(0),
                req: RequestId(seq),
                ts: ts(1.0 + seq as f64),
            },
        }
    }

    fn export_rec(k: u64) -> WalRecord {
        WalRecord::AppExport {
            ep: Endpoint::Proc { prog: 0, rank: 1 },
            region: 2,
            ts: ts(0.5 + k as f64),
        }
    }

    #[test]
    fn record_codec_roundtrips_both_kinds() {
        for rec in [rec(7), export_rec(3)] {
            let frame = encode_record(&rec);
            let mut dec = FrameDecoder::new();
            dec.extend(&frame);
            let f = dec.next_frame().expect("valid").expect("complete");
            assert_eq!(decode_record(f.kind, &f.body).expect("decodes"), rec);
        }
    }

    #[test]
    fn fresh_reopen_replays_in_order_and_mirrors_delivered() {
        let dir = tmpdir("reopen");
        let m = Arc::new(EngineMetrics::new());
        let (mut w, replayed) =
            FileWal::open(&dir, "n0", FileWal::SEGMENT_BYTES, m.clone()).expect("fresh open");
        assert!(replayed.is_empty(), "empty journal is fresh");
        for k in 0..4 {
            w.append(&rec(k));
            w.append(&export_rec(k));
        }
        w.sync();
        assert_eq!(m.wal_appends.get(), 8);
        drop(w);

        let m2 = Arc::new(EngineMetrics::new());
        let (w2, replayed) =
            FileWal::open(&dir, "n0", FileWal::SEGMENT_BYTES, m2.clone()).expect("reopen");
        assert_eq!(replayed.len(), 8);
        let want: Vec<WalRecord> = (0..4).flat_map(|k| [rec(k), export_rec(k)]).collect();
        assert_eq!(replayed, want, "file order preserved");
        assert_eq!(m2.wal_replayed.get(), 8);
        assert_eq!(m2.wal_truncated.get(), 0);
        assert_eq!(
            w2.delivered(Endpoint::Rep { prog: 1 }).len(),
            4,
            "delivered mirror rebuilt from disk"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_seals_segments_and_prune_keeps_current() {
        let dir = tmpdir("rotate");
        let m = Arc::new(EngineMetrics::new());
        // Tiny limit: every append lands in a new segment.
        let (mut w, _) = FileWal::open(&dir, "n0", 1, m.clone()).expect("open");
        for k in 0..5 {
            w.append(&rec(k));
        }
        w.sync();
        assert_eq!(w.sealed_len(), 4);
        drop(w);
        // All five records replay across the five segments.
        let (mut w, replayed) = FileWal::open(&dir, "n0", 1, m.clone()).expect("reopen");
        assert_eq!(replayed.len(), 5);
        w.prune_sealed();
        assert_eq!(w.sealed_len(), 0);
        drop(w);
        let (_, replayed) = FileWal::open(&dir, "n0", 1, m).expect("post-prune");
        assert_eq!(replayed.len(), 1, "only the current segment survives");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_in_sealed_segment_is_corrupt_not_truncated() {
        let dir = tmpdir("sealed-torn");
        let m = Arc::new(EngineMetrics::new());
        let (mut w, _) = FileWal::open(&dir, "n0", 1, m.clone()).expect("open");
        w.append(&rec(0));
        w.append(&rec(1)); // rotates: segment 0 sealed
        w.sync();
        drop(w);
        let sealed = FileWal::seg_path(&dir, "n0", 0);
        let bytes = std::fs::read(&sealed).expect("read sealed");
        std::fs::write(&sealed, &bytes[..bytes.len() - 3]).expect("tear sealed");
        let err = FileWal::open(&dir, "n0", 1, m).expect_err("sealed tear is fatal");
        assert!(matches!(err, WalError::Corrupt { .. }), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
